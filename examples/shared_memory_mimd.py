#!/usr/bin/env python3
"""A shared-memory MIMD multiprocessor: Section 4's scenario, end to end.

256 processors share 256 memory modules through an ``EDN(16,4,4,3)``
(think Cedar / NYU Ultracomputer scale, the paper's own examples).  The
example contrasts the two policies Figure 11 plots:

* rejected requests **ignored** — the pure-network regime of Eq. 4;
* rejected requests **resubmitted** — processors stall until served, the
  effective load inflates (Eq. 8), and acceptance, utilization and
  bandwidth all drop, exactly as the Markov chain of Figure 10 predicts.

The cycle simulator then validates the model and explores how the damage
scales with the fresh-request rate ``r``.

Run: ``python examples/shared_memory_mimd.py``
"""

from __future__ import annotations

from repro import EDNParams, acceptance_probability
from repro.mimd import MIMDSystem, edn_resubmission
from repro.viz import format_table


def main() -> None:
    params = EDNParams(16, 4, 4, 3)
    print(f"system: {params.num_inputs} processors / {params.num_outputs} memory "
          f"modules over {params}")
    print()

    # 1. Model vs simulation at r = 0.5 (Figure 11's operating point). -------
    r = 0.5
    solution = edn_resubmission(params, r)
    simulated = MIMDSystem(params, r, policy="resubmit", redraw_on_retry=True).run(
        cycles=1500, warmup=300, seed=11
    )
    ignored = MIMDSystem(params, r, policy="ignore").run(cycles=800, warmup=100, seed=11)
    print(
        format_table(
            ["quantity", "Markov model", "cycle simulation"],
            [
                ["PA (rejects ignored)", acceptance_probability(params, r), ignored.acceptance.point],
                ["PA' (resubmitted)", solution.pa_resubmit, simulated.acceptance.point],
                ["effective rate r'", solution.effective_rate, simulated.offered_rate],
                ["processor utilization qA", solution.q_active, simulated.utilization.point],
                ["bandwidth (deliveries/cycle)",
                 solution.bandwidth_per_input * params.num_inputs,
                 simulated.bandwidth],
            ],
            title=f"resubmission at r = {r}",
        )
    )
    print()
    print(f"mean wait of a blocked processor: {simulated.mean_wait:.2f} cycles; "
          f"memory load imbalance {simulated.load_imbalance:.3f}")
    print()

    # 2. Sweep the request rate. ---------------------------------------------
    rows = []
    for rate in (0.1, 0.25, 0.5, 0.75, 1.0):
        sol = edn_resubmission(params, rate)
        rows.append(
            [rate, acceptance_probability(params, rate), sol.pa_resubmit,
             sol.effective_rate, sol.q_active]
        )
    print(
        format_table(
            ["r", "PA ignored", "PA' resubmit", "r'", "efficiency qA"],
            rows,
            title="request-rate sweep (Markov model)",
        )
    )
    print()
    print("reading: even at light load resubmission inflates the offered rate; "
          "by r = 1 every processor is saturated and efficiency is set entirely "
          "by the network's full-load acceptance")


if __name__ == "__main__":
    main()
