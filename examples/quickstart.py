#!/usr/bin/env python3
"""Quickstart: build an EDN, inspect it, route traffic, check the math.

Walks the library's core loop in five steps:

1. parameterize an ``EDN(16, 4, 4, 2)`` (the paper's Figure 4 network);
2. print its structure and costs (Eqs. 2-3);
3. route a single message and show the multipath freedom (Theorem 2);
4. route one full-load random cycle and compare measured acceptance with
   the analytic ``PA(1)`` of Eq. 4;
5. run a proper Monte-Carlo measurement with confidence intervals.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

import numpy as np

from repro import (
    EDNParams,
    EDNetwork,
    EDNTopology,
    DestinationTag,
    Message,
    acceptance_probability,
    cost_report,
    count_paths,
)
from repro.sim import UniformTraffic, VectorizedEDN, measure_acceptance
from repro.viz import render_network


def main() -> None:
    # 1. Parameterize. ----------------------------------------------------
    params = EDNParams(a=16, b=4, c=4, l=2)
    print(render_network(params))
    print()

    # 2. Costs. ------------------------------------------------------------
    report = cost_report(params)
    print(f"crosspoints: {report['crosspoints']:,} (Eq. 2 closed form: "
          f"{report['crosspoints_closed_form']:,})")
    print(f"wires:       {report['wires']:,} (Eq. 3 closed form: "
          f"{report['wires_closed_form']:,})")
    print(f"same-size crossbar would cost {report['crossbar_equivalent_crosspoints']:,} "
          f"crosspoints ({1 / report['cost_ratio_vs_crossbar']:.1f}x more)")
    print()

    # 3. One message, many paths. -------------------------------------------
    network = EDNetwork(params)
    message = Message.to_output(source=5, output=42, params=params)
    outcome = network.route_cycle([message]).outcomes[0]
    print(f"message 5 -> 42 delivered via wires {outcome.path}")
    tag = DestinationTag.from_output(42, params)
    multiplicity = count_paths(EDNTopology(params), 5, tag)
    print(f"Theorem 2: {multiplicity} alternate paths exist (c^l = "
          f"{params.c}^{params.l})")
    print()

    # 4. A full-load cycle. ---------------------------------------------------
    rng = np.random.default_rng(0)
    demands = rng.integers(0, params.num_outputs, size=params.num_inputs)
    cycle = network.route_destinations(list(demands))
    print(f"full-load cycle: {cycle.num_delivered}/{cycle.num_offered} delivered "
          f"(acceptance {cycle.acceptance_ratio:.3f})")
    print(f"blocked per stage: {cycle.blocked_stage_histogram()}")
    print(f"Eq. 4 predicts PA(1) = {acceptance_probability(params, 1.0):.4f}")
    print()

    # 5. Monte-Carlo with confidence intervals. -----------------------------
    measurement = measure_acceptance(
        VectorizedEDN(params),
        UniformTraffic(params.num_inputs, params.num_outputs, rate=1.0),
        cycles=300,
        seed=1,
    )
    print(f"Monte-Carlo PA(1) over {measurement.cycles} cycles: "
          f"{measurement.acceptance}")
    print("(Eq. 4 runs a couple of percent optimistic — its stage-independence "
          "approximation; see EXPERIMENTS.md)")


if __name__ == "__main__":
    main()
