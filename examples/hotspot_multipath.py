#!/usr/bin/env python3
"""Hot spots (NUTS) and why multipath matters — Section 1's motivation, live.

Offers increasingly hot traffic to four equal-size 256x256 networks:
the single-path delta, two multipath EDNs (16 and 64 paths), and the
crossbar.  The crossbar's losses are pure output contention — unavoidable
at any topology; each network's *excess* loss over the crossbar is its
internal blocking.  Watch the delta's excess blow up around the hot output
("tree saturation") while the EDNs' multipath absorbs most of it.

Run: ``python examples/hotspot_multipath.py``
"""

from __future__ import annotations

from repro.baselines import CrossbarNetwork
from repro.core.config import EDNParams
from repro.sim import HotspotTraffic, VectorizedEDN, measure_acceptance
from repro.viz import Series, format_table, render_plot

SIZE = 256
HOT_FRACTIONS = (0.0, 0.02, 0.05, 0.1, 0.2, 0.3)


def main() -> None:
    networks = [
        ("delta (1 path)", VectorizedEDN(EDNParams(16, 16, 1, 2))),
        ("EDN 16 paths", VectorizedEDN(EDNParams(32, 8, 4, 2))),
        ("EDN 64 paths", VectorizedEDN(EDNParams(16, 4, 4, 3))),
        ("crossbar", CrossbarNetwork(SIZE)),
    ]
    curves: dict[str, list[tuple[float, float]]] = {}
    for name, router in networks:
        points = []
        for hot in HOT_FRACTIONS:
            traffic = HotspotTraffic(SIZE, SIZE, hot_fraction=hot)
            measured = measure_acceptance(router, traffic, cycles=80, seed=3)
            points.append((hot, measured.point))
        curves[name] = points

    rows = [[name] + [pa for _, pa in pts] for name, pts in curves.items()]
    print(
        format_table(
            ["network"] + [f"hot={h:g}" for h in HOT_FRACTIONS],
            rows,
            title=f"PA under hot-spot traffic, {SIZE}x{SIZE} networks",
        )
    )
    print()

    print(
        render_plot(
            [Series.from_pairs(name, pts) for name, pts in curves.items()],
            width=64,
            height=16,
            log_x=False,
            title="acceptance vs hot-spot fraction",
            x_label="hot fraction",
        )
    )
    print()

    crossbar = dict(curves["crossbar"])
    print("internal blocking (excess loss over the crossbar):")
    for name in ("delta (1 path)", "EDN 16 paths", "EDN 64 paths"):
        series = dict(curves[name])
        worst = max(HOT_FRACTIONS)
        print(f"  {name:16s} baseline {crossbar[0.0] - series[0.0]:.3f}   "
              f"at hot={worst:g}: {crossbar[worst] - series[worst]:.3f}")
    print()
    print("reading: output contention (the crossbar row) eventually dominates "
          "everyone, but the delta pays an extra internal-blocking tax that the "
          "multipath EDNs largely avoid — the paper's NUTS argument.")


if __name__ == "__main__":
    main()
