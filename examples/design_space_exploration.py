#!/usr/bin/env python3
"""Design-space exploration: pick an interconnect for a 1024-terminal machine.

The downstream-user scenario the paper's conclusions invite: given ~1024
terminals, sweep every EDN in the 8- and 16-I/O hyperbar families plus the
delta and crossbar corner points, and chart the cost/performance frontier
(Eqs. 2-4).  The EDN members should cluster near the crossbar's acceptance
at a small multiple of the delta's crosspoints — "crossbar-like performance
at delta-like cost".

Run: ``python examples/design_space_exploration.py``
"""

from __future__ import annotations

from repro import (
    EDNParams,
    acceptance_probability,
    crossbar_acceptance,
    crosspoint_cost,
    family_members,
    hyperbar_family,
)
from repro.core.cost import crossbar_crosspoint_cost
from repro.viz import format_table

TARGET = 1024


def candidates() -> list[tuple[str, int, float]]:
    """(name, crosspoints, PA(1)) for every ~1024-terminal design."""
    rows = []
    for io_size in (8, 16, 32, 64):
        for a, b, c in hyperbar_family(io_size):
            for params in family_members(a, b, c, max_inputs=TARGET):
                if params.num_inputs == TARGET == params.num_outputs:
                    rows.append(
                        (str(params), crosspoint_cost(params),
                         acceptance_probability(params, 1.0))
                    )
    rows.append(
        (f"crossbar {TARGET}x{TARGET}", crossbar_crosspoint_cost(TARGET),
         crossbar_acceptance(TARGET, 1.0))
    )
    return rows


def main() -> None:
    rows = sorted(candidates(), key=lambda row: row[1])
    table = [
        [name, cost, pa, pa / (cost / 1000.0)]
        for name, cost, pa in rows
    ]
    print(
        format_table(
            ["design", "crosspoints", "PA(1)", "PA per kilo-crosspoint"],
            table,
            title=f"{TARGET}-terminal interconnect candidates",
        )
    )
    print()

    # The frontier: designs not dominated in both cost and performance.
    frontier = []
    best_pa = 0.0
    for name, cost, pa in rows:
        if pa > best_pa:
            frontier.append((name, cost, pa))
            best_pa = pa
    print("cost/performance frontier (cheapest-first, strictly improving PA):")
    for name, cost, pa in frontier:
        print(f"  {name:24s} {cost:>10,} crosspoints  PA(1) = {pa:.4f}")
    print()
    print("reading: every frontier design past the deltas is a c > 1 EDN; the "
          "crossbar buys its last few acceptance points at an order of magnitude "
          "more silicon (the paper's Section 6 conclusion).")


if __name__ == "__main__":
    main()
