#!/usr/bin/env python3
"""Fixing the identity permutation with digit-retirement order (Figures 5-6).

The 1024-port ``EDN(64,16,4,2)`` — the MasPar router network — cannot route
the identity permutation in one pass: all 64 sources feeding each
first-stage hyperbar share their most significant destination digit, pile
into one capacity-4 bucket, and 960 of 1024 messages die.  Corollary 2's
remedy: retire the tag digits in the opposite order (spreading the load
across buckets) and append the inverse digit-rearrangement as an output
permutation stage.  Identity then routes conflict-free — while average-case
behaviour on random permutations is untouched.

Run: ``python examples/identity_permutation_fix.py``
"""

from __future__ import annotations

import numpy as np

from repro import EDNParams, RetirementOrder
from repro.sim import PermutationTraffic, VectorizedEDN, measure_acceptance
from repro.sim.traffic import structured_permutation
from repro.viz import format_table

PATTERNS = ("identity", "reversal", "bit_reversal", "shuffle", "transpose", "butterfly")


def main() -> None:
    params = EDNParams(64, 16, 4, 2)
    canonical = VectorizedEDN(params)
    order = RetirementOrder.reversed_order(params.l)
    modified = VectorizedEDN(params, retirement_order=order)
    fixup = order.fixup_permutation(params)
    rng = np.random.default_rng(0)

    print(f"network: {params.describe()}")
    print(f"modified retirement order: {order.order} + output fix-up stage")
    print()

    rows = []
    for name in PATTERNS:
        dests = structured_permutation(name, params.num_inputs).generate(rng)
        plain = canonical.route(dests)
        alt = modified.route(dests)
        # Verify the fix-up restores intended destinations for all delivered.
        delivered = np.flatnonzero(alt.blocked_stage == 0)
        correct = all(fixup(int(alt.output[s])) == int(dests[s]) for s in delivered)
        rows.append([name, plain.num_delivered, alt.num_delivered, correct])
    print(
        format_table(
            ["pattern", "canonical (of 1024)", "modified (of 1024)", "fix-up correct"],
            rows,
            title="structured permutations, one pass",
        )
    )
    print()

    traffic = PermutationTraffic(params.num_inputs, params.num_outputs)
    base = measure_acceptance(canonical, traffic, cycles=60, seed=1)
    alt = measure_acceptance(modified, traffic, cycles=60, seed=1)
    print(f"average case (random permutations): canonical PAp = {base.point:.4f}, "
          f"modified PAp = {alt.point:.4f}")
    print()
    print("reading: the two networks are interchangeable on random traffic but "
          "wildly different on structured patterns — choose the retirement order "
          "to match the machine's dominant communication patterns (the paper's "
          "Corollary 2 trade).  Note the modified order simply moves the pain: "
          "patterns that scramble low digits (e.g. bit reversal) now suffer "
          "instead.")


if __name__ == "__main__":
    main()
