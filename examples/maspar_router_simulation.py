#!/usr/bin/env python3
"""The MasPar MP-1 router: Section 5's SIMD scenario, end to end.

The 16K-PE MasPar MP-1's global router is logically an RA-EDN(16,4,2,16):
1024 clusters of 16 PEs share a 1024-port ``EDN(64,16,4,2)``.  This example

1. reproduces the paper's worked numbers — ``PA(1) = .544``, tail ``J = 5``,
   expected permutation time ``≈ 34.41`` network cycles;
2. drains real random permutations through the cycle-accurate simulator and
   compares (the simulator runs slower than the analytic mean: the model
   tracks average leftover load, while completion is governed by the
   slowest of 1024 cluster queues);
3. shows the delivered-per-cycle trajectory: a saturated head phase near
   ``p * PA(1)`` deliveries per cycle, then a long straggler tail.

Run: ``python examples/maspar_router_simulation.py``
"""

from __future__ import annotations

from repro.simd import RAEDNSimulator, expected_permutation_time, maspar_mp1
from repro.viz import format_table


def main() -> None:
    system = maspar_mp1()
    print(system.describe())
    print()

    # 1. The paper's analytic model. ---------------------------------------
    model = expected_permutation_time(system)
    print(
        format_table(
            ["quantity", "paper", "this run"],
            [
                ["PA(1)", 0.544, model.pa_full_load],
                ["head cycles q/PA(1)", 29.41, model.head_cycles],
                ["tail cycles J", 5, model.tail_cycles],
                ["expected total", 34.41, model.expected_cycles],
            ],
            title="Section 5 worked example",
        )
    )
    print()

    # 2. Cycle-accurate simulation. -----------------------------------------
    simulator = RAEDNSimulator(system)
    stats = simulator.measure(runs=5, seed=2024)
    interval = stats.cycles.confidence_interval()
    print(f"simulated drain time over {stats.runs} random permutations: "
          f"{interval.point:.1f} cycles, 95% CI [{interval.low:.1f}, {interval.high:.1f}]")
    print("the analytic model under-counts the straggler tail (it tracks the "
          "mean leftover rate, not the slowest cluster queue)")
    print()

    # 3. One run's trajectory. ----------------------------------------------
    run = simulator.route_permutation(seed=7)
    print(f"single run: {run.cycles} cycles to deliver {run.total_delivered} messages")
    head_target = system.num_ports * model.pa_full_load
    print(f"head-phase deliveries per cycle (target ~{head_target:.0f}):")
    for chunk_start in range(0, min(run.cycles, 40), 8):
        chunk = run.delivered_per_cycle[chunk_start : chunk_start + 8]
        bars = "  ".join(f"{n:4d}" for n in chunk)
        print(f"  cycles {chunk_start:3d}+: {bars}")


if __name__ == "__main__":
    main()
