#!/usr/bin/env python3
"""Fault tolerance from multipath, and the rearrangeable alternatives.

Two extensions on top of the paper:

1. **Graceful degradation.** Theorem 2's ``c^l`` alternate paths mean an
   EDN bucket only disconnects when *all* ``c`` of its wires die.  This
   example injects random wire failures into equal-size 16x16 networks and
   watches the single-path delta collapse while the 16-path EDN barely
   notices.

2. **The globally-controlled foil.** The classical answer to blocking is a
   rearrangeable fabric — Beneš or Clos — which routes *every* permutation
   conflict-free, but only after computing a global switch setting (the
   looping algorithm / matching decomposition).  We route the very identity
   permutation that collapses the MasPar-size EDN (Figure 5) through a
   1024-terminal Beneš in one pass, then compare crosspoint budgets.

Run: ``python examples/fault_tolerant_routing.py``
"""

from __future__ import annotations

import numpy as np

from repro import EDNParams, connectivity_under_faults, random_faults
from repro.baselines import BenesNetwork, ClosNetwork
from repro.core.cost import crossbar_crosspoint_cost, crosspoint_cost
from repro.viz import format_table

LADDER = (
    ("delta EDN(4,4,1,2), 1 path", EDNParams(4, 4, 1, 2)),
    ("EDN(4,2,2,2), 4 paths", EDNParams(4, 2, 2, 2)),
    ("EDN(8,2,4,2), 16 paths", EDNParams(8, 2, 4, 2)),
)
RATES = (0.0, 0.1, 0.2, 0.3)


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Wire-failure injection. -------------------------------------------
    rows = []
    for label, params in LADDER:
        row = [label]
        for rate in RATES:
            total = sum(
                connectivity_under_faults(params, random_faults(params, rate, rng))
                for _ in range(8)
            )
            row.append(total / 8)
        rows.append(row)
    print(
        format_table(
            ["network"] + [f"f={rate:g}" for rate in RATES],
            rows,
            title="pair connectivity under random wire failures (16x16)",
        )
    )
    print()
    print("reading: a bucket dies only when all c wires do (~f^c), so capacity "
          "buys reliability superlinearly — the delta has no spare wire anywhere.")
    print()

    # 2. Rearrangeable fabrics route what blocks the EDN. --------------------
    n = 1024
    benes = BenesNetwork(n)
    identity = list(range(n))
    settings = benes.route_permutation(identity)
    print(f"Benes({n}): identity permutation routed conflict-free "
          f"({'verified' if benes.verify(settings, identity) else 'FAILED'}) "
          f"in one pass across {benes.num_stages} stages")

    clos = ClosNetwork(n=32, r=32)           # 1024 terminals, rearrangeable
    routes = clos.route_permutation(identity)
    print(f"{clos!r}: identity routed "
          f"({'verified' if clos.verify(routes, identity) else 'FAILED'}) "
          f"through {clos.n} middle crossbars")
    print()

    edn = EDNParams(64, 16, 4, 2)
    print(
        format_table(
            ["fabric", "crosspoints", "permutation guarantee", "control"],
            [
                ["EDN(64,16,4,2)", crosspoint_cost(edn),
                 "statistical (PAp ~ 0.81/pass)", "local digit tags"],
                [f"Benes({n})", benes.crosspoints,
                 "every permutation, 1 pass", "global looping algorithm"],
                ["Clos(32,32,32)", clos.crosspoints,
                 "every permutation, 1 pass", "global matching decomposition"],
                [f"crossbar {n}", crossbar_crosspoint_cost(n),
                 "every permutation, 1 pass", "per-output arbitration"],
            ],
            title="1024-terminal fabrics",
        )
    )
    print()
    print("reading: the Benes is cheapest but needs offline global control — "
          "useless for the data-dependent communication the paper's SIMD "
          "machines face; the EDN trades a statistical guarantee for local, "
          "single-cycle control.  (This comparison extends the paper; it cites "
          "the Clos/Benes lineage as related work [5, 7, 31].)")


if __name__ == "__main__":
    main()
