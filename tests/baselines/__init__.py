"""Test package."""
