"""Tests for the Clos network and matching-decomposition routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.clos import ClosNetwork
from repro.core.exceptions import ConfigurationError


class TestStructure:
    def test_terminals(self):
        assert ClosNetwork(n=4, r=8).num_terminals == 32

    def test_m_defaults_to_n(self):
        assert ClosNetwork(n=4, r=8).m == 4

    def test_rejects_m_below_n(self):
        with pytest.raises(ConfigurationError):
            ClosNetwork(n=4, r=8, m=3)

    def test_strict_nonblocking_condition(self):
        assert ClosNetwork(n=4, r=8, m=7).is_strictly_nonblocking
        assert not ClosNetwork(n=4, r=8, m=6).is_strictly_nonblocking

    def test_crosspoints(self):
        net = ClosNetwork(n=2, r=4, m=3)
        assert net.crosspoints == 2 * 4 * 2 * 3 + 3 * 16

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ClosNetwork(n=0, r=4)


class TestRearrangeableRouting:
    @pytest.mark.parametrize("shape", [(2, 2), (2, 4), (3, 4), (4, 8), (8, 8)])
    def test_random_permutations(self, shape, rng):
        n, r = shape
        net = ClosNetwork(n=n, r=r)
        for _ in range(8):
            perm = list(rng.permutation(net.num_terminals))
            routes = net.route_permutation(perm)
            assert net.verify(routes, perm)

    def test_identity(self):
        net = ClosNetwork(n=4, r=4)
        perm = list(range(16))
        assert net.verify(net.route_permutation(perm), perm)

    def test_reversal(self):
        net = ClosNetwork(n=4, r=4)
        perm = list(range(15, -1, -1))
        assert net.verify(net.route_permutation(perm), perm)

    def test_extra_middle_switches_unused_but_legal(self, rng):
        net = ClosNetwork(n=3, r=4, m=5)
        perm = list(rng.permutation(12))
        routes = net.route_permutation(perm)
        assert net.verify(routes, perm)
        # Only n matchings are needed; middle switches beyond n stay idle.
        used = {route.middle_switch for route in routes}
        assert used <= set(range(3))

    def test_middle_switch_load_balanced(self, rng):
        # Each middle switch carries exactly r circuits (one per in-switch).
        net = ClosNetwork(n=4, r=8)
        routes = net.route_permutation(list(rng.permutation(32)))
        loads: dict[int, int] = {}
        for route in routes:
            loads[route.middle_switch] = loads.get(route.middle_switch, 0) + 1
        assert all(load == 8 for load in loads.values())

    def test_rejects_non_permutation(self):
        with pytest.raises(ConfigurationError):
            ClosNetwork(n=2, r=2).route_permutation([0, 0, 1, 2])

    def test_verify_catches_link_conflict(self, rng):
        net = ClosNetwork(n=2, r=2)
        perm = list(rng.permutation(4))
        routes = net.route_permutation(perm)
        # Force two circuits from one input switch onto one middle switch.
        clash = [
            r if r.source != 1 else type(r)(
                source=r.source,
                destination=r.destination,
                input_switch=r.input_switch,
                middle_switch=routes[0].middle_switch,
                output_switch=r.output_switch,
            )
            for r in routes
        ]
        if clash[0].input_switch == clash[1].input_switch:
            assert not net.verify(clash, perm)
