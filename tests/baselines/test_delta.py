"""Unit tests for the Patel delta network baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.delta import DeltaNetwork
from repro.core.analysis import acceptance_probability, delta_acceptance
from repro.core.config import EDNParams
from repro.core.cost import crosspoint_cost, wire_cost


class TestStructure:
    def test_sizes(self):
        net = DeltaNetwork(4, 4, 3)
        assert net.n_inputs == 64 and net.n_outputs == 64
        assert net.a == 4 and net.b == 4 and net.l == 3

    def test_is_c1_edn(self):
        assert DeltaNetwork(4, 4, 2).params == EDNParams(4, 4, 1, 2)

    def test_costs_match_edn_specialization(self):
        net = DeltaNetwork(8, 8, 2)
        assert net.crosspoints() == crosspoint_cost(EDNParams(8, 8, 1, 2))
        assert net.wires() == wire_cost(EDNParams(8, 8, 1, 2))


class TestRouting:
    def test_lone_message_lands(self, rng):
        net = DeltaNetwork(2, 2, 4)
        for _ in range(10):
            src = int(rng.integers(16))
            dst = int(rng.integers(16))
            dests = np.full(16, -1, dtype=np.int64)
            dests[src] = dst
            result = net.route(dests)
            assert result.output[src] == dst

    def test_unique_path_blocking(self):
        # Two messages sharing any internal link must conflict: send both to
        # the same output from different sources; exactly one delivered.
        net = DeltaNetwork(2, 2, 3)
        dests = np.full(8, -1, dtype=np.int64)
        dests[0] = 5
        dests[1] = 5
        result = net.route(dests)
        assert result.num_delivered == 1

    def test_measured_acceptance_tracks_patel(self, rng):
        net = DeltaNetwork(4, 4, 2)
        delivered = offered = 0
        for _ in range(200):
            dests = rng.integers(0, 16, size=16)
            result = net.route(dests)
            delivered += result.num_delivered
            offered += result.num_offered
        analytic = net.analytic_acceptance(1.0)
        assert delivered / offered == pytest.approx(analytic, abs=0.06)


class TestAnalytic:
    def test_matches_edn_formula(self):
        for r in (0.3, 0.7, 1.0):
            assert DeltaNetwork(4, 4, 3).analytic_acceptance(r) == pytest.approx(
                acceptance_probability(EDNParams(4, 4, 1, 3), r)
            )

    def test_helper_consistency(self):
        assert DeltaNetwork(8, 8, 2).analytic_acceptance(1.0) == pytest.approx(
            delta_acceptance(8, 8, 2, 1.0)
        )
