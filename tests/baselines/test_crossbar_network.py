"""Unit tests for the full crossbar baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.crossbar_network import CrossbarNetwork
from repro.core.analysis import crossbar_acceptance
from repro.core.exceptions import ConfigurationError, LabelError


class TestRouting:
    def test_permutation_routes_in_one_cycle(self, rng):
        net = CrossbarNetwork(64)
        perm = rng.permutation(64)
        result = net.route(perm)
        assert result.num_delivered == 64
        assert np.array_equal(result.output, perm)

    def test_output_contention_single_winner(self):
        net = CrossbarNetwork(8)
        result = net.route(np.array([3, 3, 1, -1, 0, 5, 5, 5]))
        assert result.num_delivered == 4
        assert result.output[0] == 3 and result.blocked_stage[1] == 1

    def test_label_priority(self):
        net = CrossbarNetwork(4)
        result = net.route(np.array([2, 2, 2, 2]))
        assert result.blocked_stage[0] == 0
        assert (result.blocked_stage[1:] == 1).all()

    def test_random_priority_varies(self, rng):
        net = CrossbarNetwork(4, priority="random")
        winners = set()
        for _ in range(50):
            result = net.route(np.array([2, 2, 2, 2]), rng)
            winners.add(int(np.flatnonzero(result.blocked_stage == 0)[0]))
        assert len(winners) > 1

    def test_random_priority_needs_rng(self):
        with pytest.raises(ConfigurationError):
            CrossbarNetwork(4, priority="random").route(np.zeros(4, dtype=np.int64))

    def test_idle_inputs(self):
        net = CrossbarNetwork(4)
        result = net.route(np.array([-1, -1, -1, -1]))
        assert result.num_offered == 0
        assert result.acceptance_ratio == 1.0

    def test_validates_shape_and_range(self):
        net = CrossbarNetwork(4)
        with pytest.raises(LabelError):
            net.route(np.zeros(3, dtype=np.int64))
        with pytest.raises(LabelError):
            net.route(np.array([0, 1, 2, 4]))

    def test_histogram(self):
        net = CrossbarNetwork(4)
        result = net.route(np.array([0, 0, 0, 1]))
        assert result.blocked_stage_histogram() == {1: 2}


class TestAnalytic:
    def test_measured_matches_closed_form(self, rng):
        net = CrossbarNetwork(32)
        delivered = offered = 0
        for _ in range(300):
            dests = rng.integers(0, 32, size=32)
            result = net.route(dests)
            delivered += result.num_delivered
            offered += result.num_offered
        assert delivered / offered == pytest.approx(crossbar_acceptance(32, 1.0), abs=0.02)

    def test_analytic_helper(self):
        assert CrossbarNetwork(16).analytic_acceptance(1.0) == pytest.approx(
            crossbar_acceptance(16, 1.0)
        )

    def test_analytic_requires_square(self):
        with pytest.raises(ConfigurationError):
            CrossbarNetwork(8, 16).analytic_acceptance(1.0)
