"""Unit tests for the d-dilated delta baseline."""

from __future__ import annotations

import pytest

from repro.baselines.dilated import DilatedDelta
from repro.core.analysis import delta_acceptance
from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError


class TestStructure:
    def test_terminal_counts(self):
        net = DilatedDelta(a=4, b=4, l=3, d=2)
        assert net.n_inputs == 64
        assert net.n_outputs == 64

    def test_switch_counts_match_underlying_delta(self):
        net = DilatedDelta(a=4, b=4, l=2, d=4)
        plain = EDNParams(4, 4, 1, 2)
        for i in (1, 2):
            assert net.switches_in_stage(i) == plain.hyperbars_in_stage(i)

    def test_interstage_bundles_are_d_wide(self):
        net = DilatedDelta(a=4, b=4, l=3, d=2)
        plain = EDNParams(4, 4, 1, 3)
        for i in (1, 2, 3):
            assert net.wires_after_stage(i) == 2 * plain.wires_after_stage(i)

    def test_inputs_are_single_wires(self):
        net = DilatedDelta(a=4, b=4, l=3, d=2)
        assert net.wires_after_stage(0) == net.n_inputs

    def test_dilation_1_wire_cost_matches_delta(self):
        # A 1-dilated delta is a plain delta.  The EDN(c=1) form appends a
        # layer of trivial 1x1 crossbars, adding one more b^l-wire boundary
        # to Eq. 3's count; net of that layer the two censuses agree.
        net = DilatedDelta(a=8, b=8, l=2, d=1)
        from repro.core.cost import wire_cost

        edn = EDNParams(8, 8, 1, 2)
        assert net.wire_cost() == wire_cost(edn) - edn.num_outputs

    def test_paper_wire_claim_vs_square_edn(self):
        # Section 1: d-dilated delta uses d x the interstage wires of the
        # matched EDN, normalized per input port.
        for d in (2, 4):
            for l in (2, 3):
                edn = EDNParams(4 * d, 4, d, l)         # square EDN, c = d
                dilated = DilatedDelta(a=4, b=4, l=l, d=d)
                edn_per_port = edn.wires_after_stage(1) / edn.num_inputs
                dilated_per_port = dilated.wires_after_stage(1) / dilated.n_inputs
                assert dilated_per_port / edn_per_port == pytest.approx(d)

    def test_crosspoints_grow_quadratically_with_d(self):
        base = DilatedDelta(a=4, b=4, l=3, d=1).crosspoint_cost()
        doubled = DilatedDelta(a=4, b=4, l=3, d=2).crosspoint_cost()
        assert doubled > 2 * base  # internal stages scale ~d^2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DilatedDelta(a=3, b=4, l=2, d=2)
        with pytest.raises(ConfigurationError):
            DilatedDelta(a=4, b=4, l=0, d=2)
        with pytest.raises(ConfigurationError):
            DilatedDelta(a=4, b=4, l=2, d=3)


class TestPerformance:
    def test_dilation_1_matches_patel(self):
        net = DilatedDelta(a=4, b=4, l=3, d=1)
        for r in (0.3, 1.0):
            assert net.analytic_acceptance(r) == pytest.approx(delta_acceptance(4, 4, 3, r))

    def test_dilation_improves_acceptance(self):
        plain = DilatedDelta(a=4, b=4, l=4, d=1)
        dilated = DilatedDelta(a=4, b=4, l=4, d=4)
        assert dilated.analytic_acceptance(1.0) > plain.analytic_acceptance(1.0)

    def test_zero_rate(self):
        assert DilatedDelta(a=4, b=4, l=2, d=2).analytic_acceptance(0.0) == 1.0

    def test_bounds(self):
        pa = DilatedDelta(a=8, b=8, l=3, d=2).analytic_acceptance(1.0)
        assert 0.0 < pa <= 1.0
