"""Unit tests for the omega network baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.omega import OmegaNetwork
from repro.core.analysis import delta_acceptance
from repro.core.exceptions import ConfigurationError


class TestStructure:
    def test_stage_count(self):
        assert OmegaNetwork(16).stages == 4

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            OmegaNetwork(12)
        with pytest.raises(ConfigurationError):
            OmegaNetwork(1)


class TestRouting:
    def test_every_pair_connects(self):
        # Corollary 1: the input shuffle cannot break full access.
        net = OmegaNetwork(16)
        for src in range(16):
            for dst in range(16):
                dests = np.full(16, -1, dtype=np.int64)
                dests[src] = dst
                result = net.route(dests)
                assert result.output[src] == dst
                assert result.blocked_stage[src] == 0

    def test_shuffle_preserves_message_count(self, rng):
        net = OmegaNetwork(32)
        dests = rng.integers(0, 32, size=32)
        result = net.route(dests)
        assert result.num_offered == 32
        delivered_outputs = result.output[result.blocked_stage == 0]
        assert len(np.unique(delivered_outputs)) == result.num_delivered

    def test_idle_inputs_stay_idle(self):
        net = OmegaNetwork(8)
        dests = np.full(8, -1, dtype=np.int64)
        result = net.route(dests)
        assert (result.blocked_stage == -1).all()

    def test_validates_shape(self):
        with pytest.raises(ConfigurationError):
            OmegaNetwork(8).route(np.zeros(4, dtype=np.int64))

    def test_measured_acceptance_tracks_delta_formula(self, rng):
        net = OmegaNetwork(64)
        delivered = offered = 0
        for _ in range(200):
            result = net.route(rng.integers(0, 64, size=64))
            delivered += result.num_delivered
            offered += result.num_offered
        assert delivered / offered == pytest.approx(net.analytic_acceptance(1.0), abs=0.05)


class TestAnalytic:
    def test_matches_delta_2_2(self):
        assert OmegaNetwork(64).analytic_acceptance(1.0) == pytest.approx(
            delta_acceptance(2, 2, 6, 1.0)
        )
