"""Tests for the Beneš network and the looping algorithm."""

from __future__ import annotations

from itertools import permutations as iter_permutations

import numpy as np
import pytest

from repro.baselines.benes import BenesNetwork
from repro.core.exceptions import ConfigurationError


class TestStructure:
    def test_stage_count(self):
        assert BenesNetwork(2).num_stages == 1
        assert BenesNetwork(8).num_stages == 5
        assert BenesNetwork(64).num_stages == 11

    def test_switch_count(self):
        assert BenesNetwork(8).num_switches == 4 * 5

    def test_crosspoints(self):
        assert BenesNetwork(8).crosspoints == 4 * 4 * 5

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            BenesNetwork(6)
        with pytest.raises(ConfigurationError):
            BenesNetwork(1)


class TestRearrangeability:
    """Slepian-Duguid in action: every permutation in one conflict-free pass."""

    def test_base_case(self):
        net = BenesNetwork(2)
        assert net.verify(net.route_permutation([0, 1]), [0, 1])
        assert net.verify(net.route_permutation([1, 0]), [1, 0])

    def test_exhaustive_n4(self):
        net = BenesNetwork(4)
        for perm in iter_permutations(range(4)):
            settings = net.route_permutation(list(perm))
            assert net.verify(settings, list(perm)), perm

    def test_exhaustive_n8_sample_plus_structured(self):
        net = BenesNetwork(8)
        patterns = [
            list(range(8)),                    # identity
            list(range(7, -1, -1)),            # reversal
            [int(f"{i:03b}"[::-1], 2) for i in range(8)],   # bit reversal
            [3, 7, 0, 1, 5, 2, 6, 4],
        ]
        for perm in patterns:
            assert net.verify(net.route_permutation(perm), perm), perm

    @pytest.mark.parametrize("n", [8, 16, 32, 128])
    def test_random_permutations(self, n, rng):
        net = BenesNetwork(n)
        for _ in range(10):
            perm = list(rng.permutation(n))
            assert net.verify(net.route_permutation(perm), perm)

    def test_settings_shape(self):
        net = BenesNetwork(16)
        settings = net.route_permutation(list(range(16)))
        assert len(settings) == net.num_stages
        assert all(len(stage) == 8 for stage in settings)

    def test_rejects_non_permutation(self):
        with pytest.raises(ConfigurationError):
            BenesNetwork(4).route_permutation([0, 0, 1, 2])

    def test_verify_rejects_wrong_settings(self):
        net = BenesNetwork(8)
        perm = [3, 7, 0, 1, 5, 2, 6, 4]
        settings = net.route_permutation(perm)
        settings[0][0] = not settings[0][0]
        assert not net.verify(settings, perm)


class TestVersusEDN:
    def test_benes_routes_what_blocks_the_edn(self, rng):
        # The contrast the paper's Section 5 lives on: the identity that
        # collapses EDN(64,16,4,2) to 64/1024 routes perfectly on a Benes
        # of the same size (at the cost of global offline control).
        net = BenesNetwork(1024)
        perm = list(range(1024))
        assert net.verify(net.route_permutation(perm), perm)

    def test_benes_cost_comparable_to_edn(self):
        # A 1024-terminal Benes costs ~4*512*19 crosspoints: the same order
        # as the EDN's 135K, far below the crossbar's 1M.
        benes = BenesNetwork(1024).crosspoints
        assert 10_000 < benes < 200_000
