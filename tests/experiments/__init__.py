"""Test package."""
