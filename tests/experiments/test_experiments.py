"""Tests for the experiment harness: every paper figure regenerates with the right shape."""

from __future__ import annotations

import pytest

from repro.experiments import costs, fig2_hyperbar, fig4_topology, fig6_identity
from repro.experiments import fig7_families, fig11_resubmission, hotspot, sec5_raedn
from repro.experiments.registry import EXPERIMENTS, run_experiment


class TestFig2:
    def test_reproduces_paper_discards(self):
        result = fig2_hyperbar.run()
        rows = {row[0]: row for row in result.tables["comparison"][1]}
        paper, measured = rows["discarded inputs"][1], rows["discarded inputs"][2]
        assert paper == measured == str(fig2_hyperbar.PAPER_DISCARDS)

    def test_notes_say_match(self):
        result = fig2_hyperbar.run()
        assert result.notes[-1] == "match"


class TestFig4:
    def test_invariants_consistent(self):
        result = fig4_topology.run()
        rows = dict((row[0], row[1]) for row in result.tables["invariants"][1])
        assert rows["crosspoints (sum)"] == rows["crosspoints (Eq. 2)"] == rows["crosspoints (enumerated)"]
        assert rows["wires (sum)"] == rows["wires (Eq. 3)"] == rows["wires (enumerated)"]
        assert rows["inputs"] == 64 and rows["outputs"] == 64


class TestFig5_6:
    def test_identity_blocks_then_routes(self):
        result = fig6_identity.run(cycles=10, seed=0)
        headers, rows = result.tables["structured permutations (messages delivered of 1024)"]
        by_name = {row[0]: row for row in rows}
        identity = by_name["identity"]
        assert identity[1] == 64        # canonical order blocks to 64
        assert identity[2] == 1024      # reversed order routes fully
        assert identity[3] is True      # fixup restores destinations

    def test_average_case_similar_across_orders(self):
        result = fig6_identity.run(cycles=30, seed=1)
        rows = result.tables["random permutations (average case)"][1]
        canonical, modified = rows[0][1], rows[1][1]
        assert canonical == pytest.approx(modified, abs=0.03)


class TestFig7Fig8:
    def test_fig7_orderings_hold_beyond_smallest_size(self):
        result = fig7_families.run(8, max_inputs=300_000)
        families = ["EDN(8,2,4,*)", "EDN(8,4,2,*)", "EDN(8,8,1,*)"]
        curves = {name: dict(result.series[name]) for name in families}
        crossbar = dict(result.series["Full Crossbar"])
        shared = set.intersection(*(set(c) for c in curves.values()))
        for x in shared:
            if x <= 8:
                continue  # at one-switch scale the c=1 member IS a crossbar
            assert crossbar[x] >= curves["EDN(8,2,4,*)"][x]
            assert curves["EDN(8,2,4,*)"][x] > curves["EDN(8,4,2,*)"][x]
            assert curves["EDN(8,4,2,*)"][x] > curves["EDN(8,8,1,*)"][x]

    def test_fig8_beats_fig7_at_matched_size(self):
        # The matched-capacity (c = 2) members share sizes at 128, 8192, ...
        # (4^(3k) * 2 == 8^(2k) * 2); bigger switches should win there.
        fig7 = fig7_families.run(8, max_inputs=600_000)
        fig8 = fig7_families.run(16, max_inputs=600_000)
        seven = dict(fig7.series["EDN(8,4,2,*)"])
        sixteen = dict(fig8.series["EDN(16,8,2,*)"])
        shared = sorted(set(seven) & set(sixteen))
        assert shared, "families share no sizes - pairing bug"
        for x in shared:
            if x <= 16:
                continue
            assert sixteen[x] > seven[x]

    def test_curves_fall_with_size(self):
        result = fig7_families.run(8, max_inputs=100_000)
        for name, points in result.series.items():
            ys = [y for _, y in sorted(points)]
            if name == "Full Crossbar":
                continue
            assert all(y2 <= y1 + 1e-9 for y1, y2 in zip(ys[1:], ys[2:]))

    def test_montecarlo_validation_gap_small(self):
        result = fig7_families.run_montecarlo_validation(
            8, max_inputs=1024, cycles=40, seed=0
        )
        rows = result.tables["Eq.4 vs simulation"][1]
        for row in rows:
            gap = row[4]
            assert abs(gap) < 0.08


class TestFig11:
    def test_resubmission_below_ignored_everywhere(self):
        result = fig11_resubmission.run(max_inputs=80_000)
        for a, b, c in fig11_resubmission.FAMILIES:
            ignored = dict(result.series[f"EDN({a},{b},{c},*) ignored"])
            resubmitted = dict(result.series[f"EDN({a},{b},{c},*) resubmitted"])
            for x in ignored:
                assert resubmitted[x] < ignored[x]

    def test_gap_grows_with_size(self):
        result = fig11_resubmission.run(max_inputs=300_000)
        ignored = sorted(result.series["EDN(16,4,4,*) ignored"])
        resubmitted = dict(result.series["EDN(16,4,4,*) resubmitted"])
        gaps = [pa - resubmitted[x] for x, pa in ignored]
        assert gaps[-1] > gaps[0]

    def test_simulation_validation_tracks_model(self):
        result = fig11_resubmission.run_simulation_validation(cycles=600, warmup=150)
        for row in result.tables["model vs simulation"][1]:
            _net, pa_model, pa_sim, qa_model, qa_sim, rp_model, rp_sim = row
            assert pa_sim == pytest.approx(pa_model, abs=0.06)
            assert qa_sim == pytest.approx(qa_model, abs=0.06)
            assert rp_sim == pytest.approx(rp_model, abs=0.06)


class TestSec5:
    def test_paper_numbers(self):
        result = sec5_raedn.run()
        rows = {row[0]: row for row in result.tables["drain model"][1]}
        assert rows["PA(1)"][2] == pytest.approx(0.544, abs=5e-4)
        assert rows["tail cycles J"][2] == 5
        assert rows["expected total T"][2] == pytest.approx(34.41, abs=0.1)

    def test_simulation_same_ballpark(self):
        from repro.simd.ra_edn import RAEDNSystem

        system = RAEDNSystem(4, 2, 2, 8)
        result = sec5_raedn.run_simulation(system, runs=5, seed=0)
        rows = {row[0]: row for row in result.tables["model vs simulation"][1]}
        model, simulated = rows["cycles to drain"][1], rows["cycles to drain"][2]
        assert 0.8 * model < simulated < 2.0 * model


class TestCosts:
    def test_all_sweep_rows_verify(self):
        result = costs.run()
        for row in result.tables["cost verification"][1]:
            assert row[3] is True and row[5] is True

    def test_dilation_ratio_is_d(self):
        result = costs.run_dilation_comparison()
        for row in result.tables["interstage wires per input port"][1]:
            assert row[-1] == pytest.approx(4.0)   # d = c = 4

    def test_cost_performance_positioning(self):
        from repro.api import RunConfig

        result = costs.run_cost_performance(config=RunConfig(cycles=20, seed=0))
        rows = result.tables["1024-terminal networks, PA(1)"][1]
        crossbar, edn, delta, dilated = rows
        assert edn[1] < crossbar[1] / 5         # EDN far cheaper than crossbar
        assert edn[2] > delta[2]                # EDN outperforms delta
        assert crossbar[2] > edn[2]             # crossbar still the bound
        assert dilated[2] > delta[2]            # multipath beats unique-path
        for row in rows:                        # measured PA tracks analytic
            assert abs(row[3] - row[2]) < 0.08


class TestHotspot:
    def test_multipath_degrades_less(self):
        result = hotspot.run(hot_fractions=(0.0, 0.1), cycles=40, seed=0)
        rows = {row[0]: row[1:] for row in result.tables["PA vs hot fraction"][1]}
        crossbar = rows[f"crossbar {hotspot.SIZE}"]
        delta = rows["delta EDN(16,16,1,2), 1 path"]
        multi = rows["EDN(16,4,4,3), 64 paths"]
        # Excess loss over the crossbar (pure internal blocking).
        delta_excess = (crossbar[1] - delta[1])
        multi_excess = (crossbar[1] - multi[1])
        assert delta_excess > multi_excess


class TestFaultTolerance:
    def test_capacity_ladder_ordering(self):
        from repro.experiments import fault_tolerance

        result = fault_tolerance.run(failure_rates=(0.0, 0.1, 0.3), draws=4, seed=0)
        rows = {row[0]: row[1:] for row in result.tables["mean pair connectivity"][1]}
        delta = rows["delta EDN(4,4,1,2), 1 path"]
        sixteen = rows["EDN(8,2,4,2), 16 paths"]
        assert delta[0] == sixteen[0] == 1.0
        assert sixteen[-1] > delta[-1]


class TestDegradation:
    def test_grid_covers_ladder_and_policies(self):
        from repro.experiments import degradation

        result = degradation.run(failure_rates=(0.0, 0.1), cycles=64, seed=0)
        headers, rows = result.tables["acceptance (delivered / offered)"]
        assert headers == ["network / sources", "f=0", "f=0.1"]
        assert len(rows) == 3 * len(degradation.POLICIES)  # ladder x policies
        for row in rows:
            assert all(0.0 <= value <= 1.0 for value in row[1:])

    def test_retry_cost_rows_have_attempt_stats(self):
        from repro.experiments import degradation

        result = degradation.run(failure_rates=(0.0, 0.1), cycles=64, seed=0)
        headers, rows = result.tables["retry cost at f=0.1"]
        assert "attempts" in headers and "abandoned" in headers
        assert rows and all(row[1] >= 1.0 for row in rows)

    def test_trajectory_table_tracks_time(self):
        from repro.experiments import degradation

        result = degradation.run(failure_rates=(0.0,), cycles=32, seed=1)
        name = "trajectory: EDN(8,2,4,2), permanent failures with repair"
        _headers, rows = result.tables[name]
        cycles = [row[0] for row in rows]
        assert cycles == sorted(cycles) and len(cycles) == 8

    def test_config_overrides_cycles_and_seed(self):
        from repro.api.spec import RunConfig
        from repro.experiments import degradation

        a = degradation.run(failure_rates=(0.1,), cycles=999, seed=999,
                            config=RunConfig(cycles=48, seed=3))
        b = degradation.run(failure_rates=(0.1,), cycles=48, seed=3)
        assert a.tables == b.tables


class TestScaling:
    def test_family_table(self):
        from repro.experiments import scaling

        result = scaling.run()
        rows = result.tables["family scaling"][1]
        assert [row[1] for row in rows] == [1_024, 16_384, 262_144]
        pa = [row[3] for row in rows]
        assert pa[0] > pa[1] > pa[2]
        assert pa[1] == pytest.approx(0.544, abs=5e-4)


class TestRegistryConfigThreading:
    def test_dispatch_is_explicit_not_introspective(self):
        import inspect as inspect_module
        from pathlib import Path

        from repro.experiments import registry

        source = Path(registry.__file__).read_text()
        assert "import inspect" not in source
        del inspect_module

    def test_every_runner_accepts_config(self):
        from repro.api import RunConfig

        for experiment_id in ("fig2", "fig4", "sec5_example", "eq2_eq3",
                              "eq2_eq3_dilated", "cost_performance", "scaling",
                              "fig7", "fig8", "fig11"):
            result = run_experiment(experiment_id, config=RunConfig(jobs=2, batch=8))
            assert result.experiment_id

    def test_config_overrides_mc_budgets(self):
        from repro.api import RunConfig

        short = run_experiment("fig7_mc", config=RunConfig(cycles=4, batch=2))
        assert "Monte-Carlo" in short.title
        rows = short.tables["Eq.4 vs simulation"][1]
        assert rows  # one row per family member

    def test_config_and_keyword_paths_agree(self):
        from repro.api import RunConfig
        from repro.experiments import fig7_families

        via_kwargs = fig7_families.run_montecarlo_validation(
            8, max_inputs=64, cycles=5, seed=3
        )
        via_config = fig7_families.run_montecarlo_validation(
            8, max_inputs=64, config=RunConfig(cycles=5, seed=3)
        )
        assert (
            via_kwargs.tables["Eq.4 vs simulation"][1]
            == via_config.tables["Eq.4 vs simulation"][1]
        )


class TestRegistry:
    def test_all_ids_registered(self):
        expected = {
            "fig2", "fig4", "fig5_6", "fig7", "fig8", "fig7_mc", "fig8_mc",
            "fig11", "fig11_sim", "sec5_example", "sec5_sim", "eq2_eq3",
            "eq2_eq3_dilated", "cost_performance", "nuts",
            "ablation_priority", "ablation_wire_policy", "ablation_schedule",
            "fault_tolerance", "degradation", "scaling", "buffered",
            "admissibility", "saturation", "workload_matrix",
        }
        assert expected == set(EXPERIMENTS)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestWorkloadMatrix:
    def test_grid_shape_and_bounds(self):
        from repro.experiments import workload_matrix

        result = workload_matrix.run(cycles=10, seed=0)
        headers, rows = result.tables["PA by traffic x topology"]
        assert headers == ["traffic"] + list(workload_matrix.TOPOLOGIES)
        assert [row[0] for row in rows] == list(workload_matrix.TRAFFIC)
        for row in rows:
            assert all(0.0 <= value <= 1.0 for value in row[1:])

    def test_every_engine_natively_batched(self):
        from repro.experiments import workload_matrix

        result = workload_matrix.run(cycles=5, seed=0)
        _, rows = result.tables["engines"]
        assert all(row[2] is True for row in rows)

    def test_config_traffic_narrows_sweep(self):
        from repro.api import RunConfig
        from repro.experiments import workload_matrix

        result = workload_matrix.run(
            cycles=5, config=RunConfig(traffic="hotspot:0.3")
        )
        _, rows = result.tables["PA by traffic x topology"]
        assert [row[0] for row in rows] == ["hotspot:0.3"]

    def test_reproducible_across_job_counts(self):
        from repro.experiments import workload_matrix

        grid = ("edn:16,4,4,2", "omega:64")
        one = workload_matrix.run(
            topologies=grid, traffic=("uniform", "tornado"), cycles=10, jobs=1
        )
        two = workload_matrix.run(
            topologies=grid, traffic=("uniform", "tornado"), cycles=10, jobs=2
        )
        assert one.tables == two.tables

    def test_crossbar_bounds_the_ladder(self):
        from repro.experiments import workload_matrix

        result = workload_matrix.run(cycles=20, seed=0)
        _, rows = result.tables["PA by traffic x topology"]
        crossbar = {row[0]: row[-1] for row in rows}
        delta = {row[0]: row[2] for row in rows}
        # Output contention only vs internal blocking on unique paths.
        for traffic in ("uniform", "hotspot:0.2", "bitrev", "shuffle"):
            assert crossbar[traffic] >= delta[traffic]

    def test_render_smoke(self):
        text = run_experiment("fig2").render()
        assert "Figure 2" in text

    def test_series_csv_export(self):
        result = run_experiment("sec5_example")
        csv = result.series_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "series,x,y"
        assert len(lines) == 1 + len(result.series["tail leftover rate r_j"])
        assert all(line.count(",") >= 2 for line in lines[1:])

    def test_table_csv_export(self):
        result = run_experiment("fig2")
        csv = result.table_csv("comparison")
        lines = csv.strip().splitlines()
        assert lines[0] == "quantity,paper,measured"
        # The discard list contains commas and must be quoted.
        assert '"[5, 7]"' in csv
