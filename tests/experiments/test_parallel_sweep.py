"""Tests for the deterministic multiprocessing sweep executor."""

from __future__ import annotations

import os
import pathlib
import signal
import time

import numpy as np
import pytest

from repro.experiments.parallel import ParallelSweep
from repro.experiments.registry import run_experiment
from repro.sim.rng import make_rng

#: Env var pointing workers at the per-test scratch directory (env vars
#: survive the fork into pool workers; test-local state does not).
_SCRATCH = "REPRO_TEST_SWEEP_SCRATCH"


def _square(x):
    return x * x


def _draw(item, seed_key):
    return (item, float(make_rng(seed_key).random()))


def _die_once(item, seed_key):
    # SIGKILL our own worker process the first time shard 3 runs: the
    # marker file persists across the retry, so the rerun succeeds.
    marker = pathlib.Path(os.environ[_SCRATCH]) / f"died-{item}"
    if item == 3 and not marker.exists():
        marker.write_text("killed")
        os.kill(os.getpid(), signal.SIGKILL)
    return _draw(item, seed_key)


def _die_always(item, seed_key):
    if item == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return _draw(item, seed_key)


def _stall_once(item, seed_key):
    # Overrun the shard timeout the first time shard 2 runs; spin on a
    # stop file (written by the test) so the abandoned worker exits
    # promptly once the sweep has finished.
    base = pathlib.Path(os.environ[_SCRATCH])
    marker = base / f"stalled-{item}"
    if item == 2 and not marker.exists():
        marker.write_text("stalled")
        for _ in range(200):
            if (base / "stop").exists():
                break
            time.sleep(0.05)
    return _draw(item, seed_key)


def _raise_on(item, seed_key):
    if item == 2:
        raise ValueError(f"bad shard {item}")
    return _draw(item, seed_key)


class TestParallelSweep:
    def test_map_preserves_order(self):
        assert ParallelSweep(jobs=1).map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_map_across_processes(self):
        assert ParallelSweep(jobs=2).map(_square, list(range(8))) == [
            x * x for x in range(8)
        ]

    def test_seeded_map_is_job_count_invariant(self):
        items = list(range(6))
        inline = ParallelSweep(jobs=1).map_seeded(_draw, items, seed=42)
        fanned = ParallelSweep(jobs=3).map_seeded(_draw, items, seed=42)
        assert inline == fanned

    def test_seeded_items_get_independent_streams(self):
        draws = ParallelSweep(jobs=1).map_seeded(_draw, list(range(5)), seed=0)
        values = {value for _item, value in draws}
        assert len(values) == 5

    def test_generator_master_seed(self):
        a = ParallelSweep(jobs=1).map_seeded(
            _draw, [0, 1], seed=np.random.default_rng(9)
        )
        b = ParallelSweep(jobs=1).map_seeded(
            _draw, [0, 1], seed=np.random.default_rng(9)
        )
        assert a == b

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ParallelSweep(jobs=0)

    def test_resolved_jobs_clamps_to_items(self):
        assert ParallelSweep(jobs=8).resolved_jobs(3) == 3
        assert ParallelSweep(jobs=2).resolved_jobs(10) == 2

    def test_rejects_bad_shard_timeout(self):
        with pytest.raises(ValueError):
            ParallelSweep(jobs=2, shard_timeout=0)


class TestWorkerFaults:
    """The sweep must survive dead workers without changing results."""

    def test_survives_sigkilled_worker(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_SCRATCH, str(tmp_path))
        items = list(range(6))
        sweep = ParallelSweep(jobs=2)
        results = sweep.map_seeded(_die_once, items, seed=7)
        # The rerun is bit-identical to an undisturbed inline sweep: shards
        # are pure functions of (item, positional seed key).
        assert results == ParallelSweep(jobs=1).map_seeded(_draw, items, seed=7)
        assert 3 in sweep.last_retried  # the killed shard was retried
        assert (tmp_path / "died-3").exists()

    def test_retried_indices_reset_on_clean_run(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_SCRATCH, str(tmp_path))
        items = list(range(6))
        sweep = ParallelSweep(jobs=2)
        sweep.map_seeded(_die_once, items, seed=7)
        assert sweep.last_retried
        sweep.map_seeded(_draw, items, seed=7)
        assert sweep.last_retried == ()

    def test_twice_dead_shard_raises(self):
        sweep = ParallelSweep(jobs=2)
        with pytest.raises(RuntimeError, match=r"failed twice"):
            sweep.map_seeded(_die_always, [0, 1, 4], seed=0)

    def test_shard_timeout_triggers_retry(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_SCRATCH, str(tmp_path))
        items = list(range(4))
        sweep = ParallelSweep(jobs=2, shard_timeout=1.0)
        try:
            results = sweep.map_seeded(_stall_once, items, seed=5)
        finally:
            (tmp_path / "stop").write_text("done")  # release the stalled worker
        assert results == ParallelSweep(jobs=1).map_seeded(_draw, items, seed=5)
        assert 2 in sweep.last_retried

    def test_worker_exceptions_propagate_unretried(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_SCRATCH, str(tmp_path))
        sweep = ParallelSweep(jobs=2)
        with pytest.raises(ValueError, match="bad shard 2"):
            sweep.map_seeded(_raise_on, list(range(4)), seed=0)
        assert sweep.last_retried == ()


class TestRegistryOverrides:
    def test_overrides_ignored_by_analytic_experiments(self):
        # fig2 and scaling take neither jobs nor batch; forwarding must
        # not explode and must not change the result.
        assert run_experiment("fig2", jobs=4, batch=32).experiment_id == "fig2"
        inline = run_experiment("scaling")
        forwarded = run_experiment("scaling", jobs=2, batch=16)
        assert inline.tables == forwarded.tables

    def test_batch_not_forwarded_to_sec5_drain(self):
        # --batch means cycles-per-chunk; sec5_sim's side-by-side drain
        # knob is deliberately a different parameter, so the registry's
        # batch override must leave its (seed-stable) statistics alone.
        default = run_experiment("sec5_sim")
        overridden = run_experiment("sec5_sim", batch=64)
        assert default.tables == overridden.tables

    def test_montecarlo_grid_is_job_count_invariant(self):
        inline = run_experiment("fig7_mc", jobs=1)
        fanned = run_experiment("fig7_mc", jobs=2)
        assert inline.tables == fanned.tables
