"""Tests for the deterministic multiprocessing sweep executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.parallel import ParallelSweep
from repro.experiments.registry import run_experiment
from repro.sim.rng import make_rng


def _square(x):
    return x * x


def _draw(item, seed_key):
    return (item, float(make_rng(seed_key).random()))


class TestParallelSweep:
    def test_map_preserves_order(self):
        assert ParallelSweep(jobs=1).map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_map_across_processes(self):
        assert ParallelSweep(jobs=2).map(_square, list(range(8))) == [
            x * x for x in range(8)
        ]

    def test_seeded_map_is_job_count_invariant(self):
        items = list(range(6))
        inline = ParallelSweep(jobs=1).map_seeded(_draw, items, seed=42)
        fanned = ParallelSweep(jobs=3).map_seeded(_draw, items, seed=42)
        assert inline == fanned

    def test_seeded_items_get_independent_streams(self):
        draws = ParallelSweep(jobs=1).map_seeded(_draw, list(range(5)), seed=0)
        values = {value for _item, value in draws}
        assert len(values) == 5

    def test_generator_master_seed(self):
        a = ParallelSweep(jobs=1).map_seeded(
            _draw, [0, 1], seed=np.random.default_rng(9)
        )
        b = ParallelSweep(jobs=1).map_seeded(
            _draw, [0, 1], seed=np.random.default_rng(9)
        )
        assert a == b

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ParallelSweep(jobs=0)

    def test_resolved_jobs_clamps_to_items(self):
        assert ParallelSweep(jobs=8).resolved_jobs(3) == 3
        assert ParallelSweep(jobs=2).resolved_jobs(10) == 2


class TestRegistryOverrides:
    def test_overrides_ignored_by_analytic_experiments(self):
        # fig2 and scaling take neither jobs nor batch; forwarding must
        # not explode and must not change the result.
        assert run_experiment("fig2", jobs=4, batch=32).experiment_id == "fig2"
        inline = run_experiment("scaling")
        forwarded = run_experiment("scaling", jobs=2, batch=16)
        assert inline.tables == forwarded.tables

    def test_batch_not_forwarded_to_sec5_drain(self):
        # --batch means cycles-per-chunk; sec5_sim's side-by-side drain
        # knob is deliberately a different parameter, so the registry's
        # batch override must leave its (seed-stable) statistics alone.
        default = run_experiment("sec5_sim")
        overridden = run_experiment("sec5_sim", batch=64)
        assert default.tables == overridden.tables

    def test_montecarlo_grid_is_job_count_invariant(self):
        inline = run_experiment("fig7_mc", jobs=1)
        fanned = run_experiment("fig7_mc", jobs=2)
        assert inline.tables == fanned.tables
