"""The ``saturation`` experiment: registration, shape, and overrides."""

from __future__ import annotations

import pytest

from repro.api.spec import RunConfig
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.saturation import (
    DEFAULT_WORKLOADS,
    FAMILIES,
    run,
)

SMALL = dict(rates=(0.2, 0.6, 1.0), cycles=60, warmup=20)


class TestRegistration:
    def test_registered(self):
        assert "saturation" in EXPERIMENTS

    def test_runs_through_registry_dispatch(self):
        result = run_experiment(
            "saturation", config=RunConfig(cycles=40, traffic="uniform")
        )
        assert result.experiment_id == "saturation"


class TestResultShape:
    @pytest.fixture(scope="class")
    def result(self):
        return run(**SMALL)

    def test_curve_table_covers_every_point(self, result):
        header, rows = result.tables["latency & throughput"]
        assert header[:3] == ["family", "workload", "offered rate"]
        families = [name for name, _ in FAMILIES()]
        assert len(rows) == len(families) * len(DEFAULT_WORKLOADS) * 3
        assert {row[0] for row in rows} == set(families)
        assert {row[1] for row in rows} == set(DEFAULT_WORKLOADS)

    def test_latency_columns_ordered(self, result):
        _, rows = result.tables["latency & throughput"]
        for row in rows:
            mean, p50, p95, p99 = row[5], row[6], row[7], row[8]
            if p50 == 0:
                continue  # no deliveries at this point
            assert p50 <= p95 <= p99
            # Latency floor: a packet crosses at least the stage count.
            assert mean >= 2.0

    def test_knee_table_one_row_per_curve(self, result):
        _, rows = result.tables["saturation knees"]
        families = [name for name, _ in FAMILIES()]
        assert len(rows) == len(families) * len(DEFAULT_WORKLOADS)
        for _, _, knee, thr_at_knee in rows:
            assert 0.2 <= knee <= 1.0
            assert 0.0 <= thr_at_knee <= 1.0

    def test_series_fit_the_renderer(self, result):
        # The ASCII renderer caps at 8 series; the experiment must stay
        # renderable from `repro experiment` (which prints every result).
        assert 0 < len(result.series) <= 8
        result.render()  # must not raise

    def test_throughput_monotone_under_uniform_low_load(self, result):
        _, rows = result.tables["latency & throughput"]
        for family, _ in FAMILIES():
            uniform = [r for r in rows if r[0] == family and r[1] == "uniform"]
            # Delivered throughput grows (weakly) from rate 0.2 to 0.6.
            assert uniform[0][4] <= uniform[1][4] + 0.02


class TestOverrides:
    def test_traffic_override_narrows_workloads(self):
        result = run(
            rates=(0.3, 0.9),
            cycles=40,
            warmup=10,
            config=RunConfig(traffic="uniform"),
        )
        _, rows = result.tables["latency & throughput"]
        assert {row[1] for row in rows} == {"uniform"}

    def test_config_cycles_and_seed_flow_through(self):
        a = run(rates=(0.5,), workloads=("uniform",), config=RunConfig(cycles=30, seed=7))
        b = run(rates=(0.5,), workloads=("uniform",), config=RunConfig(cycles=30, seed=7))
        assert a.tables["latency & throughput"][1] == b.tables["latency & throughput"][1]
        assert "30 measured cycles" in a.notes[0]
