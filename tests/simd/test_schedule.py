"""Unit tests for cluster schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ScheduleError
from repro.simd.schedule import (
    NO_SELECTION,
    LowestIndexSchedule,
    RandomSchedule,
    RoundRobinSchedule,
)

ALL_SCHEDULES = [RandomSchedule, RoundRobinSchedule, LowestIndexSchedule]


@pytest.mark.parametrize("schedule_cls", ALL_SCHEDULES)
class TestScheduleContract:
    def test_selects_only_pending(self, schedule_cls, rng):
        pending = np.array([[True, False, True], [False, False, True], [False, False, False]])
        choice = schedule_cls().select(pending, rng)
        for cluster, local in enumerate(choice):
            if local == NO_SELECTION:
                assert not pending[cluster].any()
            else:
                assert pending[cluster, local]

    def test_empty_clusters_get_no_selection(self, schedule_cls, rng):
        pending = np.zeros((4, 3), dtype=bool)
        choice = schedule_cls().select(pending, rng)
        assert (choice == NO_SELECTION).all()

    def test_full_clusters_always_select(self, schedule_cls, rng):
        pending = np.ones((5, 4), dtype=bool)
        choice = schedule_cls().select(pending, rng)
        assert (choice >= 0).all()

    def test_validates_shape(self, schedule_cls, rng):
        with pytest.raises(ScheduleError):
            schedule_cls().select(np.ones(4, dtype=bool), rng)
        with pytest.raises(ScheduleError):
            schedule_cls().select(np.ones((2, 2), dtype=np.int64), rng)


class TestRandomSchedule:
    def test_uniform_over_pending(self, rng):
        pending = np.array([[True, True, True, True]])
        counts = np.zeros(4)
        schedule = RandomSchedule()
        for _ in range(2000):
            counts[schedule.select(pending, rng)[0]] += 1
        # Expected 500 per PE, sd ~19: a 400..600 window is ~5 sigma.
        assert counts.min() > 400
        assert counts.max() < 600


class TestRoundRobin:
    def test_cycles_through_pes(self, rng):
        pending = np.ones((1, 3), dtype=bool)
        schedule = RoundRobinSchedule()
        picks = [schedule.select(pending, rng)[0] for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_delivered(self, rng):
        pending = np.array([[True, False, True]])
        schedule = RoundRobinSchedule()
        picks = [schedule.select(pending, rng)[0] for _ in range(4)]
        assert picks == [0, 2, 0, 2]


class TestLowestIndex:
    def test_always_picks_first_pending(self, rng):
        pending = np.array([[False, True, True], [True, True, False]])
        choice = LowestIndexSchedule().select(pending, rng)
        assert choice.tolist() == [1, 0]
