"""Tests for the batched (side-by-side) RA-EDN permutation drain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.simd.ra_edn import RAEDNSystem
from repro.simd.simulator import RAEDNSimulator


@pytest.fixture
def small_system() -> RAEDNSystem:
    return RAEDNSystem(4, 2, 1, 4)  # 8 ports x 4 PEs = 32 PEs


class TestBatchedMeasure:
    def test_all_runs_drain_completely(self, small_system):
        sim = RAEDNSimulator(small_system)
        stats = sim.measure(runs=6, seed=0, batch=3)
        assert stats.runs == 6
        assert stats.cycles.n == 6
        # q cycles is the hard floor: one message per cluster per cycle.
        assert stats.cycles.minimum >= small_system.q

    def test_reproducible_for_fixed_seed_and_batch(self, small_system):
        sim = RAEDNSimulator(small_system)
        a = sim.measure(runs=5, seed=11, batch=2)
        b = sim.measure(runs=5, seed=11, batch=2)
        assert a.mean_cycles == b.mean_cycles
        assert a.cycles.minimum == b.cycles.minimum
        assert a.cycles.maximum == b.cycles.maximum

    def test_batch_larger_than_runs(self, small_system):
        sim = RAEDNSimulator(small_system)
        stats = sim.measure(runs=3, seed=0, batch=64)
        assert stats.cycles.n == 3

    def test_agrees_with_sequential_path_statistically(self, small_system):
        sim = RAEDNSimulator(small_system)
        sequential = sim.measure(runs=12, seed=5)
        batched = sim.measure(runs=12, seed=5, batch=12)
        # Different stream layouts, same distribution: means within ~25%.
        assert batched.mean_cycles == pytest.approx(
            sequential.mean_cycles, rel=0.25
        )

    def test_bad_batch_rejected(self, small_system):
        sim = RAEDNSimulator(small_system)
        with pytest.raises(ConfigurationError):
            sim.measure(runs=2, seed=0, batch=0)

    def test_livelock_guard(self, small_system):
        sim = RAEDNSimulator(small_system)
        with pytest.raises(ConfigurationError):
            sim.measure(runs=2, seed=0, batch=2, max_cycles=2)

    def test_generator_seed_accepted(self, small_system):
        sim = RAEDNSimulator(small_system)
        a = sim.measure(runs=4, seed=np.random.default_rng(3), batch=2)
        b = sim.measure(runs=4, seed=np.random.default_rng(3), batch=2)
        assert a.mean_cycles == b.mean_cycles

    def test_random_priority_batched(self, small_system):
        sim = RAEDNSimulator(small_system, priority="random")
        stats = sim.measure(runs=4, seed=0, batch=4)
        assert stats.cycles.minimum >= small_system.q

    def test_stateful_schedule_is_group_size_invariant(self, small_system):
        # Regression: each run gets its own schedule clone and stream, so
        # a stateful round-robin cursor is never shared across interleaved
        # runs — cycle counts must not depend on the drain group size.
        from repro.simd.schedule import RoundRobinSchedule

        wide = RAEDNSimulator(small_system, schedule=RoundRobinSchedule())
        narrow = RAEDNSimulator(small_system, schedule=RoundRobinSchedule())
        a = wide.measure(runs=4, seed=7, batch=4)
        b = narrow.measure(runs=4, seed=7, batch=1)
        assert a.mean_cycles == b.mean_cycles
        assert a.cycles.minimum == b.cycles.minimum
        assert a.cycles.minimum >= small_system.q
