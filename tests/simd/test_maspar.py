"""Unit tests for the MasPar MP-1 configuration."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ConfigurationError
from repro.simd.maspar import MASPAR_MP1_PES, maspar_family, maspar_mp1


class TestMasparMP1:
    def test_documented_configuration(self):
        system = maspar_mp1()
        assert (system.b, system.c, system.l, system.q) == (16, 4, 2, 16)

    def test_16k_pes(self):
        assert maspar_mp1().num_pes == MASPAR_MP1_PES == 16_384

    def test_network_is_edn_64_16_4_2(self):
        params = maspar_mp1().network_params
        assert (params.a, params.b, params.c, params.l) == (64, 16, 4, 2)

    def test_1024_router_ports(self):
        assert maspar_mp1().num_ports == 1024


class TestFamily:
    def test_family_members(self):
        assert maspar_family(1_024).l == 1
        assert maspar_family(16_384).l == 2
        assert maspar_family(262_144).l == 3

    def test_family_sizes_consistent(self):
        for n_pes in (1_024, 16_384, 262_144):
            assert maspar_family(n_pes).num_pes == n_pes

    def test_16k_member_is_the_mp1(self):
        assert maspar_family(16_384) == maspar_mp1()

    def test_unsupported_size_rejected(self):
        with pytest.raises(ConfigurationError):
            maspar_family(4_096)
