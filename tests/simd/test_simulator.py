"""Integration tests for the RA-EDN permutation-routing simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.simd.analytic import expected_permutation_time
from repro.simd.ra_edn import RAEDNSystem
from repro.simd.schedule import LowestIndexSchedule, RoundRobinSchedule
from repro.simd.simulator import RAEDNSimulator


SMALL = RAEDNSystem(4, 2, 1, 4)    # 8 ports x 4 PEs = 32 messages
MEDIUM = RAEDNSystem(4, 2, 2, 8)   # 32 ports x 8 PEs = 256 messages


class TestCorrectness:
    def test_every_message_delivered(self):
        run = RAEDNSimulator(SMALL).route_permutation(seed=0)
        assert run.total_delivered == SMALL.num_pes

    def test_takes_at_least_q_cycles(self):
        # One message per cluster per cycle: q is a hard lower bound.
        run = RAEDNSimulator(MEDIUM).route_permutation(seed=1)
        assert run.cycles >= MEDIUM.q

    def test_identity_permutation_drains(self):
        run = RAEDNSimulator(SMALL).route_permutation(
            permutation=np.arange(SMALL.num_pes), seed=2
        )
        assert run.total_delivered == SMALL.num_pes

    def test_explicit_permutation_validated(self):
        sim = RAEDNSimulator(SMALL)
        with pytest.raises(ConfigurationError):
            sim.route_permutation(permutation=np.zeros(SMALL.num_pes, dtype=np.int64))

    def test_deliveries_per_cycle_bounded_by_ports(self):
        run = RAEDNSimulator(MEDIUM).route_permutation(seed=3)
        assert max(run.delivered_per_cycle) <= MEDIUM.num_ports

    def test_reproducible(self):
        a = RAEDNSimulator(MEDIUM).route_permutation(seed=7)
        b = RAEDNSimulator(MEDIUM).route_permutation(seed=7)
        assert a.cycles == b.cycles
        assert a.delivered_per_cycle == b.delivered_per_cycle

    def test_max_cycles_guard(self):
        sim = RAEDNSimulator(SMALL)
        with pytest.raises(ConfigurationError):
            sim.route_permutation(seed=0, max_cycles=2)


class TestAgainstModel:
    def test_simulated_time_in_model_ballpark(self):
        # The analytic model ignores cluster-queue stragglers and runs low;
        # simulation should land between 0.9x and 2x the model.
        model = expected_permutation_time(MEDIUM)
        stats = RAEDNSimulator(MEDIUM).measure(runs=10, seed=4)
        assert 0.9 * model.expected_cycles < stats.mean_cycles < 2.0 * model.expected_cycles

    def test_head_phase_is_fully_loaded(self):
        # During the first ~q cycles every cluster still offers a message,
        # so per-cycle deliveries hover near p * PA(1).
        system = MEDIUM
        model = expected_permutation_time(system)
        run = RAEDNSimulator(system).route_permutation(seed=5)
        head = run.delivered_per_cycle[: system.q // 2]
        expected = system.num_ports * model.pa_full_load
        assert np.mean(head) == pytest.approx(expected, rel=0.25)


class TestSchedules:
    @pytest.mark.parametrize("schedule_cls", [RoundRobinSchedule, LowestIndexSchedule])
    def test_alternative_schedules_drain(self, schedule_cls):
        sim = RAEDNSimulator(SMALL, schedule=schedule_cls())
        run = sim.route_permutation(seed=6)
        assert run.total_delivered == SMALL.num_pes

    def test_measure_aggregates(self):
        stats = RAEDNSimulator(SMALL).measure(runs=5, seed=8)
        assert stats.runs == 5
        assert stats.cycles.n == 5
        assert stats.mean_cycles >= SMALL.q

    def test_measure_needs_positive_runs(self):
        with pytest.raises(ConfigurationError):
            RAEDNSimulator(SMALL).measure(runs=0)
