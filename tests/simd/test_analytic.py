"""Unit tests for the Section 5 drain-time model."""

from __future__ import annotations

import pytest

from repro.core.analysis import acceptance_probability
from repro.simd.analytic import expected_permutation_time
from repro.simd.maspar import maspar_mp1
from repro.simd.ra_edn import RAEDNSystem


class TestPaperExample:
    """RA-EDN(16,4,2,16): PA(1)=.544, J=5, T≈34.41 (paper, Section 5)."""

    def test_pa_full_load(self):
        model = expected_permutation_time(maspar_mp1())
        assert model.pa_full_load == pytest.approx(0.544, abs=5e-4)

    def test_tail_cycles(self):
        assert expected_permutation_time(maspar_mp1()).tail_cycles == 5

    def test_expected_total(self):
        model = expected_permutation_time(maspar_mp1())
        # The paper prints 34.41 using the rounded .544; exact PA gives 34.43.
        assert model.expected_cycles == pytest.approx(34.41, abs=0.1)

    def test_head_cycles(self):
        model = expected_permutation_time(maspar_mp1())
        assert model.head_cycles == pytest.approx(16 / model.pa_full_load)


class TestDrainRecursion:
    def test_rates_strictly_decrease(self):
        model = expected_permutation_time(maspar_mp1())
        rates = (1.0,) + model.tail_rates
        assert all(r2 < r1 for r1, r2 in zip(rates, rates[1:]))

    def test_recursion_matches_definition(self):
        system = maspar_mp1()
        model = expected_permutation_time(system)
        params = system.network_params
        rate = 1.0
        for expected in model.tail_rates:
            rate = (1.0 - acceptance_probability(params, rate)) * rate
            assert rate == pytest.approx(expected)

    def test_terminates_below_one_message(self):
        system = maspar_mp1()
        model = expected_permutation_time(system)
        assert model.tail_rates[-1] * system.num_ports < 1.0
        if len(model.tail_rates) > 1:
            assert model.tail_rates[-2] * system.num_ports >= 1.0


class TestScaling:
    def test_time_grows_with_cluster_size(self):
        small_q = expected_permutation_time(RAEDNSystem(4, 2, 2, 4))
        big_q = expected_permutation_time(RAEDNSystem(4, 2, 2, 32))
        assert big_q.expected_cycles > small_q.expected_cycles

    def test_head_scales_linearly_in_q(self):
        base = expected_permutation_time(RAEDNSystem(4, 2, 2, 8))
        double = expected_permutation_time(RAEDNSystem(4, 2, 2, 16))
        assert double.head_cycles == pytest.approx(2 * base.head_cycles)

    def test_deeper_network_needs_more_cycles(self):
        shallow = expected_permutation_time(RAEDNSystem(4, 2, 1, 8))
        deep = expected_permutation_time(RAEDNSystem(4, 2, 4, 8))
        assert deep.expected_cycles > shallow.expected_cycles
