"""Test package."""
