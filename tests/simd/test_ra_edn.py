"""Unit tests for the RA-EDN system abstraction (Section 5.1)."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ConfigurationError, LabelError
from repro.simd.ra_edn import RAEDNSystem


class TestShape:
    def test_maspar_dimensions(self):
        system = RAEDNSystem(16, 4, 2, 16)
        assert system.num_ports == 1024
        assert system.num_pes == 16_384
        assert str(system.network_params) == "EDN(64,16,4,2)"

    def test_network_is_square(self):
        system = RAEDNSystem(4, 2, 3, 8)
        params = system.network_params
        assert params.num_inputs == params.num_outputs == system.num_ports

    def test_rejects_bad_cluster_size(self):
        with pytest.raises(ConfigurationError):
            RAEDNSystem(4, 2, 2, 0)

    def test_rejects_invalid_network(self):
        with pytest.raises(ConfigurationError):
            RAEDNSystem(3, 2, 2, 4)   # b not a power of two

    def test_describe(self):
        text = RAEDNSystem(16, 4, 2, 16).describe()
        assert "1024 clusters" in text and "16384 PEs" in text


class TestLabelling:
    def test_label_roundtrip(self):
        system = RAEDNSystem(4, 2, 2, 8)
        for cluster in range(0, system.num_ports, 3):
            for local in range(system.q):
                label = system.pe_label(cluster, local)
                assert system.pe_location(label) == (cluster, local)

    def test_labels_are_dense(self):
        system = RAEDNSystem(4, 2, 1, 4)
        labels = {
            system.pe_label(cluster, local)
            for cluster in range(system.num_ports)
            for local in range(system.q)
        }
        assert labels == set(range(system.num_pes))

    def test_label_bounds(self):
        system = RAEDNSystem(4, 2, 1, 4)
        with pytest.raises(LabelError):
            system.pe_label(system.num_ports, 0)
        with pytest.raises(LabelError):
            system.pe_label(0, system.q)
        with pytest.raises(LabelError):
            system.pe_location(system.num_pes)
