"""Result-cache unit tests: LRU bounds, idempotent writes, counters."""

from __future__ import annotations

import pytest

from repro.serve.cache import ResultCache


class TestResultCache:
    def test_get_put_round_trip(self):
        cache = ResultCache()
        cache.put("k", b"payload")
        assert cache.get("k") == b"payload"

    def test_miss_returns_none_and_counts(self):
        cache = ResultCache()
        assert cache.get("absent") is None
        assert cache.info()["misses"] == 1

    def test_first_write_wins(self):
        # Byte-identity of hits depends on a racing duplicate compute
        # never replacing the first stored payload.
        cache = ResultCache()
        cache.put("k", b"first")
        cache.put("k", b"second")
        assert cache.get("k") == b"first"

    def test_lru_evicts_oldest(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        assert cache.get("a") == b"1"  # refresh a
        cache.put("c", b"3")  # evicts b, the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == b"1"
        assert cache.get("c") == b"3"

    def test_info_counters(self):
        cache = ResultCache(maxsize=4)
        cache.put("a", b"1")
        cache.get("a")
        cache.get("nope")
        assert cache.info() == {"hits": 1, "misses": 1, "size": 1, "maxsize": 4}

    def test_clear_resets(self):
        cache = ResultCache()
        cache.put("a", b"1")
        cache.get("a")
        cache.clear()
        assert cache.get("a") is None
        assert cache.info() == {
            "hits": 0, "misses": 1, "size": 0, "maxsize": cache.maxsize,
        }

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            ResultCache(maxsize=0)
