# repro.serve test package
