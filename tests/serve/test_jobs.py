"""SweepCell / CellResult contract tests: payloads, content keys, seeds.

The service's dedupe correctness reduces to three properties pinned
here: payloads round-trip losslessly (including fault sets, retry
policies, and spawned seeds), content keys cover exactly the
result-determining inputs, and measurements serialize bit-identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.jobs import (
    SweepCell,
    measure_cell,
    measurement_from_payload,
    measurement_to_payload,
    seed_from_payload,
    seed_to_payload,
)
from repro.api.spec import NetworkSpec, RunConfig
from repro.core.exceptions import ConfigurationError
from repro.core.faults import WireFault
from repro.sim.rng import spawn_keys

SPEC = NetworkSpec.edn(16, 4, 4, 2)


class TestSeedPayloads:
    @pytest.mark.parametrize("seed", [None, 0, 12345])
    def test_plain_seeds_pass_through(self, seed):
        assert seed_from_payload(seed_to_payload(seed)) == seed

    def test_seed_sequence_round_trips_streams(self):
        original = np.random.SeedSequence(42).spawn(3)[2]
        restored = seed_from_payload(seed_to_payload(original))
        assert restored.entropy == original.entropy
        assert restored.spawn_key == original.spawn_key
        # The restored sequence reproduces the stream bit for bit.
        assert (
            np.random.default_rng(restored).random(8).tolist()
            == np.random.default_rng(original).random(8).tolist()
        )

    def test_spawned_children_round_trip(self):
        for key in spawn_keys(7, 4):
            restored = seed_from_payload(seed_to_payload(key))
            assert restored.spawn_key == key.spawn_key

    def test_generators_are_rejected(self):
        with pytest.raises(ConfigurationError, match="Generator"):
            seed_to_payload(np.random.default_rng(0))


class TestCellPayloads:
    def test_round_trip(self):
        cell = SweepCell(SPEC, RunConfig(cycles=50, seed=3, traffic="hotspot:0.1"))
        assert SweepCell.from_payload(cell.payload()) == cell

    def test_round_trip_with_faults_and_retry(self):
        spec = NetworkSpec.edn(16, 4, 4, 2, faults=(WireFault(1, 0, 2),))
        cell = SweepCell(spec, RunConfig(cycles=20, seed=0, retry="4:1:2"))
        restored = SweepCell.from_payload(cell.payload())
        assert restored == cell
        assert restored.spec.faults == spec.faults
        assert restored.config.retry.label == "4:1:2"

    def test_round_trip_with_spawned_seed(self):
        # SeedSequence has identity equality, so compare the stream roots.
        (key,) = spawn_keys(9, 1)
        cell = SweepCell(SPEC, RunConfig(cycles=20, seed=key))
        restored = SweepCell.from_payload(cell.payload())
        assert restored.config.seed.entropy == key.entropy
        assert restored.config.seed.spawn_key == key.spawn_key
        assert restored.key() == cell.key()

    def test_payload_survives_json(self):
        import json

        cell = SweepCell(SPEC, RunConfig(cycles=50, seed=3, rel_err=0.05))
        rewired = SweepCell.from_payload(json.loads(json.dumps(cell.payload())))
        assert rewired == cell


class TestContentKeys:
    def test_equal_cells_hash_equal(self):
        a = SweepCell(SPEC, RunConfig(cycles=50, seed=1))
        b = SweepCell(NetworkSpec.parse("edn:16,4,4,2"), RunConfig(cycles=50, seed=1))
        assert a.key() == b.key()
        assert len(a.key()) == 64

    @pytest.mark.parametrize(
        "other",
        [
            RunConfig(cycles=51, seed=1),
            RunConfig(cycles=50, seed=2),
            RunConfig(cycles=50, seed=1, batch=16),
            RunConfig(cycles=50, seed=1, rel_err=0.05),
            RunConfig(cycles=50, seed=1, traffic="bitrev"),
            RunConfig(cycles=50, seed=1, retry="4"),
            RunConfig(cycles=50, seed=1, backend="vectorized"),
        ],
    )
    def test_result_determining_fields_change_the_key(self, other):
        base = SweepCell(SPEC, RunConfig(cycles=50, seed=1))
        assert SweepCell(SPEC, other).key() != base.key()

    def test_fault_sets_change_the_key(self):
        faulted = NetworkSpec.edn(16, 4, 4, 2, faults=(WireFault(1, 0, 2),))
        assert SweepCell(faulted, RunConfig(cycles=50, seed=1)).key() != SweepCell(
            SPEC, RunConfig(cycles=50, seed=1)
        ).key()

    def test_execution_knobs_do_not_change_the_key(self):
        # jobs / shard_timeout / service move work around; they must
        # never split the cache.
        base = SweepCell(SPEC, RunConfig(cycles=50, seed=1))
        tuned = SweepCell(
            SPEC,
            RunConfig(
                cycles=50, seed=1, jobs=8, shard_timeout=30.0,
                service="127.0.0.1:1",
            ),
        )
        assert tuned.key() == base.key()

    def test_canonicalization_dedupes_alias_spellings(self):
        # Traffic aliases canonicalize in RunConfig, so spelled-differently
        # identical cells still coalesce.
        a = SweepCell(SPEC, RunConfig(cycles=50, seed=1, traffic="bitrev"))
        b = SweepCell(SPEC, RunConfig(cycles=50, seed=1, traffic="bit_reversal"))
        assert a.key() == b.key()


class TestMeasurementPayloads:
    def test_open_loop_round_trip_is_bit_identical(self):
        measurement = measure_cell(SweepCell(SPEC, RunConfig(cycles=30, seed=5)))
        restored = measurement_from_payload(measurement_to_payload(measurement))
        assert restored == measurement

    def test_adaptive_fields_round_trip(self):
        measurement = measure_cell(
            SweepCell(SPEC, RunConfig(cycles=400, seed=5, rel_err=0.05))
        )
        restored = measurement_from_payload(measurement_to_payload(measurement))
        assert restored == measurement
        assert restored.converged == measurement.converged
        assert restored.target_rel_err == measurement.target_rel_err

    def test_closed_loop_round_trip_is_bit_identical(self):
        measurement = measure_cell(
            SweepCell(SPEC, RunConfig(cycles=30, seed=5, retry="4:1:2"))
        )
        restored = measurement_from_payload(measurement_to_payload(measurement))
        assert restored == measurement
        assert restored.policy.label == "4:1:2"

    def test_closed_loop_histogram_round_trips(self):
        # The streaming latency histogram rides inside the closed-loop
        # payload so shard merges keep their percentiles.
        measurement = measure_cell(
            SweepCell(SPEC, RunConfig(cycles=30, seed=5, retry="4"))
        )
        histogram = measurement.latency_histogram
        assert histogram is not None and histogram.count > 0
        restored = measurement_from_payload(measurement_to_payload(measurement))
        assert restored.latency_histogram == histogram
        assert (
            restored.latency_histogram.p50,
            restored.latency_histogram.p95,
            restored.latency_histogram.p99,
        ) == (histogram.p50, histogram.p95, histogram.p99)

    def test_payload_survives_json_bit_identically(self):
        import json

        measurement = measure_cell(SweepCell(SPEC, RunConfig(cycles=30, seed=5)))
        payload = json.loads(json.dumps(measurement_to_payload(measurement)))
        assert measurement_from_payload(payload) == measurement


class TestMeasureCell:
    def test_matches_inline_measure_acceptance(self):
        from repro.api.registry import build_router
        from repro.sim.montecarlo import measure_acceptance

        config = RunConfig(cycles=40, seed=2, traffic="hotspot:0.1")
        via_cell = measure_cell(SweepCell(SPEC, config))
        inline = measure_acceptance(build_router(SPEC, "auto"), config=config)
        assert via_cell == inline


class TestBufferedCells:
    """buffer_depth rides the cell: keys, payloads, measure_cell semantics."""

    def test_buffer_depth_changes_the_key(self):
        base = SweepCell(SPEC, RunConfig(cycles=50, seed=1))
        buffered = SweepCell(SPEC, RunConfig(cycles=50, seed=1, buffer_depth=2))
        deeper = SweepCell(SPEC, RunConfig(cycles=50, seed=1, buffer_depth=4))
        assert len({base.key(), buffered.key(), deeper.key()}) == 3

    def test_unbuffered_keys_are_unchanged_by_the_new_field(self):
        # buffer_depth enters the key only when set: a pre-buffer_depth
        # payload (the field absent entirely) keys identically to a new
        # unbuffered cell, so cached unbuffered results stay reachable.
        cell = SweepCell(SPEC, RunConfig(cycles=50, seed=1))
        legacy = cell.payload()
        del legacy["config"]["buffer_depth"]
        assert SweepCell.from_payload(legacy).key() == cell.key()

    def test_round_trip_with_buffer_depth(self):
        import json

        cell = SweepCell(SPEC, RunConfig(cycles=50, seed=1, buffer_depth=2))
        rewired = SweepCell.from_payload(json.loads(json.dumps(cell.payload())))
        assert rewired == cell
        assert rewired.config.buffer_depth == 2

    def test_buffered_measurement_round_trips_bit_identically(self):
        import json

        cell = SweepCell(SPEC, RunConfig(cycles=60, seed=4, buffer_depth=2))
        measurement = measure_cell(cell)
        payload = json.loads(json.dumps(measurement_to_payload(measurement)))
        assert measurement_from_payload(payload) == measurement

    def test_faulted_buffered_measurement_round_trips(self):
        import json

        spec = NetworkSpec.edn(16, 4, 4, 2, faults=(WireFault(1, 0, 2),))
        cell = SweepCell(spec, RunConfig(cycles=60, seed=4, buffer_depth=2))
        measurement = measure_cell(cell)
        assert measurement.faults == spec.faults
        payload = json.loads(json.dumps(measurement_to_payload(measurement)))
        assert measurement_from_payload(payload) == measurement

    def test_measure_cell_backends_map_to_engines(self):
        fast = measure_cell(
            SweepCell(SPEC, RunConfig(cycles=60, seed=4, buffer_depth=2))
        )
        slow = measure_cell(
            SweepCell(
                SPEC,
                RunConfig(cycles=60, seed=4, buffer_depth=2, backend="reference"),
            )
        )
        assert fast.injected == slow.injected
        assert fast.delivered == slow.delivered
        assert fast.throughput == slow.throughput
        with pytest.raises(ConfigurationError, match="buffered"):
            measure_cell(
                SweepCell(
                    SPEC,
                    RunConfig(cycles=60, seed=4, buffer_depth=2, backend="gpu"),
                )
            )
