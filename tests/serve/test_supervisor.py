"""Supervision-machinery tests: deadline accounting, ledger, retry policy.

The deadline regression tests pin the fix for the old
``ParallelSweep._fan_out`` accounting bug: results were collected in
submission order with ``future.result(timeout=shard_timeout)``, so one
slow shard extended every later shard's effective deadline and the total
wall could reach ``n x timeout``.  :func:`run_shards` instead starts each
shard's clock when the shard is observed *running*.
"""

from __future__ import annotations

import os
import pathlib
import signal
import time

import pytest

from repro.serve.supervisor import RetryLedger, supervised_map

#: Env var pointing forked workers at the per-test scratch directory.
_SCRATCH = "REPRO_TEST_SUPERVISOR_SCRATCH"

#: Per-shard deadline used by the stall tests (generous for slow CI).
_TIMEOUT = 1.0


def _double(payload):
    return payload * 2


def _sleep_then_square(payload):
    time.sleep(0.25)
    return payload * payload


def _kill_self(payload):
    if payload == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return payload


def _stall_front_once(payload):
    # Payloads 0 and 1 (the two a 2-worker pool picks up first) stall past
    # the deadline on their first attempt, spinning on a stop file so the
    # abandoned workers exit promptly once the test finishes.  Retries and
    # the queued payloads return immediately.
    base = pathlib.Path(os.environ[_SCRATCH])
    marker = base / f"stalled-{payload}"
    if payload < 2 and not marker.exists():
        marker.write_text("stalled")
        for _ in range(600):
            if (base / "stop").exists():
                break
            time.sleep(0.05)
    return payload + 100


class TestRetryLedger:
    def test_charge_until_exhausted(self):
        ledger = RetryLedger(max_attempts=3)
        assert ledger.charge("k")
        assert ledger.charge("k")
        assert not ledger.charge("k")

    def test_forgive_clears_history(self):
        ledger = RetryLedger(max_attempts=2)
        ledger.charge("k")
        ledger.forgive("k")
        assert ledger.retried == ()
        assert ledger.charge("k")  # a fresh first loss again

    def test_retried_preserves_first_loss_order(self):
        ledger = RetryLedger(max_attempts=9)
        for key in ("c", "a", "c", "b"):
            ledger.charge(key)
        assert ledger.retried == ("c", "a", "b")

    def test_rejects_bad_attempts(self):
        with pytest.raises(ValueError):
            RetryLedger(max_attempts=0)


class TestSupervisedMap:
    def test_results_in_payload_order(self):
        results, retried = supervised_map(_double, [3, 1, 2], jobs=2)
        assert results == [6, 2, 4]
        assert retried == ()

    def test_twice_lost_shard_raises(self):
        # _kill_self dies on every attempt, so the resubmission also
        # dies and the ledger must give up after MAX_ATTEMPTS.
        with pytest.raises(RuntimeError, match="failed twice"):
            supervised_map(_kill_self, [0, 1, 2], jobs=2)


class TestDeadlineAccounting:
    def test_queue_time_is_not_charged(self):
        # 6 shards x 0.25s on ONE worker: total wall (~1.5s) exceeds the
        # 1.25s deadline, so charging queue time would lose the tail of
        # the grid.  Deadlines start when a shard is observed running, so
        # nothing may be lost or retried.  (The executor marks a future
        # "running" when it enters the prefetch call queue — one item
        # deep — so a shard's observed window can span two executions;
        # the deadline comfortably covers that, but not the whole queue.)
        results, retried = supervised_map(
            _sleep_then_square, [0, 1, 2, 3, 4, 5], jobs=1, timeout=1.25,
        )
        assert results == [0, 1, 4, 9, 16, 25]
        assert retried == ()

    def test_stalled_shards_expire_in_parallel(self, tmp_path, monkeypatch):
        # THE n x timeout regression: both running shards stall behind a
        # 2-worker pool with two more shards queued.  Old submission-order
        # collection charged each stalled shard a FULL timeout serially
        # (~4 x timeout before the retry started); deadline-based
        # collection expires both running shards after ONE timeout,
        # declares the queued pair (whose slots are pinned by abandoned
        # workers) lost wholesale, and retries all four at once.
        monkeypatch.setenv(_SCRATCH, str(tmp_path))
        start = time.monotonic()
        try:
            results, retried = supervised_map(
                _stall_front_once, [0, 1, 2, 3], jobs=2, timeout=_TIMEOUT,
            )
        finally:
            (tmp_path / "stop").write_text("done")  # release abandoned spinners
        elapsed = time.monotonic() - start
        assert results == [100, 101, 102, 103]
        assert sorted(retried) == [0, 1, 2, 3]
        # One deadline + backoff + fast retry, with slack for slow CI —
        # well under the old worst case of ~4 x timeout + retry.
        assert elapsed < 3 * _TIMEOUT, (
            f"stalled shards were collected serially: {elapsed:.2f}s "
            f"for timeout={_TIMEOUT}s"
        )
