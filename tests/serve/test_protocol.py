"""Wire-protocol unit tests: addresses, framing, canonical encoding."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ConfigurationError
from repro.serve.protocol import (
    TcpAddress,
    UnixAddress,
    decode_message,
    encode_message,
    parse_address,
)


class TestParseAddress:
    def test_tcp(self):
        assert parse_address("127.0.0.1:8753") == TcpAddress("127.0.0.1", 8753)

    def test_tcp_label_round_trips(self):
        address = parse_address("0.0.0.0:80")
        assert parse_address(address.label) == address

    def test_unix(self):
        address = parse_address("unix:/tmp/repro.sock")
        assert address == UnixAddress("/tmp/repro.sock")
        assert address.label == "unix:/tmp/repro.sock"

    def test_whitespace_tolerated(self):
        assert parse_address(" 127.0.0.1:1 ") == TcpAddress("127.0.0.1", 1)

    @pytest.mark.parametrize("bad", ["", "justahost", ":1234", "host:notaport", "unix:"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            parse_address(bad)


class TestFraming:
    def test_round_trip(self):
        message = {"type": "result", "key": "k", "payload": {"pa": 0.5}}
        line = encode_message(message)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert decode_message(line) == message

    def test_encoding_is_canonical(self):
        # Key order never changes the bytes — the property the result
        # cache's byte-identity contract rests on.
        a = encode_message({"x": 1, "y": 2})
        b = encode_message({"y": 2, "x": 1})
        assert a == b

    def test_floats_round_trip_exactly(self):
        value = 0.1 + 0.2  # not representable prettily; repr round-trips
        decoded = decode_message(encode_message({"type": "t", "v": value}))
        assert decoded["v"] == value

    def test_decode_accepts_str(self):
        assert decode_message('{"type": "status"}') == {"type": "status"}

    @pytest.mark.parametrize("bad", [b"[1, 2]\n", b'{"no": "type"}\n', b"garbage\n"])
    def test_decode_rejects_non_messages(self, bad):
        with pytest.raises(ValueError):
            decode_message(bad)
