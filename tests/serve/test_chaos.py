"""Chaos harness tests: scenario spec, deterministic injection, invariants.

The expensive end-to-end scenario (worker killed mid-job, another
stalled past the shard timeout, one client connection dropped
mid-stream, a malformed frame, and a poison cell) runs once per module;
every invariant assertion reads the same report.
"""

from __future__ import annotations

import json

import pytest

from repro.core.exceptions import ConfigurationError
from repro.serve.chaos import (
    ChaosEvent,
    ChaosScenario,
    run_scenario,
    smoke_cells,
    smoke_scenario,
)


class TestScenarioSpec:
    def test_payload_round_trips_through_json(self):
        scenario = smoke_scenario(seed=7)
        restored = ChaosScenario.from_payload(
            json.loads(json.dumps(scenario.to_payload()))
        )
        assert restored == scenario

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            ChaosEvent("set_on_fire")

    def test_worker_events_require_a_target(self):
        with pytest.raises(ConfigurationError, match="cell_seed"):
            ChaosEvent("kill_worker")

    def test_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            ChaosEvent("kill_worker", cell_seed=1, times=0)
        with pytest.raises(ConfigurationError):
            ChaosEvent("drop_connection", after_messages=0)
        with pytest.raises(ConfigurationError):
            ChaosScenario("bad", workers=0)

    def test_smoke_scenario_covers_the_required_faults(self):
        kinds = {event.kind for event in smoke_scenario().events}
        assert {"kill_worker", "stall_worker", "drop_connection", "poison"} <= kinds


@pytest.fixture(scope="module")
def smoke_report(tmp_path_factory):
    scenario = smoke_scenario(seed=0)
    chaos_dir = tmp_path_factory.mktemp("chaos")
    return scenario, run_scenario(scenario, smoke_cells(), str(chaos_dir))


class TestSmokeInvariants:
    def test_all_invariants_hold(self, smoke_report):
        _, report = smoke_report
        assert report.ok, report.violations

    def test_zero_lost_cells(self, smoke_report):
        _, report = smoke_report
        # Every cell is accounted for: measured byte-identically or
        # quarantined with a structured error — nothing vanished.
        assert report.measured + len(report.quarantined) == report.total_cells

    def test_only_the_poison_cell_is_quarantined(self, smoke_report):
        scenario, report = smoke_report
        cells = smoke_cells()
        poison = {
            i for i, cell in enumerate(cells)
            if cell.config.seed in scenario.poison_seeds()
        }
        assert set(report.quarantined) == poison

    def test_connection_actually_dropped_and_resumed(self, smoke_report):
        scenario, report = smoke_report
        assert report.reconnects >= 1
        assert 0 < report.resubmissions <= scenario.max_reconnects * report.total_cells

    def test_chaos_actually_killed_and_rebuilt_workers(self, smoke_report):
        _, report = smoke_report
        assert report.pool_rebuilds >= 1
        assert report.cells_resubmitted >= 1
