"""End-to-end service tests: bit-identity, dedupe, supervision, streaming.

Every test runs a real :class:`SimulationServer` on a background thread
(ephemeral port) and talks to it over the actual socket protocol.  The
worker-death and stall tests monkeypatch ``repro.serve.server.measure_cell``
in the *parent*: pool workers fork lazily on first submit, so they inherit
the patched module state — the same marker-file technique the
ParallelSweep suite uses.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import threading
import time

import pytest

import repro.serve.server as server_mod
from repro.api.jobs import SweepCell, measure_cell
from repro.api.spec import NetworkSpec, RunConfig
from repro.experiments.parallel import ParallelSweep
from repro.serve.client import ServiceClient, ServiceError
from repro.serve.server import start_server_thread

#: Env var pointing forked workers at the per-test scratch directory.
_SCRATCH = "REPRO_TEST_SERVE_SCRATCH"

SPEC = NetworkSpec.edn(16, 4, 4, 2)

_REAL_MEASURE_CELL = measure_cell


def _grid(cycles=40, seeds=(0, 1, 2)):
    return [
        SweepCell(spec, RunConfig(cycles=cycles, seed=seed, traffic=traffic))
        for spec in (SPEC, NetworkSpec.parse("delta:4,4,2"))
        for seed, traffic in zip(seeds, ("uniform", "hotspot:0.1", "bitrev"))
    ]


def _kill_once_measure_cell(cell, *, progress=None):
    # Fork-inherited stand-in for measure_cell: SIGKILL this worker the
    # first time the marked cell arrives, compute faithfully otherwise.
    if cell.config.seed == 3:
        marker = pathlib.Path(os.environ[_SCRATCH]) / "killed"
        if not marker.exists():
            marker.write_text("killed")
            os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_MEASURE_CELL(cell, progress=progress)


def _stall_once_measure_cell(cell, *, progress=None):
    # Stall (past shard_timeout) the first time the marked cell arrives,
    # spinning on a stop file so the abandoned worker exits after the test.
    if cell.config.seed == 2:
        base = pathlib.Path(os.environ[_SCRATCH])
        marker = base / "stalled"
        if not marker.exists():
            marker.write_text("stalled")
            for _ in range(600):
                if (base / "stop").exists():
                    break
                time.sleep(0.05)
    return _REAL_MEASURE_CELL(cell, progress=progress)


@pytest.fixture
def server():
    handle = start_server_thread(workers=2)
    yield handle
    handle.stop()


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_service_matches_inline_across_worker_counts(self, workers):
        cells = _grid()
        expected = [measure_cell(cell) for cell in cells]
        handle = start_server_thread(workers=workers)
        try:
            with ServiceClient(handle.address) as client:
                assert client.run(cells) == expected
        finally:
            handle.stop()

    def test_adaptive_and_closed_loop_cells_match_inline(self, server):
        cells = [
            SweepCell(SPEC, RunConfig(cycles=300, seed=4, rel_err=0.1)),
            SweepCell(SPEC, RunConfig(cycles=40, seed=5, retry="4:1:2")),
        ]
        expected = [measure_cell(cell) for cell in cells]
        with ServiceClient(server.address) as client:
            assert client.run(cells) == expected


class TestDedupe:
    def test_repeat_submission_hits_cache_byte_identically(self, server):
        cells = _grid()
        with ServiceClient(server.address) as client:
            first = client.submit(cells)
            second = client.submit(cells)
            stats = client.status()
        assert all(not r.cached for r in first)
        assert all(r.cached and r.worker is None for r in second)
        # Hits are replayed from the stored encoded bytes, so the decoded
        # measurements (and their canonical JSON) are identical.
        assert [r.measurement for r in second] == [r.measurement for r in first]
        assert stats["cells"]["computed"] == len(cells)
        assert stats["cells"]["cached"] == len(cells)
        assert stats["result_cache"]["hits"] == len(cells)
        assert stats["dedupe_rate"] == pytest.approx(0.5)

    def test_duplicates_within_one_job_compute_once(self, server):
        cell = SweepCell(SPEC, RunConfig(cycles=40, seed=0))
        alias = SweepCell(  # same content key, different spelling
            NetworkSpec.parse("edn:16,4,4,2"), RunConfig(cycles=40, seed=0)
        )
        with ServiceClient(server.address) as client:
            results = client.submit([cell, alias, cell])
            stats = client.status()
        assert len({r.key for r in results}) == 1
        assert results[0].measurement == results[1].measurement == results[2].measurement
        assert stats["cells"]["computed"] == 1
        assert stats["cells"]["deduped_in_job"] == 2

    def test_concurrent_clients_share_computations(self, server):
        # Two clients submit the identical grid at once: however the race
        # lands (coalesced in flight or answered from cache), the server
        # computes each unique cell exactly once and both get full results.
        cells = _grid(cycles=120)
        outcomes = {}
        barrier = threading.Barrier(2)

        def submit(name):
            with ServiceClient(server.address) as client:
                barrier.wait()
                outcomes[name] = client.run(cells)

        threads = [
            threading.Thread(target=submit, args=(name,)) for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes["a"] == outcomes["b"]
        with ServiceClient(server.address) as client:
            stats = client.status()
        assert stats["cells"]["computed"] == len(cells)
        assert (
            stats["cells"]["cached"] + stats["cells"]["coalesced"] == len(cells)
        )


class TestSupervision:
    def test_sigkilled_worker_cell_is_resubmitted(self, tmp_path, monkeypatch):
        # The killer replaces measure_cell BEFORE the pool's workers fork
        # (they fork lazily on first submit), so the worker that draws
        # seed 3 SIGKILLs itself mid-job exactly once.
        monkeypatch.setenv(_SCRATCH, str(tmp_path))
        monkeypatch.setattr(server_mod, "measure_cell", _kill_once_measure_cell)
        cells = [SweepCell(SPEC, RunConfig(cycles=40, seed=seed)) for seed in range(6)]
        expected = [_REAL_MEASURE_CELL(cell) for cell in cells]
        handle = start_server_thread(workers=2)
        try:
            with ServiceClient(handle.address) as client:
                results = client.run(cells)
                stats = client.status()
        finally:
            handle.stop()
        assert results == expected
        assert (tmp_path / "killed").exists()
        assert stats["workers"]["pool_rebuilds"] >= 1
        assert stats["cells"]["resubmitted"] >= 1
        assert stats["cells"]["failed"] == 0

    def test_stalled_worker_cell_is_resubmitted_after_timeout(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(_SCRATCH, str(tmp_path))
        monkeypatch.setattr(server_mod, "measure_cell", _stall_once_measure_cell)
        cells = [SweepCell(SPEC, RunConfig(cycles=40, seed=seed)) for seed in range(4)]
        expected = [_REAL_MEASURE_CELL(cell) for cell in cells]
        handle = start_server_thread(workers=2, shard_timeout=1.0)
        try:
            with ServiceClient(handle.address) as client:
                results = client.run(cells)
                stats = client.status()
        finally:
            (tmp_path / "stop").write_text("done")  # release the spinner
            handle.stop()
        assert results == expected
        assert stats["workers"]["pool_rebuilds"] >= 1
        assert stats["cells"]["resubmitted"] >= 1
        assert stats["cells"]["failed"] == 0


class TestStreaming:
    def test_adaptive_cells_stream_partials(self, server):
        # A deliberately slow-to-converge adaptive cell: its chunk
        # boundaries must surface as partial messages while it runs.
        cell = SweepCell(
            SPEC, RunConfig(cycles=60_000, seed=0, batch=16, rel_err=0.002)
        )
        partials = []
        with ServiceClient(server.address) as client:
            (result,) = client.submit([cell], on_partial=partials.append)
            stats = client.status()
        assert partials, "no partial messages streamed"
        cycles_seen = [message["cycles"] for message in partials]
        assert cycles_seen == sorted(cycles_seen)
        assert cycles_seen[-1] <= 60_000
        for message in partials:
            assert message["key"] == result.key
            point, low, high = message["acceptance"]
            assert 0.0 <= low <= point <= high <= 1.0
        assert stats["partials_streamed"] >= len(partials)


class TestProtocolEdges:
    def test_invalid_cell_fails_alone(self, server):
        good = SweepCell(SPEC, RunConfig(cycles=40, seed=0))
        with ServiceClient(server.address) as client:
            client._send({
                "type": "submit", "job_id": "mixed",
                "cells": [{"spec": {"kind": "nope"}, "config": {}}, good.payload()],
            })
            events = []
            while True:
                message = client._recv()
                events.append(message)
                if message["type"] == "done":
                    break
        kinds = [event["type"] for event in events]
        assert kinds.count("error") == 1
        assert kinds.count("result") == 1
        error = next(event for event in events if event["type"] == "error")
        assert error["indices"] == [0]
        result = next(event for event in events if event["type"] == "result")
        assert result["indices"] == [1]
        done = events[-1]
        assert done["failed"] == 1 and done["computed"] == 1

    def test_failed_cells_raise_service_error_after_drain(self, tmp_path, monkeypatch):
        # Kill-every-attempt cell: the ledger gives up after
        # max_poison_attempts, the cell is quarantined, and the client
        # raises — but only after the healthy cells land.
        monkeypatch.setenv(_SCRATCH, str(tmp_path / "never-written"))

        def kill_always(cell, *, progress=None):
            if cell.config.seed == 3:
                os.kill(os.getpid(), signal.SIGKILL)
            return _REAL_MEASURE_CELL(cell, progress=progress)

        monkeypatch.setattr(server_mod, "measure_cell", kill_always)
        cells = [SweepCell(SPEC, RunConfig(cycles=40, seed=seed)) for seed in (1, 3)]
        handle = start_server_thread(workers=1)
        try:
            with ServiceClient(handle.address) as client:
                with pytest.raises(ServiceError, match="quarantined"):
                    client.submit(cells)
        finally:
            handle.stop()

    def test_empty_job_is_rejected(self, server):
        with ServiceClient(server.address) as client:
            client._send({"type": "submit", "job_id": "empty", "cells": []})
            message = client._recv()
        assert message["type"] == "error"
        assert "non-empty" in message["message"]

    def test_unknown_message_type_errors(self, server):
        with ServiceClient(server.address) as client:
            client._send({"type": "frobnicate"})
            message = client._recv()
        assert message["type"] == "error"
        assert "frobnicate" in message["message"]


class TestObservability:
    def test_stats_shape_and_plan_cache_visibility(self, server):
        cells = _grid()
        with ServiceClient(server.address) as client:
            client.run(cells)
            stats = client.status()
        assert stats["type"] == "stats"
        assert stats["address"] == server.address
        assert stats["workers"]["configured"] == 2
        assert 0.0 <= stats["workers"]["utilization"] <= 1.0
        assert stats["queue_depth"] >= 0
        assert stats["jobs"] == {"submitted": 1, "completed": 1}
        assert 0.0 <= stats["dedupe_rate"] <= 1.0
        assert stats["result_cache"]["size"] == len(cells)
        per_worker = stats["plan_cache"]["per_worker"]
        assert per_worker, "no per-worker plan-cache info reported"
        for info in per_worker.values():
            assert info["size"] >= 1  # each worker compiled at least one plan
        # The whole snapshot is wire-clean JSON.
        json.dumps(stats)

    def test_shutdown_message_stops_the_server(self):
        handle = start_server_thread(workers=1)
        with ServiceClient(handle.address) as client:
            client.shutdown_server()
        handle.thread.join(timeout=10.0)
        assert not handle.thread.is_alive()


class TestParallelSweepIntegration:
    def test_map_cells_via_service_matches_local(self, server):
        cells = _grid()
        local = ParallelSweep(jobs=1).map_cells(cells)
        remote_sweep = ParallelSweep(jobs=2, service=server.address)
        assert remote_sweep.map_cells(cells) == local
        assert remote_sweep.last_retried == ()

    def test_workload_matrix_experiment_via_service_matches_inline(self, server):
        # The registry threads ``service`` through to the experiment grid;
        # the table the service produces must equal the inline one.
        from repro.experiments.registry import run_experiment

        config = RunConfig(cycles=30, seed=1, traffic="uniform")
        inline = run_experiment("workload_matrix", config=config)
        served = run_experiment(
            "workload_matrix", config=config, service=server.address
        )
        assert served.tables == inline.tables
        assert served.series == inline.series

    def test_from_config_threads_service(self, server):
        config = RunConfig(jobs=2, service=server.address, shard_timeout=60.0)
        sweep = ParallelSweep.from_config(config)
        assert sweep.service == server.address
        assert sweep.shard_timeout == 60.0
        cells = [SweepCell(SPEC, RunConfig(cycles=40, seed=9))]
        assert sweep.map_cells(cells) == [measure_cell(cells[0])]


class TestQuarantine:
    def test_poison_cell_quarantined_siblings_byte_identical(
        self, tmp_path, monkeypatch
    ):
        # The poison cell (kill on every attempt, including the solo
        # probe) must be quarantined after max_poison_attempts while its
        # sibling cells — whose workers die as collateral — still land
        # byte-identically to the inline run.
        monkeypatch.setenv(_SCRATCH, str(tmp_path))

        def kill_always(cell, *, progress=None):
            if cell.config.seed == 13:
                os.kill(os.getpid(), signal.SIGKILL)
            return _REAL_MEASURE_CELL(cell, progress=progress)

        monkeypatch.setattr(server_mod, "measure_cell", kill_always)
        siblings = [
            SweepCell(SPEC, RunConfig(cycles=40, seed=seed)) for seed in (0, 1, 2)
        ]
        poison = SweepCell(SPEC, RunConfig(cycles=40, seed=13))
        expected = [_REAL_MEASURE_CELL(cell) for cell in siblings]
        handle = start_server_thread(workers=2, max_poison_attempts=2)
        try:
            with ServiceClient(handle.address) as client:
                results = client.submit(
                    siblings + [poison], tolerate_failures=True
                )
                stats = client.status()
        finally:
            handle.stop()
        assert [r.measurement for r in results[:3]] == expected
        assert all(not r.quarantined for r in results[:3])
        bad = results[3]
        assert bad.quarantined and bad.measurement is None
        assert "quarantined after 2 attempts" in bad.error
        assert stats["cells"]["quarantined"] == 1
        assert stats["quarantine"]["size"] == 1
        assert stats["quarantine"]["max_poison_attempts"] == 2

    def test_quarantined_key_answers_instantly_on_resubmit(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(_SCRATCH, str(tmp_path))

        def kill_always(cell, *, progress=None):
            if cell.config.seed == 13:
                os.kill(os.getpid(), signal.SIGKILL)
            return _REAL_MEASURE_CELL(cell, progress=progress)

        monkeypatch.setattr(server_mod, "measure_cell", kill_always)
        poison = SweepCell(SPEC, RunConfig(cycles=40, seed=13))
        handle = start_server_thread(workers=1, max_poison_attempts=2)
        try:
            with ServiceClient(handle.address) as client:
                first = client.submit([poison], tolerate_failures=True)
                rebuilds_after_first = client.status()["workers"]["pool_rebuilds"]
                second = client.submit([poison], tolerate_failures=True)
                stats = client.status()
        finally:
            handle.stop()
        assert first[0].quarantined and second[0].quarantined
        # The resubmission burned zero additional workers.
        assert stats["workers"]["pool_rebuilds"] == rebuilds_after_first
        assert stats["cells"]["quarantined"] == 1  # quarantined once, not twice

    def test_innocent_cell_survives_collateral_charges(
        self, tmp_path, monkeypatch
    ):
        # A healthy cell whose retry budget is exhausted purely by pool
        # deaths it did not cause must pass the solo probe and deliver,
        # not be quarantined.
        monkeypatch.setenv(_SCRATCH, str(tmp_path))

        def kill_often(cell, *, progress=None):
            if cell.config.seed == 13:
                marker = pathlib.Path(os.environ[_SCRATCH])
                for slot in range(2):
                    path = marker / f"kill.{slot}"
                    try:
                        path.touch(exist_ok=False)
                    except FileExistsError:
                        continue
                    os.kill(os.getpid(), signal.SIGKILL)
            return _REAL_MEASURE_CELL(cell, progress=progress)

        monkeypatch.setattr(server_mod, "measure_cell", kill_often)
        innocent = SweepCell(SPEC, RunConfig(cycles=40, seed=0))
        killer = SweepCell(SPEC, RunConfig(cycles=40, seed=13))
        expected = _REAL_MEASURE_CELL(innocent)
        handle = start_server_thread(workers=1, max_poison_attempts=2)
        try:
            with ServiceClient(handle.address) as client:
                results = client.submit([innocent, killer], tolerate_failures=True)
        finally:
            handle.stop()
        assert results[0].measurement == expected
        assert not results[0].quarantined
        # The killer only dies twice, so it recovers too (on pool or probe).
        assert results[1].measurement == expected or results[1].measurement is not None


class TestReconnectResume:
    def test_client_resumes_after_connection_drop(self, server):
        from repro.serve.chaos import DroppingClient

        cells = _grid()
        expected = [measure_cell(cell) for cell in cells]
        client = DroppingClient(
            server.address, drop_after=3, times=1, max_reconnects=2
        )
        with client:
            results = client.submit(cells)
        assert [r.measurement for r in results] == expected
        assert client.reconnects == 1
        assert 0 < client.resubmissions <= len(cells)

    def test_drop_without_reconnect_budget_raises(self, server):
        from repro.serve.chaos import DroppingClient
        from repro.serve.client import ConnectionLost

        cells = _grid()
        client = DroppingClient(server.address, drop_after=2, times=1)
        with pytest.raises(ConnectionLost):
            with client:
                client.submit(cells)
