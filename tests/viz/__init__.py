"""Test package."""
