"""Unit tests for ASCII curve plotting."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ConfigurationError
from repro.viz.curves import Series, render_plot


def _series(label="PA", points=((8, 0.66), (64, 0.5), (4096, 0.4))):
    return Series.from_pairs(label, points)


class TestRenderPlot:
    def test_contains_markers_and_legend(self):
        text = render_plot([_series()], width=40, height=10)
        assert "*" in text
        assert "PA" in text

    def test_multiple_series_distinct_markers(self):
        text = render_plot(
            [_series("one"), _series("two", ((8, 0.1), (64, 0.2), (4096, 0.3)))],
            width=40,
            height=10,
        )
        assert "* one" in text and "+ two" in text

    def test_title_rendered(self):
        text = render_plot([_series()], title="Figure 7", width=40, height=8)
        assert text.splitlines()[0] == "Figure 7"

    def test_log_axis_labels(self):
        text = render_plot([_series()], width=40, height=8, log_x=True)
        assert "log scale" in text

    def test_linear_axis(self):
        text = render_plot(
            [Series.from_pairs("lin", [(0, 0.0), (5, 1.0)])],
            width=30,
            height=6,
            log_x=False,
        )
        assert "log scale" not in text

    def test_y_range_override(self):
        text = render_plot([_series()], width=30, height=6, y_range=(0.0, 1.0))
        assert "1.000" in text and "0.000" in text

    def test_rejects_empty_series(self):
        with pytest.raises(ConfigurationError):
            render_plot([Series.from_pairs("void", [])])

    def test_rejects_nonpositive_x_on_log_axis(self):
        with pytest.raises(ConfigurationError):
            render_plot([Series.from_pairs("bad", [(0, 1.0)])], log_x=True)

    def test_rejects_too_many_series(self):
        many = [Series.from_pairs(f"s{i}", [(1, i)]) for i in range(9)]
        with pytest.raises(ConfigurationError):
            render_plot(many)

    def test_grid_dimensions(self):
        text = render_plot([_series()], width=40, height=10)
        plot_lines = [line for line in text.splitlines() if "|" in line]
        assert len(plot_lines) == 10
