"""Unit tests for table rendering."""

from __future__ import annotations

from repro.viz.tables import format_number, format_table


class TestFormatNumber:
    def test_integers_group_thousands(self):
        assert format_number(1048576) == "1,048,576"

    def test_floats_use_precision(self):
        assert format_number(0.54373, precision=3) == "0.544"

    def test_integral_floats_render_as_ints(self):
        assert format_number(5.0) == "5"

    def test_strings_pass_through(self):
        assert format_number("EDN(8,4,2,3)") == "EDN(8,4,2,3)"

    def test_bools_not_treated_as_ints(self):
        assert format_number(True) == "True"

    def test_nan(self):
        assert format_number(float("nan")) == "nan"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["n", "PA"], [[8, 0.75], [64, 0.5437]])
        lines = text.splitlines()
        assert lines[0].startswith("n")
        # Columns line up: every "PA"-column cell starts at the same offset.
        offset = lines[0].index("PA")
        assert lines[2][offset:].startswith("0.7500")
        assert lines[3][offset:].startswith("0.5437")

    def test_title(self):
        text = format_table(["a"], [[1]], title="Costs")
        assert text.splitlines()[0] == "Costs"
        assert text.splitlines()[1] == "====="

    def test_empty_rows(self):
        text = format_table(["col1", "col2"], [])
        assert "col1" in text

    def test_column_count_preserved(self):
        text = format_table(["x", "y", "z"], [[1, 2, 3]])
        header = text.splitlines()[0]
        assert header.split() == ["x", "y", "z"]
