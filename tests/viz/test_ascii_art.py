"""Unit tests for network/switch ASCII rendering."""

from __future__ import annotations

from repro.core.config import EDNParams
from repro.core.hyperbar import Hyperbar
from repro.viz.ascii_art import render_hyperbar_routing, render_network


class TestRenderNetwork:
    def test_mentions_every_stage(self):
        text = render_network(EDNParams(16, 4, 4, 2))
        assert "Stage 1" in text and "Stage 2" in text and "Stage 3" in text

    def test_mentions_switch_shapes(self):
        text = render_network(EDNParams(16, 4, 4, 2))
        assert "H(16->4x4)" in text and "4x4" in text

    def test_mentions_gamma_parameters(self):
        text = render_network(EDNParams(64, 16, 4, 2))
        assert "gamma(j=log2(c)=2, k=log2(a/c)=4)" in text

    def test_tag_layout_line(self):
        text = render_network(EDNParams(16, 4, 4, 2))
        assert "2 base-4 digit(s)" in text


class TestRenderHyperbarRouting:
    def test_figure2_rendering(self):
        digits = [3, 2, 3, 1, 2, 2, 0, 3]
        result = Hyperbar(8, 4, 2).route(digits)
        text = render_hyperbar_routing(8, 4, 2, digits, result)
        assert "DISCARDED" in text
        assert "input 5" in text and "input 7" in text
        assert "bucket 0" in text and "bucket 3" in text

    def test_idle_inputs_marked(self):
        digits = [None, 1, None, 0]
        result = Hyperbar(4, 2, 2).route(digits)
        text = render_hyperbar_routing(4, 2, 2, digits, result)
        assert "(idle)" in text

    def test_overload_annotated(self):
        digits = [0, 0, 0, 0]
        result = Hyperbar(4, 2, 1).route(digits)
        text = render_hyperbar_routing(4, 2, 1, digits, result)
        assert "(4 requested)" in text
