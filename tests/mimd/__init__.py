"""Test package."""
