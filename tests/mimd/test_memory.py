"""Unit tests for memory-module bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.mimd.memory import MemoryBank


class TestSingleCycleService:
    def test_always_serves(self):
        bank = MemoryBank(8)
        served = bank.admit(np.array([0, 3, 7]), cycle=0)
        assert served.all()
        assert bank.total_served == 3

    def test_access_counts(self):
        bank = MemoryBank(4)
        bank.admit(np.array([1]), cycle=0)
        bank.admit(np.array([1]), cycle=1)
        bank.admit(np.array([2]), cycle=2)
        assert bank.accesses.tolist() == [0, 2, 1, 0]

    def test_load_imbalance(self):
        bank = MemoryBank(2)
        bank.admit(np.array([0]), cycle=0)
        bank.admit(np.array([0]), cycle=1)
        bank.admit(np.array([1]), cycle=2)
        assert bank.load_imbalance() == pytest.approx(2 / 1.5)

    def test_imbalance_of_empty_bank(self):
        assert MemoryBank(4).load_imbalance() == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            MemoryBank(4).admit(np.array([4]), cycle=0)


class TestServiceLatency:
    def test_busy_module_turns_requests_away(self):
        bank = MemoryBank(2, service_cycles=3)
        assert bank.admit(np.array([0]), cycle=0).all()
        assert not bank.admit(np.array([0]), cycle=1).any()
        assert not bank.admit(np.array([0]), cycle=2).any()
        assert bank.admit(np.array([0]), cycle=3).all()

    def test_other_modules_unaffected(self):
        bank = MemoryBank(2, service_cycles=5)
        bank.admit(np.array([0]), cycle=0)
        assert bank.admit(np.array([1]), cycle=1).all()

    def test_turned_away_counted(self):
        bank = MemoryBank(2, service_cycles=2)
        bank.admit(np.array([0]), cycle=0)
        bank.admit(np.array([0]), cycle=1)
        assert bank.turned_away[0] == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            MemoryBank(0)
        with pytest.raises(ConfigurationError):
            MemoryBank(4, service_cycles=0)
