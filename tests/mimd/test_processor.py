"""Unit tests for the processor state array."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.mimd.processor import ACTIVE, WAITING, ProcessorArray


class TestIssueRequests:
    def test_all_start_active(self):
        procs = ProcessorArray(16, 8, request_rate=1.0)
        assert procs.fraction_active == 1.0

    def test_full_rate_everyone_issues(self, rng):
        procs = ProcessorArray(64, 8, request_rate=1.0)
        dests = procs.issue_requests(rng)
        assert (dests >= 0).all()

    def test_zero_rate_nobody_issues(self, rng):
        procs = ProcessorArray(64, 8, request_rate=0.0)
        assert (procs.issue_requests(rng) == -1).all()

    def test_waiting_processors_always_resubmit(self, rng):
        procs = ProcessorArray(8, 4, request_rate=0.0)
        procs.state[:] = WAITING
        procs.pending[:] = 3
        dests = procs.issue_requests(rng)
        assert (dests == 3).all()

    def test_redraw_on_retry_changes_destination_sometimes(self, rng):
        procs = ProcessorArray(256, 64, request_rate=0.0, redraw_on_retry=True)
        procs.state[:] = WAITING
        procs.pending[:] = 0
        dests = procs.issue_requests(rng)
        assert (dests >= 0).all()
        assert (dests != 0).any()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ProcessorArray(0, 4, 0.5)
        with pytest.raises(ConfigurationError):
            ProcessorArray(4, 4, 1.5)


class TestAbsorbOutcomes:
    def test_served_return_to_active(self, rng):
        procs = ProcessorArray(4, 4, request_rate=1.0)
        procs.issue_requests(rng)
        procs.absorb_outcomes(np.array([True, True, True, True]))
        assert procs.fraction_active == 1.0
        assert (procs.wait_cycles == 0).all()

    def test_rejected_become_waiting(self, rng):
        procs = ProcessorArray(4, 4, request_rate=1.0)
        procs.issue_requests(rng)
        procs.absorb_outcomes(np.array([False, True, False, True]))
        assert procs.state[0] == WAITING
        assert procs.state[1] == ACTIVE
        assert procs.wait_cycles[0] == 1

    def test_wait_cycles_accumulate(self, rng):
        procs = ProcessorArray(2, 4, request_rate=1.0)
        for expected in (1, 2, 3):
            procs.issue_requests(rng)
            procs.absorb_outcomes(np.array([False, False]))
            assert (procs.wait_cycles == expected).all()

    def test_idle_processors_unaffected(self, rng):
        procs = ProcessorArray(4, 4, request_rate=0.0)
        procs.issue_requests(rng)
        procs.absorb_outcomes(np.zeros(4, dtype=bool))
        assert procs.fraction_active == 1.0

    def test_pending_cleared_on_service(self, rng):
        procs = ProcessorArray(4, 4, request_rate=1.0)
        procs.issue_requests(rng)
        procs.absorb_outcomes(np.ones(4, dtype=bool))
        assert (procs.pending == -1).all()
