"""Integration tests for the MIMD processor-memory simulator (Section 4)."""

from __future__ import annotations

import pytest

from repro.core.analysis import acceptance_probability
from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.mimd.markov import edn_resubmission
from repro.mimd.system import MIMDSystem


class TestIgnorePolicy:
    def test_tracks_eq4(self):
        # With rejects ignored the measured acceptance is Section 3's PA.
        p = EDNParams(16, 4, 4, 2)
        system = MIMDSystem(p, request_rate=0.5, policy="ignore")
        metrics = system.run(cycles=800, warmup=50, seed=0)
        analytic = acceptance_probability(p, 0.5)
        assert metrics.acceptance.point == pytest.approx(analytic, abs=0.05)

    def test_offered_rate_stays_near_r(self):
        p = EDNParams(16, 4, 4, 2)
        system = MIMDSystem(p, request_rate=0.5, policy="ignore")
        metrics = system.run(cycles=400, seed=1)
        assert metrics.offered_rate == pytest.approx(0.5, abs=0.03)

    def test_utilization_is_full(self):
        # Ignored rejects never stall processors.
        p = EDNParams(16, 4, 4, 2)
        metrics = MIMDSystem(p, 0.5, policy="ignore").run(cycles=200, seed=2)
        assert metrics.utilization.point == pytest.approx(1.0)


class TestResubmitPolicy:
    def test_acceptance_tracks_markov_model(self):
        p = EDNParams(16, 4, 4, 2)
        system = MIMDSystem(p, 0.5, policy="resubmit", redraw_on_retry=True)
        metrics = system.run(cycles=1500, warmup=300, seed=3)
        solution = edn_resubmission(p, 0.5)
        assert metrics.acceptance.point == pytest.approx(solution.pa_resubmit, abs=0.05)

    def test_utilization_tracks_q_active(self):
        p = EDNParams(16, 4, 4, 2)
        system = MIMDSystem(p, 0.5, policy="resubmit", redraw_on_retry=True)
        metrics = system.run(cycles=1500, warmup=300, seed=4)
        solution = edn_resubmission(p, 0.5)
        assert metrics.utilization.point == pytest.approx(solution.q_active, abs=0.05)

    def test_offered_rate_inflates_above_r(self):
        p = EDNParams(16, 4, 4, 3)
        system = MIMDSystem(p, 0.5, policy="resubmit")
        metrics = system.run(cycles=600, warmup=100, seed=5)
        assert metrics.offered_rate > 0.5

    def test_resubmission_hurts_acceptance(self):
        p = EDNParams(16, 4, 4, 2)
        ignore = MIMDSystem(p, 0.5, policy="ignore").run(cycles=600, warmup=100, seed=6)
        resubmit = MIMDSystem(p, 0.5, policy="resubmit").run(cycles=600, warmup=100, seed=6)
        assert resubmit.acceptance.point < ignore.acceptance.point

    def test_sticky_retry_close_to_redraw(self):
        # The paper assumes retries re-randomize; real retries stick to one
        # module.  Both should land in the same neighbourhood under uniform
        # traffic (destinations were uniform to begin with).
        p = EDNParams(16, 4, 4, 2)
        sticky = MIMDSystem(p, 0.5, policy="resubmit", redraw_on_retry=False).run(
            cycles=800, warmup=200, seed=7
        )
        redraw = MIMDSystem(p, 0.5, policy="resubmit", redraw_on_retry=True).run(
            cycles=800, warmup=200, seed=7
        )
        assert sticky.acceptance.point == pytest.approx(redraw.acceptance.point, abs=0.05)

    def test_mean_wait_positive_under_contention(self):
        p = EDNParams(16, 4, 4, 2)
        metrics = MIMDSystem(p, 1.0, policy="resubmit").run(cycles=300, warmup=50, seed=8)
        assert metrics.mean_wait > 0.0


class TestMemoryBottleneck:
    def test_slow_memory_reduces_bandwidth(self):
        p = EDNParams(16, 4, 4, 2)
        fast = MIMDSystem(p, 0.8, service_cycles=1).run(cycles=400, warmup=100, seed=9)
        slow = MIMDSystem(p, 0.8, service_cycles=4).run(cycles=400, warmup=100, seed=9)
        assert slow.bandwidth < fast.bandwidth


class TestValidation:
    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            MIMDSystem(EDNParams(16, 4, 4, 2), 0.5, policy="retry_later")

    def test_needs_positive_cycles(self):
        system = MIMDSystem(EDNParams(16, 4, 4, 2), 0.5)
        with pytest.raises(ConfigurationError):
            system.run(cycles=0)

    def test_metrics_fields_populated(self):
        metrics = MIMDSystem(EDNParams(16, 4, 4, 2), 0.5).run(cycles=100, warmup=10, seed=10)
        assert metrics.cycles == 100
        assert metrics.warmup == 10
        assert metrics.bandwidth >= 0.0
        assert metrics.load_imbalance >= 1.0
