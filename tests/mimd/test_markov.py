"""Unit tests for the resubmission Markov model (Eqs. 7-11)."""

from __future__ import annotations

import pytest

from repro.core.analysis import acceptance_probability, crossbar_acceptance
from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError, ConvergenceError
from repro.mimd.markov import (
    edn_resubmission,
    effective_rate,
    solve_resubmission,
    steady_state_probabilities,
)


class TestSteadyStateAlgebra:
    def test_probabilities_sum_to_one(self):
        for r in (0.1, 0.5, 0.9):
            for pa in (0.3, 0.7, 1.0):
                q_active, q_waiting = steady_state_probabilities(r, pa)
                assert q_active + q_waiting == pytest.approx(1.0)

    def test_perfect_network_never_waits(self):
        q_active, q_waiting = steady_state_probabilities(0.5, 1.0)
        assert q_active == pytest.approx(1.0)
        assert q_waiting == pytest.approx(0.0)

    def test_balance_equation(self):
        # qA * r * (1 - PA') == qW * PA' (Figure 10's flow balance).
        r, pa = 0.6, 0.55
        q_active, q_waiting = steady_state_probabilities(r, pa)
        assert q_active * r * (1 - pa) == pytest.approx(q_waiting * pa)

    def test_effective_rate_formula(self):
        # Eq. 8: r' = r*qA + qW.
        r, pa = 0.4, 0.6
        q_active, q_waiting = steady_state_probabilities(r, pa)
        assert effective_rate(r, pa) == pytest.approx(r * q_active + q_waiting)

    def test_effective_rate_at_least_r(self):
        for r in (0.1, 0.5, 1.0):
            for pa in (0.2, 0.6, 1.0):
                assert effective_rate(r, pa) >= r - 1e-12

    def test_effective_rate_bounded_by_one(self):
        for r in (0.1, 0.5, 1.0):
            for pa in (0.2, 0.6, 1.0):
                assert effective_rate(r, pa) <= 1.0 + 1e-12

    def test_degenerate_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            effective_rate(0.0, 0.0)


class TestFixedPoint:
    def test_converges_for_edns(self):
        for cfg in [(16, 4, 4, 2), (4, 2, 2, 3), (8, 8, 1, 3)]:
            solution = edn_resubmission(EDNParams(*cfg), 0.5)
            assert solution.iterations < 1000
            assert 0.0 < solution.pa_resubmit <= 1.0

    def test_self_consistency(self):
        # At convergence PA' == PA(r') (Eq. 9).
        p = EDNParams(16, 4, 4, 2)
        solution = edn_resubmission(p, 0.5)
        assert solution.pa_resubmit == pytest.approx(
            acceptance_probability(p, solution.effective_rate), abs=1e-9
        )

    def test_resubmission_lowers_acceptance(self):
        p = EDNParams(16, 4, 4, 3)
        solution = edn_resubmission(p, 0.5)
        assert solution.pa_resubmit < acceptance_probability(p, 0.5)

    def test_zero_rate_trivial(self):
        solution = edn_resubmission(EDNParams(16, 4, 4, 2), 0.0)
        assert solution.pa_resubmit == 1.0
        assert solution.q_active == 1.0
        assert solution.iterations == 0

    def test_rate_one_saturates(self):
        solution = edn_resubmission(EDNParams(16, 4, 4, 2), 1.0)
        assert solution.effective_rate == pytest.approx(1.0)

    def test_generic_network_callable(self):
        # The solver accepts any PA function, e.g. a crossbar.
        solution = solve_resubmission(lambda r: crossbar_acceptance(64, r), 0.5)
        assert 0.0 < solution.pa_resubmit < 1.0
        assert solution.effective_rate > 0.5

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            solve_resubmission(lambda r: 1.0, 1.5)

    def test_convergence_error_on_budget(self):
        # An adversarial oscillating "PA" cannot converge in 2 iterations.
        flip = {"value": 0.2}

        def oscillating(_r: float) -> float:
            flip["value"] = 1.0 - flip["value"]
            return flip["value"]

        with pytest.raises(ConvergenceError):
            solve_resubmission(oscillating, 0.5, max_iterations=2)


class TestSolutionProperties:
    def test_efficiency_equals_q_active(self):
        solution = edn_resubmission(EDNParams(16, 4, 4, 2), 0.5)
        assert solution.efficiency == solution.q_active

    def test_bandwidth_per_input(self):
        solution = edn_resubmission(EDNParams(16, 4, 4, 2), 0.5)
        assert solution.bandwidth_per_input == pytest.approx(
            solution.effective_rate * solution.pa_resubmit
        )

    def test_expected_wait_is_geometric_mean(self):
        solution = edn_resubmission(EDNParams(16, 4, 4, 2), 0.5)
        assert solution.expected_wait == pytest.approx(1.0 / solution.pa_resubmit)
        assert solution.expected_wait >= 1.0

    def test_expected_wait_grows_with_load(self):
        p = EDNParams(16, 4, 4, 3)
        light = edn_resubmission(p, 0.1)
        heavy = edn_resubmission(p, 1.0)
        assert heavy.expected_wait > light.expected_wait

    def test_deeper_networks_less_efficient(self):
        shallow = edn_resubmission(EDNParams(16, 4, 4, 1), 0.5)
        deep = edn_resubmission(EDNParams(16, 4, 4, 5), 0.5)
        assert deep.efficiency < shallow.efficiency

    def test_figure11_orderings(self):
        # Resubmitted PA' below ignored PA for both plotted families, and —
        # at matched network size (the figure's x-axis) — the 16-I/O-switch
        # family above the 4-I/O-switch family.  EDN(16,4,4,l) has 4^l * 4
        # inputs == EDN(4,2,2,2l+1)'s 2^(2l+1) * 2.
        for l in (2, 3, 4):
            big = EDNParams(16, 4, 4, l)
            small = EDNParams(4, 2, 2, 2 * l + 1)
            assert big.num_inputs == small.num_inputs
            assert edn_resubmission(big, 0.5).pa_resubmit < acceptance_probability(big, 0.5)
            assert edn_resubmission(small, 0.5).pa_resubmit < acceptance_probability(small, 0.5)
            assert (
                edn_resubmission(big, 0.5).pa_resubmit
                > edn_resubmission(small, 0.5).pa_resubmit
            )
