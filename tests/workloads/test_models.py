"""Unit tests for the new traffic models (bursty, mixture, trace, patterns)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.workloads import (
    BurstyTraffic,
    FixedPattern,
    HotspotTraffic,
    MixtureTraffic,
    TraceTraffic,
    UniformTraffic,
    structured_permutation,
)


class TestBurstyTraffic:
    def test_duty_cycle_thins_load(self, rng):
        gen = BurstyTraffic(256, 256, on=8, off=24)
        batch = gen.generate_batch(rng, 200)
        active = (batch != -1).mean()
        assert gen.duty_cycle == pytest.approx(0.25)
        assert 0.2 < active < 0.3

    def test_bursts_are_contiguous(self, rng):
        gen = BurstyTraffic(4, 4, on=5, off=11)
        batch = gen.generate_batch(rng, 16)  # one full period per source
        active = batch != -1
        # Each column sees exactly `on` busy cycles per 16-cycle period.
        assert (active.sum(axis=0) == 5).all()

    def test_off_zero_always_active(self, rng):
        batch = BurstyTraffic(32, 32, on=4, off=0).generate_batch(rng, 10)
        assert (batch != -1).all()

    def test_rate_composes_with_duty_cycle(self, rng):
        gen = BurstyTraffic(512, 512, on=1, off=1, rate=0.5)
        active = (gen.generate_batch(rng, 100) != -1).mean()
        assert 0.2 < active < 0.3  # 0.5 duty * 0.5 rate

    def test_single_cycle_marginal(self, rng):
        gen = BurstyTraffic(2048, 64, on=8, off=8)
        active = (gen.generate(rng) != -1).mean()
        assert 0.4 < active < 0.6

    def test_rejects_bad_lengths(self):
        with pytest.raises(ConfigurationError):
            BurstyTraffic(8, 8, on=0)
        with pytest.raises(ConfigurationError):
            BurstyTraffic(8, 8, off=-1)


class TestMixtureTraffic:
    def test_blends_component_marginals(self, rng):
        gen = MixtureTraffic(
            [
                (UniformTraffic(20_000, 64), 0.7),
                (HotspotTraffic(20_000, 64, hot_fraction=1.0, hot_output=7), 0.3),
            ]
        )
        dests = gen.generate(rng)
        share = (dests == 7).mean()
        # 0.3 from the all-hot component + 0.7/64 from uniform ~ 0.31.
        assert 0.25 < share < 0.38

    def test_weights_normalized(self):
        gen = MixtureTraffic(
            [(UniformTraffic(8, 8), 7.0), (UniformTraffic(8, 8), 3.0)]
        )
        assert gen.weights == pytest.approx((0.7, 0.3))

    def test_batch_matches_shape(self, rng):
        gen = MixtureTraffic(
            [(UniformTraffic(32, 32), 0.5), (HotspotTraffic(32, 32), 0.5)]
        )
        assert gen.generate_batch(rng, 9).shape == (9, 32)
        assert gen.generate_batch(rng, 0).shape == (0, 32)

    def test_rejects_mismatched_components(self):
        with pytest.raises(ConfigurationError, match="terminal counts"):
            MixtureTraffic(
                [(UniformTraffic(8, 8), 0.5), (UniformTraffic(16, 16), 0.5)]
            )

    def test_rejects_empty_and_bad_weights(self):
        with pytest.raises(ConfigurationError):
            MixtureTraffic([])
        with pytest.raises(ConfigurationError, match="positive"):
            MixtureTraffic([(UniformTraffic(8, 8), 0.0)])


class TestTraceTraffic:
    def test_replays_rows_in_order(self, rng):
        trace = np.array([[0, 1], [2, 3], [1, 0]])
        gen = TraceTraffic(trace, 4)
        assert np.array_equal(gen.generate(rng), [0, 1])
        assert np.array_equal(gen.generate(rng), [2, 3])

    def test_wraps_around(self, rng):
        trace = np.array([[0, 1], [2, 3]])
        batch = TraceTraffic(trace, 4).generate_batch(rng, 5)
        assert np.array_equal(batch[4], [0, 1])

    def test_chunked_equals_per_cycle_sequence(self, rng):
        trace = np.arange(12).reshape(4, 3) % 5
        chunked = TraceTraffic(trace, 5).generate_batch(rng, 7)
        per_cycle = TraceTraffic(trace, 5)
        stacked = np.stack([per_cycle.generate(rng) for _ in range(7)])
        assert np.array_equal(chunked, stacked)

    def test_from_file_round_trip(self, rng, tmp_path):
        trace = np.array([[3, 1, -1, 0], [0, 0, 2, 2]])
        path = tmp_path / "demands.npy"
        np.save(path, trace)
        gen = TraceTraffic.from_file(str(path), n_inputs=4, n_outputs=4)
        assert np.array_equal(gen.generate(rng), trace[0])
        assert gen.describe() == f"trace:{path}"

    def test_from_file_rejects_wrong_width(self, tmp_path):
        path = tmp_path / "demands.npy"
        np.save(path, np.zeros((3, 8), dtype=np.int64))
        with pytest.raises(ConfigurationError, match="inputs"):
            TraceTraffic.from_file(str(path), n_inputs=4)

    def test_missing_file_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="cannot load"):
            TraceTraffic.from_file("no/such/trace.npy")

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError, match="out-of-range"):
            TraceTraffic(np.array([[9]]), 4)


class TestNewPatterns:
    def test_complement_inverts_bits(self, rng):
        dests = structured_permutation("complement", 16).generate(rng)
        assert all(dests[i] == (i ^ 15) for i in range(16))

    def test_tornado_is_a_rotation(self, rng):
        dests = structured_permutation("tornado", 8).generate(rng)
        assert all(dests[i] == (i + 3) % 8 for i in range(8))

    def test_pattern_rate_thins(self, rng):
        gen = structured_permutation("shuffle", 1024, rate=0.25)
        active = (gen.generate(rng) != -1).mean()
        assert 0.15 < active < 0.35

    def test_fixed_pattern_rate(self, rng):
        gen = FixedPattern(np.arange(2048), 2048, rate=0.5)
        batch = gen.generate_batch(rng, 4)
        live = batch != -1
        assert 0.4 < live.mean() < 0.6
        assert (batch[live] == np.broadcast_to(np.arange(2048), (4, 2048))[live]).all()


class TestDescribe:
    def test_hand_built_generator_has_no_spec(self):
        with pytest.raises(ConfigurationError, match="no workload spec"):
            FixedPattern([0, 1], 2).describe()

    def test_structured_label_parses(self):
        from repro.workloads import parse_workload

        gen = structured_permutation("bit_reversal", 16, rate=0.5)
        assert parse_workload(gen.describe()).name == "bitrev"
