"""Property tests over every registered workload (the subsystem's contract).

Three invariants for the whole registry:

* batched and per-cycle generation agree *distribution-wise* for seeded
  rngs (vectorized ``generate_batch`` may consume the stream in a
  different order, but never a different law);
* every draw respects the ``n_outputs`` bound (``-1`` idle or a valid
  output terminal);
* every built model round-trips: ``parse -> build -> describe`` yields a
  spec the registry parses back to an equivalent model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import available_workloads, make_traffic, parse_workload

N = 64
BATCH = 300


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "demands.npy"
    rng = np.random.default_rng(7)
    trace = rng.integers(-1, N, size=(17, N))
    np.save(path, trace)
    return str(path)


def registry_specs(trace_path: str) -> dict[str, str]:
    """One buildable spec per registered workload name."""
    specs = {
        "uniform": "uniform:0.8",
        "permutation": "permutation:0.9",
        "hotspot": "hotspot:0.2,out=3,rate=0.9",
        "bursty": "bursty:on=8,off=24",
        "mixture": "mixture:uniform@0.7+hotspot:0.1@0.3",
        "trace": f"trace:{trace_path}",
        "identity": "identity",
        "reversal": "reversal",
        "bitrev": "bitrev:0.5",
        "shuffle": "shuffle",
        "transpose": "transpose",
        "butterfly": "butterfly",
        "complement": "complement",
        "tornado": "tornado",
    }
    assert set(specs) == set(available_workloads()), "registry grew: extend the spec map"
    return specs


@pytest.fixture(params=sorted(registry_specs("x.npy")))
def spec_text(request, trace_path):
    return registry_specs(trace_path)[request.param]


def _histogram(demands: np.ndarray) -> np.ndarray:
    live = demands[demands != -1]
    return np.bincount(live, minlength=N) / max(live.size, 1)


def test_batch_matches_stacked_generate_distribution(spec_text):
    batched = make_traffic(spec_text, N, N)
    per_cycle = make_traffic(spec_text, N, N)
    chunk = batched.generate_batch(np.random.default_rng(42), BATCH)
    cycle_rng = np.random.default_rng(43)
    stacked = np.stack([per_cycle.generate(cycle_rng) for _ in range(BATCH)])
    assert chunk.shape == stacked.shape == (BATCH, N)
    activity_gap = abs((chunk != -1).mean() - (stacked != -1).mean())
    assert activity_gap < 0.03, f"offered-load mismatch: {activity_gap:.4f}"
    tv_distance = 0.5 * np.abs(_histogram(chunk) - _histogram(stacked)).sum()
    assert tv_distance < 0.08, f"destination-law mismatch: TV={tv_distance:.4f}"


def test_draws_respect_output_bounds(spec_text):
    gen = make_traffic(spec_text, N, N)
    chunk = gen.generate_batch(np.random.default_rng(0), 50)
    assert chunk.dtype == np.int64
    live = chunk[chunk != -1]
    if live.size:
        assert live.min() >= 0 and live.max() < gen.n_outputs
    single = make_traffic(spec_text, N, N).generate(np.random.default_rng(0))
    assert single.shape == (N,)
    assert ((single == -1) | ((single >= 0) & (single < N))).all()


def test_round_trips_through_parse_and_describe(spec_text):
    described = make_traffic(spec_text, N, N).describe()
    reparsed = parse_workload(described)
    rebuilt = reparsed.build(N, N)
    assert rebuilt.describe() == described
    assert type(rebuilt) is type(make_traffic(spec_text, N, N))


def test_empty_batch_is_well_formed(spec_text):
    gen = make_traffic(spec_text, N, N)
    empty = gen.generate_batch(np.random.default_rng(0), 0)
    assert empty.shape == (0, N)
