"""Registry semantics: parsing, aliases, building, errors, the catalog."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.workloads import (
    WORKLOADS,
    BurstyTraffic,
    HotspotTraffic,
    MixtureTraffic,
    TraceTraffic,
    UniformTraffic,
    WorkloadSpec,
    available_workloads,
    make_traffic,
    parse_workload,
    workload_catalog,
)


class TestParse:
    def test_bare_name(self):
        spec = parse_workload("uniform")
        assert (spec.name, spec.args, spec.label) == ("uniform", "", "uniform")

    def test_args_preserved(self):
        assert parse_workload("hotspot:0.2,out=3").label == "hotspot:0.2,out=3"

    def test_whitespace_and_case_normalized(self):
        assert parse_workload("  Uniform : 0.5 ").name == "uniform"

    def test_aliases_resolve(self):
        assert parse_workload("perm").name == "permutation"
        assert parse_workload("nuts:0.2").name == "hotspot"
        assert parse_workload("bit_reversal").name == "bitrev"
        assert parse_workload("mix:uniform@1").name == "mixture"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            parse_workload("zipf")

    def test_unknown_argument_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown argument"):
            parse_workload("hotspot:heat=0.2")

    def test_bad_value_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot parse"):
            parse_workload("uniform:fast")

    def test_duplicate_argument_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            parse_workload("bursty:on=3,on=4")

    def test_positional_after_keyword_rejected(self):
        with pytest.raises(ConfigurationError, match="positional"):
            parse_workload("bursty:on=3,12")

    def test_excess_positionals_rejected(self):
        with pytest.raises(ConfigurationError, match="positional"):
            parse_workload("uniform:0.5,0.7")

    def test_mixture_components_validated_at_parse_time(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            parse_workload("mixture:zipf@0.5+uniform@0.5")
        with pytest.raises(ConfigurationError, match="SPEC@WEIGHT"):
            parse_workload("mixture:uniform")
        with pytest.raises(ConfigurationError, match="weight"):
            parse_workload("mixture:uniform@heavy")
        with pytest.raises(ConfigurationError, match="nest|cannot themselves"):
            parse_workload("mixture:mixture:uniform@1@1")

    def test_trace_requires_path(self):
        with pytest.raises(ConfigurationError, match="file path"):
            parse_workload("trace")
        # Path existence is a build-time concern, not a parse-time one.
        assert parse_workload("trace:missing.npy").args == "missing.npy"

    def test_spec_passthrough(self):
        spec = WorkloadSpec("uniform", "0.5")
        assert parse_workload(spec) is spec


class TestBuild:
    def test_classes(self):
        cases = {
            "uniform:0.75": UniformTraffic,
            "hotspot:0.2": HotspotTraffic,
            "bursty:on=4,off=4": BurstyTraffic,
            "mixture:uniform@0.5+hotspot:0.1@0.5": MixtureTraffic,
        }
        for text, cls in cases.items():
            assert isinstance(make_traffic(text, 64, 64), cls), text

    def test_hotspot_arguments_land(self):
        gen = make_traffic("hotspot:0.3,out=5,rate=0.9", 64, 64)
        assert (gen.hot_fraction, gen.hot_output, gen.rate) == (0.3, 5, 0.9)

    def test_pattern_requires_square(self):
        with pytest.raises(ConfigurationError, match="square"):
            make_traffic("bitrev", 32, 64)

    def test_pattern_requires_power_of_two(self):
        with pytest.raises(ConfigurationError, match="power-of-two"):
            make_traffic("shuffle", 12, 12)

    def test_generator_passthrough_checks_size(self):
        gen = UniformTraffic(32, 32)
        assert make_traffic(gen, 32, 32) is gen
        with pytest.raises(ConfigurationError, match="inputs"):
            make_traffic(gen, 64, 64)

    def test_trace_build(self, tmp_path, rng):
        path = tmp_path / "t.npy"
        np.save(path, np.zeros((2, 16), dtype=np.int64))
        gen = make_traffic(f"trace:{path}", 16, 16)
        assert isinstance(gen, TraceTraffic)
        assert gen.generate(rng).shape == (16,)

    def test_trace_with_rate_round_trips(self, tmp_path):
        path = tmp_path / "t.npy"
        np.save(path, np.zeros((2, 16), dtype=np.int64))
        gen = make_traffic(f"trace:{path},rate=0.5", 16, 16)
        assert gen.rate == 0.5
        rebuilt = parse_workload(gen.describe()).build(16, 16)
        assert rebuilt.rate == 0.5 and rebuilt.describe() == gen.describe()

    def test_trace_bad_rate_rejected_at_parse_time(self):
        with pytest.raises(ConfigurationError, match="rate"):
            parse_workload("trace:t.npy,rate=fast")


class TestRegistryShape:
    def test_expected_workloads_registered(self):
        expected = {
            "uniform", "permutation", "hotspot", "bursty", "mixture", "trace",
            "identity", "reversal", "bitrev", "shuffle", "transpose",
            "butterfly", "complement", "tornado",
        }
        assert expected == set(available_workloads())

    def test_catalog_has_syntax_and_summary(self):
        for entry in workload_catalog():
            assert entry.syntax.startswith(entry.name)
            assert entry.summary, f"{entry.name} lost its description"

    def test_catalog_summaries_come_from_model_docstrings(self):
        summaries = {entry.name: entry.summary for entry in workload_catalog()}
        assert summaries["uniform"] == UniformTraffic.__doc__.strip().splitlines()[0]
        assert summaries["bursty"] == BurstyTraffic.__doc__.strip().splitlines()[0]

    def test_duplicate_registration_rejected(self):
        from repro.workloads import register_workload

        with pytest.raises(ConfigurationError, match="already registered"):
            register_workload("uniform", syntax="uniform", summary="dup")(lambda *a: None)

    def test_specs_pickle_and_hash(self):
        spec = parse_workload("hotspot:0.2,out=3")
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, parse_workload("hotspot:0.2,out=3")}) == 1
