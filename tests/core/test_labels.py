"""Unit tests for mixed-radix label arithmetic."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ConfigurationError, LabelError
from repro.core.labels import (
    MixedRadix,
    bits_for_radices,
    digits_from_int,
    ilog2,
    int_from_digits,
    is_power_of_two,
    reverse_bits,
    rotate_left,
    rotate_right,
)


class TestPowerOfTwo:
    def test_accepts_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_rejects_non_powers(self):
        for n in (0, -1, -8, 3, 6, 12, 100):
            assert not is_power_of_two(n)

    def test_ilog2_roundtrip(self):
        for k in range(16):
            assert ilog2(1 << k) == k

    def test_ilog2_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            ilog2(6)

    def test_ilog2_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            ilog2(0)


class TestDigitConversion:
    def test_known_expansion(self):
        assert digits_from_int(27, (4, 4, 2)) == (3, 1, 1)

    def test_roundtrip_mixed_radices(self):
        radices = (4, 16, 2, 8)
        size = 4 * 16 * 2 * 8
        for value in range(0, size, 7):
            digits = digits_from_int(value, radices)
            assert int_from_digits(digits, radices) == value

    def test_most_significant_first(self):
        # 3 * 16 + 2 * 4 + 1 with radices (4, 4, 4) reads MSB-first.
        assert digits_from_int(3 * 16 + 2 * 4 + 1, (4, 4, 4)) == (3, 2, 1)

    def test_rejects_negative(self):
        with pytest.raises(LabelError):
            digits_from_int(-1, (4, 4))

    def test_rejects_overflow(self):
        with pytest.raises(LabelError):
            digits_from_int(16, (4, 4))
        digits_from_int(15, (4, 4))  # boundary fits

    def test_rejects_digit_out_of_range(self):
        with pytest.raises(LabelError):
            int_from_digits((4, 0), (4, 4))

    def test_rejects_length_mismatch(self):
        with pytest.raises(LabelError):
            int_from_digits((1, 2, 3), (4, 4))

    def test_bits_for_radices(self):
        assert bits_for_radices((16, 16, 4)) == 4 + 4 + 2

    def test_bits_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            bits_for_radices((16, 3))


class TestRotations:
    def test_rotate_left_wraps_top_bits(self):
        assert rotate_left(0b1001, 4, 1) == 0b0011

    def test_rotate_right_inverse_of_left(self):
        for value in range(64):
            for k in range(7):
                assert rotate_right(rotate_left(value, 6, k), 6, k) == value

    def test_full_rotation_is_identity(self):
        for value in range(32):
            assert rotate_left(value, 5, 5) == value

    def test_rotation_reduces_modulo_width(self):
        assert rotate_left(0b101, 3, 4) == rotate_left(0b101, 3, 1)

    def test_rejects_value_too_wide(self):
        with pytest.raises(LabelError):
            rotate_left(16, 4, 1)

    def test_zero_width_zero_value(self):
        assert rotate_left(0, 0, 3) == 0
        assert rotate_right(0, 0, 3) == 0

    def test_reverse_bits(self):
        assert reverse_bits(0b1101, 4) == 0b1011

    def test_reverse_bits_involution(self):
        for value in range(256):
            assert reverse_bits(reverse_bits(value, 8), 8) == value

    def test_reverse_rejects_too_wide(self):
        with pytest.raises(LabelError):
            reverse_bits(256, 8)


class TestMixedRadix:
    def test_size(self):
        assert MixedRadix((4, 4, 2)).size == 32

    def test_roundtrip(self):
        scheme = MixedRadix((16, 16, 4))
        for value in range(0, scheme.size, 13):
            assert scheme.from_digits(scheme.to_digits(value)) == value

    def test_with_digit(self):
        scheme = MixedRadix((4, 4, 2))
        assert scheme.with_digit(0, 0, 3) == 3 * 8

    def test_with_digit_rejects_out_of_range(self):
        with pytest.raises(LabelError):
            MixedRadix((4, 4)).with_digit(0, 1, 4)

    def test_digit_extraction(self):
        scheme = MixedRadix((4, 4, 2))
        assert scheme.digit(27, 0) == 3
        assert scheme.digit(27, 2) == 1

    def test_equality_and_hash(self):
        assert MixedRadix((4, 2)) == MixedRadix((4, 2))
        assert MixedRadix((4, 2)) != MixedRadix((2, 4))
        assert hash(MixedRadix((4, 2))) == hash(MixedRadix((4, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            MixedRadix(())

    def test_rejects_bad_radix(self):
        with pytest.raises(ConfigurationError):
            MixedRadix((4, 0))

    def test_num_digits(self):
        assert MixedRadix((2, 2, 2, 2)).num_digits == 4
