"""Unit tests for EDN topology wiring (Definition 2, Eq. 1)."""

from __future__ import annotations

import pytest

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError, LabelError
from repro.core.topology import EDNTopology


class TestLocations:
    def test_input_location(self):
        topo = EDNTopology(EDNParams(16, 4, 4, 2))
        assert topo.input_location(0) == (0, 0)
        assert topo.input_location(17) == (1, 1)
        assert topo.input_location(63) == (3, 15)

    def test_input_location_range(self):
        topo = EDNTopology(EDNParams(16, 4, 4, 2))
        with pytest.raises(LabelError):
            topo.input_location(64)

    def test_hyperbar_input_location(self):
        topo = EDNTopology(EDNParams(16, 4, 4, 2))
        assert topo.hyperbar_input_location(1, 20) == (1, 4)

    def test_hyperbar_output_label_roundtrip(self, small_params):
        topo = EDNTopology(small_params)
        p = small_params
        for i in range(1, p.l + 1):
            per_switch = p.b * p.c
            for switch in range(p.hyperbars_in_stage(i)):
                for local in range(per_switch):
                    label = topo.hyperbar_output_label(i, switch, local)
                    assert label == switch * per_switch + local

    def test_crossbar_locations(self):
        topo = EDNTopology(EDNParams(16, 4, 4, 2))
        assert topo.crossbar_input_location(0) == (0, 0)
        assert topo.crossbar_input_location(63) == (15, 3)
        assert topo.crossbar_output_terminal(15, 3) == 63

    def test_crossbar_bounds(self):
        topo = EDNTopology(EDNParams(16, 4, 4, 2))
        with pytest.raises(LabelError):
            topo.crossbar_output_terminal(16, 0)
        with pytest.raises(LabelError):
            topo.crossbar_output_terminal(0, 4)


class TestInterstage:
    def test_bijection_between_every_pair_of_stages(self, small_params):
        topo = EDNTopology(small_params)
        for i in range(1, small_params.l + 1):
            width = small_params.wires_after_stage(i)
            images = {topo.interstage(i, y) for y in range(width)}
            assert images == set(range(width))

    def test_inverse_roundtrip(self, small_params):
        topo = EDNTopology(small_params)
        for i in range(1, small_params.l + 1):
            width = small_params.wires_after_stage(i)
            for y in range(width):
                assert topo.interstage_inverse(i, topo.interstage(i, y)) == y

    def test_fixes_capacity_bits(self, small_params):
        # Eq. 1's gamma fixes the low log2(c) bits (the wire-within-bucket).
        topo = EDNTopology(small_params)
        mask = small_params.c - 1
        for i in range(1, small_params.l):
            width = small_params.wires_after_stage(i)
            for y in range(0, width, 3):
                assert topo.interstage(i, y) & mask == y & mask

    def test_last_stage_feeds_crossbars_directly(self, small_params):
        # "each of the b^l buckets are sent directly to a c x c crossbar".
        topo = EDNTopology(small_params)
        width = small_params.wires_after_stage(small_params.l)
        for y in range(width):
            assert topo.interstage(small_params.l, y) == y

    def test_lemma1_stage1_to_stage2_algebra(self):
        # Verify Eq. 1 against Lemma 1's explicit expansion for EDN(16,4,4,2):
        # L1 = ((s1)b + d1)c + K1 maps to ((d1)(a/c) + s1)c + K1.
        p = EDNParams(16, 4, 4, 2)
        topo = EDNTopology(p)
        a_over_c, b, c = p.fan_in, p.b, p.c
        for s1 in range(a_over_c):
            for d1 in range(b):
                for k1 in range(c):
                    y = (s1 * b + d1) * c + k1
                    expected = (d1 * a_over_c + s1) * c + k1
                    assert topo.interstage(1, y) == expected

    def test_interstage_index_bounds(self):
        topo = EDNTopology(EDNParams(16, 4, 4, 2))
        with pytest.raises(ConfigurationError):
            topo.interstage(0, 0)
        with pytest.raises(ConfigurationError):
            topo.interstage(3, 0)
        with pytest.raises(LabelError):
            topo.interstage(1, 10_000)


class TestStructuralCounts:
    def test_crosspoints_match_switch_census(self, small_params):
        topo = EDNTopology(small_params)
        p = small_params
        expected = (
            sum(p.hyperbars_in_stage(i) for i in range(1, p.l + 1)) * p.a * p.b * p.c
            + p.num_crossbars * p.c * p.c
        )
        assert topo.count_crosspoints() == expected

    def test_wire_census(self, small_params):
        topo = EDNTopology(small_params)
        p = small_params
        expected = p.num_inputs + p.num_outputs
        for i in range(1, p.l + 1):
            expected += p.wires_after_stage(i)
        assert topo.count_wires() == expected

    def test_stage_summary_shape(self):
        p = EDNParams(16, 4, 4, 2)
        summary = EDNTopology(p).stage_summary()
        assert len(summary) == p.l + 1
        assert summary[0]["kind"] == "hyperbar"
        assert summary[-1]["kind"] == "crossbar"
        assert summary[-1]["switches"] == 16
        assert summary[0]["wires_in"] == 64
