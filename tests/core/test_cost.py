"""Unit tests for the cost models (Section 3.1, Eqs. 2-3)."""

from __future__ import annotations

import pytest

from repro.core.config import EDNParams
from repro.core.cost import (
    cost_report,
    crossbar_crosspoint_cost,
    crosspoint_cost,
    crosspoint_cost_closed_form,
    delta_crosspoint_cost,
    wire_cost,
    wire_cost_closed_form,
)
from repro.core.topology import EDNTopology

ALL_CONFIGS = [
    (16, 4, 4, 2),
    (64, 16, 4, 2),
    (8, 2, 4, 3),
    (8, 4, 2, 3),
    (8, 8, 1, 3),
    (16, 2, 8, 2),
    (4, 2, 1, 4),   # a/c = 4 != b = 2 branch
    (16, 4, 2, 3),  # a/c = 8 != b = 4 branch
    (2, 2, 1, 1),
    (4, 2, 2, 5),
]


@pytest.mark.parametrize("cfg", ALL_CONFIGS, ids=lambda c: f"EDN{c}")
class TestClosedFormsMatchEnumeration:
    def test_crosspoints(self, cfg):
        params = EDNParams(*cfg)
        enumerated = EDNTopology(params).count_crosspoints()
        assert crosspoint_cost(params) == enumerated
        assert crosspoint_cost_closed_form(params) == enumerated

    def test_wires(self, cfg):
        params = EDNParams(*cfg)
        enumerated = EDNTopology(params).count_wires()
        assert wire_cost(params) == enumerated
        assert wire_cost_closed_form(params) == enumerated


class TestLimitingCases:
    def test_crossbar_case_cost(self):
        # EDN(a,b,1,1) is an a x b crossbar plus b trivial 1x1 "crossbars".
        p = EDNParams(8, 4, 1, 1)
        assert crosspoint_cost(p) == 8 * 4 + 4

    def test_equal_branch_wire_closed_form(self):
        # a/c = b: Cw = (l+2) b^l c.
        p = EDNParams(16, 4, 4, 3)
        assert wire_cost_closed_form(p) == (3 + 2) * 4**3 * 4

    def test_delta_cost_helper(self):
        assert delta_crosspoint_cost(4, 4, 3) == crosspoint_cost(EDNParams(4, 4, 1, 3))

    def test_crossbar_helper(self):
        assert crossbar_crosspoint_cost(32) == 1024
        assert crossbar_crosspoint_cost(8, 16) == 128


class TestPaperClaims:
    def test_edn_cheaper_than_crossbar_at_scale(self):
        # Section 6: EDN cost approximates the delta's, far below the crossbar.
        p = EDNParams(64, 16, 4, 2)   # 1024x1024
        crossbar = crossbar_crosspoint_cost(p.num_inputs, p.num_outputs)
        assert crosspoint_cost(p) < crossbar / 7  # 135K vs 1M crosspoints

    def test_edn_cost_within_small_factor_of_delta(self):
        edn = EDNParams(64, 16, 4, 2)        # 1024 terminals, c = 4
        delta = EDNParams(32, 32, 1, 2)      # 1024 terminals, c = 1
        ratio = crosspoint_cost(edn) / crosspoint_cost(delta)
        assert 1.0 <= ratio <= 16.0

    def test_cost_grows_with_capacity(self):
        # Within the 16-I/O family at equal terminal count scale.
        low = EDNParams(16, 16, 1, 2)
        high = EDNParams(64, 16, 4, 2)
        assert crosspoint_cost(high) > crosspoint_cost(low)

    def test_paper_eq2_equal_branch_correction(self):
        # DESIGN.md note 5: the sum form is authoritative; verify the
        # corrected closed form term-by-term for a/c = b.
        p = EDNParams(16, 4, 4, 2)
        expected = p.l * p.b ** (p.l + 1) * p.c**2 + p.b**p.l * p.c**2
        assert crosspoint_cost_closed_form(p) == expected


class TestCostReport:
    def test_report_fields(self):
        report = cost_report(EDNParams(16, 4, 4, 2))
        assert report["crosspoints"] == report["crosspoints_closed_form"]
        assert report["wires"] == report["wires_closed_form"]
        assert 0 < report["cost_ratio_vs_crossbar"] <= 2.0

    def test_report_crossbar_equivalent(self):
        report = cost_report(EDNParams(64, 16, 4, 2))
        assert report["crossbar_equivalent_crosspoints"] == 1024 * 1024
