"""Unit tests for the reference circuit-switched routing engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError, LabelError
from repro.core.network import EDNetwork, Message
from repro.core.tags import DestinationTag, RetirementOrder


class TestSingleMessage:
    """Lemma 1 / Theorem 1: a lone message always reaches its destination."""

    def test_every_pair_connects(self, small_params):
        net = EDNetwork(small_params)
        step_in = max(1, small_params.num_inputs // 8)
        step_out = max(1, small_params.num_outputs // 8)
        for source in range(0, small_params.num_inputs, step_in):
            for dest in range(0, small_params.num_outputs, step_out):
                result = net.route_cycle([Message.to_output(source, dest, small_params)])
                outcome = result.outcomes[0]
                assert outcome.delivered
                assert outcome.output == dest

    def test_sampled_pairs_on_big_networks(self, big_params, rng):
        net = EDNetwork(big_params)
        for _ in range(25):
            source = int(rng.integers(big_params.num_inputs))
            dest = int(rng.integers(big_params.num_outputs))
            result = net.route_cycle([Message.to_output(source, dest, big_params)])
            assert result.outcomes[0].delivered
            assert result.outcomes[0].output == dest

    def test_path_length_is_l_plus_1(self, small_params):
        net = EDNetwork(small_params)
        result = net.route_cycle([Message.to_output(0, 0, small_params)])
        assert len(result.outcomes[0].path) == small_params.l + 1

    def test_path_final_entry_is_output(self, small_params):
        net = EDNetwork(small_params)
        dest = small_params.num_outputs - 1
        result = net.route_cycle([Message.to_output(0, dest, small_params)])
        assert result.outcomes[0].path[-1] == dest


class TestContention:
    def test_all_to_one_output_delivers_exactly_one(self, small_params):
        net = EDNetwork(small_params)
        result = net.route_destinations({s: 0 for s in range(small_params.num_inputs)})
        assert result.num_delivered == 1
        delivered = result.delivered[0]
        assert delivered.output == 0

    def test_blocked_messages_report_a_stage(self, small_params):
        net = EDNetwork(small_params)
        result = net.route_destinations({s: 0 for s in range(small_params.num_inputs)})
        for outcome in result.blocked:
            assert 1 <= outcome.blocked_stage <= small_params.l + 1
            assert outcome.output is None

    def test_acceptance_ratio(self):
        p = EDNParams(4, 2, 2, 1)
        net = EDNetwork(p)
        result = net.route_destinations({0: 0, 1: 0, 2: 0, 3: 0})
        assert result.acceptance_ratio == pytest.approx(1 / 4)

    def test_output_map_consistent(self, small_params):
        net = EDNetwork(small_params)
        demands = {s: (s * 5) % small_params.num_outputs for s in range(small_params.num_inputs)}
        result = net.route_destinations(demands)
        for output, message in result.output_map().items():
            assert message.tag.output(small_params) == output

    def test_no_output_double_delivery(self, small_params, rng):
        net = EDNetwork(small_params)
        demands = {
            s: int(rng.integers(small_params.num_outputs))
            for s in range(small_params.num_inputs)
        }
        result = net.route_destinations(demands)
        outputs = [o.output for o in result.delivered]
        assert len(outputs) == len(set(outputs))

    def test_blocked_stage_histogram_sums(self, small_params, rng):
        net = EDNetwork(small_params)
        demands = {
            s: int(rng.integers(small_params.num_outputs))
            for s in range(small_params.num_inputs)
        }
        result = net.route_destinations(demands)
        histogram = result.blocked_stage_histogram()
        assert sum(histogram.values()) == len(result.blocked)


class TestInputValidation:
    def test_duplicate_source_rejected(self):
        p = EDNParams(16, 4, 4, 2)
        net = EDNetwork(p)
        messages = [Message.to_output(3, 0, p), Message.to_output(3, 1, p)]
        with pytest.raises(LabelError):
            net.route_cycle(messages)

    def test_source_out_of_range(self):
        p = EDNParams(16, 4, 4, 2)
        net = EDNetwork(p)
        with pytest.raises(LabelError):
            net.route_cycle([Message.to_output(64, 0, p)])

    def test_bad_tag_rejected(self):
        p = EDNParams(16, 4, 4, 2)
        net = EDNetwork(p)
        with pytest.raises(LabelError):
            net.route_cycle([Message(source=0, tag=DestinationTag((9, 0), 0))])

    def test_retirement_order_must_match_l(self):
        with pytest.raises(ConfigurationError):
            EDNetwork(EDNParams(16, 4, 4, 2), retirement_order=RetirementOrder.canonical(3))

    def test_route_destinations_accepts_sequence(self):
        p = EDNParams(16, 4, 4, 2)
        net = EDNetwork(p)
        dests = [None] * p.num_inputs
        dests[5] = 40
        result = net.route_destinations(dests)
        assert result.num_offered == 1
        assert result.delivered[0].output == 40


class TestRetirementOrders:
    """Corollary 2 at the network level (Figures 5-6)."""

    def test_identity_blocks_canonically_on_maspar_net(self, maspar_params):
        net = EDNetwork(maspar_params)
        result = net.route_destinations({s: s for s in range(maspar_params.num_inputs)})
        # 16 first-stage hyperbars x capacity 4 = 64 survivors.
        assert result.num_delivered == 64

    def test_identity_routes_fully_under_reversed_order(self, maspar_params):
        order = RetirementOrder.reversed_order(maspar_params.l)
        net = EDNetwork(maspar_params, retirement_order=order)
        result = net.route_destinations({s: s for s in range(maspar_params.num_inputs)})
        assert result.num_delivered == maspar_params.num_inputs

    def test_fixup_restores_destinations(self, maspar_params):
        order = RetirementOrder.reversed_order(maspar_params.l)
        net = EDNetwork(maspar_params, retirement_order=order)
        fixup = order.fixup_permutation(maspar_params)
        result = net.route_destinations({s: s for s in range(maspar_params.num_inputs)})
        for outcome in result.delivered:
            assert fixup(outcome.output) == outcome.message.tag.output(maspar_params)

    def test_single_message_lands_on_landing_output(self, small_params):
        if small_params.l < 2:
            pytest.skip("needs at least two digits to reorder")
        order = RetirementOrder.reversed_order(small_params.l)
        net = EDNetwork(small_params, retirement_order=order)
        tag = DestinationTag.from_output(small_params.num_outputs - 1, small_params)
        result = net.route_cycle([Message(source=0, tag=tag)])
        assert result.outcomes[0].output == order.landing_output(tag, small_params)


class TestRandomPriority:
    def test_requires_rng(self):
        p = EDNParams(4, 2, 2, 1)
        net = EDNetwork(p, priority="random")
        with pytest.raises(ConfigurationError):
            net.route_destinations({0: 0, 1: 0, 2: 0, 3: 0})

    def test_runs_with_rng(self, rng):
        p = EDNParams(4, 2, 2, 1)
        net = EDNetwork(p, priority="random")
        result = net.route_destinations({0: 0, 1: 0, 2: 0, 3: 0}, rng=rng)
        assert result.num_delivered == 1
