"""Unit tests for destination tags and digit retirement (Lemma 1, Corollary 2)."""

from __future__ import annotations

import pytest

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError, LabelError
from repro.core.tags import DestinationTag, RetirementOrder, tag_scheme


class TestDestinationTag:
    def test_from_output_roundtrip(self, small_params):
        for output in range(small_params.num_outputs):
            tag = DestinationTag.from_output(output, small_params)
            assert tag.output(small_params) == output

    def test_known_expansion(self):
        p = EDNParams(16, 4, 4, 2)
        tag = DestinationTag.from_output(27, p)
        assert tag.digits == (1, 2)
        assert tag.x == 3

    def test_digit_for_stage_canonical(self):
        p = EDNParams(16, 4, 4, 2)
        tag = DestinationTag.from_output(27, p)
        # Stage 1 retires the most significant digit d_{l-1}.
        assert tag.digit_for_stage(1) == 1
        assert tag.digit_for_stage(2) == 2

    def test_digit_for_stage_bounds(self):
        p = EDNParams(16, 4, 4, 2)
        tag = DestinationTag.from_output(0, p)
        with pytest.raises(LabelError):
            tag.digit_for_stage(0)
        with pytest.raises(LabelError):
            tag.digit_for_stage(3)

    def test_validate_passes_for_matching_params(self):
        p = EDNParams(16, 4, 4, 2)
        DestinationTag((3, 0), 2).validate(p)

    def test_validate_rejects_wrong_digit_count(self):
        p = EDNParams(16, 4, 4, 2)
        with pytest.raises(LabelError):
            DestinationTag((3,), 2).validate(p)

    def test_validate_rejects_digit_range(self):
        p = EDNParams(16, 4, 4, 2)
        with pytest.raises(LabelError):
            DestinationTag((4, 0), 2).validate(p)
        with pytest.raises(LabelError):
            DestinationTag((0, 0), 4).validate(p)

    def test_str_format(self):
        assert str(DestinationTag((1, 2), 3)) == "D=12|x=3"

    def test_tag_scheme_size(self):
        assert tag_scheme(EDNParams(16, 4, 4, 2)).size == 64


class TestRetirementOrder:
    def test_canonical(self):
        order = RetirementOrder.canonical(3)
        assert order.order == (0, 1, 2)
        assert order.is_canonical()

    def test_reversed(self):
        order = RetirementOrder.reversed_order(3)
        assert order.order == (2, 1, 0)
        assert not order.is_canonical()

    def test_rejects_non_permutation(self):
        with pytest.raises(ConfigurationError):
            RetirementOrder((0, 0, 1))
        with pytest.raises(ConfigurationError):
            RetirementOrder((1, 2))

    def test_position_for_stage(self):
        order = RetirementOrder((2, 0, 1))
        assert order.position_for_stage(1) == 2
        assert order.position_for_stage(3) == 1
        with pytest.raises(LabelError):
            order.position_for_stage(4)

    def test_landing_output_canonical_is_identity(self, small_params):
        order = RetirementOrder.canonical(small_params.l)
        for output in range(0, small_params.num_outputs, 3):
            tag = DestinationTag.from_output(output, small_params)
            assert order.landing_output(tag, small_params) == output

    def test_landing_output_swapped_digits(self):
        p = EDNParams(64, 16, 4, 2)
        order = RetirementOrder((1, 0))
        tag = DestinationTag((3, 7), 2)   # D = (3,7)|2
        landed = order.landing_output(tag, p)
        assert landed == DestinationTag((7, 3), 2).output(p)

    def test_fixup_restores_every_destination(self, small_params):
        # Corollary 2: fixup(landing(D)) == D for all tags.
        p = small_params
        for order_tuple in _orders_for(p.l):
            order = RetirementOrder(order_tuple)
            fixup = order.fixup_permutation(p)
            for output in range(p.num_outputs):
                tag = DestinationTag.from_output(output, p)
                assert fixup(order.landing_output(tag, p)) == output

    def test_fixup_of_canonical_is_identity(self, small_params):
        order = RetirementOrder.canonical(small_params.l)
        assert order.fixup_permutation(small_params).is_identity()

    def test_fixup_rejects_mismatched_l(self):
        with pytest.raises(ConfigurationError):
            RetirementOrder.canonical(3).fixup_permutation(EDNParams(16, 4, 4, 2))

    def test_equality(self):
        assert RetirementOrder((1, 0)) == RetirementOrder((1, 0))
        assert RetirementOrder((1, 0)) != RetirementOrder((0, 1))


def _orders_for(l: int) -> list[tuple[int, ...]]:
    """A small set of digit orders: canonical, reversed, and one rotation."""
    canonical = tuple(range(l))
    reversed_ = tuple(reversed(canonical))
    rotated = canonical[1:] + canonical[:1]
    return list({canonical, reversed_, rotated})
