"""Test package."""
