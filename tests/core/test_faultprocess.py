"""Tests for dynamic fault processes and the degradation trajectory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.core.faultprocess import (
    PermanentFaults,
    TransientFaults,
    TrajectoryPoint,
    degradation_trajectory,
)
from repro.core.faults import FaultSet
from repro.sim.stagegraph import delta_graph, edn_graph

PARAMS = EDNParams(8, 2, 4, 2)


class TestTransientFaults:
    def test_zero_rate_draws_nothing(self):
        process = TransientFaults(edn_graph(PARAMS), 0.0)
        assert all(len(process.advance(64)) == 0 for _ in range(4))

    def test_deterministic_given_seed(self):
        graph = edn_graph(PARAMS)
        a = [TransientFaults(graph, 0.1, seed=3).advance(32).canonical()
             for _ in range(1)]
        b = [TransientFaults(graph, 0.1, seed=3).advance(32).canonical()
             for _ in range(1)]
        assert a == b

    def test_windows_are_independent_redraws(self):
        process = TransientFaults(edn_graph(PARAMS), 0.3, seed=1)
        patterns = {process.advance(16).canonical() for _ in range(6)}
        assert len(patterns) > 1  # glitches clear; the pattern moves

    def test_validates_rate_and_window(self):
        graph = edn_graph(PARAMS)
        with pytest.raises(ConfigurationError):
            TransientFaults(graph, 1.5)
        with pytest.raises(ConfigurationError):
            TransientFaults(graph, 0.1).advance(0)

    def test_spares_terminal_pins(self):
        graph = edn_graph(PARAMS)
        process = TransientFaults(graph, 1.0, seed=0)
        faults = process.advance(8)
        assert len(faults) > 0
        assert all(f.stage < graph.num_stages for f in faults)


class TestPermanentFaults:
    def test_zero_rate_stays_pristine(self):
        process = PermanentFaults(edn_graph(PARAMS), 0.0)
        assert all(len(process.advance(128)) == 0 for _ in range(3))

    def test_damage_accumulates_without_repair(self):
        process = PermanentFaults(edn_graph(PARAMS), 5e-3, seed=2)
        previous: set = set()
        for _ in range(6):
            current = set(process.advance(64).canonical())
            assert previous <= current  # dead wires never resurrect
            previous = current
        assert previous  # the rate is high enough that something died

    def test_repair_brings_wires_back(self):
        process = PermanentFaults(
            edn_graph(PARAMS), 5e-3, repair_cycles=32, seed=2
        )
        sizes = [len(process.advance(64)) for _ in range(30)]
        assert max(sizes) > 0
        # With short repairs the damage level fluctuates instead of
        # climbing monotonically to saturation.
        assert any(b < a for a, b in zip(sizes, sizes[1:]))

    def test_clock_advances(self):
        process = PermanentFaults(edn_graph(PARAMS), 1e-4)
        process.advance(100)
        process.advance(28)
        assert process.time == 128.0

    def test_deterministic_given_seed(self):
        graph = edn_graph(PARAMS)
        a = PermanentFaults(graph, 3e-3, repair_cycles=100, seed=9)
        b = PermanentFaults(graph, 3e-3, repair_cycles=100, seed=9)
        for _ in range(5):
            assert a.advance(50).canonical() == b.advance(50).canonical()

    def test_validates_parameters(self):
        graph = edn_graph(PARAMS)
        with pytest.raises(ConfigurationError):
            PermanentFaults(graph, -0.1)
        with pytest.raises(ConfigurationError):
            PermanentFaults(graph, 0.1, repair_cycles=-1)
        with pytest.raises(ConfigurationError):
            PermanentFaults(graph, 0.1).advance(0)


class TestDegradationTrajectory:
    def test_trajectory_shape_and_ranges(self):
        graph = edn_graph(PARAMS)
        points = degradation_trajectory(
            graph,
            PermanentFaults(graph, 2e-3, seed=1),
            windows=5,
            cycles_per_window=32,
            seed=0,
        )
        assert len(points) == 5
        assert [p.cycle for p in points] == [32, 64, 96, 128, 160]
        for p in points:
            assert isinstance(p, TrajectoryPoint)
            assert 0.0 <= p.delivered_fraction <= 1.0
            assert 0.0 <= p.connectivity <= 1.0

    def test_pristine_process_keeps_full_connectivity(self):
        graph = edn_graph(PARAMS)
        points = degradation_trajectory(
            graph,
            TransientFaults(graph, 0.0),
            windows=3,
            cycles_per_window=16,
            seed=4,
        )
        assert all(p.n_faults == 0 and p.connectivity == 1.0 for p in points)

    def test_heavy_damage_disconnects_pairs(self):
        # The single-path delta loses pairs as soon as buckets die.
        graph = delta_graph(4, 4, 2)
        points = degradation_trajectory(
            graph,
            TransientFaults(graph, 0.3, seed=5),
            windows=4,
            cycles_per_window=16,
            seed=4,
        )
        assert any(p.connectivity < 1.0 for p in points if p.n_faults)

    def test_deterministic_given_seeds(self):
        graph = edn_graph(PARAMS)

        def run():
            return degradation_trajectory(
                graph,
                PermanentFaults(graph, 2e-3, repair_cycles=64, seed=7),
                windows=4,
                cycles_per_window=32,
                seed=2,
            )

        assert run() == run()

    def test_accepts_traffic_spec(self):
        graph = edn_graph(PARAMS)
        points = degradation_trajectory(
            graph,
            TransientFaults(graph, 0.05, seed=0),
            windows=2,
            cycles_per_window=16,
            traffic="hotspot:0.2",
            seed=1,
        )
        assert len(points) == 2

    def test_validates_windows(self):
        graph = edn_graph(PARAMS)
        with pytest.raises(ConfigurationError):
            degradation_trajectory(
                graph,
                TransientFaults(graph, 0.1),
                windows=0,
                cycles_per_window=16,
            )


class TestBufferedTrajectory:
    """Latency under degradation: the buffered closed-loop trajectory."""

    def test_buffered_points_carry_latency_and_occupancy(self):
        graph = edn_graph(PARAMS)
        points = degradation_trajectory(
            graph,
            PermanentFaults(graph, 2e-3, seed=1),
            windows=4,
            cycles_per_window=32,
            seed=0,
            buffer_depth=2,
        )
        assert len(points) == 4
        for p in points:
            assert p.throughput is not None and 0.0 <= p.throughput <= 1.0
            assert p.mean_occupancy is not None and p.mean_occupancy >= 0.0
            assert p.dropped >= 0 and p.in_flight >= 0
            if p.latency_p50 is not None:
                # Percentiles are ordered and at least the stage count.
                assert (
                    len(graph.stages)
                    <= p.latency_p50
                    <= p.latency_p95
                    <= p.latency_p99
                )

    def test_unbuffered_points_leave_buffered_fields_unset(self):
        graph = edn_graph(PARAMS)
        points = degradation_trajectory(
            graph,
            PermanentFaults(graph, 2e-3, seed=1),
            windows=2,
            cycles_per_window=32,
            seed=0,
        )
        for p in points:
            assert p.throughput is None and p.latency_p99 is None
            assert p.dropped == 0 and p.in_flight == 0

    def test_deterministic_given_seeds(self):
        graph = edn_graph(PARAMS)

        def run():
            return degradation_trajectory(
                graph,
                PermanentFaults(graph, 2e-3, repair_cycles=64, seed=7),
                windows=4,
                cycles_per_window=32,
                seed=2,
                buffer_depth=2,
            )

        assert run() == run()

    def test_dying_wires_drop_queued_packets_with_accounting(self):
        # Full-rate traffic on a heavily failing fabric: some window must
        # kill a wire with packets queued behind it.
        graph = edn_graph(PARAMS)
        points = degradation_trajectory(
            graph,
            PermanentFaults(graph, 5e-3, seed=3),
            windows=6,
            cycles_per_window=64,
            seed=1,
            buffer_depth=4,
        )
        assert any(p.dropped > 0 for p in points)
        assert all(p.dropped >= 0 for p in points)

    def test_degradation_raises_tail_latency(self):
        # Accumulating permanent damage shows up as queueing: the p99 of
        # a late, damaged window exceeds the first, pristine-ish window.
        graph = edn_graph(PARAMS)
        points = degradation_trajectory(
            graph,
            PermanentFaults(graph, 4e-3, seed=5),
            windows=6,
            cycles_per_window=64,
            seed=0,
            buffer_depth=2,
        )
        assert points[-1].n_faults > points[0].n_faults
        measured = [p for p in points if p.latency_p99 is not None]
        assert measured[-1].latency_p99 >= measured[0].latency_p50
