"""Property tests for fault-set canonicalization and connectivity.

Two halves:

* hypothesis properties over :class:`FaultSet` construction and the CLI
  fault grammar — canonical form is sorted, deduplicated, and invariant
  to input order/multiplicity;
* an independent brute-force path enumerator over the stage graph that
  :func:`connectivity_under_faults` must agree with exactly at small N.
  (They *should* agree: the ``c`` wires of a bucket all land on the same
  next-stage switch, so a lone message's switch-level path is unique and
  greedy first-live-wire routing cannot dead-end where another wire
  choice would have survived.)
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.core.faults import (
    FaultSet,
    WireFault,
    connectivity_under_faults,
    parse_fault_list,
    parse_fault_rate,
    random_faults,
)
from repro.core.labels import ilog2
from repro.sim.stagegraph import edn_graph, materialize_permutation

_faults = st.lists(
    st.builds(
        WireFault,
        st.integers(1, 4),
        st.integers(0, 7),
        st.integers(0, 7),
    ),
    min_size=1,
    max_size=12,
)


class TestCanonicalization:
    @given(_faults)
    def test_canonical_is_sorted_and_deduped(self, faults):
        canon = FaultSet(faults).canonical()
        assert list(canon) == sorted(set(faults))

    @given(_faults)
    def test_construction_order_invariant(self, faults):
        assert (
            FaultSet(reversed(faults)).canonical() == FaultSet(faults).canonical()
        )

    @given(_faults)
    def test_duplicates_collapse(self, faults):
        assert FaultSet(faults + faults).canonical() == FaultSet(faults).canonical()

    @given(_faults)
    def test_canonical_idempotent(self, faults):
        canon = FaultSet(faults).canonical()
        assert FaultSet(canon).canonical() == canon

    @given(_faults)
    def test_membership_matches_input(self, faults):
        fault_set = FaultSet(faults)
        assert all(fault in fault_set for fault in faults)
        assert len(fault_set) == len(set(faults))


class TestFaultGrammar:
    @given(_faults)
    def test_parse_round_trips_canonical_text(self, faults):
        text = ",".join(f"{f.stage}:{f.switch}:{f.local_wire}" for f in faults)
        assert parse_fault_list(text) == tuple(sorted(set(faults)))

    @given(_faults, st.randoms())
    def test_parse_is_order_and_dup_invariant(self, faults, random):
        shuffled = list(faults) + [random.choice(faults)]
        random.shuffle(shuffled)
        text = ",".join(f"{f.stage}:{f.switch}:{f.local_wire}" for f in shuffled)
        assert parse_fault_list(text) == tuple(sorted(set(faults)))

    @given(st.floats(0, 1, allow_nan=False), st.integers(0, 10**6))
    def test_fault_rate_round_trips(self, rate, seed):
        parsed_rate, parsed_seed = parse_fault_rate(f"{rate!r}@{seed}")
        assert parsed_rate == rate and parsed_seed == seed

    def test_fault_rate_seed_defaults_to_zero(self):
        assert parse_fault_rate("0.25") == (0.25, 0)

    @pytest.mark.parametrize("bad", ["", "1:2", "1:2:3:4", "a:b:c", "0:0:0", "-1:0:0"])
    def test_rejects_malformed_faults(self, bad):
        with pytest.raises(ConfigurationError):
            parse_fault_list(bad)

    @pytest.mark.parametrize("bad", ["fast", "1.5", "-0.1", "0.1@x"])
    def test_rejects_malformed_rates(self, bad):
        with pytest.raises(ConfigurationError):
            parse_fault_rate(bad)


# ----------------------------------------------------------------------
# Brute-force connectivity oracle
# ----------------------------------------------------------------------


def _brute_force_connectivity(params: EDNParams, faults: FaultSet) -> float:
    """Exhaustive path enumeration over the stage graph, no routing."""
    graph = edn_graph(params)
    links = [
        materialize_permutation(stage.link_perm)
        if stage.link_perm is not None
        else None
        for stage in graph.stages
    ]
    input_perm = (
        materialize_permutation(graph.input_perm)
        if graph.input_perm is not None
        else None
    )
    dead: dict[int, set[int]] = {}
    for fault in faults:
        stage = graph.stages[fault.stage - 1]
        dead.setdefault(fault.stage - 1, set()).add(
            fault.switch * stage.bucket_wires + fault.local_wire
        )
    last = graph.num_stages - 1

    def survives(i: int, wire: int, dest: int) -> bool:
        stage = graph.stages[i]
        switch = wire >> ilog2(stage.fan_in)
        digit = (dest >> stage.shift) & (stage.radix - 1)
        base = switch * stage.bucket_wires + digit * stage.capacity
        for rank in range(stage.capacity):
            y = base + rank
            if y in dead.get(i, ()):
                continue
            if i == last:
                assert y >> graph.out_shift == dest
                return True
            nxt = int(links[i][y]) if links[i] is not None else y
            if survives(i + 1, nxt, dest):
                return True
        return False

    n, m = graph.n_inputs, graph.n_outputs
    connected = sum(
        survives(0, int(input_perm[s]) if input_perm is not None else s, d)
        for s in range(n)
        for d in range(m)
    )
    return connected / (n * m)


class TestConnectivityOracle:
    @pytest.mark.parametrize(
        "params",
        [
            EDNParams(4, 4, 1, 2),  # pure delta: one path
            EDNParams(4, 2, 2, 2),  # 4 paths
            EDNParams(8, 2, 4, 2),  # 16 paths
            EDNParams(4, 2, 2, 3),  # deeper
        ],
        ids=str,
    )
    @pytest.mark.parametrize("rate", [0.05, 0.2, 0.5])
    def test_matches_brute_force_enumeration(self, params, rate):
        rng = np.random.default_rng(hash((params.a, params.b, params.c, rate)) % 2**32)
        for _ in range(5):
            faults = random_faults(params, rate, rng)
            assert connectivity_under_faults(params, faults) == pytest.approx(
                _brute_force_connectivity(params, faults), abs=1e-12
            )

    def test_fully_dead_bucket_on_one_branch(self):
        # All c wires of a bucket feed the same next-stage switch, so a
        # fully-dead downstream bucket kills every path through it — the
        # structural fact that makes greedy routing an exact connectivity
        # probe.  Both measures must agree on this adversarial pattern.
        params = EDNParams(4, 2, 2, 2)
        faults = FaultSet([WireFault(2, 0, 0), WireFault(2, 0, 1)])
        assert connectivity_under_faults(params, faults) == pytest.approx(
            _brute_force_connectivity(params, faults), abs=1e-12
        )

    def test_pristine_network_fully_connected(self):
        params = EDNParams(4, 2, 2, 2)
        assert _brute_force_connectivity(params, FaultSet.none()) == 1.0
