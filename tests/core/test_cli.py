"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.sim.native import available_tiers

#: The compiled backend ``auto`` resolves to on this host: the JIT
#: backend when a native tier (numba or a C toolchain) is runnable,
#: the batched NumPy kernels otherwise.
AUTO_COMPILED = "native" if available_tiers() else "batched"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_describe_args(self):
        args = build_parser().parse_args(["describe", "16", "4", "4", "2"])
        assert (args.a, args.b, args.c, args.l) == (16, 4, 4, 2)

    def test_pa_defaults(self):
        args = build_parser().parse_args(["pa", "16", "4", "4", "2"])
        assert args.rate == 1.0 and args.simulate == 0


class TestCommands:
    def test_describe(self, capsys):
        assert main(["describe", "16", "4", "4", "2"]) == 0
        out = capsys.readouterr().out
        assert "EDN(16,4,4,2)" in out
        assert "crosspoints (Eq. 2)" in out
        assert "2,304" in out

    def test_pa(self, capsys):
        assert main(["pa", "64", "16", "4", "2"]) == 0
        out = capsys.readouterr().out
        assert "PA(1) = 0.543738" in out

    def test_pa_with_simulation(self, capsys):
        assert main(["pa", "16", "4", "4", "2", "--simulate", "20"]) == 0
        assert "simulated over 20 cycles" in capsys.readouterr().out

    def test_pa_custom_rate(self, capsys):
        assert main(["pa", "16", "4", "4", "2", "-r", "0.5"]) == 0
        assert "PA(0.5)" in capsys.readouterr().out

    def test_experiment_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "sec5_example" in out

    def test_experiment_run_one(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_mimd(self, capsys):
        assert main(["mimd", "16", "4", "4", "2", "-r", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "PA' (resubmitted)" in out
        assert "0.76" in out


class TestRouteCommand:
    def test_single_topology(self, capsys):
        assert main(["route", "-t", "edn:16,4,4,2", "--cycles", "20"]) == 0
        out = capsys.readouterr().out
        assert "edn:16,4,4,2" in out
        assert AUTO_COMPILED in out

    def test_multi_topology_comparison_one_liner(self, capsys):
        argv = ["route", "--cycles", "10"]
        for topology in ("edn:16,4,4,2", "delta:8,8,2", "crossbar:64",
                         "clos:8,8", "benes:64"):
            argv += ["-t", topology]
        assert main(argv) == 0
        out = capsys.readouterr().out
        for topology, backend in (("delta:8,8,2", AUTO_COMPILED),
                                  ("clos:8,8", "matching"),
                                  ("benes:64", "looping")):
            assert topology in out and backend in out

    def test_explicit_backend(self, capsys):
        assert main(["route", "-t", "edn:16,4,4,2", "--cycles", "5",
                     "--backend", "reference"]) == 0
        assert "reference" in capsys.readouterr().out

    def test_bad_topology_is_an_error(self, capsys):
        assert main(["route", "-t", "hypercube:16", "--cycles", "5"]) == 2
        assert "hypercube" in capsys.readouterr().err

    def test_unsupported_backend_is_an_error(self, capsys):
        assert main(["route", "-t", "clos:8,8", "--backend", "batched"]) == 2
        assert "does not support" in capsys.readouterr().err

    def test_multi_traffic_comparison(self, capsys):
        assert main([
            "route", "-t", "edn:16,4,4,2", "--cycles", "20",
            "--traffic", "hotspot:0.1", "--traffic", "bitrev", "--traffic", "uniform",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("edn:16,4,4,2") == 3  # one row per workload
        for workload in ("hotspot:0.1", "bitrev", "uniform"):
            assert workload in out

    def test_traffic_crossed_with_topologies(self, capsys):
        assert main([
            "route", "-t", "edn:16,4,4,2", "-t", "omega:64", "--cycles", "10",
            "--traffic", "tornado", "--traffic", "uniform:0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("tornado") == 2 and out.count("uniform:0.5") == 2

    def test_default_traffic_reflects_rate(self, capsys):
        assert main(["route", "-t", "crossbar:16", "--cycles", "5", "-r", "0.5"]) == 0
        assert "uniform:0.5" in capsys.readouterr().out

    def test_bad_traffic_is_an_error(self, capsys):
        assert main(["route", "-t", "edn:16,4,4,2", "--traffic", "zipf"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestRouteFaultFlags:
    def test_explicit_faults_add_a_column(self, capsys):
        assert main([
            "route", "-t", "edn:16,4,4,2", "--cycles", "20",
            "--faults", "1:0:3,2:1:0",
        ]) == 0
        out = capsys.readouterr().out
        assert "faults" in out
        assert out.count("edn:16,4,4,2") == 1
        assert " 2 " in out  # two dead wires reported
        assert AUTO_COMPILED in out  # faulted routing stays compiled

    def test_fault_flags_repeat_and_dedup(self, capsys):
        assert main([
            "route", "-t", "edn:16,4,4,2", "--cycles", "10",
            "--faults", "1:0:3", "--faults", "2:1:0,1:0:3",
        ]) == 0
        assert " 2 " in capsys.readouterr().out  # 1:0:3 counted once

    def test_fault_rate_draws_per_topology(self, capsys):
        assert main([
            "route", "-t", "edn:16,4,4,2", "-t", "delta:256,4",
            "--cycles", "10", "--fault-rate", "0.02@7",
        ]) == 0
        out = capsys.readouterr().out
        assert "faults" in out and out.count(AUTO_COMPILED) == 2

    def test_fault_rate_seed_is_reproducible(self, capsys):
        argv = ["route", "-t", "delta:256,4", "--cycles", "10",
                "--fault-rate", "0.05@3"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_bad_fault_spec_is_an_error(self, capsys):
        assert main(["route", "-t", "edn:16,4,4,2", "--faults", "bogus"]) == 2
        assert "STAGE:SWITCH:WIRE" in capsys.readouterr().err

    def test_out_of_range_fault_is_an_error(self, capsys):
        assert main([
            "route", "-t", "edn:16,4,4,2", "--faults", "9:0:0",
        ]) == 2
        assert "stage" in capsys.readouterr().err

    def test_faults_on_global_topologies_are_an_error(self, capsys):
        assert main(["route", "-t", "clos:8,8", "--faults", "1:0:0"]) == 2
        assert "stage-graph kinds" in capsys.readouterr().err

    def test_retry_adds_closed_loop_columns(self, capsys):
        assert main([
            "route", "-t", "edn:4,2,2,2", "--cycles", "50", "--retry", "4:1:2",
        ]) == 0
        out = capsys.readouterr().out
        assert "retry 4:1:2" in out
        for column in ("attempts", "latency", "abandoned"):
            assert column in out

    def test_bad_retry_spec_is_an_error(self, capsys):
        assert main([
            "route", "-t", "edn:4,2,2,2", "--retry", "many",
        ]) == 2
        assert "retry" in capsys.readouterr().err

    def test_degradation_experiment_is_reachable(self, capsys):
        assert main(["experiment", "--list"]) == 0
        assert "degradation" in capsys.readouterr().out


class TestWorkloadsCommand:
    def test_lists_registry(self, capsys):
        assert main(["workloads", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("uniform", "hotspot", "bursty", "mixture", "trace", "bitrev"):
            assert name in out
        assert "spec syntax" in out

    def test_bare_command_also_lists(self, capsys):
        assert main(["workloads"]) == 0
        assert "Registered traffic models" in capsys.readouterr().out

    def test_descriptions_come_from_model_docstrings(self, capsys):
        from repro.workloads import UniformTraffic

        assert main(["workloads"]) == 0
        first_line = UniformTraffic.__doc__.strip().splitlines()[0]
        assert first_line in capsys.readouterr().out

    def test_inspects_one_spec(self, capsys):
        assert main(["workloads", "hotspot:0.2,out=3"]) == 0
        out = capsys.readouterr().out
        assert "HotspotTraffic" in out and "hotspot:0.2,out=3" in out

    def test_bad_spec_is_an_error(self, capsys):
        assert main(["workloads", "hotspot:heat=1"]) == 2
        assert "unknown argument" in capsys.readouterr().err


class TestMachineReadableOutput:
    def test_experiment_json(self, capsys):
        import json

        assert main(["experiment", "fig2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert isinstance(data, list) and data[0]["experiment_id"] == "fig2"
        assert "routing" in data[0]["tables"]

    def test_experiment_json_multiple_ids(self, capsys):
        import json

        assert main(["experiment", "fig2", "fig4", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert [entry["experiment_id"] for entry in data] == ["fig2", "fig4"]

    def test_experiment_csv(self, capsys):
        assert main(["experiment", "fig7", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "# fig7: series" in out
        assert "series,x,y" in out

    def test_json_and_csv_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig2", "--json", "--csv"])


class TestBatchedOptions:
    def test_pa_simulate_with_batch(self, capsys):
        assert main(["pa", "16", "4", "4", "2", "--simulate", "20", "--batch", "5"]) == 0
        assert "simulated over 20 cycles" in capsys.readouterr().out

    def test_experiment_accepts_jobs_and_batch(self, capsys):
        assert main(["experiment", "fig7_mc", "--jobs", "2", "--batch", "16"]) == 0
        assert "Monte-Carlo validation" in capsys.readouterr().out

    def test_experiment_overrides_ignored_by_analytic(self, capsys):
        assert main(["experiment", "fig2", "--jobs", "2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_maspar_batched_runs(self, capsys):
        assert main(["maspar", "--runs", "2", "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "cycles to drain" in out

    def test_experiment_traffic_override(self, capsys):
        assert main(["experiment", "workload_matrix", "--traffic", "hotspot:0.3"]) == 0
        out = capsys.readouterr().out
        assert "hotspot:0.3" in out
        assert "bitrev" not in out  # the override narrows the sweep

    def test_experiment_traffic_ignored_by_analytic(self, capsys):
        assert main(["experiment", "fig2", "--traffic", "hotspot:0.3"]) == 0
        assert "Figure 2" in capsys.readouterr().out


class TestBufferedRoute:
    def test_buffer_depth_prints_latency_table(self, capsys):
        assert main([
            "route", "-t", "edn:16,4,4,2", "--cycles", "80",
            "--buffer-depth", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Buffered packet switching" in out
        assert "depth" in out
        for column in ("p50", "p95", "p99", "occupancy"):
            assert column in out

    def test_buffered_route_with_faults_reports_drops(self, capsys):
        assert main([
            "route", "-t", "edn:16,4,4,2", "--cycles", "80",
            "--buffer-depth", "2", "--faults", "1:0:3",
        ]) == 0
        out = capsys.readouterr().out
        assert "faults" in out and "dropped" in out

    def test_buffered_route_is_reproducible(self, capsys):
        argv = ["route", "-t", "edn:16,4,4,2", "--cycles", "40",
                "--buffer-depth", "2", "--seed", "5"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_buffer_depth_rejects_retry(self, capsys):
        assert main([
            "route", "-t", "edn:16,4,4,2", "--buffer-depth", "2",
            "--retry", "4",
        ]) == 2
        assert "retry" in capsys.readouterr().err

    def test_chaos_command_is_registered(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["chaos", "--json", "--seed", "3"])
        assert args.command == "chaos" and args.seed == 3
