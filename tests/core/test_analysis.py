"""Unit tests for the analytic performance model (Eqs. 4-5)."""

from __future__ import annotations

from math import comb, exp

import pytest

from repro.core.analysis import (
    acceptance_probability,
    bucket_load_pmf,
    crossbar_acceptance,
    delta_acceptance,
    expected_accepted,
    expected_bandwidth,
    permutation_acceptance,
    stage_rates,
)
from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError


class TestExpectedAccepted:
    @pytest.mark.parametrize("shape", [(8, 2, 4), (8, 4, 2), (16, 4, 4), (64, 16, 4), (8, 8, 1)])
    @pytest.mark.parametrize("r", [0.05, 0.3, 0.7, 1.0])
    def test_matches_direct_binomial_sum(self, shape, r):
        a, b, c = shape
        direct = sum(min(n, c) * p for n, p in enumerate(bucket_load_pmf(a, b, r)))
        assert expected_accepted(a, b, c, r) == pytest.approx(direct, abs=1e-12)

    def test_zero_rate(self):
        assert expected_accepted(8, 4, 2, 0.0) == 0.0

    def test_monotone_in_rate(self):
        values = [expected_accepted(8, 4, 2, r / 10) for r in range(11)]
        assert values == sorted(values)

    def test_bounded_by_capacity(self):
        assert expected_accepted(64, 2, 4, 1.0) <= 4.0

    def test_saturating_single_bucket(self):
        # b = 1, r = 1: all a requests hit the bucket, exactly c granted.
        assert expected_accepted(8, 1, 2, 1.0) == pytest.approx(2.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            expected_accepted(8, 4, 2, 1.5)

    def test_rejects_capacity_above_inputs(self):
        with pytest.raises(ConfigurationError):
            expected_accepted(2, 2, 4, 0.5)

    def test_pmf_sums_to_one(self):
        pmf = bucket_load_pmf(16, 4, 0.7)
        assert sum(pmf) == pytest.approx(1.0)

    def test_pmf_matches_comb(self):
        pmf = bucket_load_pmf(4, 2, 1.0)
        for n, value in enumerate(pmf):
            assert value == pytest.approx(comb(4, n) * 0.5**4)


class TestStageRates:
    def test_starts_with_offered_rate(self):
        p = EDNParams(16, 4, 4, 2)
        assert stage_rates(p, 0.8)[0] == 0.8

    def test_length(self):
        p = EDNParams(16, 4, 4, 3)
        assert len(stage_rates(p, 1.0)) == 4

    def test_rates_never_increase_when_nonexpanding(self):
        # For b*c == a each stage can only attenuate the rate.
        p = EDNParams(16, 4, 4, 3)
        rates = stage_rates(p, 1.0)
        assert all(r2 <= r1 + 1e-12 for r1, r2 in zip(rates, rates[1:]))

    def test_partial_stages(self):
        p = EDNParams(16, 4, 4, 3)
        assert stage_rates(p, 1.0, stages=1) == stage_rates(p, 1.0)[:2]

    def test_stage_bound_check(self):
        with pytest.raises(ConfigurationError):
            stage_rates(EDNParams(16, 4, 4, 2), 1.0, stages=3)


class TestAcceptanceProbability:
    def test_paper_value_maspar(self, maspar_params):
        # Section 5: PA(1) = .544 for EDN(64,16,4,2).
        assert acceptance_probability(maspar_params, 1.0) == pytest.approx(0.544, abs=5e-4)

    def test_bounds(self, small_params):
        for r in (0.1, 0.5, 1.0):
            pa = acceptance_probability(small_params, r)
            assert 0.0 < pa <= 1.0

    def test_continuity_at_zero(self, small_params):
        assert acceptance_probability(small_params, 0.0) == 1.0
        assert acceptance_probability(small_params, 1e-9) == pytest.approx(1.0, abs=1e-6)

    def test_decreasing_in_rate(self, small_params):
        values = [acceptance_probability(small_params, r / 10) for r in range(1, 11)]
        assert all(v2 <= v1 + 1e-12 for v1, v2 in zip(values, values[1:]))

    def test_decreasing_in_depth(self):
        # Adding stages can only hurt under uniform traffic.
        values = [acceptance_probability(EDNParams(16, 4, 4, l), 1.0) for l in range(1, 6)]
        assert all(v2 < v1 for v1, v2 in zip(values, values[1:]))

    def test_capacity_helps(self):
        # Figure 7's family ordering at l = 2 (equal terminals not required;
        # the claim is per-family behaviour at matched switch I/O).
        delta = acceptance_probability(EDNParams(8, 8, 1, 2), 1.0)
        mid = acceptance_probability(EDNParams(8, 4, 2, 2), 1.0)
        high = acceptance_probability(EDNParams(8, 2, 4, 2), 1.0)
        assert delta < mid < high

    def test_bandwidth(self):
        p = EDNParams(16, 4, 4, 2)
        assert expected_bandwidth(p, 1.0) == pytest.approx(
            p.num_inputs * acceptance_probability(p, 1.0)
        )


class TestPermutationAcceptance:
    def test_single_stage_is_conflict_free(self):
        # Lemma 2 with l = 1: the whole network is the "last two stages".
        assert permutation_acceptance(EDNParams(16, 4, 4, 1), 1.0) == 1.0

    def test_beats_uniform_acceptance(self, small_params):
        # Removing final-stage blocking can only help.
        pap = permutation_acceptance(small_params, 1.0)
        pa = acceptance_probability(small_params, 1.0)
        assert pap >= pa - 1e-12

    def test_bounds(self, small_params):
        for r in (0.2, 1.0):
            assert 0.0 < permutation_acceptance(small_params, r) <= 1.0

    def test_zero_rate(self, small_params):
        assert permutation_acceptance(small_params, 0.0) == 1.0


class TestCrossbarAcceptance:
    def test_formula(self):
        assert crossbar_acceptance(4, 1.0) == pytest.approx(1 - (3 / 4) ** 4)

    def test_limit_is_one_minus_inverse_e(self):
        assert crossbar_acceptance(10**6, 1.0) == pytest.approx(1 - exp(-1), abs=1e-5)

    def test_low_rate_limit(self):
        assert crossbar_acceptance(64, 1e-9) == pytest.approx(1.0, abs=1e-6)
        assert crossbar_acceptance(64, 0.0) == 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            crossbar_acceptance(0, 0.5)
        with pytest.raises(ConfigurationError):
            crossbar_acceptance(8, 1.5)

    def test_single_input_never_blocked(self):
        assert crossbar_acceptance(1, 1.0) == pytest.approx(1.0)


class TestDeltaAcceptance:
    @pytest.mark.parametrize("cfg", [(2, 2, 3), (4, 4, 2), (8, 8, 2), (16, 16, 1)])
    @pytest.mark.parametrize("r", [0.2, 0.7, 1.0])
    def test_matches_edn_with_c_1(self, cfg, r):
        a, b, l = cfg
        assert delta_acceptance(a, b, l, r) == pytest.approx(
            acceptance_probability(EDNParams(a, b, 1, l), r), abs=1e-12
        )

    def test_patel_single_stage_equals_crossbar(self):
        # One stage of an a x b "delta" is just an a x b crossbar.
        assert delta_acceptance(8, 8, 1, 1.0) == pytest.approx(crossbar_acceptance(8, 1.0))

    def test_zero_rate(self):
        assert delta_acceptance(4, 4, 3, 0.0) == 1.0

    def test_falls_off_with_depth_faster_than_edn(self):
        # The paper's headline: delta performance falls off rapidly; EDN holds up.
        delta_deep = delta_acceptance(8, 8, 5, 1.0)           # 32K-terminal delta
        edn_deep = acceptance_probability(EDNParams(8, 2, 4, 15), 1.0)  # 131K-terminal EDN
        assert edn_deep > delta_deep
