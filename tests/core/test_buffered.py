"""Tests for the buffered packet-switched EDN extension."""

from __future__ import annotations

import pytest

from repro.core.analysis import acceptance_probability
from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.ext.buffered import BufferedEDN, DequeBufferedEDN


class TestConservation:
    def test_no_packet_loss(self):
        # Injected == delivered + still buffered, always.  The deque
        # oracle exposes its FIFOs directly; the compiled path's
        # conservation is pinned in tests/sim/test_buffered_core.py.
        p = EDNParams(16, 4, 4, 2)
        net = DequeBufferedEDN(p, depth=2)
        metrics = net.run(rate=0.8, cycles=300, warmup=0, seed=0)
        buffered = sum(len(q) for bank in net._boundaries for q in bank)
        assert metrics.injected == metrics.delivered + buffered

    def test_light_load_flows_freely(self):
        p = EDNParams(16, 4, 4, 2)
        metrics = BufferedEDN(p).run(rate=0.05, cycles=400, warmup=100, seed=1)
        # Nearly everything injected is delivered; latency near the l+1
        # stage minimum.
        assert metrics.throughput == pytest.approx(0.05, abs=0.01)
        assert metrics.mean_latency < 2 * (p.l + 1) + 2

    def test_zero_rate_idle(self):
        metrics = BufferedEDN(EDNParams(16, 4, 4, 2)).run(rate=0.0, cycles=50, seed=2)
        assert metrics.injected == 0
        assert metrics.delivered == 0
        assert metrics.throughput == 0.0


class TestSaturation:
    def test_buffering_beats_bufferless_acceptance(self):
        # At full offered load the buffered network's throughput exceeds
        # the circuit-switched PA(1): blocked packets wait instead of dying.
        p = EDNParams(16, 4, 4, 2)
        metrics = BufferedEDN(p, depth=4).run(rate=1.0, cycles=600, warmup=200, seed=3)
        assert metrics.throughput > acceptance_probability(p, 1.0)

    def test_deeper_buffers_raise_throughput(self):
        p = EDNParams(16, 4, 4, 2)
        shallow = BufferedEDN(p, depth=1).run(rate=1.0, cycles=500, warmup=150, seed=4)
        deep = BufferedEDN(p, depth=8).run(rate=1.0, cycles=500, warmup=150, seed=4)
        assert deep.throughput > shallow.throughput

    def test_deeper_buffers_raise_latency_at_saturation(self):
        p = EDNParams(16, 4, 4, 2)
        shallow = BufferedEDN(p, depth=1).run(rate=1.0, cycles=500, warmup=150, seed=5)
        deep = BufferedEDN(p, depth=8).run(rate=1.0, cycles=500, warmup=150, seed=5)
        assert deep.mean_latency > shallow.mean_latency

    def test_throughput_bounded_by_injection(self):
        p = EDNParams(16, 4, 4, 2)
        metrics = BufferedEDN(p).run(rate=0.3, cycles=400, warmup=100, seed=6)
        assert metrics.throughput <= 0.3 + 0.05


class TestOccupancy:
    def test_occupancy_grows_with_load(self):
        p = EDNParams(16, 4, 4, 2)
        light = BufferedEDN(p, depth=4).run(rate=0.1, cycles=300, warmup=100, seed=7)
        heavy = BufferedEDN(p, depth=4).run(rate=1.0, cycles=300, warmup=100, seed=7)
        assert heavy.mean_occupancy > light.mean_occupancy

    def test_occupancy_bounded_by_depth(self):
        p = EDNParams(16, 4, 4, 2)
        metrics = BufferedEDN(p, depth=2).run(rate=1.0, cycles=200, warmup=50, seed=8)
        assert metrics.mean_occupancy <= 2.0


class TestValidation:
    def test_rejects_bad_depth(self):
        with pytest.raises(ConfigurationError):
            BufferedEDN(EDNParams(16, 4, 4, 2), depth=0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            BufferedEDN(EDNParams(16, 4, 4, 2)).run(rate=1.5, cycles=10)

    def test_rejects_zero_cycles(self):
        with pytest.raises(ConfigurationError):
            BufferedEDN(EDNParams(16, 4, 4, 2)).run(rate=0.5, cycles=0)
