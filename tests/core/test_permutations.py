"""Unit tests for the gamma permutation family and Permutation objects."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ConfigurationError, LabelError
from repro.core.permutations import (
    Permutation,
    gamma,
    gamma_inverse,
    gamma_permutation,
    identity_permutation,
    perfect_shuffle,
    q_shuffle,
)


class TestGammaFunction:
    def test_fixes_low_bits(self):
        for y in range(64):
            z = gamma(y, 6, 2, 1)
            assert z & 0b11 == y & 0b11

    def test_rotates_upper_field(self):
        # upper field of 0b1011_01 (j=2) is 1011; rotl by 2 -> 1110.
        assert gamma(0b101101, 6, 2, 2) == 0b111001

    def test_gamma_zero_shift_is_identity(self):
        for y in range(32):
            assert gamma(y, 5, 3, 0) == y

    def test_gamma_j_equals_n_is_identity(self):
        for y in range(16):
            assert gamma(y, 4, 4, 3) == y

    def test_bijection(self):
        images = {gamma(y, 6, 2, 2) for y in range(64)}
        assert images == set(range(64))

    def test_inverse_roundtrip(self):
        for n_bits in (4, 6, 8):
            for j in range(n_bits + 1):
                for k in range(4):
                    for y in range(1 << n_bits):
                        z = gamma(y, n_bits, j, k)
                        assert gamma_inverse(z, n_bits, j, k) == y

    def test_rejects_label_out_of_range(self):
        with pytest.raises(LabelError):
            gamma(16, 4, 0, 1)

    def test_rejects_bad_j(self):
        with pytest.raises(ConfigurationError):
            gamma(0, 4, 5, 1)
        with pytest.raises(ConfigurationError):
            gamma_inverse(0, 4, -1, 1)


class TestNamedShuffles:
    def test_perfect_shuffle_is_gamma_0_1(self):
        # The paper: gamma_{0,1} is the well-known shuffle of 2^n labels.
        for y in range(16):
            assert perfect_shuffle(y, 16) == gamma(y, 4, 0, 1)

    def test_perfect_shuffle_classic_formula(self):
        # Card-deck shuffle: y -> 2y mod (n-1)-ish; check the interleave property:
        # first half goes to even positions.
        n = 16
        for y in range(n // 2):
            assert perfect_shuffle(y, n) == 2 * y

    def test_q_shuffle_matches_patel_formula(self):
        # q-shuffle of n=q*r objects: S(y) = (q*y + floor(y/r)) mod n for y < n.
        n, q = 32, 4
        r = n // q
        for y in range(n):
            expected = (q * y + y // r) % n
            assert q_shuffle(y, n, q) == expected

    def test_q_shuffle_with_q_1_is_identity(self):
        for y in range(16):
            assert q_shuffle(y, 16, 1) == y

    def test_q_shuffle_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            q_shuffle(0, 16, 3)


class TestPermutationClass:
    def test_identity(self):
        p = Permutation.identity(8)
        assert p.is_identity()
        assert p.fixed_points() == list(range(8))

    def test_apply_to_moves_items(self):
        p = Permutation([2, 0, 1])
        assert p.apply_to(["a", "b", "c"]) == ["b", "c", "a"]

    def test_apply_to_rejects_length_mismatch(self):
        with pytest.raises(LabelError):
            Permutation([1, 0]).apply_to([1, 2, 3])

    def test_inverse(self):
        p = Permutation([2, 0, 3, 1])
        assert (p.inverse() @ p).is_identity()
        assert (p @ p.inverse()).is_identity()

    def test_composition_order(self):
        p = Permutation([1, 2, 0])
        q = Permutation([0, 2, 1])
        assert (p @ q)(1) == p(q(1))

    def test_composition_rejects_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            Permutation([0, 1]) @ Permutation([0, 1, 2])

    def test_rejects_non_permutation(self):
        with pytest.raises(ConfigurationError):
            Permutation([0, 0, 1])
        with pytest.raises(ConfigurationError):
            Permutation([0, 3])

    def test_cycles(self):
        p = Permutation([1, 0, 2, 4, 3])
        assert p.cycles() == [(0, 1), (3, 4)]

    def test_cycles_of_identity_empty(self):
        assert Permutation.identity(5).cycles() == []

    def test_equality_and_hash(self):
        assert Permutation([1, 0]) == Permutation([1, 0])
        assert hash(Permutation([1, 0])) == hash(Permutation([1, 0]))
        assert Permutation([1, 0]) != Permutation([0, 1])

    def test_from_function(self):
        p = Permutation.from_function(lambda i: (i + 1) % 4, 4)
        assert p.mapping == (1, 2, 3, 0)

    def test_len(self):
        assert len(Permutation.identity(7)) == 7


class TestMaterializedGamma:
    def test_gamma_permutation_is_bijection(self):
        p = gamma_permutation(64, 2, 2)
        assert sorted(p.mapping) == list(range(64))

    def test_matches_pointwise_gamma(self):
        p = gamma_permutation(32, 1, 2)
        for y in range(32):
            assert p(y) == gamma(y, 5, 1, 2)

    def test_identity_permutation(self):
        assert identity_permutation(16).is_identity()

    def test_gamma_permutation_inverse_composes(self):
        p = gamma_permutation(64, 2, 2)
        assert (p.inverse() @ p).is_identity()
