"""Unit tests for the hyperbar switch (Definition 1, Figure 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, LabelError
from repro.core.hyperbar import Hyperbar


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            Hyperbar(6, 2, 2)
        with pytest.raises(ConfigurationError):
            Hyperbar(8, 3, 2)
        with pytest.raises(ConfigurationError):
            Hyperbar(8, 2, 3)

    def test_rejects_unknown_priority(self):
        with pytest.raises(ConfigurationError):
            Hyperbar(8, 4, 2, priority="fifo")

    def test_rejects_unknown_wire_policy(self):
        with pytest.raises(ConfigurationError):
            Hyperbar(8, 4, 2, wire_policy="round_robin")

    def test_crosspoint_count(self):
        assert Hyperbar(8, 4, 2).crosspoints == 8 * 4 * 2

    def test_num_outputs(self):
        assert Hyperbar(8, 4, 2).num_outputs == 8

    def test_bucket_wire_ranges(self):
        switch = Hyperbar(8, 4, 2)
        assert list(switch.output_wires_of_bucket(0)) == [0, 1]
        assert list(switch.output_wires_of_bucket(3)) == [6, 7]

    def test_bucket_range_check(self):
        with pytest.raises(LabelError):
            Hyperbar(8, 4, 2).output_wires_of_bucket(4)


class TestPaperFigure2:
    """The paper's worked example: H(8->4x2), digits 3,2,3,1,2,2,0,3."""

    DIGITS = [3, 2, 3, 1, 2, 2, 0, 3]

    def test_discards_inputs_5_and_7(self):
        result = Hyperbar(8, 4, 2).route(self.DIGITS)
        assert result.rejected == [5, 7]

    def test_accepts_the_other_six(self):
        result = Hyperbar(8, 4, 2).route(self.DIGITS)
        assert sorted(result.accepted) == [0, 1, 2, 3, 4, 6]

    def test_winners_land_in_their_buckets(self):
        switch = Hyperbar(8, 4, 2)
        result = switch.route(self.DIGITS)
        for source, wire in result.accepted.items():
            assert wire in switch.output_wires_of_bucket(self.DIGITS[source])

    def test_bucket_loads(self):
        result = Hyperbar(8, 4, 2).route(self.DIGITS)
        assert result.bucket_loads == [1, 1, 3, 3]


class TestRouting:
    def test_idle_inputs_ignored(self):
        result = Hyperbar(8, 4, 2).route([None] * 8)
        assert result.num_offered == 0
        assert result.acceptance_ratio == 1.0

    def test_no_contention_all_accepted(self):
        result = Hyperbar(8, 4, 2).route([0, 0, 1, 1, 2, 2, 3, 3])
        assert result.rejected == []
        assert result.num_accepted == 8

    def test_capacity_enforced_exactly(self):
        # All 8 inputs demand bucket 0 (capacity 2): exactly 2 accepted.
        result = Hyperbar(8, 4, 2).route([0] * 8)
        assert result.num_accepted == 2
        assert sorted(result.accepted) == [0, 1]  # label priority
        assert result.rejected == [2, 3, 4, 5, 6, 7]

    def test_label_priority_wins_lowest(self):
        result = Hyperbar(4, 2, 1).route([1, 1, 1, 1])
        assert sorted(result.accepted) == [0]

    def test_output_sources_consistent_with_accepted(self):
        result = Hyperbar(8, 4, 2).route([3, 2, 3, 1, 2, 2, 0, 3])
        for source, wire in result.accepted.items():
            assert result.output_sources[wire] == source
        occupied = [w for w, s in enumerate(result.output_sources) if s is not None]
        assert sorted(occupied) == sorted(result.accepted.values())

    def test_first_free_fills_wires_in_order(self):
        result = Hyperbar(8, 4, 2).route([1, 1, None, None, None, None, None, None])
        assert result.accepted == {0: 2, 1: 3}

    def test_rejects_wrong_length(self):
        with pytest.raises(LabelError):
            Hyperbar(8, 4, 2).route([0] * 7)

    def test_rejects_digit_out_of_range(self):
        with pytest.raises(LabelError):
            Hyperbar(8, 4, 2).route([4] + [None] * 7)

    def test_acceptance_ratio(self):
        result = Hyperbar(8, 4, 2).route([0] * 8)
        assert result.acceptance_ratio == pytest.approx(0.25)


class TestRandomDisciplines:
    def test_random_priority_requires_rng(self):
        with pytest.raises(ConfigurationError):
            Hyperbar(8, 4, 2, priority="random").route([0] * 8)

    def test_random_wire_requires_rng(self):
        with pytest.raises(ConfigurationError):
            Hyperbar(8, 4, 2, wire_policy="random").route([0] * 8)

    def test_random_priority_accepts_capacity_many(self, rng):
        result = Hyperbar(8, 4, 2, priority="random").route([0] * 8, rng=rng)
        assert result.num_accepted == 2

    def test_random_priority_varies_winners(self, rng):
        switch = Hyperbar(8, 4, 2, priority="random")
        winner_sets = {
            frozenset(switch.route([0] * 8, rng=rng).accepted) for _ in range(50)
        }
        assert len(winner_sets) > 1  # not always inputs {0, 1}

    def test_random_priority_uniform_ish(self, rng):
        # Over many trials every input should win sometimes.
        switch = Hyperbar(4, 2, 1, priority="random")
        wins = {i: 0 for i in range(4)}
        for _ in range(400):
            result = switch.route([0, 0, 0, 0], rng=rng)
            wins[next(iter(result.accepted))] += 1
        assert all(count > 0 for count in wins.values())

    def test_random_wire_policy_same_acceptance(self, rng):
        digits = [3, 2, 3, 1, 2, 2, 0, 3]
        fixed = Hyperbar(8, 4, 2).route(digits)
        randomized = Hyperbar(8, 4, 2, wire_policy="random").route(digits, rng=rng)
        assert set(fixed.accepted) == set(randomized.accepted)
        assert fixed.rejected == randomized.rejected

    def test_random_wire_stays_in_bucket(self, rng):
        switch = Hyperbar(8, 4, 2, wire_policy="random")
        for _ in range(20):
            result = switch.route([2] * 8, rng=rng)
            for source, wire in result.accepted.items():
                assert wire in switch.output_wires_of_bucket(2)


class TestDegenerateCrossbar:
    """H(a -> b x 1) must behave as an a x b crossbar."""

    def test_one_grant_per_output(self):
        result = Hyperbar(4, 4, 1).route([2, 2, 2, 2])
        assert result.num_accepted == 1

    def test_distinct_outputs_all_granted(self):
        result = Hyperbar(4, 4, 1).route([0, 1, 2, 3])
        assert result.num_accepted == 4
