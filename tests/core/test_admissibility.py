"""Tests for the one-pass admissibility census extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.ext.admissibility import admissible_fraction, is_admissible
from repro.sim.vectorized import VectorizedEDN


class TestIsAdmissible:
    def test_l1_networks_admit_everything(self, rng):
        # Lemma 2: single-hyperbar-stage EDNs route any permutation.
        net = VectorizedEDN(EDNParams(16, 4, 4, 1))
        for _ in range(10):
            assert is_admissible(net, rng.permutation(16))

    def test_figure5_identity_not_admissible(self):
        net = VectorizedEDN(EDNParams(64, 16, 4, 2))
        assert not is_admissible(net, np.arange(1024))

    def test_rejects_non_permutation(self):
        net = VectorizedEDN(EDNParams(16, 4, 4, 2))
        with pytest.raises(ConfigurationError):
            is_admissible(net, np.zeros(64, dtype=np.int64))


class TestCensus:
    def test_exhaustive_small_delta(self):
        # The 8x8 delta from 2x2 switches admits exactly the classical
        # count of network-realizable mappings: 2^(switches) settings but
        # fewer distinct permutations; sanity: strictly between 0 and 1.
        net = VectorizedEDN(EDNParams(2, 2, 1, 3))
        fraction, population = admissible_fraction(net)
        assert population == 40_320
        assert 0.0 < fraction < 1.0

    def test_exhaustive_delta_count_matches_switch_settings(self):
        # A delta's admissible permutations are exactly its realizable
        # ones: every switch setting yields one permutation, and distinct
        # settings yield distinct permutations (unique path), so the count
        # is 2^(#switches) = 2^12 = 4096 of 8! = 40320.
        net = VectorizedEDN(EDNParams(2, 2, 1, 3))
        fraction, population = admissible_fraction(net)
        assert round(fraction * population) == 2**12

    def test_capacity_enlarges_admissible_set(self):
        # Equal 8x8 scale: delta vs EDN with c = 2.
        delta = VectorizedEDN(EDNParams(2, 2, 1, 3))
        edn = VectorizedEDN(EDNParams(4, 2, 2, 2))
        delta_fraction, _ = admissible_fraction(delta)
        edn_fraction, _ = admissible_fraction(edn)
        assert edn_fraction > delta_fraction

    def test_montecarlo_estimate(self):
        net = VectorizedEDN(EDNParams(16, 4, 4, 2))
        fraction, population = admissible_fraction(net, samples=300, seed=0)
        assert population == 300
        assert 0.0 <= fraction <= 1.0

    def test_montecarlo_reproducible(self):
        net = VectorizedEDN(EDNParams(16, 4, 4, 2))
        a = admissible_fraction(net, samples=100, seed=5)
        b = admissible_fraction(net, samples=100, seed=5)
        assert a == b

    def test_requires_square_network(self):
        net = VectorizedEDN(EDNParams(8, 4, 2, 2))   # 32 -> 32? (square, fine)
        # Build a genuinely rectangular one: EDN(8,2,4,1): 8 in, 8 out is
        # square too; use EDN(8,4,1,1): 8 -> 4.
        rect = VectorizedEDN(EDNParams(8, 4, 1, 1))
        with pytest.raises(ConfigurationError):
            admissible_fraction(rect, samples=5)
