"""Unit tests for path enumeration (Theorems 1-2)."""

from __future__ import annotations

import pytest

from repro.core.config import EDNParams
from repro.core.exceptions import LabelError
from repro.core.paths import count_paths, enumerate_paths, verify_full_access
from repro.core.tags import DestinationTag, RetirementOrder
from repro.core.topology import EDNTopology


class TestTheorem2:
    """Exactly c^l distinct paths between every pair."""

    def test_path_count_small(self, small_params):
        topo = EDNTopology(small_params)
        tag = DestinationTag.from_output(small_params.num_outputs - 1, small_params)
        assert count_paths(topo, 0, tag) == small_params.paths_per_pair

    def test_path_count_several_pairs(self, small_params, rng):
        topo = EDNTopology(small_params)
        for _ in range(5):
            source = int(rng.integers(small_params.num_inputs))
            dest = int(rng.integers(small_params.num_outputs))
            tag = DestinationTag.from_output(dest, small_params)
            assert count_paths(topo, source, tag) == small_params.paths_per_pair

    def test_delta_has_unique_path(self):
        p = EDNParams(4, 4, 1, 3)
        topo = EDNTopology(p)
        tag = DestinationTag.from_output(17, p)
        assert count_paths(topo, 9, tag) == 1

    def test_paths_are_distinct(self, small_params):
        topo = EDNTopology(small_params)
        tag = DestinationTag.from_output(0, small_params)
        paths = list(enumerate_paths(topo, 0, tag))
        assert len({p.stage_outputs for p in paths}) == len(paths)


class TestTheorem1:
    """All paths land on the tag's destination; full access holds."""

    def test_every_path_reaches_destination(self, small_params, rng):
        topo = EDNTopology(small_params)
        for _ in range(5):
            source = int(rng.integers(small_params.num_inputs))
            dest = int(rng.integers(small_params.num_outputs))
            tag = DestinationTag.from_output(dest, small_params)
            for path in enumerate_paths(topo, source, tag):
                assert path.destination == dest
                assert path.source == source

    def test_path_lengths(self, small_params):
        topo = EDNTopology(small_params)
        tag = DestinationTag.from_output(0, small_params)
        for path in enumerate_paths(topo, 0, tag):
            assert len(path.stage_outputs) == small_params.l + 1

    @pytest.mark.parametrize(
        "cfg", [(4, 2, 2, 1), (4, 2, 2, 2), (8, 4, 2, 2), (2, 2, 1, 3), (8, 2, 4, 1)]
    )
    def test_verify_full_access_exhaustive(self, cfg):
        assert verify_full_access(EDNParams(*cfg))


class TestRetirementOrderPaths:
    def test_paths_follow_reordered_digits(self):
        p = EDNParams(16, 4, 4, 2)
        topo = EDNTopology(p)
        order = RetirementOrder.reversed_order(2)
        tag = DestinationTag.from_output(27, p)
        landing = order.landing_output(tag, p)
        for path in enumerate_paths(topo, 0, tag, retirement_order=order):
            assert path.destination == landing

    def test_path_count_independent_of_order(self):
        p = EDNParams(16, 4, 4, 2)
        topo = EDNTopology(p)
        order = RetirementOrder.reversed_order(2)
        tag = DestinationTag.from_output(27, p)
        assert count_paths(topo, 5, tag, retirement_order=order) == p.paths_per_pair


class TestValidation:
    def test_source_out_of_range(self):
        p = EDNParams(16, 4, 4, 2)
        topo = EDNTopology(p)
        tag = DestinationTag.from_output(0, p)
        with pytest.raises(LabelError):
            list(enumerate_paths(topo, p.num_inputs, tag))

    def test_invalid_tag(self):
        p = EDNParams(16, 4, 4, 2)
        topo = EDNTopology(p)
        with pytest.raises(LabelError):
            list(enumerate_paths(topo, 0, DestinationTag((4, 0), 0)))
