"""Unit tests for EDN parameter validation and size arithmetic (Section 2)."""

from __future__ import annotations

import pytest

from repro.core.config import EDNParams, family_members, hyperbar_family
from repro.core.exceptions import ConfigurationError


class TestValidation:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            EDNParams(6, 2, 2, 1)
        with pytest.raises(ConfigurationError):
            EDNParams(8, 3, 2, 1)
        with pytest.raises(ConfigurationError):
            EDNParams(8, 2, 3, 1)

    def test_rejects_zero_stages(self):
        with pytest.raises(ConfigurationError):
            EDNParams(8, 4, 2, 0)

    def test_rejects_capacity_above_inputs(self):
        with pytest.raises(ConfigurationError):
            EDNParams(4, 2, 8, 1)

    def test_rejects_single_bucket(self):
        with pytest.raises(ConfigurationError):
            EDNParams(8, 1, 8, 1)

    def test_accepts_trivial_1x1(self):
        EDNParams(1, 1, 1, 1)


class TestSizeArithmetic:
    """The formulas stated in Section 2 of the paper."""

    def test_terminal_counts(self, small_params):
        p = small_params
        assert p.num_inputs == (p.a // p.c) ** p.l * p.c
        assert p.num_outputs == p.b**p.l * p.c

    def test_wires_after_stage_formula(self, small_params):
        p = small_params
        for i in range(p.l + 1):
            assert p.wires_after_stage(i) == (p.a // p.c) ** (p.l - i) * p.b**i * p.c

    def test_crossbar_stage_preserves_width(self, small_params):
        p = small_params
        assert p.wires_after_stage(p.l + 1) == p.wires_after_stage(p.l)

    def test_hyperbars_per_stage_formula(self, small_params):
        p = small_params
        for i in range(1, p.l + 1):
            assert p.hyperbars_in_stage(i) == (p.a // p.c) ** (p.l - i) * p.b ** (i - 1)

    def test_stage_widths_consistent_with_switch_counts(self, small_params):
        # Wires entering stage i == hyperbars * a; leaving == hyperbars * b * c.
        p = small_params
        for i in range(1, p.l + 1):
            assert p.wires_after_stage(i - 1) == p.hyperbars_in_stage(i) * p.a
            assert p.wires_after_stage(i) == p.hyperbars_in_stage(i) * p.b * p.c

    def test_crossbar_count(self, small_params):
        p = small_params
        assert p.num_crossbars == p.b**p.l
        assert p.wires_after_stage(p.l) == p.num_crossbars * p.c

    def test_stage_index_bounds(self):
        p = EDNParams(8, 4, 2, 2)
        with pytest.raises(ConfigurationError):
            p.wires_after_stage(-1)
        with pytest.raises(ConfigurationError):
            p.wires_after_stage(4)
        with pytest.raises(ConfigurationError):
            p.hyperbars_in_stage(0)
        with pytest.raises(ConfigurationError):
            p.hyperbars_in_stage(3)

    def test_maspar_network_sizes(self, maspar_params):
        # The EDN(64,16,4,2) of Section 5: 1024 ports each way.
        assert maspar_params.num_inputs == 1024
        assert maspar_params.num_outputs == 1024
        assert maspar_params.num_crossbars == 256
        # Figure 5 draws 16 switches per hyperbar column (S0..S15).
        assert maspar_params.hyperbars_in_stage(1) == 16
        assert maspar_params.hyperbars_in_stage(2) == 16

    def test_tag_bits(self):
        p = EDNParams(64, 16, 4, 2)
        assert p.tag_bits == 2 * 4 + 2


class TestSpecialCases:
    """Crossbar and delta degeneracies (after Theorem 2)."""

    def test_crossbar_case(self):
        p = EDNParams(8, 4, 1, 1)
        assert p.is_crossbar and p.is_delta
        assert p.num_inputs == 8 and p.num_outputs == 4
        assert p.paths_per_pair == 1

    def test_delta_case(self):
        p = EDNParams(4, 4, 1, 3)
        assert p.is_delta and not p.is_crossbar
        assert p.num_inputs == 64 and p.num_outputs == 64
        assert p.paths_per_pair == 1

    def test_multipath_count_theorem2(self, small_params):
        assert small_params.paths_per_pair == small_params.c**small_params.l

    def test_hyperbar_io(self):
        assert EDNParams(16, 4, 4, 2).hyperbar_io == (16, 16)

    def test_describe_mentions_shape(self):
        text = EDNParams(16, 4, 4, 2).describe()
        assert "64 inputs" in text and "16 path(s)" in text


class TestFamilies:
    def test_hyperbar_family_8(self):
        assert hyperbar_family(8) == [(8, 2, 4), (8, 4, 2), (8, 8, 1)]

    def test_hyperbar_family_16(self):
        assert hyperbar_family(16) == [
            (16, 2, 8),
            (16, 4, 4),
            (16, 8, 2),
            (16, 16, 1),
        ]

    def test_family_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            hyperbar_family(12)

    def test_family_members_bounded(self):
        members = list(family_members(8, 2, 4, max_inputs=100))
        assert members
        assert all(m.num_inputs <= 100 for m in members)
        assert [m.l for m in members] == list(range(1, len(members) + 1))

    def test_family_members_monotone_sizes(self):
        sizes = [m.num_inputs for m in family_members(8, 4, 2, max_inputs=10_000)]
        assert sizes == sorted(sizes)
        assert len(set(sizes)) == len(sizes)
