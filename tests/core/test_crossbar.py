"""Unit tests for the crossbar switch."""

from __future__ import annotations

import pytest

from repro.core.crossbar import Crossbar
from repro.core.exceptions import LabelError


class TestCrossbar:
    def test_square_default(self):
        xbar = Crossbar(4)
        assert xbar.n_inputs == 4 and xbar.n_outputs == 4

    def test_rectangular(self):
        xbar = Crossbar(4, 8)
        assert xbar.n_outputs == 8

    def test_crosspoints(self):
        assert Crossbar(4, 8).crosspoints == 32

    def test_permutation_routes_fully(self):
        result = Crossbar(4).route([2, 0, 3, 1])
        assert result.rejected == []
        assert {s: w for s, w in result.accepted.items()} == {0: 2, 1: 0, 2: 3, 3: 1}

    def test_output_contention_one_winner(self):
        result = Crossbar(4).route([0, 0, 2, 3])
        assert result.rejected == [1]

    def test_label_priority(self):
        result = Crossbar(4).route([1, 1, 1, 1])
        assert sorted(result.accepted) == [0]

    def test_idle_inputs(self):
        result = Crossbar(4).route([None, 2, None, None])
        assert result.accepted == {1: 2}

    def test_rejects_out_of_range_output(self):
        with pytest.raises(LabelError):
            Crossbar(4).route([4, None, None, None])

    def test_rejects_wrong_length(self):
        with pytest.raises(LabelError):
            Crossbar(4).route([0, 1])

    def test_repr_mentions_shape(self):
        assert "4x8" in repr(Crossbar(4, 8))
