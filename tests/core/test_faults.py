"""Fault-injection tests: multipath fault tolerance (Theorem 2 in practice)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.core.faults import (
    FaultSet,
    FaultyEDNetwork,
    WireFault,
    connectivity_under_faults,
    random_faults,
)
from repro.core.network import Message


class TestFaultSet:
    def test_empty(self):
        faults = FaultSet.none()
        assert len(faults) == 0
        assert faults.dead_wires(1, 0) == frozenset()

    def test_lookup(self):
        faults = FaultSet([WireFault(1, 0, 3), WireFault(1, 0, 5), WireFault(2, 1, 0)])
        assert faults.dead_wires(1, 0) == {3, 5}
        assert faults.dead_wires(2, 1) == {0}
        assert faults.dead_wires(1, 1) == frozenset()

    def test_contains_and_iter(self):
        fault = WireFault(1, 0, 3)
        faults = FaultSet([fault])
        assert fault in faults
        assert list(faults) == [fault]

    def test_validation(self):
        p = EDNParams(16, 4, 4, 2)
        FaultSet([WireFault(1, 3, 15)]).validate(p)          # last wire, last switch
        FaultSet([WireFault(3, 15, 3)]).validate(p)          # crossbar stage
        with pytest.raises(ConfigurationError):
            FaultSet([WireFault(4, 0, 0)]).validate(p)       # no stage 4
        with pytest.raises(ConfigurationError):
            FaultSet([WireFault(1, 4, 0)]).validate(p)       # only 4 hyperbars
        with pytest.raises(ConfigurationError):
            FaultSet([WireFault(1, 0, 16)]).validate(p)      # only 16 wires
        with pytest.raises(ConfigurationError):
            FaultSet([WireFault(3, 0, 4)]).validate(p)       # crossbar has c wires

    def test_random_faults_rate(self, rng):
        p = EDNParams(16, 4, 4, 2)
        faults = random_faults(p, 0.25, rng)
        total_wires = sum(
            p.hyperbars_in_stage(i) * p.b * p.c for i in range(1, p.l + 1)
        )
        assert 0.1 * total_wires < len(faults) < 0.4 * total_wires

    def test_random_faults_spare_crossbar_outputs(self, rng):
        p = EDNParams(16, 4, 4, 2)
        faults = random_faults(p, 0.5, rng)
        assert all(fault.stage <= p.l for fault in faults)

    def test_random_faults_rejects_bad_rate(self, rng):
        with pytest.raises(ConfigurationError):
            random_faults(EDNParams(16, 4, 4, 2), 1.5, rng)


class TestFaultFreeEquivalence:
    def test_matches_healthy_network(self, small_params, rng):
        from repro.core.network import EDNetwork

        healthy = EDNetwork(small_params)
        faulty = FaultyEDNetwork(small_params, FaultSet.none())
        demands = {
            s: int(rng.integers(small_params.num_outputs))
            for s in range(small_params.num_inputs)
        }
        a = healthy.route_destinations(demands)
        b = faulty.route_destinations(demands)
        for oa, ob in zip(a.outcomes, b.outcomes):
            assert oa.delivered == ob.delivered
            assert oa.output == ob.output
            assert oa.blocked_stage == ob.blocked_stage


class TestMultipathTolerance:
    """c - 1 dead wires per bucket leave every pair connected; c kill some."""

    def test_single_wire_fault_harmless_when_c_over_1(self):
        p = EDNParams(16, 4, 4, 2)
        faults = FaultSet([WireFault(1, 0, 0)])
        assert connectivity_under_faults(p, faults) == 1.0

    def test_c_minus_1_faults_per_bucket_harmless(self):
        p = EDNParams(8, 2, 4, 2)   # c = 4: kill 3 of 4 wires in one bucket
        faults = FaultSet([WireFault(1, 0, k) for k in range(3)])
        assert connectivity_under_faults(p, faults) == 1.0

    def test_full_bucket_fault_disconnects_exactly_its_pairs(self):
        # Kill ALL wires of bucket 0 in stage-1 switch 0 of EDN(16,4,4,2):
        # sources 0..15 lose all paths to destinations with d_{l-1} = 0
        # (outputs 0..15); all other pairs survive.
        p = EDNParams(16, 4, 4, 2)
        faults = FaultSet([WireFault(1, 0, k) for k in range(p.c)])
        network = FaultyEDNetwork(p, faults)
        for source in range(p.num_inputs):
            for dest in range(0, p.num_outputs, 3):
                outcome = network.route_cycle(
                    [Message.to_output(source, dest, p)]
                ).outcomes[0]
                should_fail = source < 16 and dest < 16
                assert outcome.delivered == (not should_fail)

    def test_delta_dies_with_any_path_fault(self):
        # c = 1: one dead wire severs every pair routed through it.
        p = EDNParams(8, 8, 1, 2)
        faults = FaultSet([WireFault(1, 0, 0)])
        connectivity = connectivity_under_faults(p, faults)
        assert connectivity < 1.0

    def test_edn_beats_delta_under_equal_damage(self, rng):
        # Same relative wire-failure rate on equal-size networks: the
        # multipath EDN keeps more pairs connected.
        edn = EDNParams(8, 2, 4, 2)      # 16x16, c^l = 16 paths
        delta = EDNParams(4, 4, 1, 2)    # 16x16, single path
        rate = 0.15
        edn_conn = connectivity_under_faults(edn, random_faults(edn, rate, rng))
        delta_conn = connectivity_under_faults(delta, random_faults(delta, rate, rng))
        assert edn_conn > delta_conn

    def test_crossbar_stage_fault_kills_one_output(self):
        p = EDNParams(16, 4, 4, 2)
        faults = FaultSet([WireFault(3, 0, 1)])   # crossbar 0, local wire 1 = output 1
        network = FaultyEDNetwork(p, faults)
        ok = network.route_cycle([Message.to_output(0, 2, p)]).outcomes[0]
        dead = network.route_cycle([Message.to_output(0, 1, p)]).outcomes[0]
        assert ok.delivered
        assert not dead.delivered
        assert dead.blocked_stage == 3


class TestDamagedContention:
    def test_dead_wires_reduce_bucket_capacity(self):
        # Four messages into bucket 0 (outputs 0 and 1) of an H(8->4x2)
        # stage: healthy capacity 2 delivers two (distinct crossbar exits);
        # with one dead bucket wire only one survives.
        from repro.core.network import EDNetwork

        p = EDNParams(8, 4, 2, 1)
        demands = {0: 0, 1: 1, 2: 0, 3: 1}
        healthy = EDNetwork(p).route_destinations(demands)
        assert healthy.num_delivered == 2
        faults = FaultSet([WireFault(1, 0, 0)])   # bucket 0, wire 0 dead
        damaged = FaultyEDNetwork(p, faults).route_destinations(demands)
        assert damaged.num_delivered == 1

    def test_validation_happens_at_construction(self):
        with pytest.raises(ConfigurationError):
            FaultyEDNetwork(EDNParams(16, 4, 4, 2), FaultSet([WireFault(9, 0, 0)]))
