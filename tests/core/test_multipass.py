"""Tests for multi-pass permutation routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.core.multipass import route_permutation_multipass
from repro.sim.vectorized import VectorizedEDN


class TestMultipass:
    def test_delivers_everything_once(self, rng):
        p = EDNParams(16, 4, 4, 2)
        net = VectorizedEDN(p)
        perm = rng.permutation(p.num_inputs)
        result = route_permutation_multipass(net, perm)
        assert result.total == p.num_inputs
        assert result.passes == len(result.delivered_per_pass)

    def test_single_stage_needs_one_pass(self, rng):
        # l = 1 EDNs route any permutation conflict-free (Lemma 2).
        p = EDNParams(16, 4, 4, 1)
        net = VectorizedEDN(p)
        result = route_permutation_multipass(net, rng.permutation(p.num_inputs))
        assert result.passes == 1

    def test_every_pass_progresses(self, rng):
        p = EDNParams(64, 16, 4, 2)
        net = VectorizedEDN(p)
        result = route_permutation_multipass(net, rng.permutation(p.num_inputs))
        assert all(count > 0 for count in result.delivered_per_pass)

    def test_passes_decrease_monotonically_in_load(self, rng):
        # Later passes carry fewer messages, so deliveries shrink.
        p = EDNParams(64, 16, 4, 2)
        net = VectorizedEDN(p)
        result = route_permutation_multipass(net, rng.permutation(p.num_inputs))
        assert result.delivered_per_pass[0] == max(result.delivered_per_pass)

    def test_identity_on_maspar_needs_many_passes(self):
        # Figure 5's identity: 64 delivered per pass under canonical order.
        p = EDNParams(64, 16, 4, 2)
        net = VectorizedEDN(p)
        result = route_permutation_multipass(net, np.arange(p.num_inputs))
        assert result.passes == 16
        assert result.delivered_per_pass[0] == 64

    def test_capacity_reduces_passes(self, rng):
        # Same 256-terminal scale: the multipath EDN drains a random
        # permutation in fewer passes than the single-path delta.
        perm = rng.permutation(256)
        delta_passes = route_permutation_multipass(
            VectorizedEDN(EDNParams(16, 16, 1, 2)), perm
        ).passes
        edn_passes = route_permutation_multipass(
            VectorizedEDN(EDNParams(32, 8, 4, 2)), perm
        ).passes
        assert edn_passes <= delta_passes

    def test_rejects_partial_permutation(self):
        p = EDNParams(16, 4, 4, 2)
        with pytest.raises(ConfigurationError):
            route_permutation_multipass(VectorizedEDN(p), np.zeros(64, dtype=np.int64))

    def test_max_passes_guard(self, rng):
        p = EDNParams(64, 16, 4, 2)
        with pytest.raises(ConfigurationError):
            route_permutation_multipass(
                VectorizedEDN(p), np.arange(p.num_inputs), max_passes=3
            )
