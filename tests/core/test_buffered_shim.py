"""The deprecated ``repro.ext.buffered`` compat shim warns, once, and works."""

from __future__ import annotations

import importlib
import sys
import warnings

import pytest

from repro.core.config import EDNParams


def _fresh_import():
    """(Re)execute the shim module, collecting the warnings it emits."""
    sys.modules.pop("repro.ext.buffered", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        module = importlib.import_module("repro.ext.buffered")
    return module, [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]


class TestDeprecationWarning:
    def test_import_warns_exactly_once(self):
        module, deprecations = _fresh_import()
        assert len(deprecations) == 1
        message = str(deprecations[0].message)
        assert "repro.ext.buffered is deprecated" in message
        # The warning names the successor path.
        assert "repro.sim.buffered.measure_buffered" in message
        # The module is now cached: importing again re-executes nothing,
        # so the warning cannot fire a second time in this process.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            again = importlib.import_module("repro.ext.buffered")
        assert again is module
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_package_import_stays_silent(self):
        # Importing the parent package (e.g. for admissibility) must not
        # trigger the shim's warning; only touching the shim does.
        sys.modules.pop("repro.ext.buffered", None)
        sys.modules.pop("repro.ext", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            package = importlib.import_module("repro.ext")
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        # The lazy re-export still resolves (and now warns).
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert package.BufferedEDN is not None
        assert [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestShimStillWorks:
    def test_run_contract_matches_core(self):
        module, _ = _fresh_import()
        metrics = module.BufferedEDN(EDNParams(4, 2, 2, 2), depth=2).run(
            rate=0.8, cycles=120, warmup=30, seed=0
        )
        from repro.sim.buffered import measure_buffered
        from repro.sim.stagegraph import edn_graph

        core = measure_buffered(
            edn_graph(EDNParams(4, 2, 2, 2)),
            traffic="uniform:0.8",
            depth=2,
            cycles=120,
            warmup=30,
            seed=0,
        )
        assert metrics.injected == core.injected
        assert metrics.delivered == core.delivered
        assert metrics.throughput == core.throughput
        assert metrics.mean_latency == core.mean_latency
        assert metrics.mean_occupancy == core.mean_occupancy

    def test_shim_validation_preserved(self):
        module, _ = _fresh_import()
        from repro.core.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            module.BufferedEDN(EDNParams(4, 2, 2, 2), depth=0)
        with pytest.raises(ConfigurationError):
            module.BufferedEDN(EDNParams(4, 2, 2, 2)).run(rate=1.5, cycles=10)
        with pytest.raises(ConfigurationError):
            module.BufferedEDN(EDNParams(4, 2, 2, 2)).run(rate=0.5, cycles=0)

    def test_zero_rate_runs_idle(self):
        module, _ = _fresh_import()
        metrics = module.BufferedEDN(EDNParams(4, 2, 2, 2)).run(
            rate=0.0, cycles=30, seed=1
        )
        assert metrics.injected == 0 and metrics.delivered == 0
