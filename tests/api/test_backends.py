"""Cross-backend equivalence: every backend, identical demands, identical outcomes.

The facade's core promise: for any :class:`NetworkSpec`, every registered
backend routes the *same* shared demand matrices to the *same* per-message
outcomes as the reference for that topology, bit for bit:

* ``edn``/``delta`` — the per-message reference engine
  (:class:`~repro.core.network.EDNetwork`) is the ground truth;
* ``omega`` — ground truth is the reference engine behind the omega input
  shuffle (recomputed here, independent of the omega module);
* ``crossbar``/``clos``/``benes`` — ground truth is a 10-line
  reimplementation of label-priority output contention: rearrangeable
  fabrics under global control lose messages *only* to output conflicts,
  which is exactly the crossbar's loss mechanism.

All specs use label priority, which makes every engine deterministic (the
random-priority batched-vs-vectorized pinning lives in
``tests/sim/test_batched.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    BACKENDS,
    NetworkSpec,
    available_backends,
    build_router,
    resolve_backend,
)
from repro.core.exceptions import ConfigurationError
from repro.core.faults import FaultSet, FaultyEDNetwork, WireFault
from repro.core.network import EDNetwork
from repro.sim.batched import BatchCycleResult
from repro.sim.native import available_tiers
from repro.sim.rng import make_rng

IDLE = -1
BATCH = 6

#: Whether the environment-gated native backend participates here.
NATIVE = bool(available_tiers())
AUTO_COMPILED = "native" if NATIVE else "batched"


def with_native(names: list[str]) -> list[str]:
    """The expected backend list, prefixed by ``native`` when runnable."""
    return (["native"] if NATIVE else []) + names

SPECS = [
    NetworkSpec.edn(16, 4, 4, 2),
    NetworkSpec.edn(8, 2, 4, 2),
    NetworkSpec.edn(4, 2, 2, 3),
    NetworkSpec.delta(4, 4, 2),
    NetworkSpec.delta(2, 2, 3),
    NetworkSpec.omega(16),
    NetworkSpec.crossbar(32),
    NetworkSpec.crossbar(16, 8),
    NetworkSpec.clos(4, 4),
    NetworkSpec.benes(16),
]

CASES = [
    (spec, backend) for spec in SPECS for backend in available_backends(spec)
]


def shared_demands(spec: NetworkSpec, seed: int = 123) -> np.ndarray:
    """The same (batch, N) matrix every backend of ``spec`` must route."""
    rng = make_rng(seed)
    return rng.integers(IDLE, spec.n_outputs, size=(BATCH, spec.n_inputs))


def reference_outcomes(spec: NetworkSpec, demands: np.ndarray) -> BatchCycleResult:
    """Ground-truth outcome arrays, computed without the facade's backends."""
    if spec.kind in ("edn", "delta"):
        return _reference_edn(spec.edn_params, demands)
    if spec.kind == "omega":
        n = spec.shape[0]
        stages = int(n).bit_length() - 1
        idx = np.arange(n, dtype=np.int64)
        shuffle = ((idx << 1) | (idx >> (stages - 1))) & (n - 1)
        shuffled = np.full_like(demands, IDLE)
        shuffled[:, shuffle] = demands
        from repro.core.config import EDNParams

        inner = _reference_edn(EDNParams(2, 2, 1, stages), shuffled)
        return BatchCycleResult(
            output=inner.output[:, shuffle],
            blocked_stage=inner.blocked_stage[:, shuffle],
        )
    # crossbar / clos / benes: label-priority output contention only.
    output = np.full(demands.shape, IDLE, dtype=np.int64)
    blocked = np.full(demands.shape, IDLE, dtype=np.int64)
    for i, row in enumerate(demands):
        taken: set[int] = set()
        for s, dest in enumerate(row):
            if dest == IDLE:
                continue
            if int(dest) in taken:
                blocked[i, s] = 1
            else:
                taken.add(int(dest))
                output[i, s] = dest
                blocked[i, s] = 0
    return BatchCycleResult(output=output, blocked_stage=blocked)


def _reference_edn(params, demands: np.ndarray) -> BatchCycleResult:
    network = EDNetwork(params)
    output = np.full(demands.shape, IDLE, dtype=np.int64)
    blocked = np.full(demands.shape, IDLE, dtype=np.int64)
    for i, row in enumerate(demands):
        result = network.route_destinations(
            {int(s): int(d) for s, d in enumerate(row) if d != IDLE}
        )
        for outcome in result.outcomes:
            s = outcome.message.source
            if outcome.delivered:
                output[i, s] = outcome.output
                blocked[i, s] = 0
            else:
                blocked[i, s] = outcome.blocked_stage
    return BatchCycleResult(output=output, blocked_stage=blocked)


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize(
        "spec, backend", CASES, ids=[f"{s.label}-{b}" for s, b in CASES]
    )
    def test_route_batch_matches_reference(self, spec, backend):
        demands = shared_demands(spec)
        expected = reference_outcomes(spec, demands)
        result = build_router(spec, backend).route_batch(demands)
        np.testing.assert_array_equal(result.output, expected.output)
        np.testing.assert_array_equal(result.blocked_stage, expected.blocked_stage)

    @pytest.mark.parametrize(
        "spec, backend", CASES, ids=[f"{s.label}-{b}" for s, b in CASES]
    )
    def test_route_matches_batch_rows(self, spec, backend):
        demands = shared_demands(spec)
        router = build_router(spec, backend)
        batched = router.route_batch(demands)
        for i, row in enumerate(demands):
            single = router.route(row)
            np.testing.assert_array_equal(single.output, batched.output[i])
            np.testing.assert_array_equal(single.blocked_stage, batched.blocked_stage[i])

    @pytest.mark.parametrize("spec", SPECS, ids=[s.label for s in SPECS])
    def test_every_spec_has_a_backend_and_routes(self, spec):
        router = build_router(spec)  # auto
        result = router.route_batch(shared_demands(spec))
        assert result.output.shape == (BATCH, spec.n_inputs)
        assert result.num_delivered > 0


class TestBackendSelection:
    def test_auto_prefers_batched_engines(self):
        for spec in (NetworkSpec.edn(16, 4, 4, 2), NetworkSpec.delta(4, 4, 2),
                     NetworkSpec.omega(16)):
            assert resolve_backend(spec).name == AUTO_COMPILED
        # The crossbar has no stage plan, so native never serves it.
        assert resolve_backend(NetworkSpec.crossbar(32)).name == "batched"

    def test_auto_falls_back_per_kind(self):
        assert resolve_backend(NetworkSpec.clos(4, 4)).name == "matching"
        assert resolve_backend(NetworkSpec.benes(16)).name == "looping"

    def test_faults_stay_on_the_compiled_engines(self):
        # Fault sets lower into the compiled plan, so faulted specs keep
        # the batched fast path; the per-message reference remains as the
        # independent cross-check.
        spec = NetworkSpec.edn(16, 4, 4, 2, faults=(WireFault(1, 0, 0),))
        assert available_backends(spec) == with_native(
            ["batched", "vectorized", "reference"]
        )
        assert resolve_backend(spec).name == AUTO_COMPILED

    def test_faults_available_on_every_stage_graph_kind(self):
        for spec in (
            NetworkSpec.delta(4, 4, 2, faults=(WireFault(1, 0, 1),)),
            NetworkSpec.omega(16, faults=(WireFault(1, 0, 1),)),
            NetworkSpec.dilated(4, 4, 2, 2, faults=(WireFault(1, 0, 1),)),
        ):
            assert available_backends(spec) == with_native(["batched", "vectorized"])

    def test_explicit_non_fault_capable_backend_names_alternatives(self):
        # Requesting a backend that handles the topology but not its
        # faults must say so and name the fault-capable backends.
        spec = NetworkSpec.edn(
            16, 4, 4, 2, priority="random", faults=(WireFault(1, 0, 0),)
        )
        with pytest.raises(
            ConfigurationError,
            match=r"fault injection.*fault-capable backends.*batched",
        ):
            build_router(spec, "reference")  # FaultyEDNetwork is label-only

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            build_router(NetworkSpec.omega(16), "warp")

    def test_unsupported_backend_rejected_with_alternatives(self):
        with pytest.raises(ConfigurationError, match="does not support"):
            build_router(NetworkSpec.clos(4, 4), "batched")

    def test_registry_names_are_stable(self):
        assert set(BACKENDS) == {
            "batched", "vectorized", "reference", "matching", "looping",
            "native", "native:gpu",
        }


class TestFaultyEquivalence:
    def test_reference_backend_matches_faulty_network(self):
        params_spec = NetworkSpec.edn(8, 2, 4, 2)
        faults = (WireFault(1, 0, 0), WireFault(1, 0, 1), WireFault(2, 1, 3))
        spec = NetworkSpec.edn(8, 2, 4, 2, faults=faults)
        demands = shared_demands(params_spec)
        router = build_router(spec)
        batched = router.route_batch(demands)

        network = FaultyEDNetwork(spec.edn_params, FaultSet(faults))
        for i, row in enumerate(demands):
            result = network.route_destinations(
                {int(s): int(d) for s, d in enumerate(row) if d != IDLE}
            )
            for outcome in result.outcomes:
                s = outcome.message.source
                if outcome.delivered:
                    assert batched.output[i, s] == outcome.output
                    assert batched.blocked_stage[i, s] == 0
                else:
                    assert batched.blocked_stage[i, s] == outcome.blocked_stage

    def test_damage_reduces_throughput(self):
        intact = build_router(NetworkSpec.edn(8, 2, 4, 2))
        dead_bucket = tuple(WireFault(1, 0, w) for w in range(8))
        damaged = build_router(NetworkSpec.edn(8, 2, 4, 2, faults=dead_bucket))
        demands = shared_demands(NetworkSpec.edn(8, 2, 4, 2))
        assert (
            damaged.route_batch(demands).num_delivered
            < intact.route_batch(demands).num_delivered
        )


class TestRearrangeableSemantics:
    @pytest.mark.parametrize(
        "spec", [NetworkSpec.clos(4, 4), NetworkSpec.benes(16)],
        ids=["clos", "benes"],
    )
    def test_full_permutations_never_block(self, spec):
        rng = make_rng(7)
        router = build_router(spec)
        perms = np.stack([rng.permutation(spec.n_inputs) for _ in range(4)])
        result = router.route_batch(perms)
        assert result.num_delivered == perms.size
        np.testing.assert_array_equal(result.output, perms)

    def test_skipping_global_routing_preserves_outcomes(self):
        from repro.api import RearrangeableRouter
        from repro.baselines.clos import ClosNetwork

        spec = NetworkSpec.clos(4, 4)
        demands = shared_demands(spec)
        full = RearrangeableRouter(ClosNetwork(4, 4)).route_batch(demands)
        fast = RearrangeableRouter(
            ClosNetwork(4, 4), run_global_routing=False
        ).route_batch(demands)
        np.testing.assert_array_equal(full.output, fast.output)
        np.testing.assert_array_equal(full.blocked_stage, fast.blocked_stage)

    def test_conflicts_resolve_by_label_priority(self):
        router = build_router(NetworkSpec.benes(16))
        demands = np.full(16, IDLE, dtype=np.int64)
        demands[3] = 5
        demands[9] = 5
        result = router.route(demands)
        assert result.output[3] == 5 and result.blocked_stage[3] == 0
        assert result.blocked_stage[9] == 1


class TestPlanCacheCorrectness:
    """The plan cache is invisible semantically, for every backend.

    Satellite contract of the plan-compilation PR: a cache *hit* routes
    bit-identically to a cold compile for every registered backend; specs
    whose features the array engines cannot serve (faults, non-default
    wire policies) never alias onto cached plans; and fanned-out
    ParallelSweep workers each obtain usable plans.
    """

    def setup_method(self):
        from repro.sim.plan import clear_plan_cache

        clear_plan_cache()

    @pytest.mark.parametrize(
        "spec,backend", CASES, ids=[f"{s}-{b}" for s, b in CASES]
    )
    def test_cache_hit_matches_cold_compile(self, spec, backend):
        from repro.sim.plan import clear_plan_cache

        demands = shared_demands(spec)
        clear_plan_cache()
        cold = build_router(spec, backend).route_batch(demands)
        warm = build_router(spec, backend).route_batch(demands)  # cache hit
        np.testing.assert_array_equal(cold.output, warm.output)
        np.testing.assert_array_equal(cold.blocked_stage, warm.blocked_stage)

    def test_measurements_identical_cold_vs_warm(self):
        from repro.api import RunConfig, measure
        from repro.sim.plan import clear_plan_cache, plan_cache_info

        spec = NetworkSpec.edn(16, 4, 4, 2)
        config = RunConfig(cycles=40, seed=2)
        clear_plan_cache()
        cold = measure(spec, config)
        assert plan_cache_info()["misses"] >= 1
        warm = measure(spec, config)
        assert plan_cache_info()["hits"] >= 1
        assert cold.point == warm.point
        assert cold.blocked_by_stage == warm.blocked_by_stage

    def test_faulty_specs_key_the_cache_and_never_alias(self):
        from repro.api import measure, RunConfig
        from repro.sim.plan import plan_cache_info

        pristine = NetworkSpec.edn(8, 2, 4, 2)
        faulty = NetworkSpec.edn(
            8, 2, 4, 2, faults=(WireFault(stage=1, switch=0, local_wire=0),)
        )
        config = RunConfig(cycles=25, seed=3)
        baseline_pristine = measure(pristine, config)
        baseline_faulty = measure(faulty, config)
        # The fault tuple is part of the plan key, so the two specs must
        # compile distinct plans...
        assert plan_cache_info()["misses"] >= 2
        # ...and warming the cache with either spec must not leak the
        # other's plan: re-measuring reproduces both baselines exactly.
        again_faulty = measure(faulty, config)
        again_pristine = measure(pristine, config)
        assert plan_cache_info()["hits"] >= 2
        assert again_faulty.point == baseline_faulty.point
        assert again_faulty.blocked_by_stage == baseline_faulty.blocked_by_stage
        assert again_pristine.point == baseline_pristine.point
        # The damage is real: the faulty plan routes strictly less traffic.
        assert baseline_faulty.delivered < baseline_pristine.delivered
        # Faulted specs ride the compiled backends, keyed by their faults.
        assert resolve_backend(faulty).name == AUTO_COMPILED

    def test_wire_policy_routes_outside_the_cache(self):
        from repro.api import measure, RunConfig
        from repro.sim.plan import clear_plan_cache

        spec = NetworkSpec.edn(8, 2, 4, 2, wire_policy="random")
        assert resolve_backend(spec).name == "reference"
        config = RunConfig(cycles=20, seed=4)
        cold = measure(spec, config)
        clear_plan_cache()
        # Warm an array-engine plan for the same shape, then re-measure.
        measure(NetworkSpec.edn(8, 2, 4, 2), config)
        warm = measure(spec, config)
        assert cold.point == warm.point

    def test_priority_disciplines_get_distinct_plans(self):
        from repro.sim.plan import plan_for
        from repro.core.config import EDNParams

        params = EDNParams(16, 4, 4, 2)
        assert plan_for(params, "label") is not plan_for(params, "random")

    def test_parallel_sweep_workers_share_usable_plans(self):
        from repro.api import RunConfig
        from repro.experiments.workload_matrix import run

        config = RunConfig(cycles=10, seed=0)
        inline = run(config=config.override(jobs=1))
        fanned = run(config=config.override(jobs=2))
        assert (
            inline.tables["PA by traffic x topology"]
            == fanned.tables["PA by traffic x topology"]
        )
