"""NetworkSpec / RunConfig: validation, parsing, precedence semantics."""

from __future__ import annotations

import pickle

import pytest

from repro.api import NetworkSpec, RunConfig, TOPOLOGY_KINDS
from repro.core.exceptions import ConfigurationError
from repro.core.faults import WireFault


class TestNetworkSpecConstruction:
    def test_edn_sizes(self):
        spec = NetworkSpec.edn(16, 4, 4, 2)
        assert (spec.n_inputs, spec.n_outputs) == (64, 64)
        assert spec.edn_params.paths_per_pair == 16

    def test_delta_maps_to_c1_edn(self):
        spec = NetworkSpec.delta(8, 8, 2)
        assert spec.edn_params.c == 1
        assert (spec.n_inputs, spec.n_outputs) == (64, 64)

    def test_omega_and_benes_square(self):
        assert NetworkSpec.omega(64).n_outputs == 64
        assert NetworkSpec.benes(16).n_inputs == 16

    def test_crossbar_rectangular(self):
        spec = NetworkSpec.crossbar(32, 16)
        assert (spec.n_inputs, spec.n_outputs) == (32, 16)

    def test_clos_terminals(self):
        spec = NetworkSpec.clos(4, 8)
        assert spec.n_inputs == 32
        assert NetworkSpec.clos(4, 8, 7).shape == (4, 8, 7)

    def test_every_kind_has_a_constructor(self):
        built = {
            "edn": NetworkSpec.edn(16, 4, 4, 2),
            "delta": NetworkSpec.delta(8, 8, 2),
            "omega": NetworkSpec.omega(8),
            "dilated": NetworkSpec.dilated(4, 4, 2, 2),
            "crossbar": NetworkSpec.crossbar(8),
            "clos": NetworkSpec.clos(2, 4),
            "benes": NetworkSpec.benes(8),
        }
        assert set(built) == set(TOPOLOGY_KINDS)
        for kind, spec in built.items():
            assert spec.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown topology kind"):
            NetworkSpec("hypercube", (16,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ConfigurationError, match="expects shape"):
            NetworkSpec("edn", (16, 4, 4))

    def test_invalid_shape_values_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkSpec.edn(15, 4, 4, 2)  # not a power of two
        with pytest.raises(ConfigurationError):
            NetworkSpec.omega(12)
        with pytest.raises(ConfigurationError):
            NetworkSpec.clos(4, 4, 2)  # m < n

    def test_invalid_disciplines_rejected(self):
        with pytest.raises(ConfigurationError, match="priority"):
            NetworkSpec.edn(16, 4, 4, 2, priority="fifo")
        with pytest.raises(ConfigurationError, match="wire policy"):
            NetworkSpec.edn(16, 4, 4, 2, wire_policy="last_free")

    def test_faults_only_for_edn(self):
        fault = WireFault(1, 0, 0)
        spec = NetworkSpec.edn(16, 4, 4, 2, faults=(fault,))
        assert spec.faults == (fault,)
        with pytest.raises(ConfigurationError, match="faults"):
            NetworkSpec.crossbar(8, faults=(fault,))

    def test_out_of_range_fault_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkSpec.edn(16, 4, 4, 2, faults=(WireFault(9, 0, 0),))

    def test_hashable_and_picklable(self):
        spec = NetworkSpec.edn(16, 4, 4, 2, faults=(WireFault(1, 0, 0),))
        assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))
        assert spec == pickle.loads(pickle.dumps(spec))

    def test_frozen(self):
        with pytest.raises(AttributeError):
            NetworkSpec.omega(8).kind = "edn"


class TestNetworkSpecParse:
    def test_parse_round_trip(self):
        for text in ("edn:16,4,4,2", "delta:8,8,2", "omega:64",
                     "crossbar:32,16", "clos:4,8,7", "benes:16"):
            assert NetworkSpec.parse(text).label == text

    def test_parse_normalizes_case_and_space(self):
        assert NetworkSpec.parse(" EDN:16,4,4,2").kind == "edn"

    def test_parse_rejects_garbage(self):
        for text in ("edn", "edn:", "edn:a,b", "16,4,4,2"):
            with pytest.raises(ConfigurationError):
                NetworkSpec.parse(text)


class TestRunConfig:
    def test_defaults_unset(self):
        cfg = RunConfig()
        assert cfg.cycles is None and cfg.seed is None and cfg.jobs is None
        assert cfg.batch is None and cfg.confidence is None
        assert cfg.backend == "auto"

    def test_override_wins_only_when_set(self):
        cfg = RunConfig(cycles=10, jobs=2)
        out = cfg.override(cycles=99, jobs=None, batch=8)
        assert (out.cycles, out.jobs, out.batch) == (99, 2, 8)

    def test_resolve_fills_only_unset(self):
        cfg = RunConfig(cycles=10)
        out = cfg.resolve(cycles=60, seed=0, jobs=1)
        assert (out.cycles, out.seed, out.jobs) == (10, 0, 1)

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown RunConfig field"):
            RunConfig().override(cycle=5)
        with pytest.raises(ConfigurationError, match="unknown RunConfig field"):
            RunConfig().resolve(sedd=0)

    def test_frozen_and_picklable(self):
        cfg = RunConfig(cycles=5, seed=3)
        with pytest.raises(AttributeError):
            cfg.cycles = 6
        assert pickle.loads(pickle.dumps(cfg)) == cfg


class TestRunConfigTraffic:
    def test_unset_by_default(self):
        assert RunConfig().traffic is None

    def test_validated_and_canonicalized(self):
        assert RunConfig(traffic="hotspot:0.1").traffic == "hotspot:0.1"
        assert RunConfig(traffic="bit_reversal").traffic == "bitrev"

    def test_bad_spec_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            RunConfig(traffic="zipf")
        with pytest.raises(ConfigurationError, match="unknown argument"):
            RunConfig(traffic="hotspot:heat=9")

    def test_threads_through_override_and_resolve(self):
        cfg = RunConfig(cycles=10)
        assert cfg.override(traffic="uniform:0.5").traffic == "uniform:0.5"
        assert cfg.resolve(traffic="uniform").traffic == "uniform"
        assert RunConfig(traffic="tornado").resolve(traffic="uniform").traffic == "tornado"

    def test_hashable_and_picklable_with_traffic(self):
        cfg = RunConfig(cycles=5, traffic="mixture:uniform@0.7+hotspot:0.1@0.3")
        assert pickle.loads(pickle.dumps(cfg)) == cfg
        assert cfg in {cfg}

    def test_measure_honors_config_traffic(self):
        from repro.api import measure

        spec = NetworkSpec.edn(16, 4, 4, 2)
        hot = measure(spec, RunConfig(cycles=20, seed=0, traffic="hotspot:0.5"))
        cool = measure(spec, RunConfig(cycles=20, seed=0, traffic="uniform"))
        assert hot.point < cool.point

    def test_measure_accepts_spec_strings_directly(self):
        from repro.api import measure

        spec = NetworkSpec.edn(16, 4, 4, 2)
        m = measure(spec, RunConfig(cycles=10, seed=0), traffic="bitrev")
        assert m.point == 1.0  # 16 paths/pair route bit reversal cleanly

    def test_explicit_traffic_beats_config_traffic(self):
        from repro.api import measure

        spec = NetworkSpec.edn(16, 4, 4, 2)
        cfg = RunConfig(cycles=10, seed=0, traffic="hotspot:0.9")
        assert measure(spec, cfg, traffic="bitrev").point == 1.0

    def test_rate_with_explicit_workload_rejected(self):
        from repro.api import measure

        spec = NetworkSpec.edn(16, 4, 4, 2)
        with pytest.raises(ConfigurationError, match="inside the traffic spec"):
            measure(spec, RunConfig(cycles=5, traffic="hotspot:0.1"), rate=0.5)
        with pytest.raises(ConfigurationError, match="inside the traffic spec"):
            measure(spec, RunConfig(cycles=5), traffic="bitrev", rate=0.5)

    def test_measure_acceptance_accepts_specs(self):
        from repro.api import build_router
        from repro.sim.montecarlo import measure_acceptance

        router = build_router(NetworkSpec.edn(16, 4, 4, 2))
        m = measure_acceptance(router, "identity", cycles=5, seed=0)
        assert m.point < 1.0  # Figure 5: the identity blocks in one pass


class TestRunConfigBufferDepth:
    def test_unset_by_default(self):
        assert RunConfig().buffer_depth is None

    def test_validated_at_construction(self):
        assert RunConfig(buffer_depth=2).buffer_depth == 2
        assert RunConfig(buffer_depth=1.0).buffer_depth == 1  # int-coerced
        with pytest.raises(ConfigurationError, match="buffer_depth"):
            RunConfig(buffer_depth=0)
        with pytest.raises(ConfigurationError, match="buffer_depth"):
            RunConfig(buffer_depth=-3)

    def test_threads_through_override_and_resolve(self):
        cfg = RunConfig(cycles=10)
        assert cfg.override(buffer_depth=4).buffer_depth == 4
        assert cfg.resolve(buffer_depth=2).buffer_depth == 2
        assert RunConfig(buffer_depth=1).resolve(buffer_depth=8).buffer_depth == 1

    def test_hashable_and_picklable(self):
        cfg = RunConfig(cycles=5, buffer_depth=2)
        assert pickle.loads(pickle.dumps(cfg)) == cfg
        assert cfg in {cfg}
