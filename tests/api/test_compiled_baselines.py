"""Compiled delta-family baselines: equivalence, caching, and spec forms.

The stage-graph refactor's contract, pinned from above the facade:

* ``delta``/``omega``/``dilated`` specs compile to the plan-cached batched
  kernels (``backend="auto"`` -> ``batched``) and route **bit-identically**
  to their legacy per-cycle implementations — the vectorized EDN for the
  delta, the shuffle-composed vectorized EDN for the omega, and a
  from-scratch pure-Python simulator for the dilated delta — across
  priorities, seeds, and batch sizes;
* the counts-only kernel agrees with per-message routing, and whole
  acceptance measurements are identical between the compiled and loop
  backends at equal ``(seed, batch)``;
* ``DilatedDelta.analytic_acceptance`` tracks Monte-Carlo on the compiled
  topology at matched rates;
* both spec shape forms (``delta:N,b`` / ``delta:a,b,l`` and the dilated
  equivalents) name the same compiled topology and share one plan.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import NetworkSpec, RunConfig, build_router, measure, resolve_backend
from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.sim.montecarlo import measure_acceptance
from repro.sim.plan import clear_plan_cache, plan_cache_info
from repro.sim.rng import make_rng, spawn
from repro.sim.vectorized import VectorizedEDN

IDLE = -1

#: (spec text, batch sizes) — the compiled baselines under test.
BASELINES = [
    "delta:4,4,3",
    "delta:64,2",
    "omega:32",
    "dilated:4,4,3,2",
    "dilated:64,4,4",
]


def demands_for(spec: NetworkSpec, batch: int, seed: int) -> np.ndarray:
    rng = make_rng(seed)
    return rng.integers(IDLE, spec.n_outputs, size=(batch, spec.n_inputs))


# ----------------------------------------------------------------------
# Legacy ground truths, recomputed here independent of the graph compiler
# ----------------------------------------------------------------------


def legacy_delta_rows(spec, demands, rngs):
    """The pre-refactor delta path: VectorizedEDN on the c=1 EDN."""
    engine = VectorizedEDN(spec.edn_params, priority=spec.priority)
    return [engine.route(row, rng) for row, rng in zip(demands, rngs)]


def legacy_omega_rows(spec, demands, rngs):
    """The pre-refactor omega path: perfect shuffle + VectorizedEDN."""
    n = spec.shape[0]
    stages = int(n).bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    shuffle = ((idx << 1) | (idx >> (stages - 1))) & (n - 1)
    engine = VectorizedEDN(EDNParams(2, 2, 1, stages), priority=spec.priority)
    rows = []
    for row, rng in zip(demands, rngs):
        shuffled = np.full(n, IDLE, dtype=np.int64)
        shuffled[shuffle] = row
        inner = engine.route(shuffled, rng)
        rows.append(
            type(inner)(
                output=inner.output[shuffle],
                blocked_stage=inner.blocked_stage[shuffle],
            )
        )
    return rows


def _lifted_gamma(y: int, n_bits: int, lane_bits: int, rot: int) -> int:
    """The base delta's interstage rotation lifted over the lane bits."""
    upper_width = n_bits - lane_bits
    shift = rot % upper_width
    if shift == 0:
        return y
    low = y & ((1 << lane_bits) - 1)
    upper = y >> lane_bits
    mask = (1 << upper_width) - 1
    rotated = ((upper << shift) | (upper >> (upper_width - shift))) & mask
    return (rotated << lane_bits) | low


def route_dilated_pure_python(a, b, l, d, dests, rng=None, priority="label"):
    """A from-scratch per-cycle dilated-delta simulator (dicts and loops).

    Shares *no* code with the compiled kernels or the stage-graph
    interpreter: buckets are dictionaries, ranks are list positions, the
    interstage wiring is an inline bit rotation.  Label priority ranks by
    wire label; random priority draws one permutation over the frontier
    per stage, exactly as the array engines do.
    """
    n = a**l
    lane_bits = d.bit_length() - 1
    digit_bits = b.bit_length() - 1
    output = np.full(n, IDLE, dtype=np.int64)
    blocked = np.full(n, IDLE, dtype=np.int64)
    frontier = []  # (wire, source), kept in frontier order
    for s, dest in enumerate(dests):
        if dest != IDLE:
            blocked[s] = 0
            frontier.append((s, s))
    width = n
    for i in range(1, l + 1):
        fan_in = a if i == 1 else a * d
        shift = (l - i) * digit_bits
        if priority == "random" and frontier:
            tie = rng.permutation(len(frontier))
        else:
            tie = [wire for wire, _src in frontier]  # label priority
        buckets: dict[tuple[int, int], list] = {}
        for (wire, src), sub_key in sorted(
            zip(frontier, tie), key=lambda pair: pair[1]
        ):
            digit = (int(dests[src]) >> shift) & (b - 1)
            buckets.setdefault((wire // fan_in, digit), []).append((wire, src))
        width = width // fan_in * b * d
        n_bits = width.bit_length() - 1
        survivors = {}
        for (switch, digit), requests in buckets.items():
            for rank, (wire, src) in enumerate(requests):
                if rank < d:
                    y = switch * b * d + digit * d + rank
                    if i < l:
                        y = _lifted_gamma(y, n_bits, lane_bits, a.bit_length() - 1)
                    survivors[src] = y
                else:
                    blocked[src] = i
        # Rebuild the frontier in the original (source-filtered) order.
        frontier = [
            (survivors[src], src) for _w, src in frontier if src in survivors
        ]
    for wire, src in frontier:
        output[src] = wire >> lane_bits
    return output, blocked


def legacy_dilated_rows(spec, demands, rngs):
    a, b, l, d = spec.dilated_shape
    rows = []
    for row, rng in zip(demands, rngs):
        output, blocked = route_dilated_pure_python(
            a, b, l, d, row, rng, spec.priority
        )
        rows.append((output, blocked))
    return rows


LEGACY = {"delta": legacy_delta_rows, "omega": legacy_omega_rows, "dilated": legacy_dilated_rows}


# ----------------------------------------------------------------------
# Bit-identical equivalence across priorities, seeds, and batch sizes
# ----------------------------------------------------------------------


class TestCompiledMatchesLegacy:
    @pytest.mark.parametrize("text", BASELINES)
    @pytest.mark.parametrize("priority", ["label", "random"])
    @pytest.mark.parametrize("seed", [0, 7])
    @pytest.mark.parametrize("batch", [1, 9])
    def test_route_batch_bit_identical(self, text, priority, seed, batch):
        spec = NetworkSpec.parse(text, priority=priority)
        demands = demands_for(spec, batch, seed)
        rngs = spawn(seed, batch)
        router = build_router(spec, "batched")
        result = router.route_batch(
            demands, rngs if priority == "random" else None
        )
        legacy = LEGACY[spec.kind](spec, demands, spawn(seed, batch))
        for i, row in enumerate(legacy):
            out, blk = (row.output, row.blocked_stage) if hasattr(row, "output") else row
            np.testing.assert_array_equal(result.output[i], out)
            np.testing.assert_array_equal(result.blocked_stage[i], blk)

    @pytest.mark.parametrize("text", BASELINES)
    def test_counts_kernel_matches_per_message(self, text):
        spec = NetworkSpec.parse(text)
        router = build_router(spec, "batched")
        demands = demands_for(spec, 11, seed=3)
        full = router.route_batch(demands)
        counts = router.route_batch_counts(demands)
        np.testing.assert_array_equal(
            counts.offered_per_cycle, full.offered_per_cycle
        )
        np.testing.assert_array_equal(
            counts.delivered_per_cycle, full.delivered_per_cycle
        )
        assert counts.blocked_by_stage == full.blocked_stage_histogram()

    @pytest.mark.parametrize("text", BASELINES)
    @pytest.mark.parametrize("priority", ["label", "random"])
    def test_single_cycle_route_matches_batch_rows(self, text, priority):
        spec = NetworkSpec.parse(text, priority=priority)
        router = build_router(spec, "batched")
        demands = demands_for(spec, 4, seed=11)
        rngs = spawn(5, 4)
        batched = router.route_batch(
            demands, rngs if priority == "random" else None
        )
        fresh = spawn(5, 4)
        for i, row in enumerate(demands):
            single = router.route(row, fresh[i] if priority == "random" else None)
            np.testing.assert_array_equal(single.output, batched.output[i])
            np.testing.assert_array_equal(
                single.blocked_stage, batched.blocked_stage[i]
            )


class TestBackendAgreement:
    """Compiled (batched) vs loop (vectorized) paths: identical measurements."""

    @pytest.mark.parametrize("text", BASELINES)
    def test_auto_resolves_to_a_compiled_backend(self, text):
        from repro.sim.native import available_tiers

        expected = "native" if available_tiers() else "batched"
        assert resolve_backend(NetworkSpec.parse(text)).name == expected

    @pytest.mark.parametrize("text", BASELINES)
    @pytest.mark.parametrize("priority", ["label", "random"])
    def test_measurements_bit_identical_across_backends(self, text, priority):
        spec = NetworkSpec.parse(text, priority=priority)
        config = RunConfig(cycles=24, seed=9, batch=8)
        fast = measure_acceptance(build_router(spec, "batched"), config=config)
        loop = measure_acceptance(build_router(spec, "vectorized"), config=config)
        assert fast.offered == loop.offered
        assert fast.delivered == loop.delivered
        assert fast.point == loop.point
        assert fast.blocked_by_stage == loop.blocked_by_stage

    @pytest.mark.parametrize("text", BASELINES)
    def test_chunk_size_does_not_change_the_measurement(self, text):
        spec = NetworkSpec.parse(text, priority="random")
        router = build_router(spec, "batched")
        small = measure_acceptance(router, cycles=24, seed=4, batch=4)
        large = measure_acceptance(router, cycles=24, seed=4, batch=24)
        assert small.point == large.point
        assert small.blocked_by_stage == large.blocked_by_stage


# ----------------------------------------------------------------------
# Analytic cross-check (the dilated model vs Monte-Carlo)
# ----------------------------------------------------------------------


class TestDilatedAnalytic:
    @pytest.mark.parametrize("shape", [(4, 4, 3, 2), (8, 8, 2, 2)])
    @pytest.mark.parametrize("rate", [1.0, 0.5])
    def test_analytic_acceptance_tracks_monte_carlo(self, shape, rate):
        from repro.baselines.dilated import DilatedDelta

        a, b, l, d = shape
        net = DilatedDelta(a=a, b=b, l=l, d=d)
        spec = NetworkSpec.dilated(a, b, l, d)
        traffic = "uniform" if rate == 1.0 else f"uniform:{rate:g}"
        measured = measure(spec, RunConfig(cycles=300, seed=0, traffic=traffic))
        assert net.analytic_acceptance(rate) == pytest.approx(
            measured.point, abs=0.02
        )

    def test_dilation_one_equals_the_plain_delta(self):
        """``d = 1`` routes exactly like the ``c = 1`` delta, per message."""
        spec = NetworkSpec.parse("dilated:4,4,3,1")
        demands = demands_for(spec, 6, seed=2)
        dilated = build_router(spec, "batched").route_batch(demands)
        delta = build_router(NetworkSpec.parse("delta:4,4,3"), "batched").route_batch(
            demands
        )
        np.testing.assert_array_equal(dilated.output, delta.output)
        # The delta's extra (never-blocking) 1x1 crossbar column does not
        # change which messages are delivered.
        np.testing.assert_array_equal(
            dilated.blocked_stage == 0, delta.blocked_stage == 0
        )

    def test_dilation_raises_measured_acceptance(self):
        cfg = RunConfig(cycles=80, seed=1)
        plain = measure(NetworkSpec.parse("delta:64,4"), cfg)
        dilated = measure(NetworkSpec.parse("dilated:64,4,4"), cfg)
        assert dilated.point > plain.point


# ----------------------------------------------------------------------
# Spec forms and plan-cache behavior
# ----------------------------------------------------------------------


class TestSpecForms:
    def test_square_delta_form(self):
        spec = NetworkSpec.parse("delta:4096,4")
        assert (spec.n_inputs, spec.n_outputs) == (4096, 4096)
        assert spec.delta_shape == (4, 4, 6)
        assert spec.edn_params == EDNParams(4, 4, 1, 6)

    def test_square_dilated_form(self):
        spec = NetworkSpec.parse("dilated:4096,4,2")
        assert (spec.n_inputs, spec.n_outputs) == (4096, 4096)
        assert spec.dilated_shape == (4, 4, 6, 2)

    def test_explicit_dilated_form(self):
        spec = NetworkSpec.parse("dilated:4,2,3,2")
        assert spec.dilated_shape == (4, 2, 3, 2)
        assert (spec.n_inputs, spec.n_outputs) == (64, 8)

    def test_both_delta_forms_name_one_topology(self):
        assert (
            NetworkSpec.parse("delta:4096,4").stage_graph()
            == NetworkSpec.parse("delta:4,4,6").stage_graph()
        )

    @pytest.mark.parametrize(
        "text", ["delta:100,3", "delta:48,4", "delta:4,1", "dilated:64,4,3", "dilated:60,4,2"]
    )
    def test_invalid_square_forms_rejected(self, text):
        with pytest.raises(ConfigurationError):
            NetworkSpec.parse(text)

    def test_labels_round_trip(self):
        for text in ("delta:4096,4", "dilated:4096,4,2", "dilated:4,2,3,2"):
            assert NetworkSpec.parse(text).label == text


class TestPlanCache:
    def test_every_kind_resolves_to_a_cached_plan(self):
        clear_plan_cache()
        texts = ("edn:16,4,4,2", "delta:4096,4", "omega:4096", "dilated:4096,4,2")
        for text in texts:
            build_router(NetworkSpec.parse(text), "batched")
        info = plan_cache_info()
        assert info["misses"] >= len(texts)
        assert info["size"] >= len(texts)
        before_hits = info["hits"]
        for text in texts:
            build_router(NetworkSpec.parse(text), "batched")
        assert plan_cache_info()["hits"] >= before_hits + len(texts)

    def test_shape_forms_share_one_plan(self):
        clear_plan_cache()
        build_router(NetworkSpec.parse("delta:4096,4"), "batched")
        build_router(NetworkSpec.parse("delta:4,4,6"), "batched")
        info = plan_cache_info()
        assert info["misses"] == 1 and info["hits"] == 1

    def test_priorities_get_distinct_plans(self):
        clear_plan_cache()
        build_router(NetworkSpec.parse("omega:64", priority="label"), "batched")
        build_router(NetworkSpec.parse("omega:64", priority="random"), "batched")
        assert plan_cache_info()["size"] == 2

    def test_warm_builds_route_identically(self):
        clear_plan_cache()
        spec = NetworkSpec.parse("dilated:64,4,2")
        demands = demands_for(spec, 7, seed=13)
        cold = build_router(spec, "batched").route_batch(demands)
        warm = build_router(spec, "batched").route_batch(demands)
        np.testing.assert_array_equal(cold.output, warm.output)
        np.testing.assert_array_equal(cold.blocked_stage, warm.blocked_stage)
