"""Shared fixtures for the EDN reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EDNParams


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator; per-test isolation via a fixed seed."""
    return np.random.default_rng(12345)


#: Small networks that are exhaustively checkable.
SMALL_CONFIGS = [
    (4, 2, 2, 1),
    (4, 2, 2, 2),
    (8, 2, 4, 2),
    (8, 4, 2, 2),
    (8, 8, 1, 2),
    (16, 4, 4, 2),
    (2, 2, 1, 3),
    (16, 2, 8, 1),
]

#: Larger networks exercised by sampling.
BIG_CONFIGS = [
    (64, 16, 4, 2),   # the MasPar MP-1 router network
    (16, 8, 2, 3),
    (8, 4, 2, 4),
    (16, 16, 1, 3),
]


@pytest.fixture(params=SMALL_CONFIGS, ids=lambda cfg: f"EDN{cfg}")
def small_params(request) -> EDNParams:
    return EDNParams(*request.param)


@pytest.fixture(params=BIG_CONFIGS, ids=lambda cfg: f"EDN{cfg}")
def big_params(request) -> EDNParams:
    return EDNParams(*request.param)


@pytest.fixture
def maspar_params() -> EDNParams:
    """The EDN(64,16,4,2) backing the paper's Section 5 example."""
    return EDNParams(64, 16, 4, 2)
