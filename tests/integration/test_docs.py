"""The documentation stays true: links resolve, documented specs parse.

Guards the contract stated in docs/WORKLOADS.md: every workload spec
string the docs show is accepted by the registry, every registered
workload is documented, and README links both documents.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.workloads import WORKLOADS, available_workloads, parse_workload
from repro.workloads.registry import _ALIASES

REPO = Path(__file__).resolve().parent.parent.parent
ARCHITECTURE = REPO / "docs" / "ARCHITECTURE.md"
WORKLOADS_DOC = REPO / "docs" / "WORKLOADS.md"
README = REPO / "README.md"

#: A complete lowercase spec token: name[:args].  Uppercase placeholders
#: (``trace:FILE.npy``, ``hotspot[:FRAC]``) are deliberately excluded.
_SPEC_TOKEN = re.compile(r"^[a-z_]+(:[a-z0-9_.,=@+:/-]+)?$")

_KNOWN_HEADS = set(available_workloads()) | set(_ALIASES)


def _documented_specs(text: str) -> list[str]:
    """Workload-spec candidates: inline code plus every ``--traffic`` value."""
    tokens = re.findall(r"`([^`\n]+)`", text)
    tokens += re.findall(r"--traffic\s+(\S+)", text)
    return [
        token
        for token in tokens
        if _SPEC_TOKEN.match(token) and token.split(":", 1)[0] in _KNOWN_HEADS
    ]


class TestDocsExist:
    def test_architecture_and_workloads_docs_exist(self):
        assert ARCHITECTURE.is_file()
        assert WORKLOADS_DOC.is_file()

    def test_readme_links_both(self):
        readme = README.read_text()
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/WORKLOADS.md" in readme

    def test_readme_quickstart_shows_traffic_and_backend(self):
        readme = README.read_text()
        assert "--traffic" in readme and "--backend" in readme


class TestDocumentedSpecsParse:
    @pytest.mark.parametrize("path", [WORKLOADS_DOC, README, ARCHITECTURE],
                             ids=lambda p: p.name)
    def test_every_documented_spec_parses(self, path):
        specs = _documented_specs(path.read_text())
        for token in specs:
            if ":" in token:
                parse_workload(token)  # full spec: must parse cleanly
            else:
                assert token in _KNOWN_HEADS  # bare name: must be registered

    def test_workloads_doc_is_substantive(self):
        specs = _documented_specs(WORKLOADS_DOC.read_text())
        with_args = {token for token in specs if ":" in token}
        assert len(with_args) >= 10, f"only {sorted(with_args)} documented with args"

    def test_every_registered_workload_documented(self):
        text = WORKLOADS_DOC.read_text()
        for name in available_workloads():
            assert f"`{name}" in text, f"workload {name!r} missing from docs/WORKLOADS.md"

    def test_doc_table_covers_registry_syntax(self):
        # The CLI listing and the doc must agree on what exists.
        text = WORKLOADS_DOC.read_text()
        for entry in WORKLOADS.values():
            assert entry.name in text
