"""Test package."""
