"""Every docstring example in the public modules must execute and hold."""

from __future__ import annotations

import doctest
import importlib

import pytest

DOCUMENTED_MODULES = [
    "repro.api.spec",
    "repro.api.registry",
    "repro.api.measure",
    "repro.workloads.models",
    "repro.workloads.registry",
    "repro.core.labels",
    "repro.core.permutations",
    "repro.core.hyperbar",
    "repro.core.crossbar",
    "repro.core.config",
    "repro.core.tags",
    "repro.core.network",
    "repro.sim.engine",
    "repro.sim.stats",
    "repro.sim.vectorized",
    "repro.baselines.delta",
    "repro.baselines.omega",
    "repro.baselines.benes",
    "repro.baselines.clos",
    "repro.baselines.crossbar_network",
    "repro.viz.tables",
    "repro.viz.ascii_art",
    "repro.mimd.system",
    "repro.simd.simulator",
    "repro.simd.maspar",
    "repro.ext.buffered",
]


@pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {module_name}"
    assert result.attempted > 0, f"{module_name} lost its documented examples"
