"""Integration: the vectorized engine reproduces the reference engine exactly.

The reference engine (:mod:`repro.core.network`) is the semantic ground
truth — one switch object per hyperbar, explicit wires.  The vectorized
engine must make *identical* per-message decisions (same winners, same
blocking stages, same outputs) under label priority and first-free wires,
for every retirement order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EDNParams
from repro.core.network import EDNetwork
from repro.core.tags import RetirementOrder
from repro.sim.vectorized import VectorizedEDN

CONFIGS = [
    (16, 4, 4, 2),
    (8, 2, 4, 3),
    (8, 8, 1, 2),
    (64, 16, 4, 2),
    (4, 2, 2, 4),
    (16, 8, 2, 3),
    (16, 2, 8, 1),
]


def _compare_one_cycle(params: EDNParams, order, dests: np.ndarray) -> None:
    vectorized = VectorizedEDN(params, retirement_order=order)
    reference = EDNetwork(params, retirement_order=order)
    vec = vectorized.route(dests)
    ref = reference.route_destinations(
        {int(s): int(d) for s, d in enumerate(dests) if d >= 0}
    )
    by_source = {o.message.source: o for o in ref.outcomes}
    for source in range(params.num_inputs):
        if dests[source] < 0:
            assert vec.blocked_stage[source] == -1
            continue
        outcome = by_source[source]
        if outcome.delivered:
            assert vec.blocked_stage[source] == 0
            assert vec.output[source] == outcome.output
        else:
            assert vec.blocked_stage[source] == outcome.blocked_stage


@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: f"EDN{c}")
class TestEquivalence:
    def test_uniform_traffic(self, cfg, rng):
        params = EDNParams(*cfg)
        for _ in range(6):
            rate = float(rng.random())
            dests = rng.integers(0, params.num_outputs, size=params.num_inputs)
            dests = np.where(rng.random(params.num_inputs) < rate, dests, -1)
            _compare_one_cycle(params, None, dests)

    def test_permutation_traffic(self, cfg, rng):
        params = EDNParams(*cfg)
        n = min(params.num_inputs, params.num_outputs)
        dests = np.full(params.num_inputs, -1, dtype=np.int64)
        dests[:n] = rng.permutation(params.num_outputs)[:n]
        _compare_one_cycle(params, None, dests)

    def test_reversed_retirement_order(self, cfg, rng):
        params = EDNParams(*cfg)
        order = RetirementOrder.reversed_order(params.l)
        dests = rng.integers(0, params.num_outputs, size=params.num_inputs)
        _compare_one_cycle(params, order, dests)

    def test_all_to_one(self, cfg):
        params = EDNParams(*cfg)
        dests = np.zeros(params.num_inputs, dtype=np.int64)
        _compare_one_cycle(params, None, dests)

    def test_identity_pattern(self, cfg):
        params = EDNParams(*cfg)
        n = min(params.num_inputs, params.num_outputs)
        dests = np.full(params.num_inputs, -1, dtype=np.int64)
        dests[:n] = np.arange(n)
        _compare_one_cycle(params, None, dests)
