"""Hypothesis property tests on core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EDNParams
from repro.core.labels import (
    MixedRadix,
    digits_from_int,
    int_from_digits,
    reverse_bits,
    rotate_left,
    rotate_right,
)
from repro.core.permutations import Permutation, gamma, gamma_inverse
from repro.core.tags import DestinationTag, RetirementOrder
from repro.core.topology import EDNTopology
from repro.sim.vectorized import VectorizedEDN

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

powers_of_two = st.sampled_from([1, 2, 4, 8, 16])


@st.composite
def edn_params(draw):
    """A random valid small EDN shape."""
    b = draw(st.sampled_from([2, 4, 8]))
    c = draw(st.sampled_from([1, 2, 4]))
    a = b * c  # square hyperbars keep sizes manageable
    l = draw(st.integers(min_value=1, max_value=3))
    return EDNParams(a, b, c, l)


@st.composite
def label_and_width(draw):
    width = draw(st.integers(min_value=1, max_value=16))
    value = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    return value, width


@st.composite
def radices_and_value(draw):
    radices = tuple(
        draw(st.lists(st.sampled_from([2, 3, 4, 5, 8]), min_size=1, max_size=5))
    )
    size = 1
    for r in radices:
        size *= r
    value = draw(st.integers(min_value=0, max_value=size - 1))
    return radices, value


# ---------------------------------------------------------------------------
# Label properties
# ---------------------------------------------------------------------------


class TestLabelProperties:
    @given(radices_and_value())
    def test_digit_expansion_roundtrips(self, case):
        radices, value = case
        assert int_from_digits(digits_from_int(value, radices), radices) == value

    @given(label_and_width(), st.integers(min_value=0, max_value=40))
    def test_rotations_invert(self, case, k):
        value, width = case
        assert rotate_right(rotate_left(value, width, k), width, k) == value

    @given(label_and_width())
    def test_rotate_by_width_is_identity(self, case):
        value, width = case
        assert rotate_left(value, width, width) == value

    @given(label_and_width())
    def test_bit_reversal_is_involution(self, case):
        value, width = case
        assert reverse_bits(reverse_bits(value, width), width) == value

    @given(st.lists(st.sampled_from([2, 4, 8]), min_size=1, max_size=4), st.data())
    def test_mixed_radix_digit_edit(self, radices, data):
        scheme = MixedRadix(radices)
        value = data.draw(st.integers(min_value=0, max_value=scheme.size - 1))
        position = data.draw(st.integers(min_value=0, max_value=len(radices) - 1))
        digit = data.draw(st.integers(min_value=0, max_value=radices[position] - 1))
        edited = scheme.with_digit(value, position, digit)
        assert scheme.digit(edited, position) == digit
        # Other digits untouched.
        before, after = scheme.to_digits(value), scheme.to_digits(edited)
        for i, (x, y) in enumerate(zip(before, after)):
            if i != position:
                assert x == y


# ---------------------------------------------------------------------------
# Gamma properties
# ---------------------------------------------------------------------------


class TestGammaProperties:
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=6),
        st.data(),
    )
    def test_gamma_bijective_and_invertible(self, n_bits, j, k, data):
        j = min(j, n_bits)
        y = data.draw(st.integers(min_value=0, max_value=(1 << n_bits) - 1))
        z = gamma(y, n_bits, j, k)
        assert 0 <= z < (1 << n_bits)
        assert gamma_inverse(z, n_bits, j, k) == y

    @given(st.integers(min_value=2, max_value=10), st.data())
    def test_gamma_preserves_low_bits(self, n_bits, data):
        j = data.draw(st.integers(min_value=0, max_value=n_bits))
        k = data.draw(st.integers(min_value=0, max_value=5))
        y = data.draw(st.integers(min_value=0, max_value=(1 << n_bits) - 1))
        mask = (1 << j) - 1
        assert gamma(y, n_bits, j, k) & mask == y & mask


# ---------------------------------------------------------------------------
# Permutation properties
# ---------------------------------------------------------------------------

permutations = st.integers(min_value=1, max_value=24).flatmap(
    lambda n: st.permutations(range(n))
)


class TestPermutationProperties:
    @given(permutations)
    def test_inverse_composes_to_identity(self, mapping):
        p = Permutation(mapping)
        assert (p.inverse() @ p).is_identity()
        assert (p @ p.inverse()).is_identity()

    @given(permutations, st.data())
    def test_apply_to_then_invert(self, mapping, data):
        p = Permutation(mapping)
        items = list(range(p.size))
        moved = p.apply_to(items)
        restored = p.inverse().apply_to(moved)
        assert restored == items

    @given(permutations)
    def test_cycles_partition_moved_points(self, mapping):
        p = Permutation(mapping)
        in_cycles = {x for cycle in p.cycles() for x in cycle}
        moved = {i for i in range(p.size) if p(i) != i}
        assert in_cycles == moved


# ---------------------------------------------------------------------------
# Network invariants
# ---------------------------------------------------------------------------


class TestNetworkProperties:
    @settings(max_examples=25, deadline=None)
    @given(edn_params(), st.data())
    def test_lone_message_always_delivered(self, params, data):
        source = data.draw(st.integers(min_value=0, max_value=params.num_inputs - 1))
        dest = data.draw(st.integers(min_value=0, max_value=params.num_outputs - 1))
        net = VectorizedEDN(params)
        dests = np.full(params.num_inputs, -1, dtype=np.int64)
        dests[source] = dest
        result = net.route(dests)
        assert result.output[source] == dest

    @settings(max_examples=20, deadline=None)
    @given(edn_params(), st.data())
    def test_deliveries_unique_and_correct(self, params, data):
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(seed)
        dests = rng.integers(0, params.num_outputs, size=params.num_inputs)
        result = VectorizedEDN(params).route(dests)
        delivered_mask = result.blocked_stage == 0
        outputs = result.output[delivered_mask]
        assert len(np.unique(outputs)) == len(outputs)
        assert np.array_equal(outputs, dests[delivered_mask])

    @settings(max_examples=20, deadline=None)
    @given(edn_params())
    def test_interstage_is_bijection(self, params):
        topo = EDNTopology(params)
        for i in range(1, params.l + 1):
            width = params.wires_after_stage(i)
            images = {topo.interstage(i, y) for y in range(width)}
            assert len(images) == width

    @settings(max_examples=20, deadline=None)
    @given(edn_params(), st.data())
    def test_fixup_inverts_landing(self, params, data):
        order_tuple = tuple(data.draw(st.permutations(range(params.l))))
        order = RetirementOrder(order_tuple)
        fixup = order.fixup_permutation(params)
        output = data.draw(st.integers(min_value=0, max_value=params.num_outputs - 1))
        tag = DestinationTag.from_output(output, params)
        assert fixup(order.landing_output(tag, params)) == output

    @settings(max_examples=15, deadline=None)
    @given(edn_params())
    def test_cost_closed_forms(self, params):
        from repro.core.cost import (
            crosspoint_cost,
            crosspoint_cost_closed_form,
            wire_cost,
            wire_cost_closed_form,
        )

        topo = EDNTopology(params)
        assert crosspoint_cost(params) == crosspoint_cost_closed_form(params)
        assert crosspoint_cost(params) == topo.count_crosspoints()
        assert wire_cost(params) == wire_cost_closed_form(params)
        assert wire_cost(params) == topo.count_wires()

    @settings(max_examples=15, deadline=None)
    @given(edn_params(), st.floats(min_value=1e-12, max_value=1.0))
    def test_acceptance_probability_in_unit_interval(self, params, r):
        # Rates below ~1e-12 reach subnormal territory where intermediate
        # flushes can round PA to 0; physical request rates never get there.
        from repro.core.analysis import acceptance_probability

        pa = acceptance_probability(params, r)
        assert 0.0 < pa <= 1.0 + 1e-12
