"""Integration: every formal claim of the paper, end to end.

One test class per lemma/theorem/corollary/worked example, exercised
through the public API on real networks (not on mocks of the math).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import acceptance_probability, permutation_acceptance
from repro.core.config import EDNParams
from repro.core.network import EDNetwork, Message
from repro.core.paths import count_paths, enumerate_paths
from repro.core.tags import DestinationTag, RetirementOrder
from repro.core.topology import EDNTopology
from repro.sim.montecarlo import measure_acceptance
from repro.workloads import PermutationTraffic
from repro.sim.vectorized import VectorizedEDN
from repro.simd.analytic import expected_permutation_time
from repro.simd.maspar import maspar_mp1


class TestLemma1Theorem1:
    """Any source connects to any destination by digit retirement."""

    @pytest.mark.parametrize("cfg", [(16, 4, 4, 2), (8, 2, 4, 3), (8, 8, 1, 2)])
    def test_digit_routing_reaches_destination(self, cfg, rng):
        params = EDNParams(*cfg)
        net = EDNetwork(params)
        for _ in range(30):
            src = int(rng.integers(params.num_inputs))
            dst = int(rng.integers(params.num_outputs))
            outcome = net.route_cycle([Message.to_output(src, dst, params)]).outcomes[0]
            assert outcome.delivered and outcome.output == dst


class TestCorollary1:
    """Renaming/permuting the inputs never breaks connectivity."""

    def test_source_identity_is_irrelevant(self, rng):
        params = EDNParams(16, 4, 4, 2)
        net = EDNetwork(params)
        dst = 42
        for src in range(params.num_inputs):
            outcome = net.route_cycle([Message.to_output(src, dst, params)]).outcomes[0]
            assert outcome.delivered and outcome.output == dst


class TestCorollary2:
    """Reordered digit retirement lands on F(D); composing F^-1 restores D."""

    @pytest.mark.parametrize("cfg", [(16, 4, 4, 2), (8, 4, 2, 3)])
    def test_landing_and_fixup(self, cfg, rng):
        params = EDNParams(*cfg)
        orders = [
            RetirementOrder.reversed_order(params.l),
            RetirementOrder(tuple(range(1, params.l)) + (0,)),
        ]
        for order in orders:
            net = EDNetwork(params, retirement_order=order)
            fixup = order.fixup_permutation(params)
            for _ in range(15):
                src = int(rng.integers(params.num_inputs))
                dst = int(rng.integers(params.num_outputs))
                tag = DestinationTag.from_output(dst, params)
                outcome = net.route_cycle([Message(source=src, tag=tag)]).outcomes[0]
                assert outcome.delivered
                assert outcome.output == order.landing_output(tag, params)
                assert fixup(outcome.output) == dst


class TestTheorem2:
    """Exactly c^l paths between any input/output pair."""

    @pytest.mark.parametrize("cfg", [(16, 4, 4, 2), (8, 2, 4, 2), (8, 8, 1, 3)])
    def test_path_multiplicity(self, cfg):
        params = EDNParams(*cfg)
        topo = EDNTopology(params)
        tag = DestinationTag.from_output(params.num_outputs // 2, params)
        assert count_paths(topo, 0, tag) == params.c**params.l

    def test_paths_share_switches_but_not_wires(self):
        # Within one (source, dest) pair, distinct paths differ only in the
        # wire chosen within each bucket — never in the switch sequence.
        params = EDNParams(16, 4, 4, 2)
        topo = EDNTopology(params)
        tag = DestinationTag.from_output(17, params)
        paths = list(enumerate_paths(topo, 3, tag))
        switch_sequences = {
            tuple(label // (params.b * params.c) for label in p.stage_outputs[:-1])
            for p in paths
        }
        assert len(switch_sequences) == 1
        assert len({p.stage_outputs for p in paths}) == len(paths)


class TestTheorem3Uniformity:
    """Uniform input traffic stays uniform over every stage's buckets."""

    def test_stage_blocking_spread_is_uniform(self, rng):
        # Under uniform traffic, first-stage survivors should spread evenly
        # over second-stage switches: measure the per-switch arrival spread.
        params = EDNParams(16, 4, 4, 2)
        net = VectorizedEDN(params)
        arrivals = np.zeros(params.num_outputs, dtype=np.int64)
        for _ in range(300):
            dests = rng.integers(0, params.num_outputs, size=params.num_inputs)
            result = net.route(dests)
            delivered = result.output[result.blocked_stage == 0]
            arrivals[delivered] += 1
        assert arrivals.min() > 0.7 * arrivals.mean()
        assert arrivals.max() < 1.3 * arrivals.mean()


class TestLemma2:
    """Permutation traffic never blocks in the last two stages."""

    @pytest.mark.parametrize("cfg", [(16, 4, 4, 2), (16, 4, 4, 3), (8, 2, 4, 3)])
    def test_no_final_stage_blocking(self, cfg, rng):
        params = EDNParams(*cfg)
        net = VectorizedEDN(params)
        for _ in range(25):
            dests = rng.permutation(params.num_outputs)[: params.num_inputs]
            result = net.route(dests.astype(np.int64))
            blocked_stages = set(result.blocked_stage_histogram())
            assert params.l not in blocked_stages
            assert params.l + 1 not in blocked_stages

    def test_eq5_tracks_simulation(self):
        params = EDNParams(16, 4, 4, 3)
        measured = measure_acceptance(
            VectorizedEDN(params),
            PermutationTraffic(params.num_inputs, params.num_outputs),
            cycles=150,
            seed=0,
        )
        analytic = permutation_acceptance(params, 1.0)
        assert measured.point == pytest.approx(analytic, abs=0.06)


class TestSection5Example:
    """RA-EDN(16,4,2,16): PA(1)=.544, J=5, T≈34.4."""

    def test_full_chain(self):
        system = maspar_mp1()
        assert acceptance_probability(system.network_params, 1.0) == pytest.approx(
            0.544, abs=5e-4
        )
        model = expected_permutation_time(system)
        assert model.tail_cycles == 5
        assert model.expected_cycles == pytest.approx(16 / 0.544 + 5, abs=0.15)


class TestSection6Positioning:
    """EDN ≈ crossbar performance at ≈ delta cost (the paper's conclusion)."""

    def test_performance_within_crossbar_band(self):
        from repro.core.analysis import crossbar_acceptance
        from repro.core.cost import crossbar_crosspoint_cost, crosspoint_cost

        edn = EDNParams(64, 16, 4, 2)
        n = edn.num_inputs
        pa_edn = acceptance_probability(edn, 1.0)
        pa_xbar = crossbar_acceptance(n, 1.0)
        assert pa_edn > 0.8 * pa_xbar
        assert crosspoint_cost(edn) < 0.15 * crossbar_crosspoint_cost(n)
