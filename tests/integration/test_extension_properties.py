"""Hypothesis property tests for the extension modules (faults, Beneš, Clos, multipass)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.benes import BenesNetwork
from repro.baselines.clos import ClosNetwork
from repro.core.config import EDNParams
from repro.core.faults import FaultSet, WireFault, connectivity_under_faults
from repro.core.multipass import route_permutation_multipass
from repro.sim.vectorized import VectorizedEDN


@st.composite
def small_square_edn(draw):
    b = draw(st.sampled_from([2, 4]))
    c = draw(st.sampled_from([1, 2]))
    l = draw(st.integers(min_value=1, max_value=2))
    return EDNParams(b * c, b, c, l)


@st.composite
def fault_sets(draw, params: EDNParams):
    per_switch = params.b * params.c
    n_faults = draw(st.integers(min_value=0, max_value=6))
    faults = []
    for _ in range(n_faults):
        stage = draw(st.integers(min_value=1, max_value=params.l))
        switch = draw(st.integers(min_value=0, max_value=params.hyperbars_in_stage(stage) - 1))
        wire = draw(st.integers(min_value=0, max_value=per_switch - 1))
        faults.append(WireFault(stage, switch, wire))
    return FaultSet(faults)


class TestFaultProperties:
    @settings(max_examples=20, deadline=None)
    @given(small_square_edn(), st.data())
    def test_more_faults_never_help(self, params, data):
        base = data.draw(fault_sets(params))
        extra_stage = data.draw(st.integers(min_value=1, max_value=params.l))
        extra = FaultSet(
            list(base)
            + [
                WireFault(
                    extra_stage,
                    data.draw(
                        st.integers(
                            min_value=0,
                            max_value=params.hyperbars_in_stage(extra_stage) - 1,
                        )
                    ),
                    data.draw(st.integers(min_value=0, max_value=params.b * params.c - 1)),
                )
            ]
        )
        assert connectivity_under_faults(params, extra) <= connectivity_under_faults(
            params, base
        )

    @settings(max_examples=15, deadline=None)
    @given(small_square_edn())
    def test_no_faults_full_connectivity(self, params):
        assert connectivity_under_faults(params, FaultSet.none()) == 1.0


class TestBenesProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from([4, 8, 16, 32]), st.data())
    def test_any_permutation_realizable(self, n, data):
        perm = list(data.draw(st.permutations(range(n))))
        net = BenesNetwork(n)
        assert net.verify(net.route_permutation(perm), perm)

    @settings(max_examples=15, deadline=None)
    @given(st.sampled_from([4, 8, 16]), st.data())
    def test_composition_of_routes(self, n, data):
        # Routing sigma then tracing the settings is sigma itself — i.e.
        # trace . route == identity on the permutation group.
        perm = list(data.draw(st.permutations(range(n))))
        net = BenesNetwork(n)
        settings_ = net.route_permutation(perm)
        assert net._trace(settings_) == perm


class TestClosProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from([(2, 2), (2, 4), (3, 3), (4, 4)]),
        st.data(),
    )
    def test_any_permutation_realizable(self, shape, data):
        n, r = shape
        net = ClosNetwork(n=n, r=r)
        perm = list(data.draw(st.permutations(range(n * r))))
        routes = net.route_permutation(perm)
        assert net.verify(routes, perm)

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_middle_loads_equal_r(self, data):
        net = ClosNetwork(n=3, r=4)
        perm = list(data.draw(st.permutations(range(12))))
        routes = net.route_permutation(perm)
        loads: dict[int, int] = {}
        for route in routes:
            loads[route.middle_switch] = loads.get(route.middle_switch, 0) + 1
        assert all(load == 4 for load in loads.values())


class TestMultipassProperties:
    @settings(max_examples=15, deadline=None)
    @given(small_square_edn(), st.data())
    def test_total_deliveries_equal_n(self, params, data):
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(seed)
        perm = rng.permutation(params.num_inputs)
        result = route_permutation_multipass(VectorizedEDN(params), perm)
        assert result.total == params.num_inputs
        assert all(count > 0 for count in result.delivered_per_pass)
