"""Unit + equivalence tests for the batched multi-cycle routing engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError, LabelError
from repro.core.network import EDNetwork
from repro.core.tags import RetirementOrder
from repro.sim.batched import BatchedEDN
from repro.sim.vectorized import VectorizedEDN

#: Shapes covering deltas (c=1), wide buckets, deep networks, the MP-1
#: router, and the one-hot fallback (b = 16 packs 128 lane bits).
CONFIGS = [
    (16, 4, 4, 2),
    (8, 2, 4, 3),
    (8, 8, 1, 2),
    (64, 16, 4, 2),
    (4, 2, 2, 4),
    (16, 2, 8, 1),
]


def _random_batch(rng, params: EDNParams, batch: int, rate: float = 0.8) -> np.ndarray:
    dests = rng.integers(0, params.num_outputs, size=(batch, params.num_inputs))
    dests = np.where(rng.random(dests.shape) < rate, dests, -1)
    if batch > 2:
        dests[2] = -1  # an all-idle cycle inside the batch
    return dests


@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: f"EDN{c}")
class TestLabelPriorityEquivalence:
    def test_matches_vectorized_per_cycle(self, cfg, rng):
        params = EDNParams(*cfg)
        batched = BatchedEDN(params)
        vectorized = VectorizedEDN(params)
        dests = _random_batch(rng, params, batch=6)
        result = batched.route_batch(dests)
        for i in range(dests.shape[0]):
            ref = vectorized.route(dests[i])
            assert np.array_equal(result.output[i], ref.output)
            assert np.array_equal(result.blocked_stage[i], ref.blocked_stage)

    def test_non_canonical_retirement_order(self, cfg, rng):
        params = EDNParams(*cfg)
        order = RetirementOrder.reversed_order(params.l)
        batched = BatchedEDN(params, retirement_order=order)
        vectorized = VectorizedEDN(params, retirement_order=order)
        dests = _random_batch(rng, params, batch=4, rate=1.0)
        result = batched.route_batch(dests)
        for i in range(dests.shape[0]):
            ref = vectorized.route(dests[i])
            assert np.array_equal(result.output[i], ref.output)
            assert np.array_equal(result.blocked_stage[i], ref.blocked_stage)

    def test_matches_reference_engine(self, cfg, rng):
        params = EDNParams(*cfg)
        order = RetirementOrder.reversed_order(params.l)
        batched = BatchedEDN(params, retirement_order=order)
        reference = EDNetwork(params, retirement_order=order)
        dests = _random_batch(rng, params, batch=3)
        result = batched.route_batch(dests)
        for i in range(dests.shape[0]):
            ref = reference.route_destinations(
                {int(s): int(d) for s, d in enumerate(dests[i]) if d >= 0}
            )
            by_source = {o.message.source: o for o in ref.outcomes}
            for source in range(params.num_inputs):
                if dests[i, source] < 0:
                    assert result.blocked_stage[i, source] == -1
                    continue
                outcome = by_source[source]
                if outcome.delivered:
                    assert result.blocked_stage[i, source] == 0
                    assert result.output[i, source] == outcome.output
                else:
                    assert result.blocked_stage[i, source] == outcome.blocked_stage

    def test_counts_kernel_matches_route_batch(self, cfg, rng):
        params = EDNParams(*cfg)
        batched = BatchedEDN(params)
        for rate in (1.0, 0.5):
            dests = _random_batch(rng, params, batch=5, rate=rate)
            full = batched.route_batch(dests)
            counts = batched.route_batch_counts(dests)
            assert np.array_equal(counts.offered_per_cycle, full.offered_per_cycle)
            assert np.array_equal(
                counts.delivered_per_cycle, full.delivered_per_cycle
            )
            assert counts.blocked_by_stage == full.blocked_stage_histogram()


@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: f"EDN{c}")
class TestRandomPriorityEquivalence:
    def test_per_cycle_generators_match_vectorized(self, cfg, rng):
        params = EDNParams(*cfg)
        batched = BatchedEDN(params, priority="random")
        vectorized = VectorizedEDN(params, priority="random")
        batch = 5
        dests = _random_batch(rng, params, batch=batch, rate=1.0)
        children = np.random.SeedSequence(2024).spawn(batch)
        result = batched.route_batch(
            dests, [np.random.default_rng(child) for child in children]
        )
        for i in range(batch):
            ref = vectorized.route(dests[i], np.random.default_rng(children[i]))
            assert np.array_equal(result.output[i], ref.output)
            assert np.array_equal(result.blocked_stage[i], ref.blocked_stage)

    def test_non_canonical_order_per_cycle_generators(self, cfg, rng):
        params = EDNParams(*cfg)
        order = RetirementOrder.reversed_order(params.l)
        batched = BatchedEDN(params, priority="random", retirement_order=order)
        vectorized = VectorizedEDN(params, priority="random", retirement_order=order)
        batch = 3
        dests = _random_batch(rng, params, batch=batch)
        children = np.random.SeedSequence(7).spawn(batch)
        result = batched.route_batch(
            dests, [np.random.default_rng(child) for child in children]
        )
        for i in range(batch):
            ref = vectorized.route(dests[i], np.random.default_rng(children[i]))
            assert np.array_equal(result.output[i], ref.output)
            assert np.array_equal(result.blocked_stage[i], ref.blocked_stage)

    def test_single_generator_is_statistically_sane(self, cfg, rng):
        params = EDNParams(*cfg)
        batched = BatchedEDN(params, priority="random")
        dests = _random_batch(rng, params, batch=8, rate=1.0)
        result = batched.route_batch(dests, rng)
        assert (result.delivered_per_cycle <= result.offered_per_cycle).all()
        assert result.num_delivered > 0


class TestValidationAndEdges:
    def test_rejects_wrong_shape(self):
        net = BatchedEDN(EDNParams(16, 4, 4, 2))
        with pytest.raises(LabelError):
            net.route_batch(np.zeros((3, 17), dtype=np.int64))
        with pytest.raises(LabelError):
            net.route_batch(np.zeros(64, dtype=np.int64))

    def test_rejects_out_of_range(self):
        net = BatchedEDN(EDNParams(16, 4, 4, 2))
        dests = np.zeros((2, net.n_inputs), dtype=np.int64)
        dests[1, 3] = net.n_outputs
        with pytest.raises(LabelError):
            net.route_batch(dests)

    def test_random_priority_requires_rng(self):
        net = BatchedEDN(EDNParams(16, 4, 4, 2), priority="random")
        dests = np.zeros((2, net.n_inputs), dtype=np.int64)
        with pytest.raises(ConfigurationError):
            net.route_batch(dests)
        with pytest.raises(ConfigurationError):
            net.route_batch(dests, [np.random.default_rng(0)])  # wrong count

    def test_all_idle_batch(self):
        net = BatchedEDN(EDNParams(16, 4, 4, 2))
        dests = np.full((4, net.n_inputs), -1, dtype=np.int64)
        result = net.route_batch(dests)
        assert result.num_offered == 0
        assert result.num_delivered == 0
        assert result.acceptance_ratio == 1.0
        assert (result.blocked_stage == -1).all()
        counts = net.route_batch_counts(dests)
        assert counts.offered_per_cycle.sum() == 0
        assert counts.blocked_by_stage == {}

    def test_empty_batch(self):
        net = BatchedEDN(EDNParams(16, 4, 4, 2))
        result = net.route_batch(np.empty((0, net.n_inputs), dtype=np.int64))
        assert result.num_cycles == 0
        assert result.num_offered == 0

    def test_result_accessors(self, rng):
        params = EDNParams(16, 4, 4, 2)
        net = BatchedEDN(params)
        dests = _random_batch(rng, params, batch=5, rate=0.7)
        result = net.route_batch(dests)
        assert result.num_cycles == 5
        assert result.offered_per_cycle.sum() == result.num_offered
        assert result.delivered_per_cycle.sum() == result.num_delivered
        blocked = sum(result.blocked_stage_histogram().values())
        assert result.num_offered - result.num_delivered == blocked
        single = result.cycle(1)
        assert single.num_offered == result.offered_per_cycle[1]

    def test_inherited_single_cycle_route(self, rng):
        params = EDNParams(16, 4, 4, 2)
        net = BatchedEDN(params)
        dests = rng.integers(0, params.num_outputs, size=params.num_inputs)
        single = net.route(dests)
        batch = net.route_batch(dests[None, :])
        assert np.array_equal(single.output, batch.output[0])
        assert np.array_equal(single.blocked_stage, batch.blocked_stage[0])

    def test_scratch_reuse_is_stable_across_shapes(self, rng):
        # Interleave two different networks on one engine lifetime each,
        # re-running the first afterwards: cached scratch/tables must not
        # leak between calls.
        p1, p2 = EDNParams(16, 4, 4, 2), EDNParams(8, 2, 4, 3)
        n1, n2 = BatchedEDN(p1), BatchedEDN(p2)
        d1 = _random_batch(rng, p1, batch=3)
        d2 = _random_batch(rng, p2, batch=3)
        first = n1.route_batch(d1)
        n2.route_batch(d2)
        again = n1.route_batch(d1)
        assert np.array_equal(first.output, again.output)
        assert np.array_equal(first.blocked_stage, again.blocked_stage)
