"""Test package."""
