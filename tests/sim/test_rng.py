"""Unit tests for reproducible RNG streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.rng import make_rng, spawn, spawn_keys, stream_for


class TestMakeRng:
    def test_seeded_reproducible(self):
        assert make_rng(7).integers(1 << 30) == make_rng(7).integers(1 << 30)

    def test_different_seeds_differ(self):
        draws_a = make_rng(1).integers(0, 1 << 30, size=8)
        draws_b = make_rng(2).integers(0, 1 << 30, size=8)
        assert not np.array_equal(draws_a, draws_b)


class TestSpawn:
    def test_streams_are_reproducible(self):
        first = [g.integers(1 << 30) for g in spawn(42, 3)]
        second = [g.integers(1 << 30) for g in spawn(42, 3)]
        assert first == second

    def test_streams_are_distinct(self):
        draws = [g.integers(0, 1 << 30, size=4).tolist() for g in spawn(42, 4)]
        assert len({tuple(d) for d in draws}) == 4


class TestStreamFor:
    def test_same_name_same_stream(self):
        a = stream_for(1, "mimd", "traffic").integers(1 << 30)
        b = stream_for(1, "mimd", "traffic").integers(1 << 30)
        assert a == b

    def test_different_names_independent(self):
        a = stream_for(1, "mimd", "traffic").integers(0, 1 << 30, size=8)
        b = stream_for(1, "mimd", "switch").integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_seed_changes_stream(self):
        a = stream_for(1, "x").integers(0, 1 << 30, size=8)
        b = stream_for(2, "x").integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)


class TestSeedLike:
    def test_make_rng_passes_generator_through(self):
        gen = np.random.default_rng(5)
        assert make_rng(gen) is gen

    def test_make_rng_accepts_seedsequence(self):
        seq = np.random.SeedSequence(11)
        a = make_rng(seq).random(4)
        b = np.random.default_rng(np.random.SeedSequence(11)).random(4)
        assert (a == b).all()

    def test_spawn_accepts_all_seed_kinds(self):
        for seed in (3, np.random.SeedSequence(3), np.random.default_rng(3)):
            streams = spawn(seed, 3)
            assert len(streams) == 3
            draws = {float(stream.random()) for stream in streams}
            assert len(draws) == 3  # statistically independent children

    def test_spawn_keys_are_positional(self):
        # Child i must be identical regardless of how many siblings exist.
        few = spawn_keys(42, 2)
        many = spawn_keys(42, 6)
        a = np.random.default_rng(few[1]).random(4)
        b = np.random.default_rng(many[1]).random(4)
        assert (a == b).all()

    def test_spawn_keys_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_keys(0, -1)

    def test_spawn_keys_pickle(self):
        import pickle

        for seed in (1, np.random.default_rng(1)):
            keys = spawn_keys(seed, 2)
            clones = pickle.loads(pickle.dumps(keys))
            a = make_rng(keys[0]).random(3)
            b = make_rng(clones[0]).random(3)
            assert (a == b).all()
