"""Unit tests for reproducible RNG streams."""

from __future__ import annotations

import numpy as np

from repro.sim.rng import make_rng, spawn, stream_for


class TestMakeRng:
    def test_seeded_reproducible(self):
        assert make_rng(7).integers(1 << 30) == make_rng(7).integers(1 << 30)

    def test_different_seeds_differ(self):
        draws_a = make_rng(1).integers(0, 1 << 30, size=8)
        draws_b = make_rng(2).integers(0, 1 << 30, size=8)
        assert not np.array_equal(draws_a, draws_b)


class TestSpawn:
    def test_streams_are_reproducible(self):
        first = [g.integers(1 << 30) for g in spawn(42, 3)]
        second = [g.integers(1 << 30) for g in spawn(42, 3)]
        assert first == second

    def test_streams_are_distinct(self):
        draws = [g.integers(0, 1 << 30, size=4).tolist() for g in spawn(42, 4)]
        assert len({tuple(d) for d in draws}) == 4


class TestStreamFor:
    def test_same_name_same_stream(self):
        a = stream_for(1, "mimd", "traffic").integers(1 << 30)
        b = stream_for(1, "mimd", "traffic").integers(1 << 30)
        assert a == b

    def test_different_names_independent(self):
        a = stream_for(1, "mimd", "traffic").integers(0, 1 << 30, size=8)
        b = stream_for(1, "mimd", "switch").integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_seed_changes_stream(self):
        a = stream_for(1, "x").integers(0, 1 << 30, size=8)
        b = stream_for(2, "x").integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)
