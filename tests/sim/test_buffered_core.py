"""Buffered stage graphs on the compiled core: identity, equivalence, guards.

Three layers of pinning for the buffered packet-switched path:

* **bit-identity** — :class:`CompiledStageRouter` with a ``buffer_depth``
  must agree cycle for cycle, array for array, with the independent
  per-packet :class:`BufferedStageReference` interpreter across every
  topology family, priority discipline, depth, and seed;
* **legacy equivalence** — steady-state throughput/latency/occupancy on
  the EDN must match the original deque engine
  (:class:`repro.ext.buffered.DequeBufferedEDN`) within statistical
  bounds — the two engines share no code and consume randomness in
  different orders, so agreement is in distribution, not bit for bit;
* **conservation & guards** — packets are never created or destroyed,
  and misuse (buffered faults, stepping an unbuffered router, random
  priority without an rng) fails loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.core.faults import WireFault
from repro.ext.buffered import DequeBufferedEDN
from repro.sim.batched import CompiledStageRouter
from repro.sim.buffered import measure_buffered
from repro.sim.plan import StagePlan, stage_plan_for
from repro.sim.rng import make_rng
from repro.sim.stagegraph import (
    BufferedStageReference,
    delta_graph,
    dilated_graph,
    edn_graph,
    omega_graph,
)

FAMILIES = [
    ("edn", edn_graph(EDNParams(4, 2, 2, 2))),
    ("delta", delta_graph(2, 2, 3)),
    ("omega", omega_graph(8)),
    ("dilated", dilated_graph(2, 2, 3, d=2)),
]


def _demand_stream(n_inputs, n_outputs, cycles, rate, seed):
    """A pre-drawn demand matrix so both engines see identical traffic."""
    rng = np.random.default_rng(seed + 977)
    dests = rng.integers(0, n_outputs, size=(cycles, n_inputs))
    live = rng.random((cycles, n_inputs)) < rate
    return np.where(live, dests, -1)


class TestBitIdentity:
    @pytest.mark.parametrize("family,graph", FAMILIES, ids=[f[0] for f in FAMILIES])
    @pytest.mark.parametrize("priority", ["label", "random"])
    @pytest.mark.parametrize("depth", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_reference_matches_compiled(self, family, graph, priority, depth, seed):
        cycles = 40
        demands = _demand_stream(graph.n_inputs, graph.n_outputs, cycles, 0.7, seed)
        reference = BufferedStageReference(graph, depth=depth, priority=priority)
        compiled = CompiledStageRouter(graph, priority=priority, buffer_depth=depth)
        rng_ref, rng_cmp = make_rng(seed), make_rng(seed)
        for cycle in range(cycles):
            a = reference.step(demands[cycle], rng_ref)
            b = compiled.step(demands[cycle], rng_cmp)
            np.testing.assert_array_equal(a.outputs, b.outputs)
            np.testing.assert_array_equal(a.latencies, b.latencies)
            assert (a.offered, a.injected) == (b.offered, b.injected)
            assert reference.total_occupancy() == compiled.total_occupancy()

    def test_min_latency_is_stage_count(self):
        # An uncontended packet traverses one stage per cycle.
        graph = delta_graph(2, 2, 3)
        reference = BufferedStageReference(graph, depth=2)
        compiled = CompiledStageRouter(graph, buffer_depth=2)
        one = np.full(graph.n_inputs, -1, dtype=np.int64)
        one[0] = 5
        idle = np.full(graph.n_inputs, -1, dtype=np.int64)
        for router in (reference, compiled):
            outcomes = [router.step(one)] + [
                router.step(idle) for _ in range(len(graph.stages) + 1)
            ]
            delivered = [o for o in outcomes if o.delivered]
            assert len(delivered) == 1
            assert delivered[0].outputs.tolist() == [5]
            assert delivered[0].latencies.tolist() == [len(graph.stages)]

    def test_measure_buffered_engines_agree_exactly(self):
        graph = edn_graph(EDNParams(4, 2, 2, 2))
        kw = dict(traffic="uniform:0.8", depth=2, cycles=120, warmup=30, seed=3)
        fast = measure_buffered(graph, engine="compiled", **kw)
        slow = measure_buffered(graph, engine="reference", **kw)
        assert fast.injected == slow.injected
        assert fast.delivered == slow.delivered
        assert fast.throughput == slow.throughput
        assert fast.mean_latency == slow.mean_latency
        assert fast.total_occupancy == slow.total_occupancy
        assert fast.num_queues == slow.num_queues


class TestLegacyEquivalence:
    """The compiled core reproduces the deque engine's steady state."""

    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_edn_throughput_and_latency_match(self, depth):
        params = EDNParams(16, 4, 4, 2)
        cycles, warmup = 1200, 300
        legacy = DequeBufferedEDN(params, depth=depth).run(
            rate=1.0, cycles=cycles, warmup=warmup, seed=0
        )
        core = measure_buffered(
            edn_graph(params),
            traffic="uniform:1",
            depth=depth,
            cycles=cycles,
            warmup=warmup,
            seed=0,
        )
        # Independent engines, independent randomness: agreement within a
        # few standard errors of a Bernoulli(throughput) per-cycle mean.
        se = 3.0 * np.sqrt(0.25 / cycles)
        assert core.throughput == pytest.approx(legacy.throughput, abs=4 * se)
        assert core.mean_latency == pytest.approx(
            legacy.mean_latency, rel=0.10, abs=0.5
        )
        assert core.mean_occupancy == pytest.approx(
            legacy.mean_occupancy, rel=0.10, abs=0.05
        )

    def test_light_load_both_deliver_everything(self):
        params = EDNParams(16, 4, 4, 2)
        legacy = DequeBufferedEDN(params, depth=2).run(
            rate=0.1, cycles=600, warmup=150, seed=1
        )
        core = measure_buffered(
            edn_graph(params), traffic="uniform:0.1", depth=2,
            cycles=600, warmup=150, seed=1,
        )
        assert core.throughput == pytest.approx(legacy.throughput, abs=0.02)
        assert core.throughput == pytest.approx(0.1, abs=0.02)


class TestConservation:
    @pytest.mark.parametrize("family,graph", FAMILIES, ids=[f[0] for f in FAMILIES])
    def test_injected_equals_delivered_plus_in_flight(self, family, graph):
        m = measure_buffered(
            graph, traffic="uniform:0.9", depth=2, cycles=150, warmup=0, seed=0
        )
        assert m.injected == m.delivered + m.in_flight
        assert 0 <= m.injected <= m.offered

    def test_occupancy_bounded_by_depth(self):
        graph = edn_graph(EDNParams(4, 2, 2, 2))
        depth = 3
        m = measure_buffered(
            graph, traffic="uniform:1", depth=depth, cycles=200, warmup=50, seed=2
        )
        assert 0.0 < m.mean_occupancy <= depth


class TestPlanCacheKeying:
    def test_buffer_depth_distinguishes_plans(self):
        graph = delta_graph(2, 2, 3)
        unbuffered = stage_plan_for(graph)
        shallow = stage_plan_for(graph, buffer_depth=1)
        deep = stage_plan_for(graph, buffer_depth=4)
        assert len({unbuffered.key, shallow.key, deep.key}) == 3
        assert stage_plan_for(graph, buffer_depth=1) is shallow

    def test_unbuffered_key_shape_unchanged(self):
        # Pre-existing cache entries must not be invalidated by the new field.
        graph = delta_graph(2, 2, 3)
        assert len(stage_plan_for(graph).key) == 3


class TestGuards:
    def test_rejects_zero_depth(self):
        with pytest.raises(ConfigurationError):
            StagePlan(delta_graph(2, 2, 3), buffer_depth=0)

    def test_buffered_faults_compile_and_validate_up_front(self):
        # Buffered fault masks are supported (tests/sim/test_faulted_buffered
        # pins the semantics); a fault naming a wire the graph does not
        # have still fails loudly at plan-construction time.
        graph = edn_graph(EDNParams(4, 2, 2, 2))
        plan = StagePlan(graph, faults=(WireFault(1, 0, 0),), buffer_depth=2)
        assert plan.fault_dead_slots(0) is not None
        with pytest.raises(ConfigurationError):
            StagePlan(graph, faults=(WireFault(99, 0, 0),), buffer_depth=2)

    def test_step_requires_buffered_router(self):
        router = CompiledStageRouter(delta_graph(2, 2, 3))
        with pytest.raises(ConfigurationError, match="buffer_depth"):
            router.step(np.full(8, -1, dtype=np.int64))

    def test_random_priority_requires_rng(self):
        graph = delta_graph(2, 2, 3)
        dests = np.zeros(8, dtype=np.int64)
        with pytest.raises(ConfigurationError):
            BufferedStageReference(graph, priority="random").step(dests)
        with pytest.raises(ConfigurationError):
            CompiledStageRouter(graph, priority="random", buffer_depth=1).step(dests)

    def test_measure_buffered_validates(self):
        graph = delta_graph(2, 2, 3)
        with pytest.raises(ConfigurationError):
            measure_buffered(graph, cycles=0)
        with pytest.raises(ConfigurationError):
            measure_buffered(graph, warmup=-1)
        with pytest.raises(ConfigurationError):
            measure_buffered(graph, engine="gpu")
