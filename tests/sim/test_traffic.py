"""Unit tests for traffic generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.workloads import (
    STRUCTURED_PATTERNS,
    FixedPattern,
    HotspotTraffic,
    PermutationTraffic,
    TrafficGenerator,
    UniformTraffic,
    structured_permutation,
)


class TestUniformTraffic:
    def test_full_rate_everyone_requests(self, rng):
        dests = UniformTraffic(64, 64, 1.0).generate(rng)
        assert dests.shape == (64,)
        assert (dests >= 0).all() and (dests < 64).all()

    def test_rate_thins_requests(self, rng):
        dests = UniformTraffic(4096, 64, 0.25).generate(rng)
        active = (dests >= 0).mean()
        assert 0.15 < active < 0.35

    def test_zero_rate_all_idle(self, rng):
        assert (UniformTraffic(32, 32, 0.0).generate(rng) == -1).all()

    def test_destinations_roughly_uniform(self, rng):
        dests = UniformTraffic(50_000, 8, 1.0).generate(rng)
        counts = np.bincount(dests, minlength=8)
        assert counts.min() > 0.8 * counts.mean()

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            UniformTraffic(8, 8, 1.5)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            UniformTraffic(0, 8)


class TestPermutationTraffic:
    def test_is_permutation(self, rng):
        dests = PermutationTraffic(64, 64).generate(rng)
        assert sorted(dests.tolist()) == list(range(64))

    def test_partial_injection(self, rng):
        dests = PermutationTraffic(16, 64).generate(rng)
        live = dests[dests >= 0]
        assert len(set(live.tolist())) == len(live) == 16

    def test_rate_produces_partial_permutation(self, rng):
        dests = PermutationTraffic(256, 256, rate=0.5).generate(rng)
        live = dests[dests >= 0]
        assert len(set(live.tolist())) == len(live)
        assert 0.3 < len(live) / 256 < 0.7

    def test_rejects_more_inputs_than_outputs(self):
        with pytest.raises(ConfigurationError):
            PermutationTraffic(64, 32)

    def test_varies_across_cycles(self, rng):
        gen = PermutationTraffic(64, 64)
        assert not np.array_equal(gen.generate(rng), gen.generate(rng))


class TestFixedPattern:
    def test_repeats_exactly(self, rng):
        gen = FixedPattern([3, 1, -1, 0], 4)
        first = gen.generate(rng)
        second = gen.generate(rng)
        assert np.array_equal(first, [3, 1, -1, 0])
        assert np.array_equal(first, second)

    def test_returns_copy(self, rng):
        gen = FixedPattern([1, 0], 2)
        out = gen.generate(rng)
        out[0] = -1
        assert gen.generate(rng)[0] == 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            FixedPattern([5], 4)


class TestHotspot:
    def test_hot_output_overrepresented(self, rng):
        gen = HotspotTraffic(20_000, 64, hot_fraction=0.25, hot_output=7)
        dests = gen.generate(rng)
        share = (dests == 7).mean()
        assert 0.2 < share < 0.35

    def test_zero_fraction_is_uniform(self, rng):
        gen = HotspotTraffic(20_000, 64, hot_fraction=0.0)
        counts = np.bincount(gen.generate(rng), minlength=64)
        assert counts.max() < 2.0 * counts.mean()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            HotspotTraffic(8, 8, hot_fraction=1.5)
        with pytest.raises(ConfigurationError):
            HotspotTraffic(8, 8, hot_output=8)


class TestStructuredPermutations:
    @pytest.mark.parametrize("name", sorted(STRUCTURED_PATTERNS))
    def test_all_patterns_are_permutations(self, name, rng):
        if name == "transpose":
            n = 16  # needs even label width
        else:
            n = 32
        dests = structured_permutation(name, n).generate(rng)
        assert sorted(dests.tolist()) == list(range(n))

    def test_identity(self, rng):
        dests = structured_permutation("identity", 8).generate(rng)
        assert np.array_equal(dests, np.arange(8))

    def test_bit_reversal_involution(self, rng):
        dests = structured_permutation("bit_reversal", 16).generate(rng)
        assert all(dests[dests[i]] == i for i in range(16))

    def test_transpose_needs_even_bits(self):
        with pytest.raises(ConfigurationError):
            structured_permutation("transpose", 32)

    def test_transpose_swaps_halves(self, rng):
        dests = structured_permutation("transpose", 16).generate(rng)
        # label (r, c) -> (c, r) on the 4x4 grid.
        for r in range(4):
            for c in range(4):
                assert dests[r * 4 + c] == c * 4 + r

    def test_shuffle_matches_rotation(self, rng):
        dests = structured_permutation("shuffle", 8).generate(rng)
        for i in range(8):
            assert dests[i] == ((i << 1) | (i >> 2)) & 7

    def test_unknown_pattern(self):
        with pytest.raises(ConfigurationError):
            structured_permutation("zigzag", 8)

    def test_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            structured_permutation("identity", 12)

    def test_butterfly_swaps_end_bits(self, rng):
        dests = structured_permutation("butterfly", 16).generate(rng)
        assert dests[0b1000] == 0b0001
        assert dests[0b0001] == 0b1000
        assert dests[0b1001] == 0b1001


class TestGenerateBatch:
    CASES = [
        UniformTraffic(32, 64, 0.7),
        PermutationTraffic(32, 64, 0.8),
        HotspotTraffic(32, 32, rate=0.9, hot_fraction=0.3),
        FixedPattern(np.arange(16), 16),
    ]

    @pytest.mark.parametrize("traffic", CASES, ids=lambda t: type(t).__name__)
    def test_shape_and_range(self, traffic, rng):
        batch = traffic.generate_batch(rng, 9)
        assert batch.shape == (9, traffic.n_inputs)
        assert batch.dtype == np.int64
        live = batch[batch != -1]
        if live.size:
            assert live.min() >= 0 and live.max() < traffic.n_outputs

    @pytest.mark.parametrize("traffic", CASES, ids=lambda t: type(t).__name__)
    def test_empty_batch(self, traffic, rng):
        batch = traffic.generate_batch(rng, 0)
        assert batch.shape == (0, traffic.n_inputs)

    def test_permutation_rows_are_partial_permutations(self, rng):
        traffic = PermutationTraffic(32, 32)
        batch = traffic.generate_batch(rng, 8)
        for row in batch:
            assert len(set(row.tolist())) == 32

    def test_fixed_pattern_rows_identical(self, rng):
        pattern = FixedPattern(np.arange(16)[::-1].copy(), 16)
        batch = pattern.generate_batch(rng, 4)
        assert (batch == pattern.dests).all()

    def test_base_class_stacks_generate(self, rng):
        class Alternating(TrafficGenerator):
            def __init__(self):
                super().__init__(4, 4)
                self._flip = 0

            def generate(self, rng):
                self._flip ^= 1
                return np.full(4, self._flip * 3, dtype=np.int64)

        batch = Alternating().generate_batch(rng, 4)
        assert batch.shape == (4, 4)
        assert batch[0, 0] != batch[1, 0]  # sequential generate() calls

    def test_batched_rate_thins_like_per_cycle(self, rng):
        traffic = UniformTraffic(512, 512, rate=0.25)
        batch = traffic.generate_batch(rng, 40)
        fraction = (batch != -1).mean()
        assert 0.2 < fraction < 0.3
