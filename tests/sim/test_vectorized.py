"""Unit tests for the vectorized EDN router."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError, LabelError
from repro.core.tags import RetirementOrder
from repro.sim.vectorized import VectorizedEDN


class TestBasics:
    def test_lone_message_delivered(self, small_params):
        net = VectorizedEDN(small_params)
        dests = np.full(small_params.num_inputs, -1, dtype=np.int64)
        dests[0] = small_params.num_outputs - 1
        result = net.route(dests)
        assert result.num_delivered == 1
        assert result.output[0] == small_params.num_outputs - 1
        assert result.blocked_stage[0] == 0

    def test_every_pair_connects(self, small_params):
        net = VectorizedEDN(small_params)
        for source in range(0, small_params.num_inputs, 3):
            for dest in range(0, small_params.num_outputs, 5):
                dests = np.full(small_params.num_inputs, -1, dtype=np.int64)
                dests[source] = dest
                result = net.route(dests)
                assert result.output[source] == dest

    def test_idle_inputs_marked(self):
        p = EDNParams(16, 4, 4, 2)
        net = VectorizedEDN(p)
        dests = np.full(p.num_inputs, -1, dtype=np.int64)
        result = net.route(dests)
        assert result.num_offered == 0
        assert (result.blocked_stage == -1).all()
        assert result.acceptance_ratio == 1.0

    def test_all_to_one_single_delivery(self, small_params):
        net = VectorizedEDN(small_params)
        dests = np.zeros(small_params.num_inputs, dtype=np.int64)
        result = net.route(dests)
        assert result.num_delivered == 1

    def test_no_duplicate_outputs(self, big_params, rng):
        net = VectorizedEDN(big_params)
        dests = rng.integers(0, big_params.num_outputs, size=big_params.num_inputs)
        result = net.route(dests)
        delivered_outputs = result.output[result.blocked_stage == 0]
        assert len(np.unique(delivered_outputs)) == len(delivered_outputs)

    def test_blocked_stage_range(self, big_params, rng):
        net = VectorizedEDN(big_params)
        dests = rng.integers(0, big_params.num_outputs, size=big_params.num_inputs)
        result = net.route(dests)
        blocked = result.blocked_stage[result.blocked_stage > 0]
        assert blocked.size == 0 or (
            blocked.min() >= 1 and blocked.max() <= big_params.l + 1
        )

    def test_histogram_matches_counts(self, big_params, rng):
        net = VectorizedEDN(big_params)
        dests = rng.integers(0, big_params.num_outputs, size=big_params.num_inputs)
        result = net.route(dests)
        histogram = result.blocked_stage_histogram()
        assert sum(histogram.values()) == result.num_offered - result.num_delivered


class TestValidation:
    def test_wrong_shape(self):
        net = VectorizedEDN(EDNParams(16, 4, 4, 2))
        with pytest.raises(LabelError):
            net.route(np.zeros(10, dtype=np.int64))

    def test_out_of_range_destination(self):
        p = EDNParams(16, 4, 4, 2)
        net = VectorizedEDN(p)
        dests = np.full(p.num_inputs, -1, dtype=np.int64)
        dests[0] = p.num_outputs
        with pytest.raises(LabelError):
            net.route(dests)

    def test_random_priority_needs_rng(self):
        p = EDNParams(16, 4, 4, 2)
        net = VectorizedEDN(p, priority="random")
        with pytest.raises(ConfigurationError):
            net.route(np.zeros(p.num_inputs, dtype=np.int64))

    def test_unknown_priority(self):
        with pytest.raises(ConfigurationError):
            VectorizedEDN(EDNParams(16, 4, 4, 2), priority="fifo")

    def test_order_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            VectorizedEDN(EDNParams(16, 4, 4, 2), retirement_order=RetirementOrder.canonical(3))


class TestMasparIdentity:
    """The Figure 5/6 behaviour at vectorized scale."""

    def test_canonical_identity_blocks(self, maspar_params):
        net = VectorizedEDN(maspar_params)
        result = net.route(np.arange(maspar_params.num_inputs))
        assert result.num_delivered == 64

    def test_reversed_identity_routes(self, maspar_params):
        order = RetirementOrder.reversed_order(maspar_params.l)
        net = VectorizedEDN(maspar_params, retirement_order=order)
        result = net.route(np.arange(maspar_params.num_inputs))
        assert result.num_delivered == maspar_params.num_inputs


class TestScale:
    def test_65k_network_cycle(self):
        # A 65536-input EDN(8,2,4,14); one full-load cycle must route sanely.
        p = EDNParams(8, 2, 4, 14)
        assert p.num_inputs == 65_536
        net = VectorizedEDN(p)
        rng = np.random.default_rng(0)
        dests = rng.integers(0, p.num_outputs, size=p.num_inputs)
        result = net.route(dests)
        assert 0 < result.num_delivered < p.num_inputs
        # Acceptance should be in the ballpark of Eq. 4 (independence gap aside).
        from repro.core.analysis import acceptance_probability

        analytic = acceptance_probability(p, 1.0)
        assert abs(result.acceptance_ratio - analytic) < 0.08


class TestAllIdle:
    """Regression: an all-idle demand vector must route to a clean no-op."""

    def test_all_idle_cycle(self, small_params):
        net = VectorizedEDN(small_params)
        result = net.route(np.full(small_params.num_inputs, -1, dtype=np.int64))
        assert result.num_offered == 0
        assert result.num_delivered == 0
        assert result.acceptance_ratio == 1.0
        assert (result.blocked_stage == -1).all()
        assert (result.output == -1).all()
        assert result.blocked_stage_histogram() == {}

    def test_resolve_handles_empty_key_array(self):
        # new_group[0] = True used to IndexError on an empty frontier.
        net = VectorizedEDN(EDNParams(16, 4, 4, 2))
        empty = np.zeros(0, dtype=np.int64)
        accept, ranks = net._resolve(empty, empty, net.params.c, None)
        assert accept.shape == (0,)
        assert ranks.shape == (0,)
