"""Unit tests for statistics accumulators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.stats import (
    Interval,
    RatioStats,
    RunningStats,
    batch_means,
    proportion_ci,
)


class TestRunningStats:
    def test_mean_and_variance(self):
        acc = RunningStats()
        acc.extend([1.0, 2.0, 3.0])
        assert acc.mean == pytest.approx(2.0)
        assert acc.variance == pytest.approx(1.0)
        assert acc.std == pytest.approx(1.0)

    def test_matches_numpy(self, rng):
        data = rng.normal(5.0, 2.0, size=500)
        acc = RunningStats()
        acc.extend(data)
        assert acc.mean == pytest.approx(np.mean(data))
        assert acc.variance == pytest.approx(np.var(data, ddof=1))

    def test_min_max(self):
        acc = RunningStats()
        acc.extend([3.0, -1.0, 7.0])
        assert acc.minimum == -1.0
        assert acc.maximum == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            _ = RunningStats().mean

    def test_single_observation_variance_zero(self):
        acc = RunningStats()
        acc.push(4.0)
        assert acc.variance == 0.0

    def test_confidence_interval_contains_true_mean(self, rng):
        misses = 0
        for _ in range(40):
            acc = RunningStats()
            acc.extend(rng.normal(10.0, 1.0, size=60))
            if not acc.confidence_interval(0.95).contains(10.0):
                misses += 1
        assert misses <= 8  # ~5% expected; generous bound

    def test_interval_unbounded_for_single_sample(self):
        acc = RunningStats()
        acc.push(1.0)
        interval = acc.confidence_interval()
        assert interval.low == float("-inf")

    def test_interval_halfwidth_shrinks_with_n(self, rng):
        small = RunningStats()
        small.extend(rng.normal(0, 1, 20))
        large = RunningStats()
        large.extend(rng.normal(0, 1, 2000))
        assert large.confidence_interval().halfwidth < small.confidence_interval().halfwidth


class TestRatioStats:
    def test_ratio_of_sums_not_mean_of_ratios(self):
        acc = RatioStats()
        acc.push(1, 2)    # 0.5
        acc.push(9, 10)   # 0.9
        assert acc.ratio == pytest.approx(10 / 12)

    def test_empty_denominator(self):
        acc = RatioStats()
        acc.push(0, 0)
        assert acc.ratio == 1.0

    def test_interval_brackets_point(self):
        acc = RatioStats()
        rng = np.random.default_rng(0)
        for _ in range(100):
            den = rng.integers(50, 100)
            num = rng.binomial(den, 0.6)
            acc.push(num, den)
        interval = acc.confidence_interval()
        assert interval.low <= acc.ratio <= interval.high
        assert interval.contains(0.6)

    def test_n_counts_pairs(self):
        acc = RatioStats()
        acc.push(1, 1)
        acc.push(1, 1)
        assert acc.n == 2


class TestBatchMeans:
    def test_reduces_series_to_batches(self):
        series = list(range(100))
        acc = batch_means(series, n_batches=10)
        assert acc.n == 10
        assert acc.mean == pytest.approx(np.mean(series))

    def test_drops_partial_tail(self):
        series = list(range(25))
        acc = batch_means(series, n_batches=10)   # batch size 2 -> uses 20
        assert acc.n == 10

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            batch_means([1.0], n_batches=5)

    def test_rejects_too_few_batches(self):
        with pytest.raises(ValueError):
            batch_means([1.0, 2.0], n_batches=1)


class TestProportionCI:
    def test_contains_phat(self):
        interval = proportion_ci(60, 100)
        assert interval.low <= 0.6 <= interval.high

    def test_clipped_to_unit_interval(self):
        assert proportion_ci(0, 10).low >= 0.0
        assert proportion_ci(10, 10).high <= 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            proportion_ci(1, 0)
        with pytest.raises(ValueError):
            proportion_ci(11, 10)

    def test_interval_dataclass(self):
        interval = Interval(0.5, 0.4, 0.6)
        assert interval.halfwidth == pytest.approx(0.1)
        assert interval.contains(0.45)
        assert not interval.contains(0.3)
        assert "0.5" in str(interval)
