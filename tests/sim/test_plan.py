"""Unit tests for compiled routing plans, workspaces, and the plan cache."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.core.tags import RetirementOrder
from repro.sim.batched import BatchedEDN
from repro.sim.plan import (
    PLAN_CACHE_MAXSIZE,
    ChunkWorkspace,
    RoutingPlan,
    clear_plan_cache,
    compile_plan,
    plan_cache_info,
    plan_for,
)
from repro.sim.vectorized import VectorizedEDN

#: Shapes covering deltas (c=1), wide buckets, deep networks, the MP-1
#: router, and the one-hot fallback (b = 16 packs 128 lane bits).
CONFIGS = [
    (16, 4, 4, 2),
    (8, 2, 4, 3),
    (8, 8, 1, 2),
    (64, 16, 4, 2),
    (4, 2, 2, 4),
    (16, 2, 8, 1),
]


def _random_batch(rng, params: EDNParams, batch: int, rate: float = 0.8) -> np.ndarray:
    dests = rng.integers(0, params.num_outputs, size=(batch, params.num_inputs))
    return np.where(rng.random(dests.shape) < rate, dests, -1)


class TestChunkWorkspace:
    def test_same_key_reuses_backing_buffer(self):
        ws = ChunkWorkspace()
        a = ws.array("x", 64, np.int32)
        b = ws.array("x", 64, np.int32)
        assert a.base is b.base or a is b
        assert ws.nbytes == 64 * 4

    def test_growth_is_monotonic(self):
        ws = ChunkWorkspace()
        ws.array("x", 128, np.int32)
        before = ws.nbytes
        small = ws.array("x", 16, np.int32)
        assert small.size == 16
        assert ws.nbytes == before  # shrinking requests never release
        ws.array("x", 256, np.int32)
        assert ws.nbytes == 256 * 4

    def test_dtypes_do_not_alias(self):
        ws = ChunkWorkspace()
        a = ws.array("x", 32, np.int16)
        b = ws.array("x", 32, np.int32)
        a.fill(1)
        b.fill(2)
        assert (a == 1).all() and (b == 2).all()

    def test_clear_releases(self):
        ws = ChunkWorkspace()
        ws.array("x", 1024, np.int64)
        assert ws.nbytes > 0
        ws.clear()
        assert ws.nbytes == 0


class TestRoutingPlan:
    def test_stage_shifts_match_engine(self):
        params = EDNParams(16, 4, 4, 3)
        plan = compile_plan(params)
        engine = VectorizedEDN(params, plan=None)
        assert list(plan.stage_shifts) == engine._stage_shifts

    def test_gamma_table_matches_closed_form(self):
        params = EDNParams(16, 4, 4, 3)
        plan = compile_plan(params)
        engine = VectorizedEDN(params, plan=None)
        for stage in range(1, params.l):
            width = params.wires_after_stage(stage)
            labels = np.arange(width, dtype=np.int64)
            expected = engine._gamma_vec(labels, width.bit_length() - 1)
            assert np.array_equal(plan.gamma_table(stage, np.int64), expected)

    def test_narrow_dtype_selection(self):
        assert compile_plan(EDNParams(16, 4, 4, 2)).wire_dtype == np.int16
        # 4^8 * 4 = 262144 outputs overflow int16 labels
        assert compile_plan(EDNParams(16, 4, 4, 8)).wire_dtype == np.int32

    def test_retirement_order_validated(self):
        with pytest.raises(ConfigurationError):
            compile_plan(EDNParams(16, 4, 4, 2), retirement_order=RetirementOrder.canonical(3))

    def test_bad_priority_rejected(self):
        with pytest.raises(ConfigurationError):
            compile_plan(EDNParams(16, 4, 4, 2), priority="fifo")

    def test_workspace_is_per_thread(self):
        plan = compile_plan(EDNParams(16, 4, 4, 2))
        main_ws = plan.workspace()
        assert plan.workspace() is main_ws  # stable within a thread
        seen = {}

        def grab():
            seen["other"] = plan.workspace()

        worker = threading.Thread(target=grab)
        worker.start()
        worker.join()
        assert seen["other"] is not main_ws


class TestPlanCache:
    def setup_method(self):
        clear_plan_cache()

    def test_equal_keys_share_one_plan(self):
        params = EDNParams(16, 4, 4, 2)
        first = plan_for(params)
        second = plan_for(EDNParams(16, 4, 4, 2))
        assert first is second
        info = plan_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_engines_share_plans_and_tables(self):
        params = EDNParams(16, 4, 4, 2)
        one, two = BatchedEDN(params), BatchedEDN(params)
        assert one._plan is two._plan
        assert one._gamma_table(1, np.int32) is two._gamma_table(1, np.int32)

    def test_semantic_fields_change_the_key(self):
        params = EDNParams(16, 4, 4, 2)
        base = plan_for(params)
        assert plan_for(params, priority="random") is not base
        assert plan_for(EDNParams(16, 4, 4, 3)) is not base
        reversed_order = RetirementOrder.reversed_order(params.l)
        assert plan_for(params, retirement_order=reversed_order) is not base

    def test_lru_eviction_bounds_the_cache(self):
        # Distinct small keys: vary (a, b, c) shapes and priorities rather
        # than depth (deep networks would compile huge tables).
        shapes = [
            (a, b, c)
            for a in (2, 4, 8, 16, 32, 64)
            for b in (2, 4, 8)
            for c in (1, 2)
            if c <= a
        ]
        count = 0
        for a, b, c in shapes:
            for priority in ("label", "random"):
                plan_for(EDNParams(a, b, c, 1), priority)
                count += 1
                if count >= PLAN_CACHE_MAXSIZE + 4:
                    break
            if count >= PLAN_CACHE_MAXSIZE + 4:
                break
        assert count >= PLAN_CACHE_MAXSIZE + 4
        assert plan_cache_info()["size"] == PLAN_CACHE_MAXSIZE

    def test_clear_resets(self):
        plan_for(EDNParams(16, 4, 4, 2))
        clear_plan_cache()
        info = plan_cache_info()
        assert info == {
            "hits": 0,
            "misses": 0,
            "size": 0,
            "maxsize": PLAN_CACHE_MAXSIZE,
        }


@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: f"EDN{c}")
class TestPlannedUnplannedEquivalence:
    """The plan is an optimization, never a semantic: bit-identical routing."""

    def test_route_batch_identical(self, cfg, rng):
        params = EDNParams(*cfg)
        planned, unplanned = BatchedEDN(params), BatchedEDN(params, plan=None)
        dests = _random_batch(rng, params, batch=5)
        a, b = planned.route_batch(dests), unplanned.route_batch(dests)
        assert np.array_equal(a.output, b.output)
        assert np.array_equal(a.blocked_stage, b.blocked_stage)

    def test_counts_identical(self, cfg, rng):
        params = EDNParams(*cfg)
        planned, unplanned = BatchedEDN(params), BatchedEDN(params, plan=None)
        for rate in (1.0, 0.5, 0.0):
            dests = _random_batch(rng, params, batch=4, rate=rate)
            a = planned.route_batch_counts(dests)
            b = unplanned.route_batch_counts(dests)
            assert np.array_equal(a.offered_per_cycle, b.offered_per_cycle)
            assert np.array_equal(a.delivered_per_cycle, b.delivered_per_cycle)
            assert a.blocked_by_stage == b.blocked_by_stage

    def test_counts_match_per_message_routing(self, cfg, rng):
        params = EDNParams(*cfg)
        planned = BatchedEDN(params)
        dests = _random_batch(rng, params, batch=4)
        counts = planned.route_batch_counts(dests)
        full = planned.route_batch(dests)
        assert np.array_equal(counts.offered_per_cycle, full.offered_per_cycle)
        assert np.array_equal(counts.delivered_per_cycle, full.delivered_per_cycle)
        assert counts.blocked_by_stage == full.blocked_stage_histogram()

    def test_explicit_workspace_override(self, cfg, rng):
        params = EDNParams(*cfg)
        engine = BatchedEDN(params)
        private = ChunkWorkspace()
        dests = _random_batch(rng, params, batch=3)
        a = engine.route_batch_counts(dests, workspace=private)
        b = engine.route_batch_counts(dests)
        assert np.array_equal(a.delivered_per_cycle, b.delivered_per_cycle)
        assert private.nbytes > 0  # the override was actually used


class TestPlannedValidation:
    """The specialized kernel enforces the same input contract."""

    def test_rejects_wrong_shape(self):
        from repro.core.exceptions import LabelError

        engine = BatchedEDN(EDNParams(16, 4, 4, 2))
        with pytest.raises(LabelError):
            engine.route_batch_counts(np.zeros((3, 17), dtype=np.int64))

    def test_rejects_out_of_range(self):
        from repro.core.exceptions import LabelError

        engine = BatchedEDN(EDNParams(16, 4, 4, 2))
        bad = np.zeros((2, engine.n_inputs), dtype=np.int64)
        bad[1, 3] = engine.n_outputs
        with pytest.raises(LabelError):
            engine.route_batch_counts(bad)
        below = np.zeros((2, engine.n_inputs), dtype=np.int64)
        below[0, 0] = -2
        with pytest.raises(LabelError):
            engine.route_batch_counts(below)

    def test_all_idle_and_empty(self):
        engine = BatchedEDN(EDNParams(16, 4, 4, 2))
        idle = np.full((4, engine.n_inputs), -1, dtype=np.int64)
        counts = engine.route_batch_counts(idle)
        assert counts.offered_per_cycle.sum() == 0
        assert counts.blocked_by_stage == {}
        empty = engine.route_batch_counts(
            np.empty((0, engine.n_inputs), dtype=np.int64)
        )
        assert empty.offered_per_cycle.shape == (0,)
