"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.sim.engine import CycleDriver, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda s: log.append("late"))
        sim.schedule(1.0, lambda s: log.append("early"))
        sim.run()
        assert log == ["early", "late"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda s, i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda s: seen.append(s.now))
        sim.run()
        assert seen == [3.5]
        assert sim.now == 3.5

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5.0, lambda s: seen.append(s.now))
        sim.run()
        assert seen == [5.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda s: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first(s):
            log.append(("first", s.now))
            s.schedule(1.0, lambda s2: log.append(("second", s2.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 2.0)]

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda s: None)
        sim.run()
        assert sim.events_processed == 4


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda s: log.append("cancelled"))
        sim.schedule(2.0, lambda s: log.append("kept"))
        handle.cancel()
        sim.run()
        assert log == ["kept"]
        assert handle.cancelled

    def test_pending_ignores_cancelled(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda s: None)
        sim.schedule(2.0, lambda s: None)
        handle.cancel()
        assert sim.pending == 1


class TestRunBounds:
    def test_run_until(self):
        sim = Simulator()
        log = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda s, t=t: log.append(t))
        sim.run(until=2.5)
        assert log == [1.0, 2.0]
        assert sim.now == 2.5

    def test_resume_after_until(self):
        sim = Simulator()
        log = []
        for t in (1.0, 3.0):
            sim.schedule(t, lambda s, t=t: log.append(t))
        sim.run(until=2.0)
        sim.run()
        assert log == [1.0, 3.0]

    def test_max_events(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.schedule(1.0, lambda s, i=i: log.append(i))
        sim.run(max_events=3)
        assert log == [0, 1, 2]


class TestPeriodic:
    def test_every_fires_repeatedly(self):
        sim = Simulator()
        log = []
        handle = sim.every(1.0, lambda s: log.append(s.now))
        sim.run(until=4.5)
        assert log == [1.0, 2.0, 3.0, 4.0]
        handle.cancel()

    def test_cancel_stops_future_firings(self):
        sim = Simulator()
        log = []
        handle = sim.every(1.0, lambda s: log.append(s.now))
        sim.run(until=2.5)
        handle.cancel()
        sim.run(until=10.0)
        assert log == [1.0, 2.0]

    def test_custom_start(self):
        sim = Simulator()
        log = []
        sim.every(2.0, lambda s: log.append(s.now), start=0.5)
        sim.run(until=5.0)
        assert log == [0.5, 2.5, 4.5]

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            Simulator().every(0.0, lambda s: None)


class TestCycleDriver:
    def test_runs_fixed_cycles(self):
        driver = CycleDriver()
        seen = []
        executed = driver.run(lambda i: seen.append(i) or True, max_cycles=5)
        assert executed == 5
        assert seen == [0, 1, 2, 3, 4]

    def test_body_can_stop_early(self):
        driver = CycleDriver()
        seen = []
        executed = driver.run(lambda i: seen.append(i) or i < 2, max_cycles=10)
        assert executed == 3
        assert seen == [0, 1, 2]

    def test_time_advances_per_cycle(self):
        driver = CycleDriver(period=2.0)
        driver.run(lambda i: True, max_cycles=3)
        assert driver.now == pytest.approx(4.0)


class TestPendingCounter:
    """The live-event counter must track schedule/cancel/fire exactly."""

    @staticmethod
    def _scan(sim: Simulator) -> int:
        # Ground truth: un-cancelled entries still sitting in the heap.
        return sum(1 for entry in sim._heap if not entry.cancelled)

    def test_counts_scheduled_events(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda s: None) for i in range(5)]
        assert sim.pending == 5 == self._scan(sim)
        handles[0].cancel()
        assert sim.pending == 4 == self._scan(sim)

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda s: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending == 0 == self._scan(sim)

    def test_firing_decrements(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.schedule(2.0, lambda s: None)
        sim.step()
        assert sim.pending == 1 == self._scan(sim)
        sim.run()
        assert sim.pending == 0 == self._scan(sim)

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda s: None)
        sim.run()
        handle.cancel()
        assert sim.pending == 0 == self._scan(sim)

    def test_periodic_keeps_one_pending(self):
        sim = Simulator()
        handle = sim.every(1.0, lambda s: None)
        assert sim.pending == 1 == self._scan(sim)
        sim.run(until=3.5)
        assert sim.pending == 1 == self._scan(sim)
        handle.cancel()
        assert sim.pending == 0 == self._scan(sim)
        sim.run()
        assert sim.pending == 0 == self._scan(sim)

    def test_cancel_periodic_inside_callback(self):
        sim = Simulator()
        state = {}

        def body(s):
            state.setdefault("handle", None)
            handle = state["outer"]
            handle.cancel()

        state["outer"] = sim.every(1.0, body)
        sim.run(until=5.0)
        assert sim.pending == 0 == self._scan(sim)

    def test_nested_scheduling_tracked(self):
        sim = Simulator()

        def outer(s):
            s.schedule(1.0, lambda s2: None)
            s.schedule(2.0, lambda s2: None)

        sim.schedule(1.0, outer)
        sim.step()
        assert sim.pending == 2 == self._scan(sim)
        sim.run()
        assert sim.pending == 0 == self._scan(sim)

    def test_pending_is_constant_time(self):
        # Smoke-check the structural fix: pending must not scan the heap.
        sim = Simulator()
        for i in range(1000):
            sim.schedule(float(i + 1), lambda s: None)
        import timeit

        per_call = timeit.timeit(lambda: sim.pending, number=1000) / 1000
        assert per_call < 1e-5  # a heap scan of 1000 entries costs ~1e-4+
