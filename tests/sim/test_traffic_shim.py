"""The deprecated ``repro.sim.traffic`` compat shim warns, once."""

from __future__ import annotations

import importlib
import sys
import warnings


def _fresh_import():
    """(Re)execute the shim module, collecting the warnings it emits."""
    sys.modules.pop("repro.sim.traffic", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        module = importlib.import_module("repro.sim.traffic")
    return module, [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]


class TestDeprecationWarning:
    def test_import_warns_exactly_once(self):
        module, deprecations = _fresh_import()
        assert len(deprecations) == 1
        message = str(deprecations[0].message)
        assert "repro.sim.traffic is deprecated" in message
        assert "repro.workloads" in message  # the warning names the successor
        # The module is now cached: importing again re-executes nothing,
        # so the warning cannot fire a second time in this process.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            again = importlib.import_module("repro.sim.traffic")
        assert again is module
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_shim_still_reexports_the_models(self):
        module, _ = _fresh_import()
        models = importlib.import_module("repro.workloads.models")
        for name in module.__all__:
            assert getattr(module, name) is getattr(models, name)
