"""Unit tests for the stage-graph core (graphs, plans, compiled routing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.sim.batched import BatchedEDN, CompiledStageRouter
from repro.sim.plan import (
    RoutingPlan,
    StagePlan,
    clear_plan_cache,
    compile_stage_plan,
    plan_for,
    stage_plan_for,
)
from repro.sim.rng import make_rng, spawn
from repro.sim.stagegraph import (
    GraphStage,
    StageGraph,
    StageGraphReference,
    delta_graph,
    dilated_graph,
    edn_graph,
    materialize_permutation,
    omega_graph,
)

ALL_GRAPHS = [
    pytest.param(edn_graph(EDNParams(16, 4, 4, 2)), id="edn:16,4,4,2"),
    pytest.param(edn_graph(EDNParams(8, 2, 4, 3)), id="edn:8,2,4,3"),
    pytest.param(delta_graph(4, 4, 3), id="delta:4,4,3"),
    pytest.param(delta_graph(8, 2, 2), id="delta:8,2,2"),
    pytest.param(omega_graph(64), id="omega:64"),
    pytest.param(dilated_graph(4, 4, 3, 2), id="dilated:4,4,3,2"),
    pytest.param(dilated_graph(2, 2, 5, 4), id="dilated:2,2,5,4"),
]


class TestBuilders:
    def test_edn_graph_structure(self):
        params = EDNParams(16, 4, 4, 2)
        graph = edn_graph(params)
        assert graph.num_stages == params.l + 1  # hyperbars + crossbar column
        assert graph.stage_widths == tuple(
            params.wires_after_stage(i) for i in range(params.l + 1)
        )
        crossbar = graph.stages[-1]
        assert (crossbar.fan_in, crossbar.radix, crossbar.capacity) == (4, 4, 1)
        assert graph.out_shift == 0 and graph.input_perm is None

    def test_delta_graph_is_the_c1_edn(self):
        delta = delta_graph(4, 4, 3)
        edn = edn_graph(EDNParams(4, 4, 1, 3))
        assert delta.stages == edn.stages
        assert delta.label == "delta:4,4,3"

    def test_omega_graph_carries_the_input_shuffle(self):
        graph = omega_graph(16)
        assert graph.input_perm == ("rotl", 4, 1)
        table = materialize_permutation(graph.input_perm)
        assert sorted(table.tolist()) == list(range(16))
        assert table[1] == 2  # one-bit left rotation of 0001 -> 0010

    def test_dilated_graph_widths_and_lanes(self):
        graph = dilated_graph(4, 4, 3, 2)
        # Bundles are d wide everywhere downstream of stage 1.
        assert graph.stage_widths == (64, 128, 128)
        assert graph.out_shift == 1
        assert graph.stages[0].fan_in == 4 and graph.stages[1].fan_in == 8
        assert all(stage.capacity == 2 for stage in graph.stages)

    def test_dilated_one_has_no_lanes(self):
        graph = dilated_graph(4, 4, 2, 1)
        assert graph.out_shift == 0
        assert graph.stages[0].capacity == 1

    @pytest.mark.parametrize(
        "build",
        [
            lambda: omega_graph(12),
            lambda: omega_graph(1),
            lambda: dilated_graph(3, 4, 2, 2),
            lambda: dilated_graph(4, 4, 0, 2),
            lambda: dilated_graph(4, 1, 2, 2),
            lambda: GraphStage(3, 2, 1, 0),
        ],
    )
    def test_invalid_parameters_rejected(self, build):
        with pytest.raises(ConfigurationError):
            build()

    def test_inconsistent_graph_rejected(self):
        with pytest.raises(ConfigurationError, match="final bucket space"):
            StageGraph(
                label="bogus",
                n_inputs=8,
                n_outputs=16,
                stages=(GraphStage(2, 2, 1, 0),),
            )
        with pytest.raises(ConfigurationError, match="no outgoing links"):
            StageGraph(
                label="bogus",
                n_inputs=4,
                n_outputs=4,
                stages=(GraphStage(2, 2, 1, 0, link_perm=("rotl", 2, 1)),),
            )

    @pytest.mark.parametrize("graph", ALL_GRAPHS)
    def test_link_tables_are_permutations(self, graph):
        plan = compile_stage_plan(graph)
        for i, stage in enumerate(graph.stages):
            table = plan.perm_table(i, np.int64)
            if stage.link_perm is None:
                assert table is None
            else:
                assert sorted(table.tolist()) == list(range(table.size))


class TestStagePlan:
    def test_routing_plan_is_a_stage_plan(self):
        plan = plan_for(EDNParams(16, 4, 4, 2))
        assert isinstance(plan, RoutingPlan) and isinstance(plan, StagePlan)
        assert plan.graph == edn_graph(EDNParams(16, 4, 4, 2))
        # The legacy EDN views survive the generalization.
        assert plan.stage_shifts == (4, 2)
        assert plan.gamma_table(1, np.int16).dtype == np.int16

    def test_gamma_tables_match_the_generic_perm_tables(self):
        plan = plan_for(EDNParams(8, 2, 4, 3))
        for stage in range(1, 3):  # interior boundaries only
            np.testing.assert_array_equal(
                plan.gamma_table(stage, np.int32),
                plan.perm_table(stage - 1, np.int32),
            )

    @pytest.mark.parametrize("graph", ALL_GRAPHS)
    def test_plan_cache_round_trip(self, graph):
        clear_plan_cache()
        plan = stage_plan_for(graph)
        assert stage_plan_for(graph) is plan
        assert stage_plan_for(graph, "random") is not plan

    def test_wire_dtype_covers_the_lane_expanded_output_space(self):
        plan = compile_stage_plan(dilated_graph(4, 4, 3, 2))
        assert plan.wire_dtype == np.dtype(np.int16)
        widest = max(plan.stage_widths)
        assert np.iinfo(plan.wire_dtype).max >= widest

    def test_stage_base_rows(self):
        graph = dilated_graph(4, 4, 2, 2)
        plan = compile_stage_plan(graph)
        row = plan.stage_base(0, np.int64)
        # Wire w of switch s maps to base s * b * d - 1.
        assert row[0] == -1 and row[4] == 7 and row.size == 16

    def test_edn_and_graph_plans_never_alias(self):
        clear_plan_cache()
        edn_plan = plan_for(EDNParams(4, 4, 1, 3))
        graph_plan = stage_plan_for(delta_graph(4, 4, 3))
        assert edn_plan is not graph_plan


class TestReferenceInterpreter:
    @pytest.mark.parametrize("graph", ALL_GRAPHS)
    @pytest.mark.parametrize("priority", ["label", "random"])
    def test_compiled_router_matches_interpreter(self, graph, priority):
        compiled = CompiledStageRouter(graph, priority=priority)
        reference = StageGraphReference(graph, priority=priority)
        rng = make_rng(5)
        demands = rng.integers(-1, graph.n_outputs, size=(8, graph.n_inputs))
        rngs = spawn(3, 8)
        result = compiled.route_batch(demands, rngs if priority == "random" else None)
        fresh = spawn(3, 8)
        for i, row in enumerate(demands):
            expected = reference.route(
                row, fresh[i] if priority == "random" else None
            )
            np.testing.assert_array_equal(result.output[i], expected.output)
            np.testing.assert_array_equal(
                result.blocked_stage[i], expected.blocked_stage
            )

    def test_edn_graph_routes_like_the_dedicated_engine(self):
        params = EDNParams(16, 4, 4, 2)
        compiled = CompiledStageRouter(edn_graph(params))
        dedicated = BatchedEDN(params)
        rng = make_rng(1)
        demands = rng.integers(-1, params.num_outputs, size=(6, params.num_inputs))
        a = compiled.route_batch(demands)
        b = dedicated.route_batch(demands)
        np.testing.assert_array_equal(a.output, b.output)
        np.testing.assert_array_equal(a.blocked_stage, b.blocked_stage)

    def test_interpreter_validates_inputs(self):
        from repro.core.exceptions import LabelError

        reference = StageGraphReference(delta_graph(2, 2, 2))
        with pytest.raises(LabelError):
            reference.route(np.zeros(3, dtype=np.int64))
        bad = np.zeros(4, dtype=np.int64)
        bad[0] = 99
        with pytest.raises(LabelError):
            reference.route(bad)
        with pytest.raises(ConfigurationError):
            StageGraphReference(delta_graph(2, 2, 2), priority="random").route(
                np.zeros(4, dtype=np.int64)
            )

    def test_lone_message_always_lands_everywhere(self):
        for graph_param in ALL_GRAPHS:
            graph = graph_param.values[0]
            router = CompiledStageRouter(graph)
            demands = np.full(graph.n_inputs, -1, dtype=np.int64)
            demands[0] = graph.n_outputs - 1
            result = router.route(demands)
            assert result.output[0] == graph.n_outputs - 1
            assert result.blocked_stage[0] == 0
