"""Bit-identity of the native kernel backend against the NumPy kernels.

The native backend's contract is *exact* agreement with
:class:`~repro.sim.batched.CompiledStageRouter` — same offered/delivered
counts and the same per-stage blocking — on every plan the compiled
kernels route: all four stage-graph families, both priorities, faulted
and buffered plans.  The ``python`` tier (the interpreted loop body)
always runs, pinning the loop logic on any host; the accelerated tiers
(``numba``, the runtime-compiled C kernel) join the same parametrization
whenever they are available and skip gracefully otherwise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import NetworkSpec, RunConfig, build_router, resolve_backend
from repro.api.jobs import SweepCell, measure_cell
from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.core.faults import WireFault
from repro.experiments.parallel import ParallelSweep
from repro.sim import native
from repro.sim.batched import CompiledStageRouter
from repro.sim.native import (
    NativeStageRouter,
    available_tiers,
    device_counts,
    kernel_for,
)
from repro.sim.rng import make_rng
from repro.sim.stagegraph import (
    delta_graph,
    dilated_graph,
    edn_graph,
    omega_graph,
)

GRAPHS = {
    "edn": lambda: edn_graph(EDNParams(16, 4, 4, 2)),
    "delta": lambda: delta_graph(4, 4, 3),
    "omega": lambda: omega_graph(64),
    "dilated": lambda: dilated_graph(2, 2, 4, 2),
}

FAULTS = {
    "edn": (WireFault(1, 0, 0), WireFault(2, 1, 3)),
    "delta": (WireFault(1, 0, 0), WireFault(2, 1, 3)),
    "omega": (WireFault(1, 0, 1), WireFault(3, 2, 0)),
    "dilated": (WireFault(1, 0, 1), WireFault(2, 0, 0)),
}

#: The interpreted tier always runs; accelerated tiers when present.
TIERS = ("python",) + available_tiers()


def demands(graph, seed: int, batch: int) -> np.ndarray:
    rng = make_rng(seed)
    return rng.integers(-1, graph.n_outputs, size=(batch, graph.n_inputs))


def assert_counts_equal(got, want):
    np.testing.assert_array_equal(got.offered_per_cycle, want.offered_per_cycle)
    np.testing.assert_array_equal(
        got.delivered_per_cycle, want.delivered_per_cycle
    )
    assert got.blocked_by_stage == want.blocked_by_stage


class TestCountsBitIdentity:
    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("family", sorted(GRAPHS))
    @pytest.mark.parametrize("seed", [0, 7])
    @pytest.mark.parametrize("batch", [1, 6])
    def test_matches_batched(self, family, tier, seed, batch):
        graph = GRAPHS[family]()
        dests = demands(graph, seed, batch)
        want = CompiledStageRouter(graph).route_batch_counts(dests)
        got = NativeStageRouter(graph, tier=tier).route_batch_counts(dests)
        assert_counts_equal(got, want)

    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("family", sorted(GRAPHS))
    def test_matches_batched_with_faults(self, family, tier):
        graph = GRAPHS[family]()
        faults = FAULTS[family]
        dests = demands(graph, 3, 5)
        want = CompiledStageRouter(graph, faults=faults).route_batch_counts(dests)
        got = NativeStageRouter(
            graph, faults=faults, tier=tier
        ).route_batch_counts(dests)
        assert_counts_equal(got, want)

    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("depth", [1, 2])
    def test_matches_batched_on_buffered_plans(self, tier, depth):
        # Buffered plans lower buffers into extra stages of the same plan
        # format; the native kernel must route them identically too.
        graph = delta_graph(4, 4, 3)
        dests = demands(graph, 11, 4)
        want = CompiledStageRouter(graph, buffer_depth=depth).route_batch_counts(
            dests
        )
        got = NativeStageRouter(
            graph, buffer_depth=depth, tier=tier
        ).route_batch_counts(dests)
        assert_counts_equal(got, want)

    def test_random_priority_defers_to_inherited_engine(self):
        # Random priority resolves by seeded sort; the native router must
        # return the inherited engine's exact results (same rng stream).
        graph = delta_graph(4, 4, 3)
        dests = demands(graph, 5, 4)
        want = CompiledStageRouter(graph, priority="random").route_batch_counts(
            dests, make_rng(21)
        )
        got = NativeStageRouter(graph, priority="random").route_batch_counts(
            dests, make_rng(21)
        )
        assert_counts_equal(got, want)

    def test_shim_matches_batched_without_any_tier(self, monkeypatch):
        # Forcing the NumPy shim (tier None) must route through the
        # inherited kernels — the import-never-fails degradation path.
        monkeypatch.setenv("REPRO_NATIVE_TIER", "numpy")
        graph = delta_graph(4, 4, 3)
        router = NativeStageRouter(graph)
        assert router.tier is None
        dests = demands(graph, 2, 3)
        want = CompiledStageRouter(graph).route_batch_counts(dests)
        assert_counts_equal(router.route_batch_counts(dests), want)


class TestNumbaTier:
    def test_numba_tier_matches_batched(self):
        pytest.importorskip("numba")
        graph = delta_graph(4, 4, 3)
        dests = demands(graph, 13, 4)
        want = CompiledStageRouter(graph).route_batch_counts(dests)
        got = NativeStageRouter(graph, tier="numba").route_batch_counts(dests)
        assert_counts_equal(got, want)


class TestKernelCache:
    def test_warm_equals_cold(self):
        # Two routers over equivalent graphs share one cached plan, and
        # the lowered kernel rides it: the second construction reuses the
        # kernel object and produces bit-identical counts.
        graph = delta_graph(4, 4, 3)
        cold = NativeStageRouter(graph, tier="python")
        dests = demands(graph, 9, 4)
        first = cold.route_batch_counts(dests)
        warm = NativeStageRouter(delta_graph(4, 4, 3), tier="python")
        assert kernel_for(warm._plan, "python") is kernel_for(cold._plan, "python")
        assert_counts_equal(warm.route_batch_counts(dests), first)


@pytest.mark.skipif(not available_tiers(), reason="no accelerated native tier")
class TestParallelSweepAgreement:
    def test_jobs2_matches_jobs1_under_native(self):
        specs = [
            NetworkSpec.delta(4, 4, 2),
            NetworkSpec.omega(16),
            NetworkSpec.edn(8, 2, 4, 2),
        ]
        config = RunConfig(cycles=16, seed=3, batch=4, backend="native")
        cells = [SweepCell(spec, config) for spec in specs]
        inline = ParallelSweep(jobs=1).map_cells(cells)
        fanned = ParallelSweep(jobs=2).map_cells(cells)
        for a, b in zip(inline, fanned):
            assert a.point == b.point
            assert a.blocked_by_stage == b.blocked_by_stage

    def test_buffered_cell_accepts_native(self):
        from dataclasses import replace

        spec = NetworkSpec.delta(4, 4, 2)
        config = RunConfig(
            cycles=16, seed=5, batch=4, backend="native", buffer_depth=2
        )
        auto = measure_cell(SweepCell(spec, replace(config, backend="auto")))
        nat = measure_cell(SweepCell(spec, config))
        assert nat.delivered == auto.delivered
        assert nat.throughput == auto.throughput


class TestRegistryGating:
    def test_explicit_native_names_the_extra_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(
            native,
            "unavailable_reason",
            lambda: (
                "the native backend needs numba (pip install 'repro[native]') "
                "or a C compiler (cc/gcc/clang) on PATH; neither is available"
            ),
        )
        with pytest.raises(ConfigurationError, match=r"repro\[native\]"):
            build_router(NetworkSpec.delta(4, 4, 2), "native")

    def test_auto_skips_native_when_no_tier(self, monkeypatch):
        monkeypatch.setattr(native, "available_tiers", lambda: ())
        monkeypatch.setattr(native, "unavailable_reason", lambda: "gone")
        spec = NetworkSpec.delta(4, 4, 2)
        assert resolve_backend(spec).name == "batched"
        from repro.api import available_backends

        assert "native" not in available_backends(spec)

    def test_gpu_backend_never_picked_by_auto(self):
        spec = NetworkSpec.delta(4, 4, 2)
        assert resolve_backend(spec).name != "native:gpu"

    def test_gpu_backend_rejects_faults(self):
        spec = NetworkSpec.delta(4, 4, 2, faults=(WireFault(1, 0, 0),))
        with pytest.raises(ConfigurationError, match="does not support"):
            build_router(spec, "native:gpu")


class TestGpuPath:
    def test_array_api_counts_match_batched_on_numpy(self):
        # The Array-API kernel with xp=numpy is the always-testable half
        # of the GPU story; CuPy engages automatically when importable.
        graph = delta_graph(4, 4, 3)
        dests = demands(graph, 17, 4)
        router = CompiledStageRouter(graph)
        want = router.route_batch_counts(dests)
        got = device_counts(router._plan, dests, np)
        assert_counts_equal(got, want)

    def test_gpu_router_matches_batched(self):
        graph = omega_graph(64)
        dests = demands(graph, 19, 3)
        want = CompiledStageRouter(graph).route_batch_counts(dests)
        got = NativeStageRouter(graph, device="gpu").route_batch_counts(dests)
        assert_counts_equal(got, want)

    def test_cupy_namespace_when_importable(self):
        cupy = pytest.importorskip("cupy")
        from repro.sim.native import gpu_namespace

        assert gpu_namespace() is cupy


class TestWideRadixAllocationFree:
    def test_onehot_fallback_performs_no_chunk_sized_allocations(self):
        # radix 16 -> packed lanes would need 128 bits -> one-hot fallback.
        import tracemalloc

        graph = delta_graph(16, 16, 2)
        router = CompiledStageRouter(graph)
        dests = demands(graph, 23, 4)
        router.route_batch_counts(dests)  # warm the scratch buffers
        chunk_bytes = graph.n_inputs  # smallest chunk-sized block (1 B/wire)
        tracemalloc.start()
        for _ in range(5):
            router.route_batch_counts(dests)
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        big = [
            stat
            for stat in snapshot.statistics("lineno")
            if stat.size / max(stat.count, 1) >= chunk_bytes
        ]
        assert big == []

    def test_onehot_fallback_matches_interpreted_loop(self):
        graph = delta_graph(16, 16, 2)
        dests = demands(graph, 29, 4)
        want = NativeStageRouter(graph, tier="python").route_batch_counts(dests)
        got = CompiledStageRouter(graph).route_batch_counts(dests)
        assert_counts_equal(got, want)
