"""Unit tests for the Monte-Carlo acceptance harness."""

from __future__ import annotations

import pytest

from repro.baselines.crossbar_network import CrossbarNetwork
from repro.core.analysis import acceptance_probability, crossbar_acceptance
from repro.core.config import EDNParams
from repro.core.network import EDNetwork
from repro.sim.batched import BatchedEDN
from repro.sim.montecarlo import ReferenceRouterAdapter, measure_acceptance
from repro.sim.traffic import PermutationTraffic, UniformTraffic
from repro.sim.vectorized import VectorizedEDN


class TestMeasureAcceptance:
    def test_tracks_analytic_within_tolerance(self):
        p = EDNParams(16, 4, 4, 2)
        measurement = measure_acceptance(
            VectorizedEDN(p), UniformTraffic(64, 64, 1.0), cycles=300, seed=1
        )
        analytic = acceptance_probability(p, 1.0)
        # Eq. 4 runs a few percent optimistic (independence approximation).
        assert measurement.point == pytest.approx(analytic, abs=0.05)
        assert measurement.point < analytic

    def test_crossbar_matches_closed_form(self):
        # The crossbar has no internal stages, so Eq. 4's approximation is
        # exact and simulation must agree tightly.
        n = 64
        measurement = measure_acceptance(
            CrossbarNetwork(n), UniformTraffic(n, n, 1.0), cycles=400, seed=2
        )
        assert measurement.point == pytest.approx(crossbar_acceptance(n, 1.0), abs=0.02)

    def test_reproducible_with_seed(self):
        p = EDNParams(16, 4, 4, 2)
        a = measure_acceptance(VectorizedEDN(p), UniformTraffic(64, 64, 1.0), cycles=30, seed=9)
        b = measure_acceptance(VectorizedEDN(p), UniformTraffic(64, 64, 1.0), cycles=30, seed=9)
        assert a.point == b.point
        assert a.blocked_by_stage == b.blocked_by_stage

    def test_counts_are_consistent(self):
        p = EDNParams(16, 4, 4, 2)
        measurement = measure_acceptance(
            VectorizedEDN(p), UniformTraffic(64, 64, 0.5), cycles=50, seed=0
        )
        assert measurement.delivered <= measurement.offered
        blocked = sum(measurement.blocked_by_stage.values())
        assert measurement.offered - measurement.delivered == blocked

    def test_interval_brackets_point(self):
        p = EDNParams(16, 4, 4, 2)
        measurement = measure_acceptance(
            VectorizedEDN(p), UniformTraffic(64, 64, 1.0), cycles=60, seed=0
        )
        assert measurement.acceptance.low <= measurement.point <= measurement.acceptance.high

    def test_size_mismatch_rejected(self):
        p = EDNParams(16, 4, 4, 2)
        with pytest.raises(ValueError):
            measure_acceptance(VectorizedEDN(p), UniformTraffic(32, 64, 1.0), cycles=5)


class TestReferenceAdapter:
    def test_adapter_measures_like_vectorized(self):
        p = EDNParams(8, 4, 2, 2)
        traffic = UniformTraffic(p.num_inputs, p.num_outputs, 1.0)
        ref = measure_acceptance(
            ReferenceRouterAdapter(EDNetwork(p)), traffic, cycles=40, seed=3
        )
        vec = measure_acceptance(VectorizedEDN(p), traffic, cycles=40, seed=3)
        assert ref.point == pytest.approx(vec.point, abs=1e-12)

    def test_adapter_exposes_sizes(self):
        p = EDNParams(8, 4, 2, 2)
        adapter = ReferenceRouterAdapter.build(p)
        assert adapter.n_inputs == p.num_inputs
        assert adapter.n_outputs == p.num_outputs


class TestPermutationTrafficAcceptance:
    def test_lemma2_no_blocking_in_last_two_stages(self):
        # Under permutation traffic the last hyperbar stage and the
        # crossbars never discard (Lemma 2).
        p = EDNParams(16, 4, 4, 3)
        measurement = measure_acceptance(
            VectorizedEDN(p),
            PermutationTraffic(p.num_inputs, p.num_outputs),
            cycles=60,
            seed=4,
        )
        assert p.l not in measurement.blocked_by_stage
        assert p.l + 1 not in measurement.blocked_by_stage

    def test_single_stage_permutation_never_blocks(self):
        p = EDNParams(16, 4, 4, 1)
        measurement = measure_acceptance(
            VectorizedEDN(p),
            PermutationTraffic(p.num_inputs, p.num_outputs),
            cycles=40,
            seed=5,
        )
        assert measurement.point == 1.0


class TestBatchedMeasurement:
    def test_batched_matches_analytic(self):
        p = EDNParams(16, 4, 4, 2)
        measurement = measure_acceptance(
            BatchedEDN(p), UniformTraffic(64, 64, 1.0), cycles=300, seed=1
        )
        analytic = acceptance_probability(p, 1.0)
        assert measurement.point == pytest.approx(analytic, abs=0.05)

    def test_reproducible_for_fixed_seed_and_batch(self):
        p = EDNParams(16, 4, 4, 2)
        traffic = UniformTraffic(64, 64, 0.8)
        a = measure_acceptance(BatchedEDN(p), traffic, cycles=50, seed=9, batch=16)
        b = measure_acceptance(BatchedEDN(p), traffic, cycles=50, seed=9, batch=16)
        assert a.point == b.point
        assert a.blocked_by_stage == b.blocked_by_stage

    def test_counts_are_consistent(self):
        p = EDNParams(16, 4, 4, 2)
        measurement = measure_acceptance(
            BatchedEDN(p), UniformTraffic(64, 64, 0.5), cycles=50, seed=0
        )
        assert measurement.delivered <= measurement.offered
        blocked = sum(measurement.blocked_by_stage.values())
        assert measurement.offered - measurement.delivered == blocked

    def test_same_traffic_stream_across_routers_at_fixed_batch(self):
        # At the same (seed, batch) every router sees identical demands,
        # so per-message-identical engines must agree exactly even though
        # one routes chunked and the other cycle-by-cycle.
        p = EDNParams(8, 4, 2, 2)
        traffic = UniformTraffic(p.num_inputs, p.num_outputs, 1.0)
        ref = measure_acceptance(
            ReferenceRouterAdapter(EDNetwork(p)), traffic, cycles=24, seed=3, batch=8
        )
        batched = measure_acceptance(BatchedEDN(p), traffic, cycles=24, seed=3, batch=8)
        assert ref.point == pytest.approx(batched.point, abs=1e-12)
        assert ref.blocked_by_stage == batched.blocked_by_stage

    def test_partial_final_chunk(self):
        p = EDNParams(16, 4, 4, 2)
        traffic = UniformTraffic(64, 64, 1.0)
        measurement = measure_acceptance(
            BatchedEDN(p), traffic, cycles=25, seed=2, batch=10
        )
        assert measurement.cycles == 25
        assert measurement.offered > 0
        assert measurement.acceptance.low <= measurement.point <= measurement.acceptance.high

    def test_generator_seed_accepted(self):
        import numpy as np

        p = EDNParams(16, 4, 4, 2)
        traffic = UniformTraffic(64, 64, 1.0)
        a = measure_acceptance(
            BatchedEDN(p), traffic, cycles=20, seed=np.random.default_rng(7)
        )
        b = measure_acceptance(
            BatchedEDN(p), traffic, cycles=20, seed=np.random.default_rng(7)
        )
        assert a.point == b.point

    def test_bad_batch_rejected(self):
        p = EDNParams(16, 4, 4, 2)
        with pytest.raises(ValueError):
            measure_acceptance(
                BatchedEDN(p), UniformTraffic(64, 64, 1.0), cycles=5, batch=0
            )


class TestRunConfigPrecedence:
    """The facade-wide rule: set config fields beat keyword arguments."""

    def test_config_fields_win_over_keywords(self):
        from repro.api.spec import RunConfig

        params = EDNParams(16, 4, 4, 2)
        traffic = UniformTraffic(64, 64, 1.0)
        router = BatchedEDN(params)
        via_config = measure_acceptance(
            router, traffic, cycles=5, seed=9, config=RunConfig(cycles=30, seed=1)
        )
        direct = measure_acceptance(router, traffic, cycles=30, seed=1)
        assert via_config.cycles == 30
        assert via_config.point == direct.point

    def test_keywords_fill_unset_config_fields(self):
        from repro.api.spec import RunConfig

        params = EDNParams(16, 4, 4, 2)
        traffic = UniformTraffic(64, 64, 1.0)
        router = BatchedEDN(params)
        partial = measure_acceptance(
            router, traffic, cycles=12, seed=4, config=RunConfig(batch=4)
        )
        direct = measure_acceptance(router, traffic, cycles=12, seed=4, batch=4)
        assert partial.cycles == 12
        assert partial.point == direct.point

    def test_simulator_measure_honors_config(self):
        from repro.api.spec import RunConfig
        from repro.simd.ra_edn import RAEDNSystem
        from repro.simd.simulator import RAEDNSimulator

        simulator = RAEDNSimulator(RAEDNSystem(4, 2, 1, 2))
        via_config = simulator.measure(runs=3, config=RunConfig(seed=11))
        direct = simulator.measure(runs=3, seed=11)
        assert via_config.cycles.mean == direct.cycles.mean
