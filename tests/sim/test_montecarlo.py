"""Unit tests for the Monte-Carlo acceptance harness."""

from __future__ import annotations

import pytest

from repro.baselines.crossbar_network import CrossbarNetwork
from repro.core.analysis import acceptance_probability, crossbar_acceptance
from repro.core.config import EDNParams
from repro.core.network import EDNetwork
from repro.sim.batched import BatchedEDN
from repro.sim.montecarlo import ReferenceRouterAdapter, measure_acceptance
from repro.workloads import PermutationTraffic, UniformTraffic
from repro.sim.vectorized import VectorizedEDN


class TestMeasureAcceptance:
    def test_tracks_analytic_within_tolerance(self):
        p = EDNParams(16, 4, 4, 2)
        measurement = measure_acceptance(
            VectorizedEDN(p), UniformTraffic(64, 64, 1.0), cycles=300, seed=1
        )
        analytic = acceptance_probability(p, 1.0)
        # Eq. 4 runs a few percent optimistic (independence approximation).
        assert measurement.point == pytest.approx(analytic, abs=0.05)
        assert measurement.point < analytic

    def test_crossbar_matches_closed_form(self):
        # The crossbar has no internal stages, so Eq. 4's approximation is
        # exact and simulation must agree tightly.
        n = 64
        measurement = measure_acceptance(
            CrossbarNetwork(n), UniformTraffic(n, n, 1.0), cycles=400, seed=2
        )
        assert measurement.point == pytest.approx(crossbar_acceptance(n, 1.0), abs=0.02)

    def test_reproducible_with_seed(self):
        p = EDNParams(16, 4, 4, 2)
        a = measure_acceptance(VectorizedEDN(p), UniformTraffic(64, 64, 1.0), cycles=30, seed=9)
        b = measure_acceptance(VectorizedEDN(p), UniformTraffic(64, 64, 1.0), cycles=30, seed=9)
        assert a.point == b.point
        assert a.blocked_by_stage == b.blocked_by_stage

    def test_counts_are_consistent(self):
        p = EDNParams(16, 4, 4, 2)
        measurement = measure_acceptance(
            VectorizedEDN(p), UniformTraffic(64, 64, 0.5), cycles=50, seed=0
        )
        assert measurement.delivered <= measurement.offered
        blocked = sum(measurement.blocked_by_stage.values())
        assert measurement.offered - measurement.delivered == blocked

    def test_interval_brackets_point(self):
        p = EDNParams(16, 4, 4, 2)
        measurement = measure_acceptance(
            VectorizedEDN(p), UniformTraffic(64, 64, 1.0), cycles=60, seed=0
        )
        assert measurement.acceptance.low <= measurement.point <= measurement.acceptance.high

    def test_size_mismatch_rejected(self):
        p = EDNParams(16, 4, 4, 2)
        with pytest.raises(ValueError):
            measure_acceptance(VectorizedEDN(p), UniformTraffic(32, 64, 1.0), cycles=5)


class TestReferenceAdapter:
    def test_adapter_measures_like_vectorized(self):
        p = EDNParams(8, 4, 2, 2)
        traffic = UniformTraffic(p.num_inputs, p.num_outputs, 1.0)
        ref = measure_acceptance(
            ReferenceRouterAdapter(EDNetwork(p)), traffic, cycles=40, seed=3
        )
        vec = measure_acceptance(VectorizedEDN(p), traffic, cycles=40, seed=3)
        assert ref.point == pytest.approx(vec.point, abs=1e-12)

    def test_adapter_exposes_sizes(self):
        p = EDNParams(8, 4, 2, 2)
        adapter = ReferenceRouterAdapter.build(p)
        assert adapter.n_inputs == p.num_inputs
        assert adapter.n_outputs == p.num_outputs


class TestPermutationTrafficAcceptance:
    def test_lemma2_no_blocking_in_last_two_stages(self):
        # Under permutation traffic the last hyperbar stage and the
        # crossbars never discard (Lemma 2).
        p = EDNParams(16, 4, 4, 3)
        measurement = measure_acceptance(
            VectorizedEDN(p),
            PermutationTraffic(p.num_inputs, p.num_outputs),
            cycles=60,
            seed=4,
        )
        assert p.l not in measurement.blocked_by_stage
        assert p.l + 1 not in measurement.blocked_by_stage

    def test_single_stage_permutation_never_blocks(self):
        p = EDNParams(16, 4, 4, 1)
        measurement = measure_acceptance(
            VectorizedEDN(p),
            PermutationTraffic(p.num_inputs, p.num_outputs),
            cycles=40,
            seed=5,
        )
        assert measurement.point == 1.0


class TestBatchedMeasurement:
    def test_batched_matches_analytic(self):
        p = EDNParams(16, 4, 4, 2)
        measurement = measure_acceptance(
            BatchedEDN(p), UniformTraffic(64, 64, 1.0), cycles=300, seed=1
        )
        analytic = acceptance_probability(p, 1.0)
        assert measurement.point == pytest.approx(analytic, abs=0.05)

    def test_reproducible_for_fixed_seed_and_batch(self):
        p = EDNParams(16, 4, 4, 2)
        traffic = UniformTraffic(64, 64, 0.8)
        a = measure_acceptance(BatchedEDN(p), traffic, cycles=50, seed=9, batch=16)
        b = measure_acceptance(BatchedEDN(p), traffic, cycles=50, seed=9, batch=16)
        assert a.point == b.point
        assert a.blocked_by_stage == b.blocked_by_stage

    def test_counts_are_consistent(self):
        p = EDNParams(16, 4, 4, 2)
        measurement = measure_acceptance(
            BatchedEDN(p), UniformTraffic(64, 64, 0.5), cycles=50, seed=0
        )
        assert measurement.delivered <= measurement.offered
        blocked = sum(measurement.blocked_by_stage.values())
        assert measurement.offered - measurement.delivered == blocked

    def test_same_traffic_stream_across_routers_at_fixed_batch(self):
        # At the same (seed, batch) every router sees identical demands,
        # so per-message-identical engines must agree exactly even though
        # one routes chunked and the other cycle-by-cycle.
        p = EDNParams(8, 4, 2, 2)
        traffic = UniformTraffic(p.num_inputs, p.num_outputs, 1.0)
        ref = measure_acceptance(
            ReferenceRouterAdapter(EDNetwork(p)), traffic, cycles=24, seed=3, batch=8
        )
        batched = measure_acceptance(BatchedEDN(p), traffic, cycles=24, seed=3, batch=8)
        assert ref.point == pytest.approx(batched.point, abs=1e-12)
        assert ref.blocked_by_stage == batched.blocked_by_stage

    def test_partial_final_chunk(self):
        p = EDNParams(16, 4, 4, 2)
        traffic = UniformTraffic(64, 64, 1.0)
        measurement = measure_acceptance(
            BatchedEDN(p), traffic, cycles=25, seed=2, batch=10
        )
        assert measurement.cycles == 25
        assert measurement.offered > 0
        assert measurement.acceptance.low <= measurement.point <= measurement.acceptance.high

    def test_generator_seed_accepted(self):
        import numpy as np

        p = EDNParams(16, 4, 4, 2)
        traffic = UniformTraffic(64, 64, 1.0)
        a = measure_acceptance(
            BatchedEDN(p), traffic, cycles=20, seed=np.random.default_rng(7)
        )
        b = measure_acceptance(
            BatchedEDN(p), traffic, cycles=20, seed=np.random.default_rng(7)
        )
        assert a.point == b.point

    def test_bad_batch_rejected(self):
        p = EDNParams(16, 4, 4, 2)
        with pytest.raises(ValueError):
            measure_acceptance(
                BatchedEDN(p), UniformTraffic(64, 64, 1.0), cycles=5, batch=0
            )


class TestChunkSizeInvariantRandomPriority:
    """Regression: chunked random-priority seeding is chunk-size independent.

    Cycle ``i`` draws its tie-break keys from child ``i`` of the master
    seed (spawned positionally), never from the shared traffic stream, so
    ``measure_acceptance(batch=16)`` and ``batch=64`` are bit-identical at
    equal seed — and so are different engines making identical per-message
    routing decisions.
    """

    def test_batched_bit_identical_across_chunk_sizes(self):
        p = EDNParams(16, 4, 4, 2)
        net = BatchedEDN(p, priority="random")
        traffic = UniformTraffic(p.num_inputs, p.num_outputs, 1.0)
        results = [
            measure_acceptance(net, traffic, cycles=64, seed=11, batch=batch)
            for batch in (8, 16, 64)
        ]
        for other in results[1:]:
            assert other.point == results[0].point
            assert other.blocked_by_stage == results[0].blocked_by_stage
            assert other.offered == results[0].offered

    def test_partial_final_chunk_agrees(self):
        p = EDNParams(16, 4, 4, 2)
        net = BatchedEDN(p, priority="random")
        traffic = UniformTraffic(p.num_inputs, p.num_outputs, 1.0)
        a = measure_acceptance(net, traffic, cycles=50, seed=4, batch=16)
        b = measure_acceptance(net, traffic, cycles=50, seed=4, batch=50)
        assert a.point == b.point

    def test_batched_and_per_cycle_router_agree(self):
        from repro.api.router import PerCycleRouter

        p = EDNParams(16, 4, 4, 2)
        traffic = UniformTraffic(p.num_inputs, p.num_outputs, 1.0)
        batched = measure_acceptance(
            BatchedEDN(p, priority="random"), traffic, cycles=32, seed=5, batch=8
        )
        looped = measure_acceptance(
            PerCycleRouter(VectorizedEDN(p, priority="random")),
            traffic,
            cycles=32,
            seed=5,
            batch=8,
        )
        assert batched.point == looped.point
        assert batched.blocked_by_stage == looped.blocked_by_stage

    def test_crossbar_random_priority_chunk_invariant(self):
        n = 64
        net = CrossbarNetwork(n, priority="random")
        traffic = UniformTraffic(n, n, 1.0)
        a = measure_acceptance(net, traffic, cycles=48, seed=9, batch=12)
        b = measure_acceptance(net, traffic, cycles=48, seed=9, batch=48)
        assert a.point == b.point
        assert a.blocked_by_stage == b.blocked_by_stage

    def test_label_priority_streams_untouched_by_fix(self):
        # Deterministic disciplines draw no routing randomness, so the
        # per-cycle stream spawner must never engage (traffic streams stay
        # bit-compatible with the historical seed path).
        p = EDNParams(16, 4, 4, 2)
        traffic = UniformTraffic(p.num_inputs, p.num_outputs, 1.0)
        label = measure_acceptance(BatchedEDN(p), traffic, cycles=32, seed=7, batch=8)
        random = measure_acceptance(
            BatchedEDN(p, priority="random"), traffic, cycles=32, seed=7, batch=8
        )
        # same seed + same chunking -> same demands -> same offered count
        assert label.offered == random.offered


class TestAdaptiveEarlyStopping:
    def _setup(self):
        p = EDNParams(16, 4, 4, 2)
        return BatchedEDN(p), UniformTraffic(p.num_inputs, p.num_outputs, 1.0)

    def test_stops_before_budget_when_converged(self):
        router, traffic = self._setup()
        measurement = measure_acceptance(
            router, traffic, cycles=5000, seed=0, rel_err=0.02
        )
        assert measurement.converged is True
        assert measurement.cycles < 5000
        assert measurement.budget == 5000
        assert measurement.target_rel_err == 0.02
        # The stopping promise: half-width within rel_err of the point.
        assert measurement.acceptance.halfwidth <= 0.02 * measurement.point

    def test_respects_budget_when_target_unreachable(self):
        router, traffic = self._setup()
        measurement = measure_acceptance(
            router, traffic, cycles=40, seed=0, rel_err=0.0001
        )
        assert measurement.cycles == 40
        assert measurement.converged is False

    def test_honors_min_cycles_floor(self):
        router, traffic = self._setup()
        measurement = measure_acceptance(
            router, traffic, cycles=5000, seed=0, rel_err=0.5, min_cycles=64, batch=16
        )
        assert measurement.cycles >= 64

    def test_reproducible(self):
        router, traffic = self._setup()
        a = measure_acceptance(router, traffic, cycles=2000, seed=3, rel_err=0.02, batch=16)
        b = measure_acceptance(router, traffic, cycles=2000, seed=3, rel_err=0.02, batch=16)
        assert a.cycles == b.cycles
        assert a.point == b.point

    def test_works_on_per_cycle_path(self):
        p = EDNParams(16, 4, 4, 2)
        measurement = measure_acceptance(
            VectorizedEDN(p),
            UniformTraffic(p.num_inputs, p.num_outputs, 1.0),
            cycles=3000,
            seed=1,
            batch=1,
            rel_err=0.02,
        )
        assert measurement.converged is True
        assert measurement.cycles < 3000

    def test_fixed_budget_reports_no_adaptive_fields(self):
        router, traffic = self._setup()
        measurement = measure_acceptance(router, traffic, cycles=30, seed=0)
        assert measurement.budget is None
        assert measurement.converged is None
        assert measurement.target_rel_err is None
        assert measurement.cycles == 30

    def test_rejects_bad_rel_err(self):
        router, traffic = self._setup()
        with pytest.raises(ValueError):
            measure_acceptance(router, traffic, cycles=10, rel_err=1.5)
        with pytest.raises(ValueError):
            measure_acceptance(router, traffic, cycles=10, rel_err=0.0)

    def test_config_carries_rel_err(self):
        from repro.api.spec import RunConfig

        router, traffic = self._setup()
        via_config = measure_acceptance(
            router, traffic, config=RunConfig(cycles=5000, seed=0, rel_err=0.02)
        )
        direct = measure_acceptance(
            router, traffic, cycles=5000, seed=0, rel_err=0.02
        )
        assert via_config.cycles == direct.cycles
        assert via_config.point == direct.point

    def test_adaptive_estimate_matches_fixed_distribution(self):
        # The early-stopped estimate is the same estimator on a prefix of
        # the same stream: at matched cycle counts it is identical.
        router, traffic = self._setup()
        adaptive = measure_acceptance(
            router, traffic, cycles=5000, seed=6, rel_err=0.02, batch=16
        )
        fixed = measure_acceptance(
            router, traffic, cycles=adaptive.cycles, seed=6, batch=16
        )
        assert adaptive.point == fixed.point


class TestRunConfigPrecedence:
    """The facade-wide rule: set config fields beat keyword arguments."""

    def test_config_fields_win_over_keywords(self):
        from repro.api.spec import RunConfig

        params = EDNParams(16, 4, 4, 2)
        traffic = UniformTraffic(64, 64, 1.0)
        router = BatchedEDN(params)
        via_config = measure_acceptance(
            router, traffic, cycles=5, seed=9, config=RunConfig(cycles=30, seed=1)
        )
        direct = measure_acceptance(router, traffic, cycles=30, seed=1)
        assert via_config.cycles == 30
        assert via_config.point == direct.point

    def test_keywords_fill_unset_config_fields(self):
        from repro.api.spec import RunConfig

        params = EDNParams(16, 4, 4, 2)
        traffic = UniformTraffic(64, 64, 1.0)
        router = BatchedEDN(params)
        partial = measure_acceptance(
            router, traffic, cycles=12, seed=4, config=RunConfig(batch=4)
        )
        direct = measure_acceptance(router, traffic, cycles=12, seed=4, batch=4)
        assert partial.cycles == 12
        assert partial.point == direct.point

    def test_simulator_measure_honors_config(self):
        from repro.api.spec import RunConfig
        from repro.simd.ra_edn import RAEDNSystem
        from repro.simd.simulator import RAEDNSimulator

        simulator = RAEDNSimulator(RAEDNSystem(4, 2, 1, 2))
        via_config = simulator.measure(runs=3, config=RunConfig(seed=11))
        direct = simulator.measure(runs=3, seed=11)
        assert via_config.cycles.mean == direct.cycles.mean
