"""Tests for closed-loop retrying sources (RetryPolicy, drive_closed_loop)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.registry import build_router
from repro.api.spec import NetworkSpec, RunConfig
from repro.core.exceptions import ConfigurationError
from repro.sim.closedloop import ClosedLoopMeasurement, RetryPolicy, drive_closed_loop
from repro.sim.montecarlo import measure_acceptance
from repro.sim.rng import make_rng
from repro.workloads.registry import make_traffic


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 8
        assert policy.backoff == 0.0 and policy.factor == 2.0

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4", RetryPolicy(4)),
            ("8:1", RetryPolicy(8, 1.0)),
            ("8:1:2", RetryPolicy(8, 1.0, 2.0)),
            ("16:0.5:1.5", RetryPolicy(16, 0.5, 1.5)),
        ],
    )
    def test_parse_grammar(self, text, expected):
        assert RetryPolicy.parse(text) == expected

    @pytest.mark.parametrize("bad", ["", "a", "4:b", "4:1:2:3", "0", "4:-1", "4:1:0.5"])
    def test_parse_rejects_bad_specs(self, bad):
        with pytest.raises(ConfigurationError):
            RetryPolicy.parse(bad)

    def test_label_round_trips(self):
        for text in ("4", "8:1:2", "16:0.5:1.5"):
            policy = RetryPolicy.parse(text)
            assert RetryPolicy.parse(policy.label) == policy

    def test_no_backoff_retries_immediately(self):
        policy = RetryPolicy(8)
        assert [policy.delay_after(k) for k in (1, 2, 5)] == [0, 0, 0]

    def test_exponential_backoff_doubles(self):
        policy = RetryPolicy(8, backoff=1.0, factor=2.0)
        assert [policy.delay_after(k) for k in (1, 2, 3, 4)] == [1, 2, 4, 8]


class TestDriveClosedLoop:
    def _run(self, spec, policy, *, cycles=200, seed=0, traffic="uniform", **kw):
        router = build_router(spec)
        return drive_closed_loop(
            router,
            make_traffic(traffic, router.n_inputs, router.n_outputs),
            policy,
            cycles=cycles,
            rng=make_rng(seed),
            **kw,
        )

    def test_measurement_contract(self):
        result = self._run(NetworkSpec.edn(4, 2, 2, 2), RetryPolicy(4))
        assert isinstance(result, ClosedLoopMeasurement)
        assert result.policy == RetryPolicy(4)
        assert result.cycles == 200
        assert 0 < result.acceptance.point <= 1
        assert result.attempts.point >= 1.0
        assert result.latency.point >= result.attempts.point - 1e-12
        assert result.delivered_messages > 0
        assert result.abandoned >= 0

    def test_attempts_bounded_by_policy(self):
        result = self._run(NetworkSpec.edn(4, 2, 2, 2), RetryPolicy(3))
        assert result.attempts.point <= 3.0

    def test_single_attempt_never_abandons_later(self):
        # max_attempts=1 abandons on first blocking: per-message attempts
        # are exactly 1 and latency exactly 1 for every delivery.
        result = self._run(NetworkSpec.edn(4, 2, 2, 2), RetryPolicy(1))
        assert result.attempts.point == pytest.approx(1.0)
        assert result.latency.point == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        a = self._run(NetworkSpec.edn(8, 2, 4, 2), RetryPolicy(6, 1.0), seed=5)
        b = self._run(NetworkSpec.edn(8, 2, 4, 2), RetryPolicy(6, 1.0), seed=5)
        assert a == b

    def test_abandoned_messages_appear_under_damage(self):
        # Kill a whole first-stage bucket: its sources exhaust attempts.
        from repro.core.faults import WireFault

        faults = tuple(WireFault(1, 0, w) for w in range(8))
        result = self._run(
            NetworkSpec.edn(8, 2, 4, 2, faults=faults), RetryPolicy(2), cycles=100
        )
        assert result.abandoned > 0

    def test_reference_router_outcome_contract(self):
        # The per-message reference engine reports outcomes, not arrays;
        # the driver must read deliveries from either contract.
        spec = NetworkSpec.edn(4, 2, 2, 2)
        router = build_router(spec, "reference")
        result = drive_closed_loop(
            router,
            make_traffic("uniform", router.n_inputs, router.n_outputs),
            RetryPolicy(4),
            cycles=50,
            rng=make_rng(0),
        )
        assert result.delivered_messages > 0

    def test_adaptive_stopping_respects_budget(self):
        result = self._run(
            NetworkSpec.edn(8, 2, 4, 2),
            RetryPolicy(4),
            cycles=5000,
            rel_err=0.05,
            min_cycles=32,
        )
        assert result.converged is True
        assert result.cycles < 5000
        assert result.budget == 5000


class TestMeasureAcceptanceRetry:
    def test_retry_keyword_switches_to_closed_loop(self):
        router = build_router(NetworkSpec.edn(4, 2, 2, 2))
        result = measure_acceptance(router, cycles=50, retry="4")
        assert isinstance(result, ClosedLoopMeasurement)
        assert result.policy == RetryPolicy(4)

    def test_config_retry_wins_over_keyword(self):
        router = build_router(NetworkSpec.edn(4, 2, 2, 2))
        config = RunConfig(cycles=50, retry="2")
        result = measure_acceptance(router, retry="6", config=config)
        assert result.policy == RetryPolicy(2)

    def test_open_loop_unchanged_without_retry(self):
        router = build_router(NetworkSpec.edn(4, 2, 2, 2))
        result = measure_acceptance(router, cycles=50)
        assert not isinstance(result, ClosedLoopMeasurement)

    def test_runconfig_canonicalizes_retry_strings(self):
        config = RunConfig(retry="8:1:2")
        assert config.retry == RetryPolicy(8, 1.0, 2.0)
        assert RunConfig(retry=RetryPolicy(4)).retry == RetryPolicy(4)

    def test_runconfig_rejects_bad_retry(self):
        with pytest.raises(ConfigurationError):
            RunConfig(retry="zero")
        with pytest.raises(ConfigurationError):
            RunConfig(retry=3.5)

    def test_closed_loop_retry_on_faulted_compiled_router(self):
        from repro.core.faults import WireFault

        spec = NetworkSpec.edn(8, 2, 4, 2, faults=(WireFault(1, 0, 0),))
        router = build_router(spec)
        result = measure_acceptance(router, cycles=80, retry="8:1:2", seed=3)
        assert isinstance(result, ClosedLoopMeasurement)
        assert 0 < result.acceptance.point <= 1


class TestRetryStats:
    def test_attempts_and_latency_ratios(self):
        from repro.sim.stats import RetryStats

        stats = RetryStats()
        stats.record_delivery(attempts=3, latency=5)
        stats.record_delivery(attempts=1, latency=1)
        assert stats.ratio == pytest.approx(2.0)
        assert stats.latency.ratio == pytest.approx(3.0)
        assert stats.delivered == 2

    def test_array_recording_matches_scalar(self):
        from repro.sim.stats import RetryStats

        scalar, arrays = RetryStats(), RetryStats()
        attempts, latencies = [2, 1, 4], [3, 1, 9]
        for a, t in zip(attempts, latencies):
            scalar.record_delivery(a, t)
        arrays.record_deliveries(np.array(attempts), np.array(latencies))
        assert scalar.ratio == pytest.approx(arrays.ratio)
        assert scalar.latency.ratio == pytest.approx(arrays.latency.ratio)
        assert scalar.delivered == arrays.delivered

    def test_abandoned_counter(self):
        from repro.sim.stats import RetryStats

        stats = RetryStats()
        stats.record_abandoned()
        stats.record_abandoned(4)
        assert stats.abandoned == 5
        assert stats.delivered == 0
