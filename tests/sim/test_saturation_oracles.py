"""Analytic oracles for the saturation experiment — no golden numbers.

Two results from queueing theory pin the buffered core's saturation
behaviour to values derived outside this codebase:

* **Karol–Hluchyj HOL bound** — an input-queued ``N x N`` crossbar with
  saturated inputs and uniform destinations delivers ``2 - sqrt(2)``
  ~ 0.586 packets per output per cycle as ``N -> inf`` (head-of-line
  blocking; Karol, Hluchyj & Morgan 1987).  A single-stage graph with
  depth-1 FIFOs at offered rate 1.0 *is* that model, so its measured
  throughput must land on the constant (finite ``N`` sits slightly
  above it).
* **Buffering dominates retry** — a bufferless closed-loop source
  re-offers a blocked request from the edge, losing the partial progress
  a FIFO would have banked; at saturation the buffered network's
  delivered throughput must therefore bound the closed-loop retry
  delivery rate from above, and tighten as depth grows.

Plus unit coverage of the knee detector the ``saturation`` experiment
reports from.
"""

from __future__ import annotations

import math

import pytest

from repro.api.registry import build_router
from repro.api.spec import NetworkSpec
from repro.core.config import EDNParams
from repro.experiments.saturation import detect_knee
from repro.sim.buffered import measure_buffered
from repro.sim.closedloop import RetryPolicy, drive_closed_loop
from repro.sim.rng import make_rng
from repro.sim.stagegraph import GraphStage, StageGraph, edn_graph
from repro.workloads.registry import make_traffic

KAROL_HLUCHYJ = 2.0 - math.sqrt(2.0)  # ~ 0.5858


class TestCrossbarHOLBound:
    @pytest.mark.parametrize("priority", ["label", "random"])
    def test_depth1_crossbar_saturates_at_two_minus_sqrt2(self, priority):
        # A single 64x64 stage with depth-1 input FIFOs at rate 1.0 is
        # exactly the saturated HOL model: every queue always holds a
        # fresh uniform head, blocked heads persist and retry.
        xbar = StageGraph("xbar:64", 64, 64, (GraphStage(64, 64, 1, 0),))
        m = measure_buffered(
            xbar,
            traffic="uniform:1",
            depth=1,
            priority=priority,
            cycles=2000,
            warmup=500,
            seed=0,
        )
        # Finite N = 64 sits a hair above the asymptotic constant.
        assert m.throughput == pytest.approx(KAROL_HLUCHYJ, abs=0.035)
        assert m.throughput >= KAROL_HLUCHYJ - 0.02

    def test_light_load_crossbar_is_lossless(self):
        xbar = StageGraph("xbar:64", 64, 64, (GraphStage(64, 64, 1, 0),))
        m = measure_buffered(
            xbar, traffic="uniform:0.2", depth=1, cycles=1500, warmup=300, seed=1
        )
        assert m.throughput == pytest.approx(0.2, abs=0.02)


class TestBufferingDominatesRetry:
    def _closed_loop_throughput(self, cycles=1500, seed=0):
        router = build_router(NetworkSpec.edn(16, 4, 4, 2))
        result = drive_closed_loop(
            router,
            make_traffic("uniform", router.n_inputs, router.n_outputs),
            RetryPolicy(64),
            cycles=cycles,
            rng=make_rng(seed),
        )
        return result.delivered_messages / (cycles * router.n_outputs)

    def test_buffered_saturation_bounds_closed_loop_from_above(self):
        closed = self._closed_loop_throughput()
        graph = edn_graph(EDNParams(16, 4, 4, 2))
        throughputs = {}
        for depth in (1, 2, 4):
            throughputs[depth] = measure_buffered(
                graph,
                traffic="uniform:1",
                depth=depth,
                cycles=1500,
                warmup=400,
                seed=0,
            ).throughput
        # Even a single buffer per wire beats edge retry, and the margin
        # widens with depth (monotone in this sweep).
        assert throughputs[1] > closed
        assert throughputs[1] < throughputs[2] < throughputs[4]


class TestDetectKnee:
    def test_clean_knee(self):
        rates = [0.1, 0.2, 0.3, 0.4, 0.5]
        # Linear to 0.3, then flat: the first collapsing segment ends at 0.4.
        thr = [0.1, 0.2, 0.3, 0.31, 0.315]
        assert detect_knee(rates, thr) == pytest.approx(0.4)

    def test_never_saturates(self):
        rates = [0.2, 0.4, 0.6, 0.8]
        thr = [0.2, 0.4, 0.6, 0.8]
        assert detect_knee(rates, thr) == pytest.approx(0.8)

    def test_flat_from_the_start(self):
        rates = [0.2, 0.4, 0.6]
        assert detect_knee(rates, [0.5, 0.5, 0.5]) == pytest.approx(0.2)

    def test_threshold_controls_sensitivity(self):
        rates = [0.1, 0.2, 0.3, 0.4]
        thr = [0.1, 0.2, 0.26, 0.32]  # later slopes = 0.6x the first
        # At threshold 0.5 the 0.6x segments survive: no knee in sweep.
        assert detect_knee(rates, thr, threshold=0.5) == pytest.approx(0.4)
        # Tightened to 0.7 the first 0.6x segment trips the detector.
        assert detect_knee(rates, thr, threshold=0.7) == pytest.approx(0.3)

    def test_degenerate_inputs(self):
        assert detect_knee([0.5], [0.3]) == pytest.approx(0.5)
        assert detect_knee([], []) == 0.0
        with pytest.raises(ValueError):
            detect_knee([0.1, 0.2], [0.1])
