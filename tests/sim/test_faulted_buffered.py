"""Faults on the buffered path: bit-identity, conservation, drop accounting.

The robustness contract for buffered routing under damage:

* **bit-identity** — a faulted :class:`CompiledStageRouter` with FIFOs
  agrees cycle for cycle with the independent per-packet
  :class:`BufferedStageReference` across every topology family, priority
  discipline, depth, and seed — including mid-run fault swaps via
  ``apply_faults``;
* **conservation** — every faulty buffered run satisfies
  ``injected == delivered + in_flight + dropped`` exactly (at
  ``warmup=0``; the measured-window identity is the whole-run one);
* **drop semantics** — a *static* faulted run never drops (dead wires
  refuse grants: pure back-pressure), drops happen only when
  ``apply_faults`` kills a wire with packets already queued downstream
  of it, and the count is exact and idempotent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.core.faults import WireFault, random_graph_faults
from repro.sim.batched import CompiledStageRouter
from repro.sim.buffered import measure_buffered
from repro.sim.rng import make_rng
from repro.sim.stagegraph import (
    BufferedStageReference,
    delta_graph,
    dilated_graph,
    edn_graph,
    omega_graph,
)

FAMILIES = [
    ("edn", edn_graph(EDNParams(4, 2, 2, 2))),
    ("delta", delta_graph(2, 2, 3)),
    ("omega", omega_graph(8)),
    ("dilated", dilated_graph(2, 2, 3, d=2)),
]


def _demand_stream(n_inputs, n_outputs, cycles, rate, seed):
    rng = np.random.default_rng(seed + 977)
    dests = rng.integers(0, n_outputs, size=(cycles, n_inputs))
    live = rng.random((cycles, n_inputs)) < rate
    return np.where(live, dests, -1)


def _some_faults(graph, seed, rate=0.15):
    return random_graph_faults(
        graph, rate, np.random.default_rng(seed + 4242)
    ).canonical()


def _assert_conserved(router, injected, delivered):
    """Whole-run ledger: injected == delivered + queued + dropped."""
    assert injected == delivered + router.total_occupancy() + router.dropped_packets


class TestFaultedBitIdentity:
    @pytest.mark.parametrize("family,graph", FAMILIES, ids=[f[0] for f in FAMILIES])
    @pytest.mark.parametrize("priority", ["label", "random"])
    @pytest.mark.parametrize("depth", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reference_matches_compiled_under_faults(
        self, family, graph, priority, depth, seed
    ):
        cycles = 40
        faults = _some_faults(graph, seed)
        demands = _demand_stream(graph.n_inputs, graph.n_outputs, cycles, 0.7, seed)
        reference = BufferedStageReference(
            graph, depth=depth, priority=priority, faults=faults
        )
        compiled = CompiledStageRouter(
            graph, priority=priority, buffer_depth=depth, faults=faults
        )
        rng_ref, rng_cmp = make_rng(seed), make_rng(seed)
        injected = delivered = 0
        for cycle in range(cycles):
            a = reference.step(demands[cycle], rng_ref)
            b = compiled.step(demands[cycle], rng_cmp)
            np.testing.assert_array_equal(a.outputs, b.outputs)
            np.testing.assert_array_equal(a.latencies, b.latencies)
            assert (a.offered, a.injected) == (b.offered, b.injected)
            assert reference.total_occupancy() == compiled.total_occupancy()
            injected += a.injected
            delivered += a.delivered
        # Conservation holds on every faulty run, both engines.
        _assert_conserved(reference, injected, delivered)
        _assert_conserved(compiled, injected, delivered)
        # Static damage never drops: dead wires refuse, they do not eat.
        assert reference.dropped_packets == compiled.dropped_packets == 0

    @pytest.mark.parametrize("family,graph", FAMILIES, ids=[f[0] for f in FAMILIES])
    def test_mid_run_fault_swap_stays_bit_identical(self, family, graph):
        cycles, depth, seed = 30, 2, 0
        demands = _demand_stream(graph.n_inputs, graph.n_outputs, 2 * cycles, 0.9, seed)
        reference = BufferedStageReference(graph, depth=depth)
        compiled = CompiledStageRouter(graph, buffer_depth=depth)
        rng_ref, rng_cmp = make_rng(seed), make_rng(seed)
        injected = delivered = 0
        for cycle in range(cycles):
            a = reference.step(demands[cycle], rng_ref)
            compiled.step(demands[cycle], rng_cmp)
            injected += a.injected
            delivered += a.delivered
        faults = _some_faults(graph, seed, rate=0.2)
        dropped_ref = reference.apply_faults(faults)
        dropped_cmp = compiled.apply_faults(faults)
        assert dropped_ref == dropped_cmp
        # Idempotent: re-applying the same pattern finds nothing to drop.
        assert reference.apply_faults(faults) == 0
        assert compiled.apply_faults(faults) == 0
        for cycle in range(cycles, 2 * cycles):
            a = reference.step(demands[cycle], rng_ref)
            b = compiled.step(demands[cycle], rng_cmp)
            np.testing.assert_array_equal(a.outputs, b.outputs)
            np.testing.assert_array_equal(a.latencies, b.latencies)
            assert reference.total_occupancy() == compiled.total_occupancy()
            injected += a.injected
            delivered += a.delivered
        assert reference.dropped_packets == compiled.dropped_packets
        _assert_conserved(reference, injected, delivered)
        _assert_conserved(compiled, injected, delivered)

    def test_fault_recovery_swaps_back(self):
        # Healing (apply_faults(())) restores full service on both engines.
        graph = edn_graph(EDNParams(4, 2, 2, 2))
        faults = _some_faults(graph, 7)
        reference = BufferedStageReference(graph, depth=2, faults=faults)
        compiled = CompiledStageRouter(graph, buffer_depth=2, faults=faults)
        demands = _demand_stream(graph.n_inputs, graph.n_outputs, 40, 0.8, 7)
        rng_ref, rng_cmp = make_rng(7), make_rng(7)
        injected = delivered = 0
        for cycle in range(20):
            a = reference.step(demands[cycle], rng_ref)
            compiled.step(demands[cycle], rng_cmp)
            injected += a.injected
            delivered += a.delivered
        assert reference.apply_faults(()) == compiled.apply_faults(()) == 0
        assert reference.faults == compiled.faults == ()
        for cycle in range(20, 40):
            a = reference.step(demands[cycle], rng_ref)
            b = compiled.step(demands[cycle], rng_cmp)
            np.testing.assert_array_equal(a.outputs, b.outputs)
            injected += a.injected
            delivered += a.delivered
        _assert_conserved(reference, injected, delivered)
        _assert_conserved(compiled, injected, delivered)


class TestConservationProperty:
    """injected == accepted(delivered) + queued + dropped, always."""

    @pytest.mark.parametrize("family,graph", FAMILIES, ids=[f[0] for f in FAMILIES])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_measure_buffered_conserves_under_faults(self, family, graph, seed):
        faults = _some_faults(graph, seed)
        m = measure_buffered(
            graph, traffic="uniform:0.9", depth=2, cycles=120, warmup=0,
            seed=seed, faults=faults,
        )
        assert m.faults == faults
        assert m.injected == m.delivered + m.in_flight + m.dropped
        assert 0 <= m.injected <= m.offered
        assert m.dropped == 0  # static faults: back-pressure, not loss

    def test_engines_agree_on_faulty_measurements(self):
        graph = edn_graph(EDNParams(4, 2, 2, 2))
        faults = _some_faults(graph, 5)
        kw = dict(
            traffic="uniform:0.8", depth=2, cycles=120, warmup=30, seed=3,
            faults=faults,
        )
        fast = measure_buffered(graph, engine="compiled", **kw)
        slow = measure_buffered(graph, engine="reference", **kw)
        assert fast == slow


class TestDropAccounting:
    def test_drops_count_exactly_the_stranded_packets(self):
        # Saturate a single-path delta network so FIFOs fill, then kill
        # every stage-1 wire: the packets queued downstream of dead wires
        # are dropped, and the ledger matches the occupancy they held.
        graph = delta_graph(2, 2, 3)
        compiled = CompiledStageRouter(graph, buffer_depth=4)
        reference = BufferedStageReference(graph, depth=4)
        demands = _demand_stream(graph.n_inputs, graph.n_outputs, 20, 1.0, 11)
        rng_a, rng_b = make_rng(11), make_rng(11)
        injected = delivered = 0
        for cycle in range(20):
            a = compiled.step(demands[cycle], rng_a)
            reference.step(demands[cycle], rng_b)
            injected += a.injected
            delivered += a.delivered
        before = compiled.total_occupancy()
        assert before > 0
        stage = graph.stages[0]
        faults = tuple(
            WireFault(1, switch, local)
            for switch in range(graph.stage_widths[0] // stage.fan_in)
            for local in range(stage.bucket_wires)
        )
        dropped_cmp = compiled.apply_faults(faults)
        dropped_ref = reference.apply_faults(faults)
        assert dropped_cmp == dropped_ref > 0
        assert compiled.total_occupancy() == reference.total_occupancy()
        assert compiled.dropped_packets == dropped_cmp
        _assert_conserved(compiled, injected, delivered)
        _assert_conserved(reference, injected, delivered)

    def test_reset_buffers_clears_drop_ledger(self):
        graph = delta_graph(2, 2, 3)
        compiled = CompiledStageRouter(graph, buffer_depth=4)
        demands = _demand_stream(graph.n_inputs, graph.n_outputs, 20, 1.0, 11)
        rng = make_rng(11)
        for cycle in range(20):
            compiled.step(demands[cycle], rng)
        compiled.apply_faults((WireFault(1, 0, 0),))
        compiled.reset_buffers()
        assert compiled.dropped_packets == 0
        assert compiled.total_occupancy() == 0


class TestValidation:
    def test_invalid_faults_rejected_up_front_compiled(self):
        graph = edn_graph(EDNParams(4, 2, 2, 2))
        with pytest.raises(ConfigurationError):
            CompiledStageRouter(
                graph, buffer_depth=2, faults=(WireFault(99, 0, 0),)
            )

    def test_invalid_faults_rejected_up_front_reference(self):
        graph = edn_graph(EDNParams(4, 2, 2, 2))
        with pytest.raises(ConfigurationError):
            BufferedStageReference(graph, depth=2, faults=(WireFault(99, 0, 0),))
        router = BufferedStageReference(graph, depth=2)
        with pytest.raises(ConfigurationError):
            router.apply_faults((WireFault(1, 0, 999),))

    @pytest.mark.parametrize("family,graph", FAMILIES, ids=[f[0] for f in FAMILIES])
    def test_validation_covers_all_families(self, family, graph):
        # Stage index past the last column is invalid everywhere.
        bad = (WireFault(graph.num_stages + 1, 0, 0),)
        with pytest.raises(ConfigurationError):
            CompiledStageRouter(graph, buffer_depth=1, faults=bad)
