"""Up-front demand-matrix validation across every batch entry point.

The batched routers share one validator
(:func:`repro.sim.batched.validate_demand_matrix`); a malformed matrix —
wrong dtype, wrong shape, out-of-range destinations — must fail *before*
any routing starts, with a message that names the problem, instead of a
numpy cast error (or a silent float truncation) deep inside a stage loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import NetworkSpec, build_router
from repro.baselines.crossbar_network import CrossbarNetwork
from repro.core.exceptions import LabelError
from repro.sim.batched import CompiledStageRouter, validate_demand_matrix
from repro.sim.stagegraph import delta_graph


def batch_routers():
    """One router per batch implementation family."""
    return [
        pytest.param(CrossbarNetwork(8), id="crossbar-native"),
        pytest.param(CompiledStageRouter(delta_graph(2, 2, 3)), id="compiled-graph"),
        pytest.param(build_router(NetworkSpec.edn(4, 2, 2, 2)), id="batched-edn"),
        pytest.param(
            build_router(NetworkSpec.parse("delta:8,2"), "vectorized"),
            id="batch-by-loop",
        ),
        pytest.param(build_router(NetworkSpec.clos(2, 4)), id="rearrangeable-loop"),
    ]


class TestDtypeRejection:
    @pytest.mark.parametrize("router", batch_routers())
    def test_float_matrix_rejected_with_clear_message(self, router):
        demands = np.zeros((3, router.n_inputs), dtype=np.float64)
        with pytest.raises(LabelError, match="integer dtype"):
            router.route_batch(demands)

    @pytest.mark.parametrize("router", batch_routers())
    def test_object_matrix_rejected(self, router):
        demands = np.full((2, router.n_inputs), None, dtype=object)
        with pytest.raises(LabelError, match="integer dtype"):
            router.route_batch(demands)

    def test_integer_lists_still_accepted(self):
        router = CrossbarNetwork(4)
        result = router.route_batch([[0, 1, 2, 3], [3, 3, -1, -1]])
        assert result.num_delivered == 5

    def test_narrow_integer_dtypes_accepted(self):
        router = CompiledStageRouter(delta_graph(2, 2, 2))
        demands = np.full((2, 4), -1, dtype=np.int8)
        demands[:, 0] = 3  # one lone message per cycle always lands
        result = router.route_batch(demands)
        assert result.num_delivered == 2
        assert (result.output[:, 0] == 3).all()


class TestShapeRejection:
    @pytest.mark.parametrize("router", batch_routers())
    def test_wrong_width_rejected(self, router):
        demands = np.zeros((3, router.n_inputs + 1), dtype=np.int64)
        with pytest.raises(LabelError, match="expected demand matrix of shape"):
            router.route_batch(demands)

    @pytest.mark.parametrize("router", batch_routers())
    def test_one_dimensional_matrix_rejected(self, router):
        demands = np.zeros(router.n_inputs, dtype=np.int64)
        with pytest.raises(LabelError, match="expected demand matrix of shape"):
            router.route_batch(demands)


class TestBoundsRejection:
    @pytest.mark.parametrize("router", batch_routers())
    def test_out_of_range_destination_rejected(self, router):
        demands = np.zeros((2, router.n_inputs), dtype=np.int64)
        demands[1, 0] = router.n_outputs
        with pytest.raises(LabelError, match="out-of-range"):
            router.route_batch(demands)

    @pytest.mark.parametrize("router", batch_routers())
    def test_below_idle_rejected(self, router):
        demands = np.full((2, router.n_inputs), -1, dtype=np.int64)
        demands[0, 0] = -2
        with pytest.raises(LabelError, match="out-of-range"):
            router.route_batch(demands)


class TestValidationHappensUpFront:
    def test_no_routing_runs_before_validation(self):
        """The loop adapter must reject the matrix before touching ``route``."""
        from repro.api.router import PerCycleRouter

        class Exploding:
            n_inputs = 4
            n_outputs = 4

            def route(self, dests, rng=None):  # pragma: no cover - must not run
                raise AssertionError("route() was called on an invalid matrix")

        router = PerCycleRouter(Exploding())
        with pytest.raises(LabelError):
            router.route_batch(np.zeros((2, 4), dtype=np.float32))
        with pytest.raises(LabelError):
            router.route_batch(np.zeros((2, 5), dtype=np.int64))

    def test_validator_returns_canonical_int64(self):
        dests, flat, live = validate_demand_matrix(
            np.array([[1, -1], [0, 1]], dtype=np.int16), 2, 2
        )
        assert dests.dtype == np.int64 and dests.flags.c_contiguous
        assert flat.shape == (4,)
        assert live.tolist() == [True, False, True, True]
