"""Bit-identity of the compiled faulted kernels against the references.

The fault masks are lowered into :class:`StagePlan` tables and executed
by three compiled kernels (dense, counts-only, sparse random-priority);
:class:`StageGraphReference` builds per-bucket live lists independently,
and :class:`FaultyEDNetwork` implements the grant semantics per message.
Every pair must agree wire-for-wire on every family, priority, seed, and
batch size — these tests are the contract that lets the Monte-Carlo
harness run damaged fabrics on the fast path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EDNParams
from repro.core.faults import FaultSet, FaultyEDNetwork, WireFault, random_graph_faults
from repro.sim.batched import CompiledStageRouter
from repro.sim.plan import stage_plan_for
from repro.sim.rng import make_rng, spawn_keys
from repro.sim.stagegraph import (
    StageGraphReference,
    delta_graph,
    dilated_graph,
    edn_graph,
    omega_graph,
)

IDLE = -1

FAMILIES = [
    ("edn", lambda: edn_graph(EDNParams(8, 2, 4, 2))),
    ("delta", lambda: delta_graph(4, 4, 3)),
    ("omega", lambda: omega_graph(32)),
    ("dilated", lambda: dilated_graph(4, 4, 2, 2)),
]


def _demands(graph, batch, seed, rate=0.9):
    rng = make_rng(seed)
    dests = rng.integers(0, graph.n_outputs, size=(batch, graph.n_inputs))
    dests[rng.random((batch, graph.n_inputs)) > rate] = IDLE
    return dests


def _draw_faults(graph, seed, rate=0.06):
    faults = random_graph_faults(graph, rate, make_rng(seed)).canonical()
    if not faults:  # tiny graphs can draw empty; pin one interior wire
        faults = (WireFault(1, 0, 0),)
    return faults


@pytest.mark.parametrize("family,build", FAMILIES, ids=[f[0] for f in FAMILIES])
@pytest.mark.parametrize("priority", ["label", "random"])
@pytest.mark.parametrize("batch", [1, 7, 32])
def test_compiled_matches_stagegraph_reference(family, build, priority, batch):
    graph = build()
    faults = _draw_faults(graph, seed=3)
    compiled = CompiledStageRouter(graph, priority=priority, faults=faults)
    reference = StageGraphReference(graph, priority=priority, faults=faults)
    for seed in (0, 11):
        dests = _demands(graph, batch, seed)
        # One tie-break generator per cycle: route_batch with a list of
        # generators matches route(dests[i], rng_i) bit for bit.
        keys = spawn_keys(seed, batch)
        got = compiled.route_batch(dests, [make_rng(key) for key in keys])
        for i in range(batch):
            want = reference.route(dests[i], make_rng(keys[i]))
            np.testing.assert_array_equal(got.output[i], want.output)
            np.testing.assert_array_equal(got.blocked_stage[i], want.blocked_stage)


@pytest.mark.parametrize("family,build", FAMILIES, ids=[f[0] for f in FAMILIES])
@pytest.mark.parametrize("priority", ["label", "random"])
def test_counts_kernel_matches_dense_kernel(family, build, priority):
    graph = build()
    faults = _draw_faults(graph, seed=5)
    router = CompiledStageRouter(graph, priority=priority, faults=faults)
    dests = _demands(graph, 16, seed=2)
    dense = router.route_batch(dests, make_rng(9))
    counts = router.route_batch_counts(dests, make_rng(9))
    np.testing.assert_array_equal(
        (dense.output != IDLE).sum(axis=1), counts.delivered_per_cycle
    )
    np.testing.assert_array_equal(
        (dests != IDLE).sum(axis=1), counts.offered_per_cycle
    )


class TestAgainstFaultyEDNetwork:
    """Per-message reference semantics, including crossbar-column faults."""

    PARAMS = EDNParams(8, 2, 4, 2)

    @pytest.mark.parametrize("seed", [0, 4, 21])
    @pytest.mark.parametrize("batch", [1, 5, 24])
    def test_bit_identical_outcomes(self, seed, batch):
        params = self.PARAMS
        graph = edn_graph(params)
        faults = _draw_faults(graph, seed=seed + 100)
        compiled = CompiledStageRouter(graph, faults=faults)
        network = FaultyEDNetwork(params, FaultSet(faults))
        dests = _demands(graph, batch, seed)
        got = compiled.route_batch(dests)
        for i, row in enumerate(dests):
            result = network.route_destinations(
                {int(s): int(d) for s, d in enumerate(row) if d != IDLE}
            )
            for outcome in result.outcomes:
                s = outcome.message.source
                if outcome.delivered:
                    assert got.output[i, s] == outcome.output
                    assert got.blocked_stage[i, s] == 0
                else:
                    assert got.output[i, s] == IDLE
                    assert got.blocked_stage[i, s] == outcome.blocked_stage

    def test_crossbar_column_fault(self):
        # A dead wire in the final c x c crossbar column blocks at stage
        # l + 1; the compiled plan masks it with the same stage index.
        params = self.PARAMS
        graph = edn_graph(params)
        faults = (WireFault(params.l + 1, 0, 0), WireFault(params.l + 1, 1, 3))
        compiled = CompiledStageRouter(graph, faults=faults)
        network = FaultyEDNetwork(params, FaultSet(faults))
        dests = _demands(graph, 12, seed=6, rate=1.0)
        got = compiled.route_batch(dests)
        blocked_at_crossbar = 0
        for i, row in enumerate(dests):
            result = network.route_destinations(
                {int(s): int(d) for s, d in enumerate(row)}
            )
            for outcome in result.outcomes:
                s = outcome.message.source
                expected = 0 if outcome.delivered else outcome.blocked_stage
                assert got.blocked_stage[i, s] == expected
                if expected == params.l + 1:
                    blocked_at_crossbar += 1
        assert blocked_at_crossbar > 0  # the fault actually bit


class TestFaultedPlanCache:
    def test_fault_sets_key_distinct_plans(self):
        graph = delta_graph(4, 4, 2)
        pristine = stage_plan_for(graph, "label")
        faulted = stage_plan_for(graph, "label", (WireFault(1, 0, 0),))
        assert pristine is not faulted
        assert faulted.faults == (WireFault(1, 0, 0),)
        assert pristine.faults == ()

    def test_same_faults_share_one_plan(self):
        graph = delta_graph(4, 4, 2)
        faults = (WireFault(2, 1, 0), WireFault(1, 0, 3))
        a = stage_plan_for(graph, "label", faults)
        b = stage_plan_for(graph, "label", tuple(reversed(faults)))
        assert a is b  # canonicalized before keying

    def test_routers_with_same_faults_share_plan(self):
        graph = omega_graph(16)
        faults = (WireFault(1, 2, 0),)
        a = CompiledStageRouter(graph, faults=faults)
        b = CompiledStageRouter(graph, faults=faults)
        assert a._plan is b._plan
