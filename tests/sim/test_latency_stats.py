"""Property suite for streaming latency histograms (``LatencyStats``).

Pins the three contracts the latency pipeline rests on:

* **exactness** — integer unit bins make mean and percentiles exact, and
  :meth:`LatencyStats.merge` is order-independent and equal to
  single-stream accumulation (the shard-aggregation invariant used by
  ``ParallelSweep`` and ``repro.serve``);
* **physics** — Little's law ties the buffered core's three measured
  quantities together: mean total occupancy ~= delivery rate x mean
  latency in steady state, across depths, rates, and workloads;
* **shape** — percentiles are monotone in the quantile and payload
  round-trips are lossless.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EDNParams
from repro.sim.buffered import measure_buffered
from repro.sim.stagegraph import delta_graph, edn_graph
from repro.sim.stats import LatencyStats, RatioStats, RetryStats


class TestExactness:
    def test_mean_and_percentiles_match_numpy(self, rng):
        data = rng.integers(0, 400, size=5000)
        acc = LatencyStats()
        acc.record(data)
        assert acc.count == data.size
        assert acc.mean == pytest.approx(float(np.mean(data)))
        sorted_data = np.sort(data)
        for q, value in ((0.5, acc.p50), (0.95, acc.p95), (0.99, acc.p99)):
            # ceil(q*n)-th order statistic, 1-indexed.
            k = int(np.ceil(q * data.size))
            assert value == int(sorted_data[k - 1])

    def test_record_one_equals_record(self, rng):
        data = rng.integers(0, 50, size=200)
        bulk, single = LatencyStats(), LatencyStats()
        bulk.record(data)
        for v in data:
            single.record_one(int(v))
        assert bulk.count == single.count
        assert bulk.mean == pytest.approx(single.mean)
        assert (bulk.p50, bulk.p95, bulk.p99) == (single.p50, single.p95, single.p99)

    def test_empty_histogram(self):
        acc = LatencyStats()
        assert acc.count == 0
        assert acc.mean == 0.0
        assert acc.p50 == 0 and acc.p99 == 0

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LatencyStats().record(np.array([3, -1]))
        with pytest.raises(ValueError):
            LatencyStats().record_one(-2)

    def test_overflow_bin_reports_bound(self):
        acc = LatencyStats(bound=16)
        acc.record(np.array([1, 2, 1000, 2000]))
        # Percentiles past the overflow mass report the bound — a
        # conservative floor, never an overstatement.
        assert acc.p99 == 16
        # The mean rides on the raw sums, not the clipped bins.
        assert acc.mean == pytest.approx((1 + 2 + 1000 + 2000) / 4)


class TestMerge:
    def _chunks(self, rng, n_chunks=5):
        return [rng.integers(0, 300, size=rng.integers(1, 400)) for _ in range(n_chunks)]

    def test_merge_equals_single_stream(self, rng):
        chunks = self._chunks(rng)
        merged = LatencyStats()
        for chunk in chunks:
            shard = LatencyStats()
            shard.record(chunk)
            merged.merge(shard)
        single = LatencyStats()
        single.record(np.concatenate(chunks))
        assert merged.count == single.count
        assert merged.mean == pytest.approx(single.mean)
        np.testing.assert_array_equal(merged._counts, single._counts)
        assert merged.confidence_interval().halfwidth == pytest.approx(
            single.confidence_interval().halfwidth, rel=1e-9
        )

    def test_merge_is_order_independent(self, rng):
        chunks = self._chunks(rng)
        forward, backward = LatencyStats(), LatencyStats()
        for chunk in chunks:
            shard = LatencyStats()
            shard.record(chunk)
            forward.merge(shard)
        for chunk in reversed(chunks):
            shard = LatencyStats()
            shard.record(chunk)
            backward.merge(shard)
        assert forward.count == backward.count
        assert forward.mean == pytest.approx(backward.mean)
        np.testing.assert_array_equal(forward._counts, backward._counts)
        assert (forward.p50, forward.p95, forward.p99) == (
            backward.p50,
            backward.p95,
            backward.p99,
        )

    def test_merge_empty_is_identity(self):
        acc = LatencyStats()
        acc.record(np.array([4, 7]))
        acc.merge(LatencyStats())
        assert acc.count == 2 and acc.p50 == 4

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            LatencyStats(bound=8).merge(LatencyStats(bound=16))
        with pytest.raises(TypeError):
            LatencyStats().merge(RatioStats())

    def test_ratio_stats_merge_matches_single_stream(self, rng):
        nums = rng.random((3, 100)) * 5
        dens = rng.random((3, 100)) * 5 + 0.1
        merged = RatioStats()
        for n, d in zip(nums, dens):
            shard = RatioStats()
            shard.push_many(n, d)
            merged.merge(shard)
        single = RatioStats()
        single.push_many(nums.ravel(), dens.ravel())
        assert merged.ratio == pytest.approx(single.ratio)
        assert merged.confidence_interval().halfwidth == pytest.approx(
            single.confidence_interval().halfwidth, rel=1e-9
        )


class TestPercentileShape:
    def test_percentiles_monotone(self, rng):
        acc = LatencyStats()
        acc.record(rng.integers(0, 1000, size=3000))
        quantiles = [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]
        values = [acc.percentile(q) for q in quantiles]
        assert values == sorted(values)
        assert acc.p50 <= acc.p95 <= acc.p99

    def test_payload_round_trip(self, rng):
        acc = LatencyStats(bound=512)
        acc.record(rng.integers(0, 600, size=800))
        clone = LatencyStats.from_payload(acc.to_payload())
        assert clone.bound == acc.bound
        assert clone.count == acc.count
        assert clone.mean == pytest.approx(acc.mean)
        assert (clone.p50, clone.p95, clone.p99) == (acc.p50, acc.p95, acc.p99)
        np.testing.assert_array_equal(clone._counts, acc._counts)

    def test_retry_stats_expose_histogram(self):
        stats = RetryStats()
        stats.record_delivery(attempts=1, latency=3)
        stats.record_deliveries(
            attempts=np.array([2, 2]), latencies=np.array([5, 9])
        )
        assert isinstance(stats.latency, LatencyStats)
        assert stats.latency.count == 3
        assert stats.latency.p50 == 5


class TestLittlesLaw:
    """Mean occupancy ~= delivery rate x mean latency on buffered runs.

    Little's law holds exactly in expectation for any stationary queueing
    system; on a finite run the two sides differ by edge effects (packets
    in flight at the boundaries) of order ``in_flight / cycles``, so
    tolerances scale with load.  Latency here counts cycles *queued*
    (min = stage count), and occupancy samples at cycle end, which is the
    matching time-average.
    """

    @pytest.mark.parametrize(
        "traffic,depth,rel",
        [
            ("uniform:0.3", 2, 0.06),
            ("uniform:0.6", 2, 0.06),
            ("uniform:1", 1, 0.08),
            ("uniform:1", 4, 0.10),
            # Mild hotspot: 64 x 0.5 x 0.02 = 0.64 packets/cycle at the hot
            # output keeps the hot queue stable (stationarity is what
            # Little's law needs; a saturating hotspot never converges).
            ("hotspot:0.02,rate=0.5", 2, 0.08),
            ("bitrev:rate=0.7", 2, 0.06),
        ],
    )
    def test_edn_buffered_runs(self, traffic, depth, rel):
        m = measure_buffered(
            edn_graph(EDNParams(16, 4, 4, 2)),
            traffic=traffic,
            depth=depth,
            cycles=2500,
            warmup=500,
            seed=0,
        )
        assert m.delivered > 0
        expected = m.delivery_rate * m.mean_latency
        assert m.total_occupancy == pytest.approx(expected, rel=rel, abs=0.5)

    def test_delta_family_too(self):
        m = measure_buffered(
            delta_graph(4, 4, 3),
            traffic="uniform:0.5",
            depth=2,
            cycles=2500,
            warmup=500,
            seed=1,
        )
        expected = m.delivery_rate * m.mean_latency
        assert m.total_occupancy == pytest.approx(expected, rel=0.06, abs=0.5)
