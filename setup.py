"""Setup shim for offline legacy editable installs (``pip install -e . --no-use-pep517``).

All real metadata lives in ``pyproject.toml``; this file exists only because
the build environment has no ``wheel`` package and no network access, which
rules out the PEP 517 editable path.
"""

from setuptools import setup

setup()
