"""Plain-text table rendering for experiment output.

The benchmark harness prints paper-style result tables without any plotting
dependency; this module owns the column alignment and number formatting so
every experiment reports consistently.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_number"]


def format_number(value: object, *, precision: int = 4) -> str:
    """Render a cell: floats to ``precision`` significant decimals, rest via str."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if value != value:  # NaN
        return "nan"
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:.{precision}f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render an aligned monospace table.

    >>> print(format_table(["n", "PA"], [[8, 0.75], [64, 0.5437]]))
    n   PA
    --  ------
    8   0.7500
    64  0.5437
    """
    cells = [[format_number(v, precision=precision) for v in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in cells)) if cells else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
