"""ASCII curve plots — the offline stand-in for the paper's figures.

Figures 7, 8 and 11 of the paper are semi-log plots of acceptance
probability against network size.  With no plotting stack available, this
module renders multi-series line charts as monospace text (log-x support
included), which the experiment harness prints and EXPERIMENTS.md records.
Series data is also returned in machine-readable form so absolute values
stay checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log10
from collections.abc import Sequence

from repro.core.exceptions import ConfigurationError

__all__ = ["Series", "render_plot"]

_MARKERS = "*+ox#@%&"


@dataclass(frozen=True)
class Series:
    """One named curve: ``points`` is a sequence of (x, y) pairs."""

    label: str
    points: tuple[tuple[float, float], ...]

    @classmethod
    def from_pairs(cls, label: str, pairs: Sequence[tuple[float, float]]) -> "Series":
        return cls(label=label, points=tuple((float(x), float(y)) for x, y in pairs))


def render_plot(
    series: Sequence[Series],
    *,
    width: int = 72,
    height: int = 20,
    log_x: bool = True,
    y_range: tuple[float, float] | None = None,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "",
) -> str:
    """Render series as an ASCII chart with a legend.

    Points are snapped to a ``width x height`` character grid; later series
    overwrite earlier ones where they collide (legend order shows
    precedence).  ``log_x`` plots ``log10(x)`` positions, matching the
    paper's semi-log axes.
    """
    if not series or any(not s.points for s in series):
        raise ConfigurationError("every series needs at least one point")
    if len(series) > len(_MARKERS):
        raise ConfigurationError(f"at most {len(_MARKERS)} series supported")

    def x_pos(x: float) -> float:
        if log_x:
            if x <= 0:
                raise ConfigurationError("log-x plots need positive x values")
            return log10(x)
        return x

    xs = [x_pos(x) for s in series for x, _ in s.points]
    ys = [y for s in series for _, y in s.points]
    x_min, x_max = min(xs), max(xs)
    if y_range is None:
        y_min, y_max = min(ys), max(ys)
    else:
        y_min, y_max = y_range
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    grid = [[" "] * width for _ in range(height)]
    for s, marker in zip(series, _MARKERS):
        for x, y in s.points:
            col = round((x_pos(x) - x_min) / x_span * (width - 1))
            row = round((y - y_min) / y_span * (height - 1))
            if 0 <= col < width and 0 <= row < height:
                grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.3f}"
    bottom_label = f"{y_min:.3f}"
    margin = max(len(top_label), len(bottom_label)) + 1
    for i, row_chars in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(margin)
        elif i == height - 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row_chars)}")
    lines.append(" " * margin + "+" + "-" * width)
    left = f"{10 ** x_min:.0f}" if log_x else f"{x_min:g}"
    right = f"{10 ** x_max:.0f}" if log_x else f"{x_max:g}"
    axis = left + " " * (width - len(left) - len(right)) + right
    lines.append(" " * (margin + 1) + axis)
    suffix = "  (log scale)" if log_x else ""
    lines.append(" " * (margin + 1) + f"{x_label}{suffix}")
    for s, marker in zip(series, _MARKERS):
        lines.append(f"  {marker} {s.label}")
    if y_label:
        lines.append(f"  y: {y_label}")
    return "\n".join(lines)
