"""ASCII renderings of network structure (the paper's Figures 1, 3, 4).

Produces block-diagram summaries of an EDN — stage columns, switch shapes,
wire counts, and the interstage permutation — plus a crosspoint-level
drawing of a single hyperbar routing example (Figure 2 style), used by the
quickstart example and the ``fig2``/``fig4`` benchmarks.
"""

from __future__ import annotations

from repro.core.config import EDNParams
from repro.core.hyperbar import SwitchResult
from repro.core.topology import EDNTopology
from repro.viz.tables import format_table

__all__ = ["render_network", "render_hyperbar_routing"]


def render_network(params: EDNParams) -> str:
    """A stage-by-stage block diagram of ``EDN(a, b, c, l)``.

    >>> text = render_network(EDNParams(16, 4, 4, 2))
    >>> "Stage 1" in text and "4x4" in text
    True
    """
    topo = EDNTopology(params)
    lines = [params.describe(), ""]
    rows = []
    for info in topo.stage_summary():
        rows.append(
            [
                f"Stage {info['stage']}",
                info["kind"],
                info["switches"],
                info["switch_shape"],
                info["wires_in"],
                info["wires_out"],
            ]
        )
    lines.append(
        format_table(
            ["stage", "kind", "switches", "shape", "wires in", "wires out"], rows
        )
    )
    lines.append("")
    lines.append(
        "interstage wiring: gamma(j=log2(c)={}, k=log2(a/c)={}) between hyperbar stages; "
        "buckets feed the crossbars directly".format(params.capacity_bits, params.fan_in_bits)
    )
    lines.append(
        f"destination tags: {params.l} base-{params.b} digit(s) + one base-{params.c} digit "
        f"({params.tag_bits} bits)"
    )
    return "\n".join(lines)


def render_hyperbar_routing(
    a: int, b: int, c: int, requests: list, result: SwitchResult
) -> str:
    """Figure-2-style drawing of one hyperbar cycle.

    Shows each input line with its control digit and fate, and each output
    bucket with the inputs granted its wires.
    """
    lines = [f"H({a}->{b}x{c}) hyperbar routing", ""]
    for i, digit in enumerate(requests):
        if digit is None:
            fate = "(idle)"
        elif i in result.accepted:
            wire = result.accepted[i]
            fate = f"-> bucket {wire // c}, wire {wire % c}"
        else:
            fate = "-> DISCARDED (bucket full)"
        label = "-" if digit is None else str(digit)
        lines.append(f"  input {i}:  d={label:>2}  {fate}")
    lines.append("")
    for bucket in range(b):
        occupants = [
            str(result.output_sources[bucket * c + k])
            for k in range(c)
            if result.output_sources[bucket * c + k] is not None
        ]
        load = result.bucket_loads[bucket]
        status = ", ".join(occupants) if occupants else "empty"
        note = f"  ({load} requested)" if load > len(occupants) else ""
        lines.append(f"  bucket {bucket} [capacity {c}]: inputs {status}{note}")
    return "\n".join(lines)
