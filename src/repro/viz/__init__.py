"""Text rendering: network diagrams, ASCII curve plots, and result tables."""

from repro.viz.ascii_art import render_hyperbar_routing, render_network
from repro.viz.curves import Series, render_plot
from repro.viz.tables import format_number, format_table

__all__ = [
    "render_network",
    "render_hyperbar_routing",
    "Series",
    "render_plot",
    "format_table",
    "format_number",
]
