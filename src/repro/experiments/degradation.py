"""Experiment ``degradation``: retry policies on damaged fabrics.

The ``fault_tolerance`` experiment measures what damage does to the
*topology* (pair connectivity); this one measures what it does to
*service* once sources stop shrugging off blocked requests.  It crosses
the same 16x16 capacity ladder with i.i.d. wire-failure rates and a
ladder of closed-loop retry policies (open loop, bounded retry, retry
with exponential backoff), routed on the compiled faulted kernels.

Expected shape: retry recovers most of the acceptance a damaged fabric
loses — a blocked message usually succeeds on a later try because EDN
blocking is contention, not disconnection — but the recovery is paid in
attempts and latency, and the price rises with damage.  Higher-capacity
networks both lose less and pay less, compounding Theorem 2's multipath
dividend.

A second table follows one network through time under
:class:`~repro.core.faultprocess.PermanentFaults`: exponential failure
arrivals with repair, re-masking the compiled plan each window — the
degradation *trajectory* rather than the steady-state cross-section.
"""

from __future__ import annotations

from typing import Optional

from repro.api.registry import build_router
from repro.api.spec import NetworkSpec, RunConfig
from repro.core.faults import random_faults
from repro.experiments.base import ExperimentResult
from repro.experiments.fault_tolerance import LADDER
from repro.sim.closedloop import RetryPolicy
from repro.sim.montecarlo import measure_acceptance
from repro.sim.rng import make_rng

__all__ = ["POLICIES", "run"]

#: (label, retry spec or None) — None is the paper's open-loop baseline.
POLICIES = (
    ("open loop", None),
    ("retry 4", "4"),
    ("retry 8 backoff 1x2", "8:1:2"),
)


def run(
    *,
    failure_rates: tuple[float, ...] = (0.0, 0.05, 0.1),
    cycles: int = 512,
    seed: int = 0,
    config: Optional[RunConfig] = None,
) -> ExperimentResult:
    """Acceptance and retry cost vs wire-failure rate on the capacity ladder.

    A :class:`RunConfig` may supply cycles/seed/traffic; the explicit
    keywords act as its defaults.  ``config.retry`` is ignored — the
    retry policy is the experiment's swept axis.
    """
    traffic = None
    if config is not None:
        if config.cycles is not None:
            cycles = config.cycles
        if config.seed is not None:
            seed = config.seed
        traffic = config.traffic
    result = ExperimentResult(
        experiment_id="degradation",
        title="Closed-loop service under wire failures (16x16 capacity ladder)",
    )
    fault_rng = make_rng(seed)
    acceptance_rows = []
    cost_rows = []
    worst = max(failure_rates)
    for net_label, params in LADDER:
        faults_at = {
            rate: random_faults(params, rate, fault_rng).canonical()
            for rate in failure_rates
        }
        for policy_label, retry in POLICIES:
            points = []
            for rate in failure_rates:
                spec = NetworkSpec.edn(
                    params.a, params.b, params.c, params.l, faults=faults_at[rate]
                )
                router = build_router(spec)
                measurement = measure_acceptance(
                    router,
                    traffic,
                    cycles=cycles,
                    seed=seed,
                    retry=retry,
                )
                points.append((rate, measurement.acceptance.point))
                if retry is not None and rate == worst:
                    cost_rows.append(
                        [
                            f"{net_label} / {policy_label}",
                            measurement.attempts.point,
                            measurement.latency.point,
                            measurement.delivered_messages,
                            measurement.abandoned,
                        ]
                    )
            series_label = f"{net_label} / {policy_label}"
            if retry is not None:
                # 6 retry series keep the plot under the marker budget;
                # the open-loop baseline still appears in the table.
                result.series[series_label] = points
            acceptance_rows.append([series_label] + [acc for _, acc in points])
    result.tables["acceptance (delivered / offered)"] = (
        ["network / sources"] + [f"f={rate:g}" for rate in failure_rates],
        acceptance_rows,
    )
    result.tables[f"retry cost at f={worst:g}"] = (
        ["network / sources", "attempts", "latency", "delivered", "abandoned"],
        cost_rows,
    )
    result.tables["trajectory: EDN(8,2,4,2), permanent failures with repair"] = (
        _trajectory_table(seed)
    )
    result.tables["latency under degradation: same process, buffered (depth 2)"] = (
        _buffered_trajectory_table(seed)
    )
    result.notes.append(
        "the buffered trajectory shows degradation as queueing, not just "
        "loss: tail latency (p95/p99) and FIFO occupancy climb as wires "
        "die, and packets stranded on dying wires are dropped with "
        "accounting at each window boundary"
    )
    result.notes.append(
        "retry converts contention blocking into latency: acceptance under "
        "damage recovers toward the fault-free level while attempts per "
        "delivered message rise with the failure rate"
    )
    result.notes.append(
        "higher-capacity networks recover at lower retry cost — multipath "
        "buys reliability in the closed loop too"
    )
    return result


def _trajectory_table(seed: int):
    """Delivered fraction / connectivity over time under PermanentFaults."""
    from repro.core.faultprocess import PermanentFaults, degradation_trajectory
    from repro.sim.stagegraph import edn_graph

    _, params = LADDER[-1]
    graph = edn_graph(params)
    process = PermanentFaults(
        graph, failure_rate=2e-4, repair_cycles=1024, seed=seed
    )
    points = degradation_trajectory(
        graph, process, windows=8, cycles_per_window=256, seed=seed
    )
    rows = [
        [p.cycle, p.n_faults, p.delivered_fraction, p.connectivity] for p in points
    ]
    return (["cycle", "dead wires", "delivered fraction", "connectivity"], rows)


def _buffered_trajectory_table(seed: int):
    """Latency/occupancy over time: the same fault process, depth-2 FIFOs."""
    from repro.core.faultprocess import PermanentFaults, degradation_trajectory
    from repro.sim.stagegraph import edn_graph

    _, params = LADDER[-1]
    graph = edn_graph(params)
    process = PermanentFaults(
        graph, failure_rate=2e-4, repair_cycles=1024, seed=seed
    )
    points = degradation_trajectory(
        graph, process, windows=8, cycles_per_window=256, seed=seed,
        buffer_depth=2,
    )
    rows = [
        [
            p.cycle,
            p.n_faults,
            p.throughput,
            p.dropped,
            p.latency_p50,
            p.latency_p95,
            p.latency_p99,
            p.mean_occupancy,
        ]
        for p in points
    ]
    return (
        [
            "cycle", "dead wires", "throughput", "dropped",
            "latency p50", "p95", "p99", "mean occupancy",
        ],
        rows,
    )
