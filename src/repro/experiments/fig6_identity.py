"""Experiment ``fig5_6``: identity permutation on EDN(64,16,4,2) (Figures 5-6).

Figure 5's ``EDN(64,16,4,2)`` "is incapable of performing the identity
permutation in one pass": all 64 sources entering one first-stage hyperbar
share their most significant destination digit, so they pile into a single
capacity-4 bucket and only ``16 switches x 4 = 64`` of 1024 messages
survive.  Figure 6 modifies the network to retire the tag digits in the
opposite order and appends the inverse of that digit re-arrangement at the
outputs (Corollary 2), after which the identity routes conflict-free.

The paper also remarks the two networks "perform identically in the
average case, while very differently for specific permutations"; this
experiment measures both retirement orders under random permutations and a
battery of structured ones.
"""

from __future__ import annotations

from typing import Optional

from repro.api.spec import RunConfig

from repro.core.config import EDNParams
from repro.core.tags import RetirementOrder
from repro.experiments.base import ExperimentResult
from repro.sim.montecarlo import measure_acceptance
from repro.sim.rng import make_rng
from repro.workloads import PermutationTraffic, structured_permutation
from repro.sim.vectorized import VectorizedEDN

__all__ = ["run"]

STRUCTURED = ("identity", "reversal", "bit_reversal", "shuffle", "transpose", "butterfly")


def run(
    *, cycles: int = 40, seed: int = 0, config: Optional[RunConfig] = None
) -> ExperimentResult:
    """Compare canonical vs reversed digit retirement on EDN(64,16,4,2).

    A :class:`RunConfig` may supply cycles/seed; the explicit keywords act
    as its defaults.
    """
    cfg = (config if config is not None else RunConfig()).resolve(cycles=cycles, seed=seed)
    cycles, seed = cfg.cycles, cfg.seed
    params = EDNParams(64, 16, 4, 2)
    canonical = VectorizedEDN(params)
    reversed_order = RetirementOrder.reversed_order(params.l)
    modified = VectorizedEDN(params, retirement_order=reversed_order)
    fixup = reversed_order.fixup_permutation(params)
    rng = make_rng(seed)

    result = ExperimentResult(
        experiment_id="fig5_6",
        title="Figures 5-6: identity permutation and digit-retirement order on EDN(64,16,4,2)",
    )

    rows = []
    for name in STRUCTURED:
        pattern = structured_permutation(name, params.num_inputs)
        dests = pattern.generate(rng)
        delivered_canonical = canonical.route(dests).num_delivered
        modified_result = modified.route(dests)
        delivered_modified = modified_result.num_delivered
        # Verify the fix-up stage restores intended destinations.
        landed = modified_result.output
        fixed_ok = all(
            fixup(int(landed[s])) == int(dests[s])
            for s in range(params.num_inputs)
            if modified_result.blocked_stage[s] == 0
        )
        rows.append([name, delivered_canonical, delivered_modified, fixed_ok])
    result.tables["structured permutations (messages delivered of 1024)"] = (
        ["pattern", "canonical order", "reversed order + fixup", "fixup correct"],
        rows,
    )

    traffic = PermutationTraffic(params.num_inputs, params.num_outputs)
    average_canonical = measure_acceptance(canonical, traffic, cycles=cycles, seed=seed)
    average_modified = measure_acceptance(modified, traffic, cycles=cycles, seed=seed)
    result.tables["random permutations (average case)"] = (
        ["network", "measured PAp"],
        [
            ["canonical retirement", average_canonical.point],
            ["reversed retirement", average_modified.point],
        ],
    )
    result.notes.append(
        "paper: identity blocks to 64/1024 canonically, routes fully under the modified "
        "order; both orders perform identically on random permutations"
    )
    return result
