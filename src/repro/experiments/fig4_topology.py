"""Experiment ``fig4``: structure of the EDN(16,4,4,2) (Figures 3-4).

Figure 4 draws a concrete ``EDN(16,4,4,2)``: two columns of four
``H(16 -> 4 x 4)`` hyperbars, one column of sixteen ``4 x 4`` crossbars,
64 inputs, 64 outputs, every thick line four parallel wires, and "2 bits
retired" per hyperbar stage.  This experiment regenerates the structural
facts and cross-checks them against both the closed forms and brute-force
enumeration.
"""

from __future__ import annotations

from typing import Optional

from repro.api.spec import RunConfig

from repro.core.analysis import acceptance_probability, delta_acceptance
from repro.core.config import EDNParams
from repro.core.cost import (
    crosspoint_cost,
    crosspoint_cost_closed_form,
    wire_cost,
    wire_cost_closed_form,
)
from repro.core.topology import EDNTopology
from repro.experiments.base import ExperimentResult
from repro.viz.ascii_art import render_network

__all__ = ["run"]


def _baseline_rows(params: EDNParams) -> list[list]:
    """Same-input-count delta-family baselines, on the stage-graph core.

    One row per baseline the paper compares against: the plain delta (the
    EDN's own radix when it tiles ``N``, 2x2 switches otherwise), the
    omega (its shuffled 2x2 sibling), and the dilated delta at the EDN's
    multiplicity (``d = c``, or 2 for degenerate ``c = 1`` networks).
    Structure and costs come from the baseline descriptors; the "columns"
    column counts the compiled stage graph's switch columns.
    """
    from repro.api.spec import _square_depth
    from repro.baselines.dilated import DilatedDelta
    from repro.core.exceptions import ConfigurationError
    from repro.core.labels import ilog2
    from repro.sim.stagegraph import delta_graph, dilated_graph, edn_graph, omega_graph

    n = params.num_inputs
    radix = params.b
    try:
        depth = _square_depth(n, radix, "delta")
    except ConfigurationError:
        radix, depth = 2, ilog2(n)
    d = params.c if params.c > 1 else 2
    delta = EDNParams(radix, radix, 1, depth)
    omega = EDNParams(2, 2, 1, ilog2(n))
    dilated = DilatedDelta(a=radix, b=radix, l=depth, d=d)
    return [
        [
            str(params),
            edn_graph(params).num_stages,
            crosspoint_cost(params),
            wire_cost(params),
            acceptance_probability(params, 1.0),
        ],
        [
            f"delta:{n},{radix}",
            delta_graph(radix, radix, depth).num_stages,
            crosspoint_cost(delta),
            wire_cost(delta),
            delta_acceptance(radix, radix, depth, 1.0),
        ],
        [
            f"omega:{n}",
            omega_graph(n).num_stages,
            crosspoint_cost(omega),
            wire_cost(omega),
            delta_acceptance(2, 2, ilog2(n), 1.0),
        ],
        [
            f"dilated:{n},{radix},{d}",
            dilated_graph(radix, radix, depth, d).num_stages,
            dilated.crosspoint_cost(),
            dilated.wire_cost(),
            dilated.analytic_acceptance(1.0),
        ],
    ]


def run(
    params: EDNParams | None = None, *, config: Optional[RunConfig] = None
) -> ExperimentResult:
    """Summarize the Figure 4 network (or any ``params`` passed in).

    Structural; ``config`` is accepted for uniform registry dispatch and
    ignored.
    """
    del config
    if params is None:
        params = EDNParams(16, 4, 4, 2)
    topo = EDNTopology(params)
    result = ExperimentResult(
        experiment_id="fig4",
        title=f"Figure 4: structure of {params}",
    )
    rows = [
        [info["stage"], info["kind"], info["switches"], info["switch_shape"], info["wires_in"], info["wires_out"]]
        for info in topo.stage_summary()
    ]
    result.tables["stages"] = (
        ["stage", "kind", "switches", "shape", "wires in", "wires out"],
        rows,
    )
    result.tables["invariants"] = (
        ["quantity", "value"],
        [
            ["inputs", params.num_inputs],
            ["outputs", params.num_outputs],
            ["paths per pair (c^l)", params.paths_per_pair],
            ["tag bits", params.tag_bits],
            ["bits retired per hyperbar stage", params.digit_bits],
            ["crosspoints (sum)", crosspoint_cost(params)],
            ["crosspoints (Eq. 2)", crosspoint_cost_closed_form(params)],
            ["crosspoints (enumerated)", topo.count_crosspoints()],
            ["wires (sum)", wire_cost(params)],
            ["wires (Eq. 3)", wire_cost_closed_form(params)],
            ["wires (enumerated)", topo.count_wires()],
        ],
    )
    result.tables["delta-family baselines (stage-graph core)"] = (
        ["network", "switch columns", "crosspoints", "wires", "PA(1)"],
        _baseline_rows(params),
    )
    result.notes.append(render_network(params))
    result.notes.append(
        "baseline rows share the EDN's input count; all four topologies "
        "compile to the same plan-cached stage-graph kernels (repro route "
        "-t ... --backend batched measures any of them)"
    )
    return result
