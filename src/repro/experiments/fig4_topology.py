"""Experiment ``fig4``: structure of the EDN(16,4,4,2) (Figures 3-4).

Figure 4 draws a concrete ``EDN(16,4,4,2)``: two columns of four
``H(16 -> 4 x 4)`` hyperbars, one column of sixteen ``4 x 4`` crossbars,
64 inputs, 64 outputs, every thick line four parallel wires, and "2 bits
retired" per hyperbar stage.  This experiment regenerates the structural
facts and cross-checks them against both the closed forms and brute-force
enumeration.
"""

from __future__ import annotations

from typing import Optional

from repro.api.spec import RunConfig

from repro.core.config import EDNParams
from repro.core.cost import (
    crosspoint_cost,
    crosspoint_cost_closed_form,
    wire_cost,
    wire_cost_closed_form,
)
from repro.core.topology import EDNTopology
from repro.experiments.base import ExperimentResult
from repro.viz.ascii_art import render_network

__all__ = ["run"]


def run(
    params: EDNParams | None = None, *, config: Optional[RunConfig] = None
) -> ExperimentResult:
    """Summarize the Figure 4 network (or any ``params`` passed in).

    Structural; ``config`` is accepted for uniform registry dispatch and
    ignored.
    """
    del config
    if params is None:
        params = EDNParams(16, 4, 4, 2)
    topo = EDNTopology(params)
    result = ExperimentResult(
        experiment_id="fig4",
        title=f"Figure 4: structure of {params}",
    )
    rows = [
        [info["stage"], info["kind"], info["switches"], info["switch_shape"], info["wires_in"], info["wires_out"]]
        for info in topo.stage_summary()
    ]
    result.tables["stages"] = (
        ["stage", "kind", "switches", "shape", "wires in", "wires out"],
        rows,
    )
    result.tables["invariants"] = (
        ["quantity", "value"],
        [
            ["inputs", params.num_inputs],
            ["outputs", params.num_outputs],
            ["paths per pair (c^l)", params.paths_per_pair],
            ["tag bits", params.tag_bits],
            ["bits retired per hyperbar stage", params.digit_bits],
            ["crosspoints (sum)", crosspoint_cost(params)],
            ["crosspoints (Eq. 2)", crosspoint_cost_closed_form(params)],
            ["crosspoints (enumerated)", topo.count_crosspoints()],
            ["wires (sum)", wire_cost(params)],
            ["wires (Eq. 3)", wire_cost_closed_form(params)],
            ["wires (enumerated)", topo.count_wires()],
        ],
    )
    result.notes.append(render_network(params))
    return result
