"""Experiments ``buffered`` and ``admissibility``: beyond the paper's model.

* ``buffered`` — packet switching with FIFO buffers on the paper's
  Figure 4 network: throughput/latency vs offered rate and buffer depth,
  against the bufferless ``PA`` of Eq. 4.  Measured shape: single
  buffering saturates *near* (slightly below) the circuit-switched
  ``PA(1)`` — head-of-line blocking idles wires — while depth >= 2 turns
  losses into queueing and pushes throughput past it, paying in latency.
* ``admissibility`` — the fraction of all permutations routable in one
  pass, exhaustive at 8 terminals and Monte-Carlo at MasPar scale.
  Expected shape: the admissible set grows quickly with capacity ``c``
  (the delta's is vanishingly small), yet stays far from 1 — which is why
  Section 5 plans for multi-cycle drains rather than hoping for one-pass
  permutations.
"""

from __future__ import annotations

from typing import Optional

from repro.api.spec import RunConfig
from repro.core.analysis import acceptance_probability
from repro.core.config import EDNParams
from repro.experiments.base import ExperimentResult
from repro.ext.admissibility import admissible_fraction
from repro.sim.buffered import measure_buffered
from repro.sim.stagegraph import edn_graph
from repro.sim.vectorized import VectorizedEDN

__all__ = ["run_buffered", "run_admissibility"]


def run_buffered(
    *,
    rates: tuple[float, ...] = (0.2, 0.5, 0.8, 1.0),
    depths: tuple[int, ...] = (1, 2, 4),
    cycles: int = 400,
    warmup: int = 100,
    seed: int = 0,
    config: Optional[RunConfig] = None,
) -> ExperimentResult:
    """Throughput/latency of the buffered EDN(16,4,4,2) vs load and depth.

    A :class:`RunConfig` may supply cycles/seed; the explicit keywords act
    as its defaults.
    """
    cfg = (config if config is not None else RunConfig()).resolve(cycles=cycles, seed=seed)
    cycles, seed = cfg.cycles, cfg.seed
    params = EDNParams(16, 4, 4, 2)
    graph = edn_graph(params)
    result = ExperimentResult(
        experiment_id="buffered",
        title=f"Buffered packet switching on {params} (extension)",
    )
    rows = []
    for depth in depths:
        points = []
        for rate in rates:
            metrics = measure_buffered(
                graph,
                traffic=f"uniform:{rate:g}",
                depth=depth,
                cycles=cycles,
                warmup=warmup,
                seed=seed,
            )
            points.append((rate, metrics.throughput))
            rows.append(
                [depth, rate, metrics.throughput, metrics.mean_latency, metrics.mean_occupancy]
            )
        result.series[f"depth {depth}"] = points
    result.tables["throughput & latency"] = (
        ["depth", "offered rate", "throughput", "mean latency", "mean occupancy"],
        rows,
    )
    result.notes.append(
        f"bufferless circuit-switched PA(1) = "
        f"{acceptance_probability(params, 1.0):.4f}: buffering converts losses "
        "into queueing and saturates above it"
    )
    return result


def run_admissibility(
    *, samples: int = 600, seed: int = 0, config: Optional[RunConfig] = None
) -> ExperimentResult:
    """One-pass admissible fraction across a capacity ladder.

    A :class:`RunConfig` may supply the seed; the explicit keyword acts as
    its default.
    """
    if config is not None and config.seed is not None:
        seed = config.seed
    result = ExperimentResult(
        experiment_id="admissibility",
        title="One-pass permutation admissibility vs capacity (extension)",
    )
    rows = []
    census = [
        ("delta EDN(2,2,1,3), 8x8", VectorizedEDN(EDNParams(2, 2, 1, 3)), None),
        ("EDN(4,2,2,2), 8x8", VectorizedEDN(EDNParams(4, 2, 2, 2)), None),
        ("EDN(8,2,4,1), 8x8", VectorizedEDN(EDNParams(8, 2, 4, 1)), None),
        ("EDN(16,4,4,2), 64x64", VectorizedEDN(EDNParams(16, 4, 4, 2)), samples),
        ("EDN(64,16,4,2), 1024x1024", VectorizedEDN(EDNParams(64, 16, 4, 2)), samples),
    ]
    for label, network, sample_budget in census:
        fraction, population = admissible_fraction(
            network, samples=sample_budget, seed=seed
        )
        mode = "exhaustive" if sample_budget is None else f"{population} samples"
        rows.append([label, fraction, mode])
    result.tables["admissible fraction"] = (
        ["network", "fraction of permutations", "census"],
        rows,
    )
    result.notes.append(
        "Lemma 2 makes l=1 members admit everything; multipath widens the set "
        "at every depth but random permutations still block with high "
        "probability at scale - hence Section 5's multi-cycle drain model"
    )
    return result
