"""Experiment ``fault_tolerance``: multipath as graceful degradation.

Theorem 2's ``c^l`` alternate paths are usually sold as a performance
feature; this experiment measures their reliability dividend, an extension
the paper's introduction gestures at via the fault-tolerant multistage
lineage (extra-stage cube, reference [1]).

Protocol: inject i.i.d. wire failures at rate ``f`` into equal-size
16x16 networks of increasing capacity — the single-path delta
``EDN(4,4,1,2)``, the 4-path ``EDN(4,2,2,2)``, and the 16-path
``EDN(8,2,4,2)`` — and measure the fraction of source/destination pairs
still connected (averaged over fault draws).  Expected shape: connectivity
falls with ``f`` everywhere, but higher-capacity networks degrade
strictly more gracefully (a bucket dies only when *all* ``c`` of its wires
do).
"""

from __future__ import annotations

from typing import Optional

from repro.api.spec import RunConfig
from repro.core.config import EDNParams
from repro.core.faults import connectivity_under_faults, random_faults
from repro.experiments.base import ExperimentResult
from repro.sim.rng import make_rng

__all__ = ["LADDER", "run"]

#: Equal-size 16x16 networks of increasing path multiplicity.
LADDER = (
    ("delta EDN(4,4,1,2), 1 path", EDNParams(4, 4, 1, 2)),
    ("EDN(4,2,2,2), 4 paths", EDNParams(4, 2, 2, 2)),
    ("EDN(8,2,4,2), 16 paths", EDNParams(8, 2, 4, 2)),
)


def run(
    *,
    failure_rates: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.3),
    draws: int = 10,
    seed: int = 0,
    config: Optional[RunConfig] = None,
) -> ExperimentResult:
    """Mean pair-connectivity vs wire-failure rate on the capacity ladder.

    A :class:`RunConfig` may supply the seed; the explicit keyword acts as
    its default.
    """
    if config is not None and config.seed is not None:
        seed = config.seed
    result = ExperimentResult(
        experiment_id="fault_tolerance",
        title="Pair connectivity under random wire failures (16x16 networks)",
    )
    rng = make_rng(seed)
    rows = []
    for label, params in LADDER:
        points = []
        for rate in failure_rates:
            total = 0.0
            for _ in range(draws):
                faults = random_faults(params, rate, rng)
                total += connectivity_under_faults(params, faults)
            points.append((rate, total / draws))
        result.series[label] = points
        rows.append([label] + [conn for _, conn in points])
    result.tables["mean pair connectivity"] = (
        ["network"] + [f"f={rate:g}" for rate in failure_rates],
        rows,
    )
    result.notes.append(
        "a bucket disconnects only when all c of its wires die "
        "(probability f^c), so connectivity ~ prod over stages of "
        "(1 - f^c): capacity buys reliability superlinearly"
    )
    return result
