"""Experiment ``fig11``: effect of resubmitting rejected requests (Figure 11).

Figure 11 plots, for ``EDN(16,4,4,*)`` and ``EDN(4,2,2,*)`` at fresh-request
rate ``r = 0.5``, the acceptance probability against network size under two
policies: rejected requests *ignored* (Eq. 4's ``PA``) and rejected
requests *resubmitted* (Section 4's converged ``PA'``).  Expected shape:
resubmission strictly lowers acceptance (the effective offered rate ``r'``
inflates above ``r``), the gap grows with network size, and the
16-I/O-switch family sits above the 4-I/O family throughout.

``run_simulation_validation`` replays selected sizes on the MIMD cycle
simulator with the model's redraw-on-retry assumption, pinning the Markov
chain's predictions (``PA'``, ``qA``, ``r'``) against measurement.
"""

from __future__ import annotations

from typing import Optional

from repro.api.spec import RunConfig
from repro.core.analysis import acceptance_probability
from repro.core.config import EDNParams, family_members
from repro.experiments.base import ExperimentResult
from repro.experiments.parallel import ParallelSweep
from repro.mimd.markov import edn_resubmission
from repro.mimd.system import MIMDSystem

__all__ = ["FAMILIES", "run", "run_simulation_validation"]

#: The two families Figure 11 plots (the paper labels them "ADN").
FAMILIES = ((16, 4, 4), (4, 2, 2))

DEFAULT_MAX_INPUTS = 1_050_000


def run(
    *,
    rate: float = 0.5,
    max_inputs: int = DEFAULT_MAX_INPUTS,
    config: Optional[RunConfig] = None,
) -> ExperimentResult:
    """Regenerate Figure 11's four curves.

    Analytic (Markov fixed points); ``config`` is accepted for uniform
    registry dispatch and ignored.
    """
    del config
    result = ExperimentResult(
        experiment_id="fig11",
        title=f"Figure 11: resubmission effect on PA at r={rate:g}",
    )
    rows = []
    for a, b, c in FAMILIES:
        ignored = []
        resubmitted = []
        for params in family_members(a, b, c, max_inputs=max_inputs):
            pa = acceptance_probability(params, rate)
            solution = edn_resubmission(params, rate)
            ignored.append((float(params.num_inputs), pa))
            resubmitted.append((float(params.num_inputs), solution.pa_resubmit))
            rows.append(
                [
                    str(params),
                    params.num_inputs,
                    pa,
                    solution.pa_resubmit,
                    solution.effective_rate,
                    solution.q_active,
                ]
            )
        result.series[f"EDN({a},{b},{c},*) ignored"] = ignored
        result.series[f"EDN({a},{b},{c},*) resubmitted"] = resubmitted
    result.tables["Markov model"] = (
        ["network", "inputs", "PA (ignored)", "PA' (resubmitted)", "r'", "qA (efficiency)"],
        rows,
    )
    result.notes.append(
        "expected shape: PA' < PA everywhere; gap widens with size; "
        "EDN(16,4,4,*) above EDN(4,2,2,*)"
    )
    return result


def _mimd_row(task, _seed_key) -> list[object]:
    """One network's model-vs-simulation row (ParallelSweep worker).

    The MIMD simulator's cycle loop is stateful (resubmission couples
    cycles), so each network keeps its historical integer seed; the sweep
    only fans the *networks* out across processes.
    """
    cfg, rate, cycles, warmup, seed = task
    params = EDNParams(*cfg)
    solution = edn_resubmission(params, rate)
    system = MIMDSystem(params, rate, policy="resubmit", redraw_on_retry=True)
    metrics = system.run(cycles=cycles, warmup=warmup, seed=seed)
    return [
        str(params),
        solution.pa_resubmit,
        metrics.acceptance.point,
        solution.q_active,
        metrics.utilization.point,
        solution.effective_rate,
        metrics.offered_rate,
    ]


def run_simulation_validation(
    *,
    rate: float = 0.5,
    configs: tuple[tuple[int, int, int, int], ...] = ((16, 4, 4, 2), (4, 2, 2, 4)),
    cycles: int = 1500,
    warmup: int = 300,
    seed: int = 0,
    jobs: int | None = 1,
    config: Optional[RunConfig] = None,
) -> ExperimentResult:
    """MIMD cycle simulation vs the Markov model on selected networks.

    A :class:`RunConfig` may supply cycles/seed/jobs; the explicit
    keywords act as its defaults (``batch`` does not apply — the MIMD
    loop is stateful, resubmission couples its cycles).
    """
    run_cfg = (config if config is not None else RunConfig()).resolve(
        cycles=cycles, seed=seed, jobs=jobs
    )
    cycles, seed = run_cfg.cycles, run_cfg.seed
    result = ExperimentResult(
        experiment_id="fig11_sim",
        title=f"MIMD simulator vs Markov resubmission model (r={rate:g})",
    )
    tasks = [(cfg, rate, cycles, warmup, seed) for cfg in configs]
    rows = ParallelSweep.from_config(run_cfg).map_seeded(_mimd_row, tasks, seed)
    result.tables["model vs simulation"] = (
        [
            "network",
            "PA' model",
            "PA' sim",
            "qA model",
            "qA sim",
            "r' model",
            "r' sim",
        ],
        rows,
    )
    result.notes.append(
        "simulation uses the model's redraw-on-retry assumption; residual gaps "
        "reflect Eq. 4's independence approximation"
    )
    return result
