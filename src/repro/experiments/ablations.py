"""Experiment ``ablation_priority``: design-choice ablations.

DESIGN.md calls out three free choices the paper leaves open; each is
ablated here:

* **contention discipline** — input-label priority (the paper's Figure 2
  convention) vs random choice among contenders.  The analytic model never
  references the discipline, so measured acceptance should be statistically
  indistinguishable under uniform traffic; what *does* differ is fairness
  (low-label inputs win more under label priority), measured as the spread
  of per-input delivery rates;
* **wire assignment within a bucket** — first-free vs random.  Both are
  work-conserving, so all cycle outcomes are acceptance-identical;
* **cluster schedule** (Section 5) — random (the paper's), round-robin,
  and lowest-index-first drain times on a small RA-EDN.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.api.spec import RunConfig
from repro.core.config import EDNParams
from repro.core.hyperbar import Hyperbar
from repro.experiments.base import ExperimentResult
from repro.sim.montecarlo import measure_acceptance
from repro.sim.rng import make_rng
from repro.workloads import UniformTraffic
from repro.sim.vectorized import VectorizedEDN
from repro.simd.ra_edn import RAEDNSystem
from repro.simd.schedule import LowestIndexSchedule, RandomSchedule, RoundRobinSchedule
from repro.simd.simulator import RAEDNSimulator

__all__ = ["run_priority", "run_wire_policy", "run_schedules", "run"]


def run_priority(
    *, cycles: int = 150, seed: int = 0, config: Optional[RunConfig] = None
) -> ExperimentResult:
    """Label vs random contention priority: acceptance and fairness.

    A :class:`RunConfig` may supply cycles/seed; the explicit keywords act
    as its defaults.
    """
    cfg = (config if config is not None else RunConfig()).resolve(cycles=cycles, seed=seed)
    cycles, seed = cfg.cycles, cfg.seed
    params = EDNParams(16, 4, 4, 2)
    traffic = UniformTraffic(params.num_inputs, params.num_outputs, 1.0)
    result = ExperimentResult(
        experiment_id="ablation_priority",
        title=f"Contention-discipline ablation on {params}",
    )
    rows = []
    for discipline in ("label", "random"):
        router = VectorizedEDN(params, priority=discipline)
        measured = measure_acceptance(router, traffic, cycles=cycles, seed=seed)
        # Fairness: per-input delivery counts over the same traffic.
        rng = make_rng(seed)
        delivered = np.zeros(params.num_inputs)
        for _ in range(cycles):
            outcome = router.route(traffic.generate(rng), rng)
            delivered += outcome.blocked_stage == 0
        spread = float(delivered.std() / delivered.mean())
        rows.append([discipline, measured.point, measured.acceptance.halfwidth, spread])
    result.tables["discipline"] = (
        ["priority", "PA", "CI halfwidth", "per-input delivery spread (cv)"],
        rows,
    )
    result.notes.append(
        "acceptance matches across disciplines (the analytic model is "
        "discipline-free); label priority skews deliveries toward low labels"
    )
    return result


def run_wire_policy(
    *, trials: int = 200, seed: int = 0, config: Optional[RunConfig] = None
) -> ExperimentResult:
    """First-free vs random bucket-wire assignment on a single hyperbar.

    Work conservation means the accepted *set* is identical whenever the
    contention order is; only the wire each winner rides differs.  A
    :class:`RunConfig` may supply the seed.
    """
    if config is not None and config.seed is not None:
        seed = config.seed
    rng = make_rng(seed)
    first_free = Hyperbar(16, 4, 4, wire_policy="first_free")
    random_wire = Hyperbar(16, 4, 4, wire_policy="random")
    identical = 0
    for _ in range(trials):
        digits = [int(d) if rng.random() < 0.8 else None for d in rng.integers(0, 4, 16)]
        a = first_free.route(digits, rng=rng)
        b = random_wire.route(digits, rng=rng)
        if set(a.accepted) == set(b.accepted) and a.rejected == b.rejected:
            identical += 1
    result = ExperimentResult(
        experiment_id="ablation_wire_policy",
        title="Wire-assignment ablation on H(16->4x4)",
    )
    result.tables["acceptance equivalence"] = (
        ["trials", "identical accepted sets"],
        [[trials, identical]],
    )
    result.notes.append("expected: identical on every trial (both policies are work-conserving)")
    return result


def run_schedules(
    *, runs: int = 15, seed: int = 0, config: Optional[RunConfig] = None
) -> ExperimentResult:
    """Drain-time sensitivity to the cluster schedule on RA-EDN(4,2,2,8).

    A :class:`RunConfig` may supply the seed (``batch`` is deliberately
    not forwarded — see :func:`repro.experiments.sec5_raedn.run_simulation`).
    """
    if config is not None and config.seed is not None:
        seed = config.seed
    system = RAEDNSystem(4, 2, 2, 8)
    result = ExperimentResult(
        experiment_id="ablation_schedule",
        title=f"Schedule ablation on {system}",
    )
    rows = []
    for name, schedule in (
        ("random (paper)", RandomSchedule()),
        ("round robin", RoundRobinSchedule()),
        ("lowest index", LowestIndexSchedule()),
    ):
        stats = RAEDNSimulator(system, schedule=schedule).measure(runs=runs, seed=seed)
        interval = stats.cycles.confidence_interval()
        rows.append([name, interval.point, interval.low, interval.high])
    result.tables["cycles to drain a random permutation"] = (
        ["schedule", "mean", "CI low", "CI high"],
        rows,
    )
    result.notes.append(
        "a random schedule on a fixed permutation equals a fixed schedule on a "
        "random permutation (paper, Section 5.1): all three should coincide "
        "within noise on random permutations"
    )
    return result


def run() -> list[ExperimentResult]:
    """All three ablations with default budgets."""
    return [run_priority(), run_wire_policy(), run_schedules()]
