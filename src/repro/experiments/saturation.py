"""Experiment ``saturation``: latency/throughput vs injection rate, per family.

The paper evaluates its networks purely by per-cycle acceptance
probability; the standard methodology of the buffered-multistage and NoC
literature instead sweeps the *offered injection rate* and reports, per
traffic pattern:

* **throughput** — delivered packets per output per cycle, which climbs
  linearly at low load and flattens at the network's saturation point;
* **latency** — mean and tail (p95/p99) cycles from injection to
  delivery, which stays near the pipeline minimum below saturation and
  grows sharply past it;
* the **saturation knee** — the injection rate where marginal throughput
  gain collapses, detected here as the first rate whose incremental
  delivered-per-offered slope falls below half the low-load slope.

This experiment runs that sweep on the buffered compiled core
(:func:`repro.sim.buffered.measure_buffered`) for all four topology
families at 64 terminals — EDN(16,4,4,2), delta(4,4,3), omega(64), and
the 2-dilated delta(4,4,3) — under three registry workloads by default
(uniform, 10% hotspot, bit-reversal).  ``--traffic`` replaces the
workload list with a single spec; :class:`~repro.api.RunConfig` supplies
cycle/seed budgets.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.api.spec import RunConfig
from repro.core.config import EDNParams
from repro.experiments.base import ExperimentResult
from repro.sim.buffered import measure_buffered
from repro.sim.stagegraph import (
    StageGraph,
    delta_graph,
    dilated_graph,
    edn_graph,
    omega_graph,
)

__all__ = ["run", "detect_knee", "DEFAULT_RATES", "DEFAULT_WORKLOADS", "FAMILIES"]

#: Offered injection rates swept per (family, workload) pair.
DEFAULT_RATES: tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)

#: Registry workload specs (the sweep appends ``rate=`` per point).
DEFAULT_WORKLOADS: tuple[str, ...] = ("uniform", "hotspot:0.1", "bitrev")


def _families() -> tuple[tuple[str, StageGraph], ...]:
    """The four paper topology families, all at 64 terminals."""
    return (
        ("edn", edn_graph(EDNParams(16, 4, 4, 2))),
        ("delta", delta_graph(4, 4, 3)),
        ("omega", omega_graph(64)),
        ("dilated", dilated_graph(4, 4, 3, d=2)),
    )


FAMILIES = _families


def _with_rate(spec: str, rate: float) -> str:
    """Fold an offered rate into a registry workload spec string."""
    if ":" in spec:
        return f"{spec},rate={rate:g}"
    return f"{spec}:rate={rate:g}"


def detect_knee(
    rates: Sequence[float],
    throughputs: Sequence[float],
    threshold: float = 0.5,
) -> float:
    """The saturation knee of one throughput-vs-injection-rate curve.

    Below saturation, throughput tracks offered load: each step of
    injection rate buys a proportional step of delivered throughput.
    The knee is the first swept rate whose *incremental* slope
    ``d(throughput)/d(rate)`` falls below ``threshold`` times the
    initial (low-load) slope — past it, extra offered load converts to
    queueing, not delivery.  Returns the last rate when the curve never
    flattens (the network is not saturated within the sweep), and the
    first rate on degenerate (flat-from-the-start) curves.
    """
    if len(rates) != len(throughputs):
        raise ValueError("rates and throughputs must be parallel sequences")
    if len(rates) < 2:
        return float(rates[-1]) if rates else 0.0
    slopes = [
        (throughputs[i + 1] - throughputs[i]) / (rates[i + 1] - rates[i])
        for i in range(len(rates) - 1)
    ]
    initial = slopes[0]
    if initial <= 0.0:
        return float(rates[0])
    for i, slope in enumerate(slopes):
        if slope < threshold * initial:
            return float(rates[i + 1])
    return float(rates[-1])


def run(
    *,
    rates: tuple[float, ...] = DEFAULT_RATES,
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    depth: int = 2,
    cycles: int = 300,
    warmup: int = 100,
    seed: int = 0,
    config: Optional[RunConfig] = None,
) -> ExperimentResult:
    """Latency/throughput-vs-injection-rate curves with saturation knees.

    One buffered run per (family, workload, rate) point on the compiled
    core; a :class:`RunConfig` may supply cycles/seed and a ``traffic``
    spec that replaces the workload list.
    """
    cfg = (config if config is not None else RunConfig()).resolve(
        cycles=cycles, seed=seed
    )
    cycles, seed = cfg.cycles, cfg.seed
    if cfg.traffic is not None:
        workloads = (cfg.traffic,)
    result = ExperimentResult(
        experiment_id="saturation",
        title=(
            f"Buffered latency & saturation, depth {depth}, all families "
            f"at 64 terminals"
        ),
    )
    curve_rows = []
    knee_rows = []
    for family, graph in _families():
        for workload in workloads:
            throughputs = []
            key = f"{family} / {workload}"
            mean_pts, thr_pts = [], []
            for rate in rates:
                m = measure_buffered(
                    graph,
                    traffic=_with_rate(workload, rate),
                    depth=depth,
                    cycles=cycles,
                    warmup=warmup,
                    seed=seed,
                )
                throughputs.append(m.throughput)
                thr_pts.append((rate, m.throughput))
                mean_pts.append((rate, m.mean_latency))
                curve_rows.append(
                    [
                        family,
                        workload,
                        rate,
                        m.injection_rate,
                        m.throughput,
                        m.mean_latency,
                        m.latency.p50,
                        m.latency.p95,
                        m.latency.p99,
                    ]
                )
            knee = detect_knee(rates, throughputs)
            knee_rows.append(
                [family, workload, knee, throughputs[rates.index(knee)]]
            )
            # The ASCII renderer draws at most 8 series, so only the
            # first workload's throughput + mean-latency curves go into
            # ``series`` (4 families x 2 = 8); the full per-workload
            # mean/p50/p95/p99 curves live in the tables below.
            if workload == workloads[0]:
                result.series[f"{key} throughput"] = thr_pts
                result.series[f"{key} mean latency"] = mean_pts
    result.tables["latency & throughput"] = (
        [
            "family",
            "workload",
            "offered rate",
            "injected rate",
            "throughput",
            "mean latency",
            "p50",
            "p95",
            "p99",
        ],
        curve_rows,
    )
    result.tables["saturation knees"] = (
        ["family", "workload", "knee rate", "throughput at knee"],
        knee_rows,
    )
    result.notes.append(
        f"buffer depth {depth}, {cycles} measured cycles after {warmup} warmup; "
        "knee = first swept rate whose marginal throughput slope drops below "
        "half the low-load slope (latencies in cycles, minimum = stage count)"
    )
    return result
