"""Deterministic multiprocessing fan-out for experiment grids.

The paper's figures are grids of independent Monte-Carlo points (family
member x size, network x hot fraction, ...).  :class:`ParallelSweep` maps a
worker over such a grid across processes while keeping results exactly
reproducible:

* child seeds are spawned *positionally* from the master seed
  (``SeedSequence(seed).spawn(n)[i]`` for item ``i`` — see
  :mod:`repro.sim.rng`), so item ``i`` sees the same stream regardless of
  job count, scheduling order, or whether multiprocessing is used at all;
* results are returned in item order.

Workers must be module-level callables (picklability is what the fork/
spawn boundary requires); ``jobs=1`` short-circuits to an in-process loop,
which is also the fallback wherever a pool cannot be created.

The sweep survives worker death.  A shard whose process dies (OOM kill,
segfault in a native extension) or exceeds ``shard_timeout`` is retried
exactly once on a fresh pool after a short backoff — safe because shards
are pure functions of ``(item, seed key)``, so a rerun reproduces the
lost result bit-for-bit.  Retried shard indices are surfaced on
``last_retried``; shards that fail twice raise.  Ordinary exceptions
from the worker function are *not* retried — they are bugs, and
propagate immediately.

Workers interact with two per-process optimizations transparently: each
process has its own :mod:`repro.sim.plan` cache, so a worker sweeping
many grid cells of one topology compiles its routing tables once (fork
workers additionally inherit plans the parent already compiled); and
``RunConfig.rel_err`` threads adaptive early stopping into the cells, so
every grid point spends cycles only until its own estimate converges —
results stay deterministic because child seeds are positional and
stopping decisions depend only on each cell's own stream.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as ShardTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Optional

from repro.sim.rng import SeedLike, spawn_keys

if TYPE_CHECKING:
    from repro.api.spec import RunConfig

__all__ = ["ParallelSweep"]

#: Seconds to wait before retrying lost shards on a fresh pool.
RETRY_BACKOFF = 0.25


def _call_seeded(payload):
    """Top-level pool target: unpack ``(fn, item, seed_key)`` and call."""
    fn, item, key = payload
    return fn(item, key)


def _call_plain(payload):
    """Top-level pool target: unpack ``(fn, item)`` and call."""
    fn, item = payload
    return fn(item)


class ParallelSweep:
    """Map experiment workers over a grid, optionally across processes.

    ``jobs=None`` uses every available core; ``jobs=1`` runs inline (no
    pool, no pickling — the default for tests and small grids).
    ``shard_timeout`` bounds how long one shard's result may take
    (seconds, ``None`` = forever); a shard that times out or loses its
    worker process is retried once on a fresh pool, and ``last_retried``
    records which shard indices needed it.
    """

    def __init__(self, jobs: Optional[int] = None, *, shard_timeout: Optional[float] = None):
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError(f"shard_timeout must be > 0 seconds, got {shard_timeout}")
        self.jobs = jobs
        self.shard_timeout = shard_timeout
        #: Shard indices of the last ``map``/``map_seeded`` call that were
        #: rerun after worker death or timeout (empty = clean run).
        self.last_retried: tuple[int, ...] = ()

    @classmethod
    def from_config(
        cls, config: "RunConfig | None", *, default_jobs: Optional[int] = 1
    ) -> "ParallelSweep":
        """A sweep sized by ``config.jobs`` (``default_jobs`` when unset).

        The experiment-runner convention defaults to ``jobs=1`` (inline,
        no pool) rather than all-cores, so analytic grids and tests never
        pay process start-up unless fan-out was requested.
        """
        jobs = config.jobs if config is not None and config.jobs is not None else default_jobs
        return cls(jobs)

    def resolved_jobs(self, n_items: int) -> int:
        """Worker processes that would actually be used for ``n_items``."""
        limit = self.jobs if self.jobs is not None else (os.cpu_count() or 1)
        return max(1, min(limit, n_items))

    def map(self, fn: Callable, items: Sequence) -> list:
        """``[fn(item) for item in items]``, fanned out across processes."""
        return self._run(_call_plain, [(fn, item) for item in items])

    def map_seeded(self, fn: Callable, items: Sequence, seed: SeedLike) -> list:
        """``[fn(item, child_seed_i) for i, item in enumerate(items)]``.

        Child seeds are spawned positionally from ``seed``; pass each to
        :func:`repro.sim.rng.make_rng` (or on to a ``seed=`` parameter)
        inside the worker.
        """
        keys = spawn_keys(seed, len(items))
        return self._run(
            _call_seeded, [(fn, item, key) for item, key in zip(items, keys)]
        )

    def _run(self, target: Callable, payloads: list) -> list:
        self.last_retried = ()
        jobs = self.resolved_jobs(len(payloads))
        if jobs == 1 or len(payloads) <= 1:
            return [target(payload) for payload in payloads]
        # fork shares the loaded numpy/scipy state with zero import cost;
        # fall back to the platform default where fork is unavailable.
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context()
        results: list = [None] * len(payloads)
        lost = self._fan_out(target, payloads, range(len(payloads)), jobs, ctx, results)
        if lost:
            # A dead worker poisons its whole ProcessPoolExecutor, so the
            # retry needs a fresh pool; reruns are deterministic (shards
            # are pure in (item, seed key)), so results are unaffected.
            self.last_retried = tuple(lost)
            time.sleep(RETRY_BACKOFF)
            lost = self._fan_out(
                target, payloads, lost, min(jobs, len(lost)), ctx, results
            )
            if lost:
                raise RuntimeError(
                    f"sweep shards {list(lost)} failed twice "
                    "(worker process died or shard timed out on both tries)"
                )
        return results

    def _fan_out(self, target, payloads, indices, jobs, ctx, results) -> list[int]:
        """Run ``indices`` on one pool, filling ``results``; return losses."""
        lost: list[int] = []
        timed_out = False
        pool = ProcessPoolExecutor(max_workers=jobs, mp_context=ctx)
        try:
            futures = {}
            for index in indices:
                try:
                    futures[index] = pool.submit(target, payloads[index])
                except BrokenProcessPool:
                    break  # pool already poisoned: remaining shards are lost
            lost.extend(index for index in indices if index not in futures)
            for index, future in futures.items():
                try:
                    results[index] = future.result(timeout=self.shard_timeout)
                except BrokenProcessPool:
                    lost.append(index)
                except ShardTimeout:
                    lost.append(index)
                    timed_out = True
        finally:
            # After a timeout the stuck worker may never return; abandon it
            # (cancel what has not started, do not wait) so the retry pool
            # can proceed.  A broken pool has nothing left to wait for.
            pool.shutdown(wait=not timed_out, cancel_futures=True)
        return sorted(lost)
