"""Deterministic multiprocessing fan-out for experiment grids.

The paper's figures are grids of independent Monte-Carlo points (family
member x size, network x hot fraction, ...).  :class:`ParallelSweep` maps a
worker over such a grid across processes while keeping results exactly
reproducible:

* child seeds are spawned *positionally* from the master seed
  (``SeedSequence(seed).spawn(n)[i]`` for item ``i`` — see
  :mod:`repro.sim.rng`), so item ``i`` sees the same stream regardless of
  job count, scheduling order, or whether multiprocessing is used at all;
* results are returned in item order.

Workers must be module-level callables (picklability is what the fork/
spawn boundary requires); ``jobs=1`` short-circuits to an in-process loop,
which is also the fallback wherever a pool cannot be created.

Workers interact with two per-process optimizations transparently: each
process has its own :mod:`repro.sim.plan` cache, so a worker sweeping
many grid cells of one topology compiles its routing tables once (fork
workers additionally inherit plans the parent already compiled); and
``RunConfig.rel_err`` threads adaptive early stopping into the cells, so
every grid point spends cycles only until its own estimate converges —
results stay deterministic because child seeds are positional and
stopping decisions depend only on each cell's own stream.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, Optional

from repro.sim.rng import SeedLike, spawn_keys

if TYPE_CHECKING:
    from repro.api.spec import RunConfig

__all__ = ["ParallelSweep"]


def _call_seeded(payload):
    """Top-level pool target: unpack ``(fn, item, seed_key)`` and call."""
    fn, item, key = payload
    return fn(item, key)


def _call_plain(payload):
    """Top-level pool target: unpack ``(fn, item)`` and call."""
    fn, item = payload
    return fn(item)


class ParallelSweep:
    """Map experiment workers over a grid, optionally across processes.

    ``jobs=None`` uses every available core; ``jobs=1`` runs inline (no
    pool, no pickling — the default for tests and small grids).
    """

    def __init__(self, jobs: Optional[int] = None):
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    @classmethod
    def from_config(
        cls, config: "RunConfig | None", *, default_jobs: Optional[int] = 1
    ) -> "ParallelSweep":
        """A sweep sized by ``config.jobs`` (``default_jobs`` when unset).

        The experiment-runner convention defaults to ``jobs=1`` (inline,
        no pool) rather than all-cores, so analytic grids and tests never
        pay process start-up unless fan-out was requested.
        """
        jobs = config.jobs if config is not None and config.jobs is not None else default_jobs
        return cls(jobs)

    def resolved_jobs(self, n_items: int) -> int:
        """Worker processes that would actually be used for ``n_items``."""
        limit = self.jobs if self.jobs is not None else (os.cpu_count() or 1)
        return max(1, min(limit, n_items))

    def map(self, fn: Callable, items: Sequence) -> list:
        """``[fn(item) for item in items]``, fanned out across processes."""
        return self._run(_call_plain, [(fn, item) for item in items])

    def map_seeded(self, fn: Callable, items: Sequence, seed: SeedLike) -> list:
        """``[fn(item, child_seed_i) for i, item in enumerate(items)]``.

        Child seeds are spawned positionally from ``seed``; pass each to
        :func:`repro.sim.rng.make_rng` (or on to a ``seed=`` parameter)
        inside the worker.
        """
        keys = spawn_keys(seed, len(items))
        return self._run(
            _call_seeded, [(fn, item, key) for item, key in zip(items, keys)]
        )

    def _run(self, target: Callable, payloads: list) -> list:
        jobs = self.resolved_jobs(len(payloads))
        if jobs == 1 or len(payloads) <= 1:
            return [target(payload) for payload in payloads]
        # fork shares the loaded numpy/scipy state with zero import cost;
        # fall back to the platform default where fork is unavailable.
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context()
        with ctx.Pool(processes=jobs) as pool:
            return pool.map(target, payloads, chunksize=1)
