"""Deterministic multiprocessing fan-out for experiment grids.

The paper's figures are grids of independent Monte-Carlo points (family
member x size, network x hot fraction, ...).  :class:`ParallelSweep` maps a
worker over such a grid across processes while keeping results exactly
reproducible:

* child seeds are spawned *positionally* from the master seed
  (``SeedSequence(seed).spawn(n)[i]`` for item ``i`` — see
  :mod:`repro.sim.rng`), so item ``i`` sees the same stream regardless of
  job count, scheduling order, or whether multiprocessing is used at all;
* results are returned in item order.

Workers must be module-level callables (picklability is what the fork/
spawn boundary requires); ``jobs=1`` short-circuits to an in-process loop,
which is also the fallback wherever a pool cannot be created.

The sweep survives worker death.  A shard whose process dies (OOM kill,
segfault in a native extension) or exceeds ``shard_timeout`` is retried
exactly once on a fresh pool after a short backoff — safe because shards
are pure functions of ``(item, seed key)``, so a rerun reproduces the
lost result bit-for-bit.  Retried shard indices are surfaced on
``last_retried``; shards that fail twice raise.  Ordinary exceptions
from the worker function are *not* retried — they are bugs, and
propagate immediately.  The supervision machinery itself (deadline-based
collection, fresh-pool retry, attempt ledger) lives in
:mod:`repro.serve.supervisor`, shared with the simulation service's
worker pool; ``shard_timeout`` deadlines are *per shard from the moment
it starts running*, so one slow shard never extends another's clock.

Grids expressed as measurement cells (:class:`~repro.api.jobs.SweepCell`)
can additionally be routed to a running simulation service with
``service="HOST:PORT"`` — :meth:`map_cells` then submits the cells over
the wire (gaining the service's result cache and cross-client dedupe)
instead of forking a local pool, with bit-identical results.

Workers interact with two per-process optimizations transparently: each
process has its own :mod:`repro.sim.plan` cache, so a worker sweeping
many grid cells of one topology compiles its routing tables once (fork
workers additionally inherit plans the parent already compiled); and
``RunConfig.rel_err`` threads adaptive early stopping into the cells, so
every grid point spends cycles only until its own estimate converges —
results stay deterministic because child seeds are positional and
stopping decisions depend only on each cell's own stream.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, Optional

from repro.serve.supervisor import RETRY_BACKOFF, supervised_map
from repro.sim.rng import SeedLike, spawn_keys

if TYPE_CHECKING:
    from repro.api.jobs import SweepCell
    from repro.api.spec import RunConfig

__all__ = ["ParallelSweep"]


def _call_seeded(payload):
    """Top-level pool target: unpack ``(fn, item, seed_key)`` and call."""
    fn, item, key = payload
    return fn(item, key)


def _call_plain(payload):
    """Top-level pool target: unpack ``(fn, item)`` and call."""
    fn, item = payload
    return fn(item)


def _call_cell(payload):
    """Top-level pool target: measure one serialized SweepCell."""
    from repro.api.jobs import SweepCell, measure_cell

    return measure_cell(SweepCell.from_payload(payload))


class ParallelSweep:
    """Map experiment workers over a grid, optionally across processes.

    ``jobs=None`` uses every available core; ``jobs=1`` runs inline (no
    pool, no pickling — the default for tests and small grids).
    ``shard_timeout`` bounds how long one shard may *run* (seconds,
    ``None`` = forever; the clock starts when the shard's worker picks it
    up, not at submission); a shard that times out or loses its worker
    process is retried once on a fresh pool, and ``last_retried`` records
    which shard indices needed it.  ``service`` routes :meth:`map_cells`
    grids to a running simulation service instead of a local pool.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        shard_timeout: Optional[float] = None,
        service: Optional[str] = None,
    ):
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError(f"shard_timeout must be > 0 seconds, got {shard_timeout}")
        self.jobs = jobs
        self.shard_timeout = shard_timeout
        self.service = service
        #: Shard indices of the last ``map``/``map_seeded`` call that were
        #: rerun after worker death or timeout (empty = clean run).
        self.last_retried: tuple[int, ...] = ()

    @classmethod
    def from_config(
        cls, config: "RunConfig | None", *, default_jobs: Optional[int] = 1
    ) -> "ParallelSweep":
        """A sweep sized and tuned by ``config`` (``default_jobs`` when unset).

        Threads ``config.jobs``, ``config.shard_timeout``, and
        ``config.service`` through.  The experiment-runner convention
        defaults to ``jobs=1`` (inline, no pool) rather than all-cores,
        so analytic grids and tests never pay process start-up unless
        fan-out was requested.
        """
        jobs = config.jobs if config is not None and config.jobs is not None else default_jobs
        shard_timeout = config.shard_timeout if config is not None else None
        service = config.service if config is not None else None
        return cls(jobs, shard_timeout=shard_timeout, service=service)

    def resolved_jobs(self, n_items: int) -> int:
        """Worker processes that would actually be used for ``n_items``."""
        limit = self.jobs if self.jobs is not None else (os.cpu_count() or 1)
        return max(1, min(limit, n_items))

    def map(self, fn: Callable, items: Sequence) -> list:
        """``[fn(item) for item in items]``, fanned out across processes."""
        return self._run(_call_plain, [(fn, item) for item in items])

    def map_seeded(self, fn: Callable, items: Sequence, seed: SeedLike) -> list:
        """``[fn(item, child_seed_i) for i, item in enumerate(items)]``.

        Child seeds are spawned positionally from ``seed``; pass each to
        :func:`repro.sim.rng.make_rng` (or on to a ``seed=`` parameter)
        inside the worker.
        """
        keys = spawn_keys(seed, len(items))
        return self._run(
            _call_seeded, [(fn, item, key) for item, key in zip(items, keys)]
        )

    def map_cells(self, cells: "Sequence[SweepCell]") -> list:
        """Measure a grid of :class:`~repro.api.jobs.SweepCell` cells.

        With ``service`` set, submits the whole grid to the running
        simulation service in one job (the server dedupes identical cells
        against its content-keyed result cache and across concurrent
        clients, and shards misses over its own worker pool); otherwise
        runs locally through :func:`~repro.api.jobs.measure_cell` with
        the usual process fan-out.  Both paths execute exactly
        ``measure_cell``, so results are bit-identical.
        """
        cells = list(cells)
        if self.service is not None:
            from repro.serve.client import ServiceClient

            self.last_retried = ()
            with ServiceClient(self.service) as client:
                return client.run(cells)
        return self._run(_call_cell, [cell.payload() for cell in cells])

    def _run(self, target: Callable, payloads: list) -> list:
        self.last_retried = ()
        jobs = self.resolved_jobs(len(payloads))
        if jobs == 1 or len(payloads) <= 1:
            return [target(payload) for payload in payloads]
        results, retried = supervised_map(
            target, payloads, jobs=jobs, timeout=self.shard_timeout
        )
        self.last_retried = retried
        return results
