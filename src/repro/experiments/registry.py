"""Registry mapping experiment IDs to their runners.

One entry per row of DESIGN.md's experiment index.  ``run_experiment``
executes by ID with default budgets; ``main`` (also the
``python -m repro.experiments.registry`` entry point) runs everything and
prints the reports — the closest thing to "regenerate all figures".

Runners that support them accept ``jobs`` (ParallelSweep process fan-out)
and ``batch`` (cycles per batched-routing chunk); ``run_experiment``
forwards whichever of these each runner's signature declares, so the CLI's
``--jobs``/``--batch`` apply wherever they are meaningful and are ignored
where they are not.
"""

from __future__ import annotations

import inspect
from functools import partial
from typing import Callable, Optional

from repro.experiments import (
    ablations,
    costs,
    extensions,
    fault_tolerance,
    fig2_hyperbar,
    fig4_topology,
    fig6_identity,
    fig7_families,
    fig11_resubmission,
    hotspot,
    scaling,
    sec5_raedn,
)
from repro.experiments.base import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig2": fig2_hyperbar.run,
    "fig4": fig4_topology.run,
    "fig5_6": fig6_identity.run,
    "fig7": partial(fig7_families.run, 8),
    "fig8": partial(fig7_families.run, 16),
    "fig7_mc": partial(fig7_families.run_montecarlo_validation, 8),
    "fig8_mc": partial(fig7_families.run_montecarlo_validation, 16),
    "fig11": fig11_resubmission.run,
    "fig11_sim": fig11_resubmission.run_simulation_validation,
    "sec5_example": sec5_raedn.run,
    "sec5_sim": sec5_raedn.run_simulation,
    "eq2_eq3": costs.run,
    "eq2_eq3_dilated": costs.run_dilation_comparison,
    "cost_performance": costs.run_cost_performance,
    "nuts": hotspot.run,
    "ablation_priority": ablations.run_priority,
    "ablation_wire_policy": ablations.run_wire_policy,
    "ablation_schedule": ablations.run_schedules,
    "fault_tolerance": fault_tolerance.run,
    "scaling": scaling.run,
    "buffered": extensions.run_buffered,
    "admissibility": extensions.run_admissibility,
}


def _supported_overrides(runner: Callable, **overrides) -> dict:
    """The subset of non-None ``overrides`` the runner's signature accepts."""
    parameters = inspect.signature(runner).parameters
    accepts_kwargs = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )
    return {
        name: value
        for name, value in overrides.items()
        if value is not None and (accepts_kwargs or name in parameters)
    }


def run_experiment(
    experiment_id: str,
    *,
    jobs: Optional[int] = None,
    batch: Optional[int] = None,
) -> ExperimentResult:
    """Run one experiment by its DESIGN.md ID.

    ``jobs`` and ``batch`` are forwarded to runners that declare them
    (Monte-Carlo grids); analytic experiments silently ignore them.
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(**_supported_overrides(runner, jobs=jobs, batch=batch))


def main(
    ids: list[str] | None = None,
    *,
    jobs: Optional[int] = None,
    batch: Optional[int] = None,
) -> None:
    """Run the requested (default: all) experiments and print their reports."""
    for experiment_id in ids if ids is not None else sorted(EXPERIMENTS):
        result = run_experiment(experiment_id, jobs=jobs, batch=batch)
        print(result.render())
        print()
        print("-" * 78)
        print()


if __name__ == "__main__":
    import sys

    main(sys.argv[1:] or None)
