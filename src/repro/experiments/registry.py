"""Registry mapping experiment IDs to their runners.

One entry per row of DESIGN.md's experiment index.  ``run_experiment``
executes by ID with default budgets; ``main`` (also the
``python -m repro.experiments.registry`` entry point) runs everything and
prints the reports — the closest thing to "regenerate all figures".

Every registered runner accepts a ``config`` keyword — a
:class:`repro.api.RunConfig` carrying execution overrides (``jobs``
process fan-out, ``batch`` cycles per routing chunk, seed/cycle budgets).
Monte-Carlo runners honor the fields that apply to them; analytic runners
accept and ignore the config, which keeps dispatch a plain explicit call
with no signature introspection.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Optional

from repro.api.spec import RunConfig
from repro.experiments import (
    ablations,
    costs,
    degradation,
    extensions,
    fault_tolerance,
    fig2_hyperbar,
    fig4_topology,
    fig6_identity,
    fig7_families,
    fig11_resubmission,
    hotspot,
    saturation,
    scaling,
    sec5_raedn,
    workload_matrix,
)
from repro.experiments.base import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig2": fig2_hyperbar.run,
    "fig4": fig4_topology.run,
    "fig5_6": fig6_identity.run,
    "fig7": partial(fig7_families.run, 8),
    "fig8": partial(fig7_families.run, 16),
    "fig7_mc": partial(fig7_families.run_montecarlo_validation, 8),
    "fig8_mc": partial(fig7_families.run_montecarlo_validation, 16),
    "fig11": fig11_resubmission.run,
    "fig11_sim": fig11_resubmission.run_simulation_validation,
    "sec5_example": sec5_raedn.run,
    "sec5_sim": sec5_raedn.run_simulation,
    "eq2_eq3": costs.run,
    "eq2_eq3_dilated": costs.run_dilation_comparison,
    "cost_performance": costs.run_cost_performance,
    "nuts": hotspot.run,
    "ablation_priority": ablations.run_priority,
    "ablation_wire_policy": ablations.run_wire_policy,
    "ablation_schedule": ablations.run_schedules,
    "fault_tolerance": fault_tolerance.run,
    "degradation": degradation.run,
    "scaling": scaling.run,
    "buffered": extensions.run_buffered,
    "admissibility": extensions.run_admissibility,
    "saturation": saturation.run,
    "workload_matrix": workload_matrix.run,
}


def run_experiment(
    experiment_id: str,
    *,
    config: Optional[RunConfig] = None,
    jobs: Optional[int] = None,
    batch: Optional[int] = None,
    traffic: Optional[str] = None,
    rel_err: Optional[float] = None,
    shard_timeout: Optional[float] = None,
    service: Optional[str] = None,
) -> ExperimentResult:
    """Run one experiment by its DESIGN.md ID.

    ``config`` carries the execution overrides; the ``jobs``/``batch``/
    ``traffic``/``rel_err``/``shard_timeout``/``service`` keywords are
    CLI-flag shims layered on top of it (explicit values win).  Analytic
    experiments ignore whatever does not apply to them, and runners whose
    workload *is* the figure (fig7_mc, nuts, ...) ignore ``traffic`` too —
    ``workload_matrix`` honors it.  ``rel_err`` switches Monte-Carlo
    runners to adaptive early stopping (the cycle budget becomes a
    ceiling); ``shard_timeout`` bounds each sweep shard's running time;
    ``service`` routes cell-based grids to a simulation service.
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    cfg = (config if config is not None else RunConfig()).override(
        jobs=jobs,
        batch=batch,
        traffic=traffic,
        rel_err=rel_err,
        shard_timeout=shard_timeout,
        service=service,
    )
    return runner(config=cfg)


def main(
    ids: list[str] | None = None,
    *,
    config: Optional[RunConfig] = None,
    jobs: Optional[int] = None,
    batch: Optional[int] = None,
    traffic: Optional[str] = None,
    rel_err: Optional[float] = None,
    shard_timeout: Optional[float] = None,
    service: Optional[str] = None,
) -> None:
    """Run the requested (default: all) experiments and print their reports."""
    for experiment_id in ids if ids is not None else sorted(EXPERIMENTS):
        result = run_experiment(
            experiment_id,
            config=config,
            jobs=jobs,
            batch=batch,
            traffic=traffic,
            rel_err=rel_err,
            shard_timeout=shard_timeout,
            service=service,
        )
        print(result.render())
        print()
        print("-" * 78)
        print()


if __name__ == "__main__":
    import sys

    main(sys.argv[1:] or None)
