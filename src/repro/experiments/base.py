"""Common result container for paper-figure experiments.

Every experiment module exposes ``run(...) -> ExperimentResult`` producing
the same rows/series the paper reports, plus shape assertions the
benchmarks rely on.  Results render to plain text (tables + ASCII curves)
and carry machine-readable data so EXPERIMENTS.md numbers stay auditable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.viz.curves import Series, render_plot
from repro.viz.tables import format_table

__all__ = ["ExperimentResult"]


def _csv_quote(value: str) -> str:
    """Minimal CSV field quoting (commas/quotes/newlines)."""
    if any(ch in value for ch in ',"\n'):
        return '"' + value.replace('"', '""') + '"'
    return value


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes
    ----------
    experiment_id:
        Stable identifier matching DESIGN.md's experiment index
        (``fig7``, ``sec5_example``, ...).
    title:
        Human-readable headline.
    series:
        Named curves, each a list of ``(x, y)`` pairs — the figure data.
    tables:
        Named tables as ``(headers, rows)`` pairs.
    notes:
        Free-form observations (paper-vs-measured commentary).
    """

    experiment_id: str
    title: str
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    tables: dict[str, tuple[list[str], list[list[object]]]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def series_y(self, name: str) -> list[float]:
        """The y-values of one series, in x order."""
        return [y for _, y in sorted(self.series[name])]

    def series_csv(self) -> str:
        """All series as CSV (columns: series, x, y) for external plotting."""
        lines = ["series,x,y"]
        for name in sorted(self.series):
            for x, y in sorted(self.series[name]):
                lines.append(f"{_csv_quote(name)},{x!r},{y!r}")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """The full result as JSON-compatible plain data.

        Series points become ``[x, y]`` pairs in x order; tables become
        ``{"headers": [...], "rows": [...]}`` with cells stringified only
        when they are not already JSON-representable numbers/strings.
        """

        def cell(value: object) -> object:
            if isinstance(value, (int, float, str, bool)) or value is None:
                return value
            return str(value)

        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "series": {
                name: [[x, y] for x, y in sorted(points)]
                for name, points in self.series.items()
            },
            "tables": {
                name: {
                    "headers": [str(h) for h in headers],
                    "rows": [[cell(v) for v in row] for row in rows],
                }
                for name, (headers, rows) in self.tables.items()
            },
            "notes": list(self.notes),
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """The full result as a JSON document (machine-readable figure data)."""
        return json.dumps(self.to_dict(), indent=indent)

    def table_csv(self, name: str) -> str:
        """One named table as CSV."""
        headers, rows = self.tables[name]
        lines = [",".join(_csv_quote(str(h)) for h in headers)]
        for row in rows:
            lines.append(",".join(_csv_quote(str(cell)) for cell in row))
        return "\n".join(lines) + "\n"

    def render(self, *, plot: bool = True, width: int = 72, height: int = 18) -> str:
        """Full text report: title, tables, optional ASCII plot, notes."""
        chunks = [self.title, "=" * len(self.title)]
        for name, (headers, rows) in self.tables.items():
            chunks.append("")
            chunks.append(format_table(headers, rows, title=name))
        if plot and self.series:
            drawable = {n: pts for n, pts in self.series.items() if len(pts) >= 1}
            if drawable:
                xs = [x for pts in drawable.values() for x, _ in pts]
                # Log x-axis only when meaningful: strictly positive values
                # spanning more than a decade (the paper's size sweeps).
                log_x = min(xs) > 0 and max(xs) / min(xs) > 10
                chunks.append("")
                chunks.append(
                    render_plot(
                        [Series.from_pairs(n, pts) for n, pts in drawable.items()],
                        width=width,
                        height=height,
                        log_x=log_x,
                        title=f"[{self.experiment_id}]",
                    )
                )
        if self.notes:
            chunks.append("")
            chunks.extend(f"note: {note}" for note in self.notes)
        return "\n".join(chunks)
