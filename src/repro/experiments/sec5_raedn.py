"""Experiment ``sec5_example``: RA-EDN permutation-routing time (Section 5).

The paper's worked example: an ``RA-EDN(16,4,2,16)`` system — 1024 clusters
of 16 PEs on an ``EDN(64,16,4,2)``, i.e. the 16K-PE MasPar MP-1 router —
has ``PA(1) = .544``, drains the tail in ``J = 5`` cycles, and routes an
average permutation in about ``16/.544 + 5 = 34.41`` network cycles.

``run`` reproduces the analytic numbers; ``run_simulation`` drains real
random permutations through the cycle simulator.  The simulator needs more
cycles than the analytic estimate (≈45 vs ≈34 for the MP-1): the paper's
model tracks the *mean* leftover rate and ignores that the slowest of the
1024 cluster queues governs completion.  The shape — a ``q/PA(1)`` head
phase plus a short tail — holds in simulation.
"""

from __future__ import annotations

from typing import Optional

from repro.api.spec import RunConfig
from repro.experiments.base import ExperimentResult
from repro.simd.analytic import expected_permutation_time
from repro.simd.maspar import maspar_mp1
from repro.simd.ra_edn import RAEDNSystem
from repro.simd.simulator import RAEDNSimulator

__all__ = ["PAPER_PA1", "PAPER_J", "PAPER_TIME", "run", "run_simulation"]

PAPER_PA1 = 0.544
PAPER_J = 5
PAPER_TIME = 34.41


def run(
    system: RAEDNSystem | None = None, *, config: Optional[RunConfig] = None
) -> ExperimentResult:
    """Evaluate the Section 5 drain model (defaults to the MP-1 example).

    Analytic; ``config`` is accepted for uniform registry dispatch and
    ignored.
    """
    del config
    if system is None:
        system = maspar_mp1()
    model = expected_permutation_time(system)
    result = ExperimentResult(
        experiment_id="sec5_example",
        title=f"Section 5 example: expected permutation time of {system}",
    )
    result.tables["drain model"] = (
        ["quantity", "paper", "measured"],
        [
            ["PA(1)", PAPER_PA1, model.pa_full_load],
            ["head cycles q/PA(1)", round(16 / PAPER_PA1, 2), model.head_cycles],
            ["tail cycles J", PAPER_J, model.tail_cycles],
            ["expected total T", PAPER_TIME, model.expected_cycles],
        ],
    )
    result.series["tail leftover rate r_j"] = [
        (float(j + 1), rate) for j, rate in enumerate(model.tail_rates)
    ]
    result.notes.append(
        "paper values hold for the documented MP-1 system; for other systems the "
        "'paper' column is only the MP-1 reference"
    )
    return result


def run_simulation(
    system: RAEDNSystem | None = None,
    *,
    runs: int = 5,
    seed: int = 42,
    drain_batch: int | None = None,
    config: Optional[RunConfig] = None,
) -> ExperimentResult:
    """Drain random permutations on the cycle simulator vs the model.

    ``drain_batch`` > 1 drains that many permutations side by side on the
    batched engine (see :meth:`~repro.simd.simulator.RAEDNSimulator.measure`);
    the default keeps the historical one-at-a-time path.  (Deliberately
    *not* named ``batch``: ``config.batch`` / the registry's ``--batch``
    override means cycles-per-chunk for Monte-Carlo acceptance grids,
    which is a different knob — side-by-side draining changes the RNG
    layout and belongs to ``repro maspar --batch`` — so only
    ``config.seed`` is honored here.)
    """
    if config is not None and config.seed is not None:
        seed = config.seed
    if system is None:
        system = maspar_mp1()
    model = expected_permutation_time(system)
    stats = RAEDNSimulator(system).measure(runs=runs, seed=seed, batch=drain_batch)
    result = ExperimentResult(
        experiment_id="sec5_sim",
        title=f"Section 5 simulation: {system} drains a random permutation",
    )
    interval = stats.cycles.confidence_interval()
    result.tables["model vs simulation"] = (
        ["quantity", "analytic model", "simulated"],
        [
            ["cycles to drain", model.expected_cycles, interval.point],
            ["95% CI", "", f"[{interval.low:.2f}, {interval.high:.2f}]"],
            ["runs", "", runs],
        ],
    )
    result.notes.append(
        "the analytic model tracks mean leftover load and underestimates the "
        "straggler-dominated tail; the head phase q/PA(1) dominates both"
    )
    return result
