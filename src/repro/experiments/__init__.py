"""Experiment harness: one module per paper figure/table.

See DESIGN.md's experiment index for the ID ↔ figure mapping and
:mod:`repro.experiments.registry` for programmatic access.  Each module's
``run`` returns an :class:`~repro.experiments.base.ExperimentResult`
carrying the same series/rows the paper reports.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.parallel import ParallelSweep

__all__ = ["ExperimentResult", "ParallelSweep"]
