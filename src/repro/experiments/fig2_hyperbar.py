"""Experiment ``fig2``: the paper's H(8 -> 4 x 2) routing example (Figure 2).

The paper routes eight inputs with control digits ``3,2,3,1,2,2,0,3``
through a hyperbar with four buckets of capacity two and observes that,
under input-label priority, "inputs 5 and 7 are discarded": bucket 2
already holds inputs 1 and 4 when input 5 arrives, and bucket 3 holds
inputs 0 and 2 when input 7 arrives.
"""

from __future__ import annotations

from typing import Optional

from repro.api.spec import RunConfig

from repro.core.hyperbar import Hyperbar
from repro.experiments.base import ExperimentResult
from repro.viz.ascii_art import render_hyperbar_routing

__all__ = ["PAPER_DIGITS", "PAPER_DISCARDS", "run"]

#: Control digits read off the paper's Figure 2, top to bottom.
PAPER_DIGITS = [3, 2, 3, 1, 2, 2, 0, 3]

#: The inputs Figure 2 shows being discarded.
PAPER_DISCARDS = [5, 7]


def run(*, config: Optional[RunConfig] = None) -> ExperimentResult:
    """Route the Figure 2 example and compare discards with the paper.

    Deterministic; ``config`` is accepted for uniform registry dispatch
    and ignored.
    """
    del config
    switch = Hyperbar(8, 4, 2, priority="label")
    outcome = switch.route(PAPER_DIGITS)
    result = ExperimentResult(
        experiment_id="fig2",
        title="Figure 2: H(8->4x2) hyperbar routing example",
    )
    rows = []
    for i, digit in enumerate(PAPER_DIGITS):
        if i in outcome.accepted:
            wire = outcome.accepted[i]
            fate = f"bucket {wire // 2} wire {wire % 2}"
        else:
            fate = "discarded"
        rows.append([i, digit, fate])
    result.tables["routing"] = (["input", "digit", "fate"], rows)
    result.tables["comparison"] = (
        ["quantity", "paper", "measured"],
        [
            ["discarded inputs", str(PAPER_DISCARDS), str(outcome.rejected)],
            ["accepted count", 8 - len(PAPER_DISCARDS), outcome.num_accepted],
        ],
    )
    result.notes.append(render_hyperbar_routing(8, 4, 2, PAPER_DIGITS, outcome))
    result.notes.append(
        "match" if outcome.rejected == PAPER_DISCARDS else "MISMATCH with the paper"
    )
    return result
