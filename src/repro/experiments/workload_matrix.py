"""Experiment ``workload_matrix``: acceptance across topology x traffic.

The paper evaluates EDNs almost entirely under uniform random and random
permutation loads (Sections 3.2, 3.2.1 and 5); the claim that expansion
keeps acceptance high "for very large parallel computers" is only
credible across the workload diversity real machines see.  This
experiment sweeps the batched-capable 64-terminal topologies against the
full built-in workload registry — uniform/permutation (the paper's
regimes), hot-spot (NUTS, reference [13]), the structured permutations
of the banyan literature (bit reversal, transpose, shuffle, complement,
tornado), bursty on/off sources, and a foreground/background mixture —
producing one acceptance table that shows where path multiplicity pays.

Expected shape: the crossbar column bounds everything (only output
contention); the single-path delta suffers most under structured and
hot-spot loads (unique paths saturate); the multipath EDN sits in
between, and under partial-rate loads everyone recovers.
"""

from __future__ import annotations

from typing import Optional

from repro.api.jobs import SweepCell
from repro.api.registry import resolve_backend
from repro.api.spec import NetworkSpec, RunConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.parallel import ParallelSweep
from repro.sim.rng import spawn_keys
from repro.workloads import parse_workload

__all__ = ["TOPOLOGIES", "TRAFFIC", "run"]

#: 64-terminal, batched-backend-capable topologies (comparable columns).
#: Every multistage column — including the dilated baseline — compiles to
#: the plan-cached stage-graph kernels, so the whole grid runs batched.
TOPOLOGIES = (
    "edn:16,4,4,2",
    "delta:8,8,2",
    "omega:64",
    "dilated:64,4,2",
    "crossbar:64",
)

#: One spec per built-in workload family (64 = 2^6: every pattern applies).
TRAFFIC = (
    "uniform",
    "uniform:0.5",
    "permutation",
    "hotspot:0.05",
    "hotspot:0.2",
    "bitrev",
    "transpose",
    "shuffle",
    "complement",
    "tornado",
    "bursty:on=8,off=24",
    "mixture:uniform@0.7+hotspot:0.1@0.3",
)


def run(
    *,
    topologies: tuple[str, ...] = TOPOLOGIES,
    traffic: tuple[str, ...] = TRAFFIC,
    cycles: int = 60,
    seed: int = 0,
    batch: int | None = None,
    jobs: int | None = 1,
    config: Optional[RunConfig] = None,
) -> ExperimentResult:
    """Measure acceptance on the topology x traffic grid.

    The grid fans out over ``jobs`` processes; every cell routes batched
    chunks under its own positionally spawned child of ``seed``, so the
    table is identical at any job count.  A :class:`RunConfig` may supply
    cycles/seed/batch/jobs/rel_err as usual; a set ``config.traffic``
    narrows the sweep to that single workload (the CLI's ``experiment
    --traffic``) and a set ``config.rel_err`` lets every cell stop as
    soon as its own acceptance estimate converges.

    The grid is expressed as :class:`~repro.api.jobs.SweepCell` cells —
    each a ``(spec, config-with-positional-child-seed)`` pair — so the
    same grid runs through the local pool, inline, or (via
    ``config.service``) a running simulation service, bit-identically:
    all three paths execute :func:`~repro.api.jobs.measure_cell`, and
    each worker's per-process plan cache still compiles one topology's
    routing tables once across its traffic cells.
    """
    cfg = (config if config is not None else RunConfig()).resolve(
        cycles=cycles, seed=seed, batch=batch, jobs=jobs
    )
    if cfg.traffic is not None:
        traffic = (cfg.traffic,)
    workloads = [parse_workload(text) for text in traffic]
    specs = [NetworkSpec.parse(text) for text in topologies]
    backends = [resolve_backend(spec, cfg.backend) for spec in specs]

    pairs = [(spec, workload) for workload in workloads for spec in specs]
    cells = [
        SweepCell(
            spec=spec,
            config=RunConfig(
                cycles=cfg.cycles,
                seed=key,
                batch=cfg.batch,
                backend=cfg.backend,
                rel_err=cfg.rel_err,
                traffic=workload.label,
            ),
        )
        for (spec, workload), key in zip(pairs, spawn_keys(cfg.seed, len(pairs)))
    ]
    measurements = ParallelSweep.from_config(cfg).map_cells(cells)
    points = [measurement.point for measurement in measurements]

    result = ExperimentResult(
        experiment_id="workload_matrix",
        title="Acceptance across topology x traffic (the scenario-coverage matrix)",
    )
    rows = []
    for row_index, workload in enumerate(workloads):
        cells = points[row_index * len(specs) : (row_index + 1) * len(specs)]
        rows.append([workload.label] + [round(value, 6) for value in cells])
    result.tables["PA by traffic x topology"] = (
        ["traffic"] + [spec.label for spec in specs],
        rows,
    )
    result.tables["engines"] = (
        ["topology", "backend", "natively batched"],
        [
            [spec.label, backend.name, backend.batched]
            for spec, backend in zip(specs, backends)
        ],
    )
    result.notes.append(
        "the crossbar column isolates unavoidable output contention; each "
        "network's shortfall against it is internal blocking, largest for "
        "single-path fabrics under structured/hot-spot loads"
    )
    result.notes.append(
        f"{cfg.cycles} cycles/cell, seed {cfg.seed}; every workload's "
        "generate_batch is vectorized, so batched backends route whole "
        "chunks without per-cycle Python loops"
    )
    return result
