"""Experiment ``workload_matrix``: acceptance across topology x traffic.

The paper evaluates EDNs almost entirely under uniform random and random
permutation loads (Sections 3.2, 3.2.1 and 5); the claim that expansion
keeps acceptance high "for very large parallel computers" is only
credible across the workload diversity real machines see.  This
experiment sweeps the batched-capable 64-terminal topologies against the
full built-in workload registry — uniform/permutation (the paper's
regimes), hot-spot (NUTS, reference [13]), the structured permutations
of the banyan literature (bit reversal, transpose, shuffle, complement,
tornado), bursty on/off sources, and a foreground/background mixture —
producing one acceptance table that shows where path multiplicity pays.

Expected shape: the crossbar column bounds everything (only output
contention); the single-path delta suffers most under structured and
hot-spot loads (unique paths saturate); the multipath EDN sits in
between, and under partial-rate loads everyone recovers.
"""

from __future__ import annotations

from typing import Optional

from repro.api.registry import build_router, resolve_backend
from repro.api.spec import NetworkSpec, RunConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.parallel import ParallelSweep
from repro.sim.montecarlo import measure_acceptance
from repro.workloads import make_traffic, parse_workload

__all__ = ["TOPOLOGIES", "TRAFFIC", "run"]

#: 64-terminal, batched-backend-capable topologies (comparable columns).
#: Every multistage column — including the dilated baseline — compiles to
#: the plan-cached stage-graph kernels, so the whole grid runs batched.
TOPOLOGIES = (
    "edn:16,4,4,2",
    "delta:8,8,2",
    "omega:64",
    "dilated:64,4,2",
    "crossbar:64",
)

#: One spec per built-in workload family (64 = 2^6: every pattern applies).
TRAFFIC = (
    "uniform",
    "uniform:0.5",
    "permutation",
    "hotspot:0.05",
    "hotspot:0.2",
    "bitrev",
    "transpose",
    "shuffle",
    "complement",
    "tornado",
    "bursty:on=8,off=24",
    "mixture:uniform@0.7+hotspot:0.1@0.3",
)


def _matrix_cell(task, seed_key) -> float:
    """One (topology, traffic) grid cell (ParallelSweep worker).

    ``build_router`` consults the plan cache, so a worker sweeping many
    traffic cells of one topology compiles its routing tables once.
    """
    topology, traffic, cycles, batch, backend, rel_err = task
    spec = NetworkSpec.parse(topology)
    router = build_router(spec, backend)
    generator = make_traffic(traffic, router.n_inputs, router.n_outputs)
    return measure_acceptance(
        router,
        generator,
        cycles=cycles,
        seed=seed_key,
        batch=batch,
        rel_err=rel_err,
    ).point


def run(
    *,
    topologies: tuple[str, ...] = TOPOLOGIES,
    traffic: tuple[str, ...] = TRAFFIC,
    cycles: int = 60,
    seed: int = 0,
    batch: int | None = None,
    jobs: int | None = 1,
    config: Optional[RunConfig] = None,
) -> ExperimentResult:
    """Measure acceptance on the topology x traffic grid.

    The grid fans out over ``jobs`` processes; every cell routes batched
    chunks under its own positionally spawned child of ``seed``, so the
    table is identical at any job count.  A :class:`RunConfig` may supply
    cycles/seed/batch/jobs/rel_err as usual; a set ``config.traffic``
    narrows the sweep to that single workload (the CLI's ``experiment
    --traffic``) and a set ``config.rel_err`` lets every cell stop as
    soon as its own acceptance estimate converges.
    """
    cfg = (config if config is not None else RunConfig()).resolve(
        cycles=cycles, seed=seed, batch=batch, jobs=jobs
    )
    if cfg.traffic is not None:
        traffic = (cfg.traffic,)
    workloads = [parse_workload(text) for text in traffic]
    specs = [NetworkSpec.parse(text) for text in topologies]
    backends = [resolve_backend(spec, cfg.backend) for spec in specs]

    tasks = [
        (spec.label, workload.label, cfg.cycles, cfg.batch, cfg.backend, cfg.rel_err)
        for workload in workloads
        for spec in specs
    ]
    points = ParallelSweep.from_config(cfg).map_seeded(_matrix_cell, tasks, cfg.seed)

    result = ExperimentResult(
        experiment_id="workload_matrix",
        title="Acceptance across topology x traffic (the scenario-coverage matrix)",
    )
    rows = []
    for row_index, workload in enumerate(workloads):
        cells = points[row_index * len(specs) : (row_index + 1) * len(specs)]
        rows.append([workload.label] + [round(value, 6) for value in cells])
    result.tables["PA by traffic x topology"] = (
        ["traffic"] + [spec.label for spec in specs],
        rows,
    )
    result.tables["engines"] = (
        ["topology", "backend", "natively batched"],
        [
            [spec.label, backend.name, backend.batched]
            for spec, backend in zip(specs, backends)
        ],
    )
    result.notes.append(
        "the crossbar column isolates unavoidable output contention; each "
        "network's shortfall against it is internal blocking, largest for "
        "single-path fabrics under structured/hot-spot loads"
    )
    result.notes.append(
        f"{cfg.cycles} cycles/cell, seed {cfg.seed}; every workload's "
        "generate_batch is vectorized, so batched backends route whole "
        "chunks without per-cycle Python loops"
    )
    return result
