"""Experiment ``scaling``: the MasPar router family from 1K to 256K PEs.

The paper's title promises *very large* parallel computers; this extension
asks how the MP-1's router family — ``RA-EDN(16, 4, l, 16)``, i.e. clusters
of 16 PEs on an ``EDN(64, 16, 4, l)`` — scales as stages are added:
1K PEs at ``l = 1`` (64 ports), the real 16K machine at ``l = 2``
(1024 ports), and a hypothetical 256K machine at ``l = 3`` (16384 ports).

For each member: full-load acceptance, the Section 5 drain-time
decomposition, and network costs.  Expected shape: ``PA(1)`` decays slowly
(one extra hyperbar stage per 16x size step), so the expected permutation
time — dominated by ``q / PA(1)`` — grows only gently while the machine
grows 16x per step; cost per port grows by one hyperbar share per stage,
i.e. logarithmically in machine size.  That *is* the paper's scalability
argument in one table.
"""

from __future__ import annotations

from typing import Optional

from repro.api.spec import RunConfig
from repro.core.cost import crosspoint_cost, wire_cost
from repro.experiments.base import ExperimentResult
from repro.simd.analytic import expected_permutation_time
from repro.simd.maspar import maspar_family

__all__ = ["FAMILY_SIZES", "run"]

FAMILY_SIZES = (1_024, 16_384, 262_144)


def run(*, config: Optional[RunConfig] = None) -> ExperimentResult:
    """Scale the MP-1 router family and tabulate performance + cost.

    Purely analytic (three closed-form rows), so it takes no ``jobs``
    fan-out — process setup would cost more than the work; ``config`` is
    accepted for uniform registry dispatch and ignored.
    """
    del config
    result = ExperimentResult(
        experiment_id="scaling",
        title="MasPar router family scaling: RA-EDN(16,4,l,16) for l = 1..3",
    )
    rows = []
    for n_pes in FAMILY_SIZES:
        system = maspar_family(n_pes)
        params = system.network_params
        model = expected_permutation_time(system)
        rows.append(
            [
                str(system),
                n_pes,
                system.num_ports,
                model.pa_full_load,
                model.expected_cycles,
                crosspoint_cost(params),
                crosspoint_cost(params) / system.num_ports,
                wire_cost(params),
            ]
        )
    result.series["PA(1)"] = [(float(row[1]), row[3]) for row in rows]
    result.series["expected drain cycles"] = [(float(row[1]), row[4]) for row in rows]
    result.tables["family scaling"] = (
        [
            "system",
            "PEs",
            "ports",
            "PA(1)",
            "drain cycles (model)",
            "crosspoints",
            "crosspoints/port",
            "wires",
        ],
        rows,
    )
    result.notes.append(
        "16x more PEs per step costs one hyperbar stage: PA(1) falls a few "
        "points, drain time grows a few cycles, and crosspoints/port grows by "
        "one hyperbar share (b*c = 64) — logarithmic in machine size, the "
        "'very large parallel computers' scaling argument"
    )
    return result
