"""Experiment ``nuts``: multipath vs hot-spot traffic (Section 1's motivation).

The paper motivates EDNs by their multiple paths, which "can be used to
reduce conflicts or Non Uniform Traffic Spots (NUTS)" — its reference [13].
This experiment offers hot-spot traffic (a fraction of requests targeting
one output) to equal-size 256x256 networks of increasing path multiplicity:
the single-path delta ``EDN(16,16,1,2)``, the 16-path ``EDN(32,8,4,2)``,
the 64-path ``EDN(16,4,4,3)``, and the crossbar bound.

Expected shape: as the hot fraction grows, *all* networks lose throughput
to output contention (even the crossbar serves one request per output per
cycle), but the single-path delta additionally suffers internal tree
saturation on the hot output's unique paths, so its excess loss over the
crossbar is the largest; multipath EDNs sit in between, ordered by
capacity.
"""

from __future__ import annotations

from typing import Optional

from repro.api.spec import RunConfig
from repro.baselines.crossbar_network import CrossbarNetwork
from repro.core.config import EDNParams
from repro.experiments.base import ExperimentResult
from repro.experiments.parallel import ParallelSweep
from repro.sim.batched import BatchedEDN
from repro.sim.montecarlo import measure_acceptance
from repro.workloads import HotspotTraffic

__all__ = ["LADDER", "run"]

#: Equal-size 256x256 networks of increasing path multiplicity (c^l).
LADDER = (
    ("delta EDN(16,16,1,2), 1 path", EDNParams(16, 16, 1, 2)),
    ("EDN(32,8,4,2), 16 paths", EDNParams(32, 8, 4, 2)),
    ("EDN(16,4,4,3), 64 paths", EDNParams(16, 4, 4, 3)),
)

SIZE = 256


def _nuts_cell(task, seed_key) -> float:
    """One (router, hot fraction) grid cell (ParallelSweep worker)."""
    shape, hot, rate, cycles, batch = task
    router = BatchedEDN(EDNParams(*shape)) if shape else CrossbarNetwork(SIZE)
    traffic = HotspotTraffic(SIZE, SIZE, rate=rate, hot_fraction=hot)
    return measure_acceptance(
        router, traffic, cycles=cycles, seed=seed_key, batch=batch
    ).point


def run(
    *,
    hot_fractions: tuple[float, ...] = (0.0, 0.02, 0.05, 0.1, 0.2),
    rate: float = 1.0,
    cycles: int = 60,
    seed: int = 0,
    batch: int | None = None,
    jobs: int | None = 1,
    config: Optional[RunConfig] = None,
) -> ExperimentResult:
    """Measure acceptance vs hot-spot fraction on the 256-terminal ladder.

    The (network x hot fraction) grid fans out over ``jobs`` processes;
    every cell routes batched chunks of ``batch`` cycles under its own
    positionally spawned child of ``seed``, so the table is identical at
    any job count.  A :class:`RunConfig` may supply cycles/seed/batch/jobs;
    the explicit keywords act as its defaults.
    """
    cfg = (config if config is not None else RunConfig()).resolve(
        cycles=cycles, seed=seed, batch=batch, jobs=jobs
    )
    cycles, seed, batch = cfg.cycles, cfg.seed, cfg.batch
    labels = []
    for label, params in LADDER:
        if params.num_inputs != SIZE or params.num_outputs != SIZE:
            raise AssertionError(f"ladder member {params} is not {SIZE}x{SIZE}")
        labels.append((label, (params.a, params.b, params.c, params.l)))
    labels.append((f"crossbar {SIZE}", None))

    result = ExperimentResult(
        experiment_id="nuts",
        title="Hot-spot (NUTS) degradation vs path multiplicity, 256-terminal networks",
    )
    tasks = [
        (shape, hot, rate, cycles, batch)
        for _label, shape in labels
        for hot in hot_fractions
    ]
    points = ParallelSweep.from_config(cfg).map_seeded(_nuts_cell, tasks, seed)
    rows = []
    for row_index, (label, _shape) in enumerate(labels):
        cells = points[row_index * len(hot_fractions) : (row_index + 1) * len(hot_fractions)]
        result.series[label] = list(zip(hot_fractions, cells))
        rows.append([label] + list(cells))
    result.tables["PA vs hot fraction"] = (
        ["network"] + [f"hot={h:g}" for h in hot_fractions],
        rows,
    )
    result.notes.append(
        "compare each network's loss relative to the crossbar row: the crossbar "
        "isolates unavoidable output contention; the remainder is internal "
        "blocking, largest for the single-path delta"
    )
    return result
