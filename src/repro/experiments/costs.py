"""Experiment ``eq2_eq3``: cost models (Section 3.1) and the dilation comparison.

Regenerates the paper's cost accounting:

* Eq. 2 (crosspoints) and Eq. 3 (wires) closed forms vs brute-force
  enumeration over the constructed topology, across a parameter sweep
  including both the ``a/c != b`` and ``a/c = b`` branches;
* the crossbar/delta limiting cases;
* cost-vs-performance positioning (Section 6's claim: crossbar-like
  performance at delta-like cost);
* Section 1's dilation remark: a d-dilated delta spends ``d`` times the
  interstage wires of the square EDN with the same number of inputs and
  the same multiplicity (``d = c``).
"""

from __future__ import annotations

from typing import Optional

from repro.api.spec import RunConfig
from repro.baselines.dilated import DilatedDelta
from repro.core.analysis import acceptance_probability, crossbar_acceptance, delta_acceptance
from repro.core.config import EDNParams
from repro.core.cost import (
    crossbar_crosspoint_cost,
    crosspoint_cost,
    crosspoint_cost_closed_form,
    wire_cost,
    wire_cost_closed_form,
)
from repro.core.topology import EDNTopology
from repro.experiments.base import ExperimentResult

__all__ = ["SWEEP", "run", "run_dilation_comparison", "run_cost_performance"]

#: Sweep covering both closed-form branches and the degenerate cases.
SWEEP = (
    (16, 4, 4, 2),   # a/c = b (the Figure 4 network)
    (64, 16, 4, 2),  # a/c = b (the MasPar network)
    (8, 2, 4, 3),    # a/c < b? (a/c=2, b=2) -> equal branch
    (8, 4, 2, 3),    # a/c = 4 = b -> equal branch
    (16, 8, 2, 2),   # a/c = 8 = b
    (16, 2, 8, 2),   # a/c = 2 = b
    (8, 8, 1, 3),    # delta: a/c = 8 = b
    (4, 2, 1, 4),    # delta with a/c=4 != b=2
    (16, 4, 2, 3),   # a/c = 8 != b = 4
    (2, 2, 1, 1),    # 2x2 crossbar limit
)


def run(*, config: Optional[RunConfig] = None) -> ExperimentResult:
    """Closed forms vs structural enumeration across the sweep.

    Analytic; ``config`` is accepted for uniform registry dispatch and
    ignored.
    """
    del config
    result = ExperimentResult(
        experiment_id="eq2_eq3",
        title="Eqs. 2-3: crosspoint and wire costs, closed form vs enumeration",
    )
    rows = []
    for cfg in SWEEP:
        params = EDNParams(*cfg)
        topo = EDNTopology(params)
        cs_sum, cs_closed, cs_enum = (
            crosspoint_cost(params),
            crosspoint_cost_closed_form(params),
            topo.count_crosspoints(),
        )
        cw_sum, cw_closed, cw_enum = (
            wire_cost(params),
            wire_cost_closed_form(params),
            topo.count_wires(),
        )
        rows.append(
            [
                str(params),
                params.num_inputs,
                cs_closed,
                cs_sum == cs_closed == cs_enum,
                cw_closed,
                cw_sum == cw_closed == cw_enum,
            ]
        )
    result.tables["cost verification"] = (
        ["network", "inputs", "crosspoints", "Eq.2 ok", "wires", "Eq.3 ok"],
        rows,
    )
    return result


def run_dilation_comparison(
    *, l_values: tuple[int, ...] = (2, 3, 4), config: Optional[RunConfig] = None
) -> ExperimentResult:
    """Section 1's wire claim: c-dilated delta vs same-size EDN.

    Compares the square EDN(bc, b, c, l) against the c-dilated b x b delta
    with the same ``b^l * c``-ish terminal scale: per interstage boundary
    the EDN carries ``b^l * c`` wires while the dilated delta carries
    ``c * b^l * c``-equivalent bundles for matched *port* counts — i.e. the
    dilated network spends ``d = c`` times the wires for the same
    multiplicity.  Analytic; ``config`` is accepted for uniform registry
    dispatch and ignored.
    """
    del config
    result = ExperimentResult(
        experiment_id="eq2_eq3_dilated",
        title="Dilated delta vs EDN: interstage wires at equal multiplicity",
    )
    rows = []
    b, c = 4, 4
    for l in l_values:
        edn = EDNParams(b * c, b, c, l)  # square: a/c = b
        dilated = DilatedDelta(a=b, b=b, l=l, d=c)
        # Same number of input *ports* requires comparing per-boundary wires
        # normalized by port count.
        edn_per_port = edn.wires_after_stage(1) / edn.num_inputs
        dilated_per_port = dilated.wires_after_stage(1) / dilated.n_inputs
        rows.append(
            [
                f"l={l}",
                edn.num_inputs,
                dilated.n_inputs,
                edn.wires_after_stage(1),
                dilated.wires_after_stage(1),
                edn_per_port,
                dilated_per_port,
                dilated_per_port / edn_per_port,
            ]
        )
    result.tables["interstage wires per input port"] = (
        [
            "depth",
            "EDN inputs",
            "dilated inputs",
            "EDN stage wires",
            "dilated stage wires",
            "EDN wires/port",
            "dilated wires/port",
            "ratio (paper: d)",
        ],
        rows,
    )
    result.notes.append(
        "the square EDN keeps one wire per port at every boundary; the d-dilated "
        "delta spends d per port — Section 1's 'much less space efficient'"
    )
    return result


def run_cost_performance(
    *, rate: float = 1.0, config: Optional[RunConfig] = None
) -> ExperimentResult:
    """Section 6's positioning: EDN ≈ crossbar performance at ≈ delta cost.

    For matched 1024-terminal networks, report crosspoints, analytic
    PA(rate), and *measured* PA(rate) for the full crossbar, the MasPar
    EDN, the same-size delta, and the 4-dilated delta of the same switch
    radix (the multipath alternative the paper argues against on wires).
    The measured column routes every network through the compiled batched
    backend (``config`` supplies cycles/seed/batch; defaults 60 cycles,
    seed 0), so the table doubles as an end-to-end check that analytic
    and simulated orderings agree.
    """
    from repro.api.measure import measure
    from repro.api.spec import NetworkSpec
    from repro.baselines.dilated import DilatedDelta

    cfg = (config if config is not None else RunConfig()).resolve(cycles=60, seed=0)
    traffic = "uniform" if rate >= 1.0 else f"uniform:{rate:g}"
    result = ExperimentResult(
        experiment_id="cost_performance",
        title="Cost vs performance at 1024 terminals (Section 6)",
    )
    edn = EDNParams(64, 16, 4, 2)     # 1024 x 1024
    delta = EDNParams(32, 32, 1, 2)   # 1024 x 1024 delta of 32x32 crossbars
    dilated = DilatedDelta(a=32, b=32, l=2, d=4)  # 1024 ports, 4-wide bundles
    n = edn.num_inputs

    def measured(spec_text: str) -> float:
        spec = NetworkSpec.parse(spec_text)
        return measure(spec, cfg, traffic=traffic).point

    rows = [
        [
            "full crossbar",
            crossbar_crosspoint_cost(n),
            crossbar_acceptance(n, rate),
            measured(f"crossbar:{n}"),
        ],
        [
            str(edn),
            crosspoint_cost(edn),
            acceptance_probability(edn, rate),
            measured("edn:64,16,4,2"),
        ],
        [
            str(delta),
            crosspoint_cost(delta),
            delta_acceptance(32, 32, 2, rate),
            measured("delta:32,32,2"),
        ],
        [
            str(dilated),
            dilated.crosspoint_cost(),
            dilated.analytic_acceptance(rate),
            measured("dilated:32,32,2,4"),
        ],
    ]
    result.tables[f"1024-terminal networks, PA({rate:g})"] = (
        ["network", "crosspoints", "PA (analytic)", "PA (measured)"],
        rows,
    )
    result.notes.append(
        "expected: EDN within a few points of the crossbar's PA at a small "
        "multiple of the delta's crosspoints and far below the crossbar's; "
        "the dilated delta buys its multipath PA with d x the wires"
    )
    result.notes.append(
        f"measured column: {cfg.cycles} cycles, seed {cfg.seed}, batched "
        "backend (every multistage row on the compiled stage-graph kernels)"
    )
    return result
