"""Deterministic chaos harness for the simulation service.

Reliability claims about :mod:`repro.serve` — workers may die, stall or
start slowly; connections may drop mid-stream; frames may be garbage;
poison cells must be quarantined — are only worth anything if they are
*tested*, and chaos tests are only worth anything if they are
deterministic.  This module injects faults from a declarative
:class:`ChaosScenario` using the same fork-inheritance trick the serve
test suite uses (the injector wraps ``measure_cell`` in the parent
before the pool forks its workers) with ``O_EXCL`` marker files bounding
how often each event fires, so a scenario replays the same injected
faults every run regardless of scheduling.

Pieces
------
* :class:`ChaosEvent` / :class:`ChaosScenario` — the declarative spec,
  JSON round-trippable (``to_payload`` / ``from_payload``) so scenarios
  can live in files and ride the CLI.
* :func:`chaos_session` — context manager installing the worker-side
  injector around a server's lifetime.
* :class:`DroppingClient` — a :class:`ServiceClient` that severs its own
  connection mid-stream after a fixed number of messages (once per
  allowance), exercising reconnect-with-resume.
* :func:`run_scenario` — the oracle: runs a cell list through a chaotic
  server and checks the invariants (zero lost cells, byte-identical
  results vs an undisturbed inline run, bounded resubmissions, poison
  cells quarantined, every scheduled fault actually fired), returning a
  :class:`ChaosReport`.
* :func:`smoke_scenario` / :func:`smoke_cells` — the CI smoke: one
  worker kill, one stall past ``shard_timeout``, one connection drop,
  one malformed frame, one poison cell, plus a buffered cell riding
  along.

Event kinds
-----------
``kill_worker``
    SIGKILL the worker the first ``times`` times the matching cell
    (``cell_seed``) arrives; later attempts compute normally.
``stall_worker``
    Sleep ``stall_s`` seconds (set it past the server's
    ``shard_timeout``) the first ``times`` times the matching cell
    arrives; the server abandons the worker and retries.
``slow_start``
    Sleep ``stall_s`` (set it *below* ``shard_timeout``) — a slow
    worker that must still succeed.
``poison``
    SIGKILL on *every* arrival of the matching cell: the server must
    quarantine it after ``max_poison_attempts`` instead of retrying
    forever.
``drop_connection``
    Client-side: sever the socket after ``after_messages`` received
    messages, ``times`` times; the client must resume on a fresh
    connection without losing or duplicating results.
``malformed_frame``
    Client-side: send one garbage line before the job; the server must
    answer with a structured error and keep the connection usable.

Cache pressure rides on the scenario itself: set ``cache_size`` to a
value smaller than the job to force evictions mid-run.
"""

from __future__ import annotations

import contextlib
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.exceptions import ConfigurationError
from repro.serve.cache import DEFAULT_CACHE_SIZE
from repro.serve.client import ConnectionLost, ServiceClient

__all__ = [
    "ChaosEvent",
    "ChaosScenario",
    "ChaosReport",
    "DroppingClient",
    "chaos_session",
    "run_scenario",
    "smoke_scenario",
    "smoke_cells",
]

#: Faults injected inside worker processes (matched by ``cell_seed``).
WORKER_KINDS = frozenset({"kill_worker", "stall_worker", "slow_start", "poison"})
#: Faults injected on the client side of the socket.
CLIENT_KINDS = frozenset({"drop_connection", "malformed_frame"})
EVENT_KINDS = WORKER_KINDS | CLIENT_KINDS


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault (see the module docstring for kind semantics)."""

    kind: str
    cell_seed: Optional[int] = None  #: worker faults target cells by seed
    times: int = 1  #: firing allowance (``poison`` ignores it: always)
    stall_s: float = 3.0  #: sleep for stall_worker / slow_start
    after_messages: int = 4  #: drop_connection trigger point

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown chaos event kind {self.kind!r}; "
                f"expected one of {sorted(EVENT_KINDS)}"
            )
        if self.kind in WORKER_KINDS and self.cell_seed is None:
            raise ConfigurationError(
                f"{self.kind} events target cells by seed; set cell_seed"
            )
        if self.times < 1:
            raise ConfigurationError(f"times must be >= 1, got {self.times}")
        if self.stall_s <= 0:
            raise ConfigurationError(f"stall_s must be > 0, got {self.stall_s}")
        if self.after_messages < 1:
            raise ConfigurationError(
                f"after_messages must be >= 1, got {self.after_messages}"
            )

    def to_payload(self) -> dict:
        return {
            "kind": self.kind, "cell_seed": self.cell_seed, "times": self.times,
            "stall_s": self.stall_s, "after_messages": self.after_messages,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ChaosEvent":
        return cls(
            kind=payload["kind"],
            cell_seed=payload.get("cell_seed"),
            times=payload.get("times", 1),
            stall_s=payload.get("stall_s", 3.0),
            after_messages=payload.get("after_messages", 4),
        )


@dataclass(frozen=True)
class ChaosScenario:
    """A named, seeded fault schedule plus the server shape it runs on."""

    name: str
    events: tuple = ()
    seed: int = 0  #: pins the server's rebuild-backoff jitter
    workers: int = 2
    shard_timeout: float = 1.5
    max_poison_attempts: int = 3
    cache_size: int = DEFAULT_CACHE_SIZE
    max_reconnects: int = 3

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.shard_timeout <= 0:
            raise ConfigurationError(
                f"shard_timeout must be > 0, got {self.shard_timeout}"
            )

    def to_payload(self) -> dict:
        return {
            "name": self.name, "seed": self.seed, "workers": self.workers,
            "shard_timeout": self.shard_timeout,
            "max_poison_attempts": self.max_poison_attempts,
            "cache_size": self.cache_size,
            "max_reconnects": self.max_reconnects,
            "events": [event.to_payload() for event in self.events],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ChaosScenario":
        return cls(
            name=payload["name"],
            events=tuple(
                ChaosEvent.from_payload(event) for event in payload.get("events", ())
            ),
            seed=payload.get("seed", 0),
            workers=payload.get("workers", 2),
            shard_timeout=payload.get("shard_timeout", 1.5),
            max_poison_attempts=payload.get("max_poison_attempts", 3),
            cache_size=payload.get("cache_size", DEFAULT_CACHE_SIZE),
            max_reconnects=payload.get("max_reconnects", 3),
        )

    def poison_seeds(self) -> set:
        return {e.cell_seed for e in self.events if e.kind == "poison"}


# ----------------------------------------------------------------------
# Worker-side injector
# ----------------------------------------------------------------------


def _claim(chaos_dir: str, tag: str, times: int) -> bool:
    """Atomically claim one of ``times`` firing slots for an event.

    ``O_CREAT|O_EXCL`` marker files make the allowance race-free across
    worker processes and pool rebuilds: exactly ``times`` claims succeed
    over the scenario's whole lifetime, whatever the interleaving.
    """
    for slot in range(times):
        path = os.path.join(chaos_dir, f"{tag}.{slot}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return True
    return False


@contextlib.contextmanager
def chaos_session(scenario: ChaosScenario, chaos_dir: str):
    """Install the worker-side fault injector for the scenario's duration.

    Must wrap server startup (or at least the first job submission):
    pool workers fork lazily and inherit the wrapped ``measure_cell``,
    exactly like the serve test suite's monkeypatching.  The marker
    directory ``chaos_dir`` must be empty per run — stale markers would
    count as already-fired allowances.
    """
    import repro.serve.server as server_mod

    os.makedirs(chaos_dir, exist_ok=True)
    real = server_mod.measure_cell

    def chaos_measure_cell(cell, *, progress=None):
        seed = cell.config.seed
        for index, event in enumerate(scenario.events):
            if event.kind not in WORKER_KINDS or event.cell_seed != seed:
                continue
            if event.kind == "poison":
                os.kill(os.getpid(), signal.SIGKILL)
            elif event.kind == "kill_worker":
                if _claim(chaos_dir, f"kill_worker.{index}", event.times):
                    os.kill(os.getpid(), signal.SIGKILL)
            elif event.kind in ("stall_worker", "slow_start"):
                if _claim(chaos_dir, f"{event.kind}.{index}", event.times):
                    time.sleep(event.stall_s)
        return real(cell, progress=progress)

    server_mod.measure_cell = chaos_measure_cell
    try:
        yield
    finally:
        server_mod.measure_cell = real


# ----------------------------------------------------------------------
# Client-side injector
# ----------------------------------------------------------------------


class DroppingClient(ServiceClient):
    """A client whose connection dies mid-stream, deterministically.

    After ``drop_after`` received messages the socket is severed (the
    just-received message is discarded, so the drop genuinely loses
    data), up to ``times`` total drops.  Recovery is the production
    reconnect-with-resume path — nothing chaos-specific.
    """

    def __init__(self, address, *, drop_after: int, times: int = 1, **kwargs):
        self._drop_after = drop_after
        self._drops_left = times
        self._seen = 0
        super().__init__(address, **kwargs)

    def _recv(self) -> dict:
        message = super()._recv()
        self._seen += 1
        if self._drops_left > 0 and self._seen >= self._drop_after:
            self._drops_left -= 1
            self._seen = 0
            with contextlib.suppress(OSError):
                self._sock.shutdown(2)  # SHUT_RDWR: sever both directions
            self.close()
            raise ConnectionLost("chaos: connection dropped mid-stream")
        return message


# ----------------------------------------------------------------------
# The oracle
# ----------------------------------------------------------------------


@dataclass
class ChaosReport:
    """What a chaotic run produced, and whether the invariants held."""

    scenario: str
    total_cells: int
    measured: int
    quarantined: list = field(default_factory=list)  #: quarantined indices
    resubmissions: int = 0
    reconnects: int = 0
    pool_rebuilds: int = 0
    cells_resubmitted: int = 0
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_payload(self) -> dict:
        return {
            "scenario": self.scenario,
            "total_cells": self.total_cells,
            "measured": self.measured,
            "quarantined": list(self.quarantined),
            "resubmissions": self.resubmissions,
            "reconnects": self.reconnects,
            "pool_rebuilds": self.pool_rebuilds,
            "cells_resubmitted": self.cells_resubmitted,
            "violations": list(self.violations),
            "ok": self.ok,
        }


def run_scenario(
    scenario: ChaosScenario, cells: Sequence, chaos_dir: str
) -> ChaosReport:
    """Run ``cells`` through a chaotic server and check the invariants.

    The oracle: (1) an undisturbed inline baseline is computed first with
    the *real* ``measure_cell``; (2) the scenario's faults are injected
    around a live server; (3) the job is submitted with
    ``tolerate_failures`` through a (possibly dropping) resuming client;
    (4) invariants are checked — no lost cells, every non-poison result
    byte-identical to the baseline, poison cells quarantined,
    resubmissions within the reconnect bound, and every bounded fault
    allowance actually spent.  Violations are collected, not raised:
    the report is the verdict.
    """
    from repro.api.jobs import measure_cell, measurement_to_payload
    from repro.serve.protocol import encode_message
    from repro.serve.server import start_server_thread

    poison_seeds = scenario.poison_seeds()
    poison_indices = {
        i for i, cell in enumerate(cells) if cell.config.seed in poison_seeds
    }
    baseline = {
        i: encode_message(measurement_to_payload(measure_cell(cell)))
        for i, cell in enumerate(cells)
        if i not in poison_indices
    }

    drop = next((e for e in scenario.events if e.kind == "drop_connection"), None)
    malformed = any(e.kind == "malformed_frame" for e in scenario.events)
    violations: list = []

    with chaos_session(scenario, chaos_dir):
        handle = start_server_thread(
            workers=scenario.workers,
            cache_size=scenario.cache_size,
            shard_timeout=scenario.shard_timeout,
            max_poison_attempts=scenario.max_poison_attempts,
            backoff_seed=scenario.seed,
        )
        try:
            if drop is not None:
                client = DroppingClient(
                    handle.address, drop_after=drop.after_messages,
                    times=drop.times, max_reconnects=scenario.max_reconnects,
                )
            else:
                client = ServiceClient(
                    handle.address, max_reconnects=scenario.max_reconnects
                )
            with client:
                if malformed:
                    client._sock.sendall(b'{"malformed: yes\n')
                    reply = client._recv()
                    if reply.get("type") != "error":
                        violations.append(
                            "malformed frame did not draw a structured error "
                            f"(got {reply.get('type')!r})"
                        )
                results = client.submit(cells, tolerate_failures=True)
                stats = client.status()
        finally:
            handle.stop()

    # ---- invariants ---------------------------------------------------
    if len(results) != len(cells):
        violations.append(
            f"lost cells: {len(cells)} submitted, {len(results)} answered"
        )
    quarantined = [i for i, r in enumerate(results) if r.quarantined]
    measured = 0
    for index, result in enumerate(results):
        if index in poison_indices:
            if not result.quarantined:
                violations.append(
                    f"cell {index} is poison but was not quarantined "
                    f"(error={result.error!r})"
                )
            continue
        if result.measurement is None:
            violations.append(f"cell {index} lost to chaos: {result.error!r}")
            continue
        measured += 1
        if encode_message(measurement_to_payload(result.measurement)) != baseline[index]:
            violations.append(
                f"cell {index} result differs from the undisturbed run"
            )
    bound = scenario.max_reconnects * len(cells)
    if client.resubmissions > bound:
        violations.append(
            f"resubmissions {client.resubmissions} exceed bound {bound}"
        )
    if drop is not None and client.reconnects < 1:
        violations.append("drop_connection event scheduled but never fired")
    cell_seeds = {cell.config.seed for cell in cells}
    for index, event in enumerate(scenario.events):
        if event.kind in ("kill_worker", "stall_worker", "slow_start"):
            if event.cell_seed not in cell_seeds:
                continue  # no matching cell submitted; nothing to fire
            marker = os.path.join(chaos_dir, f"{event.kind}.{index}.0")
            if not os.path.exists(marker):
                violations.append(
                    f"{event.kind} event for seed {event.cell_seed} never fired"
                )

    return ChaosReport(
        scenario=scenario.name,
        total_cells=len(cells),
        measured=measured,
        quarantined=quarantined,
        resubmissions=client.resubmissions,
        reconnects=client.reconnects,
        pool_rebuilds=stats["workers"]["pool_rebuilds"],
        cells_resubmitted=stats["cells"]["resubmitted"],
        violations=violations,
    )


# ----------------------------------------------------------------------
# The CI smoke
# ----------------------------------------------------------------------


def smoke_scenario(seed: int = 0) -> ChaosScenario:
    """The standard smoke: kill + stall + drop + garbage + poison."""
    return ChaosScenario(
        name="smoke",
        seed=seed,
        workers=2,
        shard_timeout=1.5,
        max_poison_attempts=3,
        max_reconnects=3,
        events=(
            ChaosEvent("kill_worker", cell_seed=3),
            ChaosEvent("stall_worker", cell_seed=2, stall_s=3.0),
            ChaosEvent("drop_connection", after_messages=4),
            ChaosEvent("malformed_frame"),
            ChaosEvent("poison", cell_seed=13),
        ),
    )


def smoke_cells() -> list:
    """Cells the smoke scenario runs: six healthy (one buffered), one poison."""
    from repro.api.jobs import SweepCell
    from repro.api.spec import NetworkSpec, RunConfig

    spec = NetworkSpec.edn(16, 4, 4, 2)
    cells = [
        SweepCell(spec, RunConfig(cycles=40, seed=seed)) for seed in range(5)
    ]
    cells.append(SweepCell(spec, RunConfig(cycles=40, seed=5, buffer_depth=2)))
    cells.append(SweepCell(spec, RunConfig(cycles=40, seed=13)))  # poison
    return cells
