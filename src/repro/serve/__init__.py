"""repro.serve — the sharded async simulation service.

The long-running "simulation-as-a-service" layer: a stdlib-only
(``asyncio`` + ``concurrent.futures``, JSON lines over TCP or a Unix
socket) server that accepts measurement cells —
:class:`~repro.api.jobs.SweepCell` ``(spec, config)`` pairs — from many
concurrent clients, dedupes them through a content-keyed result cache,
shards cache misses across a supervised worker-process pool with warm
per-worker plan caches, streams partial results at adaptive-stopping
chunk boundaries, and survives worker death by resubmitting lost cells.

Modules
-------
:mod:`repro.serve.protocol`
    Wire protocol: message framing, job/result envelopes, addresses.
:mod:`repro.serve.cache`
    The content-keyed result cache (LRU over canonical payload bytes).
:mod:`repro.serve.supervisor`
    Shared worker-pool supervision: deadline-based shard collection and
    retry-once resubmission — used by both the server's pool and
    :class:`~repro.experiments.parallel.ParallelSweep`.
:mod:`repro.serve.server`
    The asyncio server: job scheduling, dedupe, streaming, stats.
:mod:`repro.serve.client`
    The blocking client: submit cells, stream events, query stats.

Quickstart (see README for the CLI flavor)::

    # terminal 1
    repro serve --address 127.0.0.1:8753 --workers 4

    # terminal 2, or from code:
    from repro.api import NetworkSpec, RunConfig
    from repro.api.jobs import SweepCell
    from repro.serve.client import ServiceClient

    cells = [SweepCell(NetworkSpec.parse("edn:16,4,4,2"),
                       RunConfig(cycles=100, seed=s)) for s in range(32)]
    with ServiceClient("127.0.0.1:8753") as client:
        results = client.run(cells)          # AcceptanceMeasurements, in order
        print(client.status()["result_cache"])
"""

import importlib

_EXPORTS = {
    "ServiceClient": "client",
    "ServiceError": "client",
    "ServerHandle": "server",
    "SimulationServer": "server",
    "serve_forever": "server",
    "start_server_thread": "server",
    "ResultCache": "cache",
    "DEFAULT_ADDRESS": "protocol",
    "parse_address": "protocol",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module(f"repro.serve.{module_name}"), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
