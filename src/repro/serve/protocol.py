"""Wire protocol of the simulation service: JSON lines over a stream.

Deliberately boring: every message is one JSON object on one
``\\n``-terminated line (UTF-8, no embedded newlines — ``json.dumps``
escapes them), over TCP or a Unix domain socket.  Any language (or
``nc``) can speak it; both sides process messages strictly in order.

Client -> server messages (``type`` field):

``submit``
    ``{"type": "submit", "job_id": str, "cells": [cell payload, ...]}``
    — a job of measurement cells (:meth:`repro.api.jobs.SweepCell.payload`
    dicts).  The server replies with one ``accepted``, streams ``partial``
    and ``result`` events as they happen, and finishes with ``done``.
``status``
    ``{"type": "status"}`` — replies with one ``stats`` message.
``shutdown``
    ``{"type": "shutdown"}`` — asks the server to stop (tests, benches,
    and operators; replies ``bye`` before the server winds down).

Server -> client messages:

``accepted``
    ``{"type": "accepted", "job_id", "cells", "unique"}`` — the job was
    parsed; ``unique`` counts distinct content keys after intra-job dedupe.
``partial``
    ``{"type": "partial", "job_id", "key", "indices", "cycles",
    "acceptance": [point, low, high]}`` — a streaming checkpoint from a
    still-running cell, emitted at adaptive-stopping chunk boundaries.
``result``
    ``{"type": "result", "job_id", "key", "indices", "cached",
    "worker", "payload"}`` — one cell finished; ``indices`` are the
    positions in the submitted job this result answers (duplicates within
    a job collapse to one event), ``payload`` is the canonical
    measurement encoding (byte-identical for every cache hit).
``done``
    ``{"type": "done", "job_id", "cells", "computed", "cached",
    "coalesced", "elapsed_s"}`` — all cells answered.
``stats``
    ``{"type": "stats", ...}`` — see ``SimulationServer.stats``.
``error``
    ``{"type": "error", "job_id"?, "key"?, "indices"?, "message"}`` — a
    malformed message, or a cell that failed permanently (bad spec, or a
    shard exhausting its retry attempts).  Cell-level errors carry the
    job context and do not abort the rest of the job.

Addresses are ``HOST:PORT`` (TCP) or ``unix:/PATH`` (Unix socket),
parsed by :func:`parse_address`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Union

from repro.core.exceptions import ConfigurationError

__all__ = [
    "DEFAULT_ADDRESS",
    "MAX_MESSAGE_BYTES",
    "TcpAddress",
    "UnixAddress",
    "parse_address",
    "encode_message",
    "decode_message",
]

#: Where ``repro serve`` listens and ``repro submit`` connects by default.
DEFAULT_ADDRESS = "127.0.0.1:8753"

#: Per-line size bound (asyncio reader limit and client sanity check):
#: generous for thousand-cell jobs, small enough to fail fast on garbage.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class TcpAddress:
    host: str
    port: int

    @property
    def label(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass(frozen=True)
class UnixAddress:
    path: str

    @property
    def label(self) -> str:
        return f"unix:{self.path}"


Address = Union[TcpAddress, UnixAddress]


def parse_address(text: str) -> Address:
    """Parse ``HOST:PORT`` or ``unix:/PATH``.

    >>> parse_address("127.0.0.1:8753")
    TcpAddress(host='127.0.0.1', port=8753)
    >>> parse_address("unix:/tmp/repro.sock")
    UnixAddress(path='/tmp/repro.sock')
    """
    text = text.strip()
    if text.startswith("unix:"):
        path = text[len("unix:"):]
        if not path:
            raise ConfigurationError("unix: address needs a socket path")
        return UnixAddress(path)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"cannot parse service address {text!r}: expected HOST:PORT or unix:/PATH"
        )
    try:
        return TcpAddress(host, int(port))
    except ValueError:
        raise ConfigurationError(
            f"cannot parse service address {text!r}: port must be an integer"
        ) from None


def encode_message(message: dict) -> bytes:
    """One message -> one canonical JSON line (sorted keys, compact)."""
    return (json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def decode_message(line: "bytes | str") -> dict:
    """One received line -> the message dict (raises on malformed input)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    message = json.loads(line)
    if not isinstance(message, dict) or "type" not in message:
        raise ValueError("protocol messages are JSON objects with a 'type' field")
    return message
