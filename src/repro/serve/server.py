"""The asyncio simulation server: jobs in, deduped streamed results out.

One :class:`SimulationServer` owns four cooperating pieces:

* an **asyncio protocol loop** (TCP or Unix socket, JSON lines — see
  :mod:`repro.serve.protocol`) serving any number of concurrent clients;
* a **content-keyed result cache** (:mod:`repro.serve.cache`): a cell
  whose :meth:`~repro.api.jobs.SweepCell.key` was ever computed is
  answered from memory, byte-identically;
* an **in-flight registry** coalescing concurrent identical cells: two
  clients submitting the same cell at the same time trigger one
  computation and both stream its events;
* a **supervised worker pool** (``ProcessPoolExecutor`` over
  :func:`~repro.serve.supervisor.fork_context`): cache misses are
  sharded across worker processes whose per-process
  :mod:`repro.sim.plan` caches stay warm across cells (fork workers
  additionally inherit plans the parent already compiled).  A cell whose
  worker dies or stalls past ``shard_timeout`` is resubmitted on a
  rebuilt pool under the shared :class:`~repro.serve.supervisor.RetryLedger`
  attempt bound — the same policy :class:`ParallelSweep` applies to
  sweep shards.

Partial results: workers push ``(key, cycles, interval)`` checkpoints
from :func:`~repro.sim.montecarlo.measure_acceptance`'s chunk-boundary
``progress`` hook onto a fork-inherited multiprocessing queue; a drain
thread forwards them into the event loop, which fans each one out to
every client subscribed to that cell as a ``partial`` message.  Adaptive
cells (``rel_err`` set) therefore stream their convergence live.

The blocking pieces of a request (JSON decode, cache lookups) are cheap
and stay on the event loop; all simulation happens in the workers.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import queue as _queue
import random
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Optional

from repro.api.jobs import SweepCell, measure_cell, measurement_to_payload
from repro.core.exceptions import EDNError
from repro.serve.cache import DEFAULT_CACHE_SIZE, ResultCache
from repro.serve.protocol import (
    DEFAULT_ADDRESS,
    MAX_MESSAGE_BYTES,
    TcpAddress,
    UnixAddress,
    decode_message,
    encode_message,
    parse_address,
)
from repro.serve.supervisor import MAX_ATTEMPTS, RetryLedger, fork_context

__all__ = ["SimulationServer", "serve_forever", "start_server_thread", "ServerHandle"]

#: Minimum seconds between partial-progress messages per running cell
#: (workers throttle at the source so a tight chunk loop cannot flood the
#: progress queue).
PROGRESS_INTERVAL = 0.05

#: Base/cap seconds of the exponential pool-rebuild backoff.  Consecutive
#: rebuilds without an intervening successful cell double the delay
#: (jittered deterministically) up to the cap, so a crash-looping fleet
#: of workers cannot saturate the host with fork storms.
REBUILD_BACKOFF = 0.05
REBUILD_BACKOFF_CAP = 2.0

# ----------------------------------------------------------------------
# Worker-process side.  ``_PROGRESS_QUEUE`` is assigned in the parent
# before the pool exists; fork workers inherit the binding (on spawn
# platforms it stays None in workers and partial streaming degrades to
# final results only).
# ----------------------------------------------------------------------

_PROGRESS_QUEUE = None


def _run_cell(item: tuple[str, dict]) -> tuple[str, dict, int, dict]:
    """Pool target: measure one cell; return (key, payload, pid, plan info)."""
    key, cell_payload = item
    cell = SweepCell.from_payload(cell_payload)
    progress = None
    if _PROGRESS_QUEUE is not None:
        last = [0.0]

        def progress(cycles, interval):
            now = time.monotonic()
            if now - last[0] < PROGRESS_INTERVAL:
                return
            last[0] = now
            try:
                _PROGRESS_QUEUE.put_nowait(
                    (key, cycles, (interval.point, interval.low, interval.high))
                )
            except Exception:
                pass  # a full/closed queue must never fail the measurement

    measurement = measure_cell(cell, progress=progress)
    from repro.sim.plan import plan_cache_info

    return key, measurement_to_payload(measurement), os.getpid(), plan_cache_info()


# ----------------------------------------------------------------------
# Server side.
# ----------------------------------------------------------------------


@dataclass
class _Job:
    """One submitted job: a client's cells and its completion accounting."""

    job_id: str
    outbox: asyncio.Queue
    remaining: int
    cells: int
    cached: int = 0
    coalesced: int = 0
    computed: int = 0
    failed: int = 0
    started: float = field(default_factory=time.monotonic)


@dataclass
class _InFlight:
    """One cell being computed, with every (job, indices) waiting on it."""

    key: str
    payload: dict
    subscribers: list[tuple[_Job, list[int]]] = field(default_factory=list)


class SimulationServer:
    """A sharded, deduping, streaming simulation service.

    Parameters
    ----------
    address:
        ``HOST:PORT`` or ``unix:/PATH`` (see :func:`parse_address`).
        TCP port ``0`` binds an ephemeral port; read the bound address
        back from :attr:`bound_address` after :meth:`start`.
    workers:
        Worker processes (default: all cores).
    cache_size:
        Result-cache capacity in cells.
    shard_timeout:
        Seconds one cell may run before its worker is declared stuck and
        the cell is resubmitted on a rebuilt pool (``None`` = forever).
    max_poison_attempts:
        Pool-killing attempts one cell may burn before it is
        *quarantined*: further (and pending) submissions of that key get
        a structured ``error`` event with ``"quarantined": true`` instead
        of killing workers forever (default: the supervisor's
        ``MAX_ATTEMPTS``).
    drain_timeout:
        Seconds :meth:`aclose` waits for in-flight cells to finish before
        tearing the pool down (graceful drain; ``0`` = drop them).
    backoff_seed:
        Seed of the deterministic jitter applied to pool-rebuild
        backoff delays (chaos runs pin it for reproducibility).
    """

    def __init__(
        self,
        address: str = DEFAULT_ADDRESS,
        *,
        workers: Optional[int] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        shard_timeout: Optional[float] = None,
        max_poison_attempts: Optional[int] = None,
        drain_timeout: float = 5.0,
        backoff_seed: int = 0,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError(f"shard_timeout must be > 0, got {shard_timeout}")
        if max_poison_attempts is not None and max_poison_attempts < 1:
            raise ValueError(
                f"max_poison_attempts must be >= 1, got {max_poison_attempts}"
            )
        if drain_timeout < 0:
            raise ValueError(f"drain_timeout must be >= 0, got {drain_timeout}")
        self.address = parse_address(address) if isinstance(address, str) else address
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.shard_timeout = shard_timeout
        self.max_poison_attempts = (
            max_poison_attempts if max_poison_attempts is not None else MAX_ATTEMPTS
        )
        self.drain_timeout = drain_timeout
        self.cache = ResultCache(cache_size)
        self.bound_address: Optional[str] = None

        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._ctx = fork_context()
        self._ledger = RetryLedger(self.max_poison_attempts)
        self._quarantined: dict[str, str] = {}
        self._rebuild_lock: Optional[asyncio.Lock] = None
        self._rebuild_streak = 0
        self._jitter = random.Random(backoff_seed)
        self._inflight: dict[str, _InFlight] = {}
        #: Bounds futures inside the executor to 2x workers: keeps every
        #: worker busy (pipelining) while a worker death can only poison
        #: a bounded number of submitted cells, never the whole backlog.
        self._slots = asyncio.Semaphore(2 * self.workers)
        self._stop = asyncio.Event()
        self._started = time.monotonic()
        self._busy = 0
        self._waiting = 0
        self._plan_info_by_pid: dict[int, dict] = {}
        self._drain_thread: Optional[threading.Thread] = None
        self._drain_stop = threading.Event()
        self._counters = {
            "jobs_submitted": 0,
            "jobs_completed": 0,
            "cells_submitted": 0,
            "cells_completed": 0,
            "cells_computed": 0,
            "cells_cached": 0,
            "cells_coalesced": 0,
            "cells_deduped_in_job": 0,
            "cells_resubmitted": 0,
            "cells_failed": 0,
            "cells_quarantined": 0,
            "pool_rebuilds": 0,
            "partials_streamed": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, start the pool and the progress drain."""
        global _PROGRESS_QUEUE
        self._loop = asyncio.get_running_loop()
        self._rebuild_lock = asyncio.Lock()
        _PROGRESS_QUEUE = self._ctx.Queue()
        self._progress_queue = _PROGRESS_QUEUE
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=self._ctx
        )
        self._drain_stop.clear()
        self._drain_thread = threading.Thread(
            target=self._drain_progress, name="repro-serve-progress", daemon=True
        )
        self._drain_thread.start()
        if isinstance(self.address, UnixAddress):
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.address.path,
                limit=MAX_MESSAGE_BYTES,
            )
            self.bound_address = self.address.label
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.address.host,
                port=self.address.port, limit=MAX_MESSAGE_BYTES,
            )
            host, port = self._server.sockets[0].getsockname()[:2]
            self.bound_address = f"{host}:{port}"

    async def serve_until_stopped(self) -> None:
        """:meth:`start` + run until a ``shutdown`` message or :meth:`stop`."""
        if self._server is None:
            await self.start()
        await self._stop.wait()
        await self.aclose()

    async def stop(self) -> None:
        self._stop.set()

    async def aclose(self) -> None:
        """Tear down gracefully: stop accepting, drain in-flight cells, close.

        New connections and jobs are refused the moment :attr:`_stop` is
        set; cells already computing get up to :attr:`drain_timeout`
        seconds to finish (and stream their results to still-connected
        clients) before the pool is torn down under them.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if isinstance(self.address, UnixAddress):
            with contextlib.suppress(OSError):
                os.unlink(self.address.path)
        deadline = time.monotonic() + self.drain_timeout
        while self._inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        self._drain_stop.set()
        if self._drain_thread is not None:
            self._drain_thread.join(timeout=2.0)
            self._drain_thread = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        with contextlib.suppress(Exception):
            self._progress_queue.close()

    # ------------------------------------------------------------------
    # Progress streaming
    # ------------------------------------------------------------------

    def _drain_progress(self) -> None:
        """(thread) forward worker checkpoints into the event loop."""
        while not self._drain_stop.is_set():
            try:
                message = self._progress_queue.get(timeout=0.2)
            except _queue.Empty:
                continue
            except (EOFError, OSError):  # queue torn down under us
                return
            with contextlib.suppress(RuntimeError):  # loop already closed
                self._loop.call_soon_threadsafe(self._dispatch_partial, message)

    def _dispatch_partial(self, message: tuple) -> None:
        key, cycles, acceptance = message
        flight = self._inflight.get(key)
        if flight is None:  # cell already finished; checkpoint raced it
            return
        self._counters["partials_streamed"] += 1
        for job, indices in flight.subscribers:
            self._post(job, {
                "type": "partial",
                "job_id": job.job_id,
                "key": key,
                "indices": indices,
                "cycles": cycles,
                "acceptance": list(acceptance),
            })

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        outbox: asyncio.Queue = asyncio.Queue()
        sender = asyncio.create_task(self._send_loop(outbox, writer))
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    outbox.put_nowait({"type": "error", "message": "message too large"})
                    break
                if not line:
                    break
                try:
                    message = decode_message(line)
                except (ValueError, UnicodeDecodeError) as exc:
                    outbox.put_nowait({"type": "error", "message": f"bad message: {exc}"})
                    continue
                kind = message.get("type")
                if kind == "submit":
                    self._accept_job(message, outbox)
                elif kind == "status":
                    outbox.put_nowait(self.stats())
                elif kind == "shutdown":
                    outbox.put_nowait({"type": "bye"})
                    self._stop.set()
                else:
                    outbox.put_nowait(
                        {"type": "error", "message": f"unknown message type {kind!r}"}
                    )
        except asyncio.CancelledError:
            # Event-loop teardown cancelled the handler mid-await.  Every
            # further await would just re-raise, so stop the sender and
            # close the transport synchronously — and return instead of
            # re-raising: CPython 3.11's streams done-callback calls
            # task.exception() unconditionally, which turns a cancelled
            # handler task into "Exception in callback" stderr noise.
            sender.cancel()
            with contextlib.suppress(Exception):
                writer.close()
            return
        # Graceful close (client hung up or sent shutdown): flush every
        # queued event through the sender, then close the transport.
        outbox.put_nowait(None)  # sentinel: flush and stop the sender
        with contextlib.suppress(Exception):
            await sender
        with contextlib.suppress(Exception):
            writer.close()
            await writer.wait_closed()

    async def _send_loop(self, outbox: asyncio.Queue, writer) -> None:
        """One task per connection owns the writer: lines never interleave."""
        while True:
            event = await outbox.get()
            if event is None:
                break
            writer.write(encode_message(event))
            await writer.drain()

    def _post(self, job: _Job, event: dict) -> None:
        job.outbox.put_nowait(event)

    # ------------------------------------------------------------------
    # Job scheduling
    # ------------------------------------------------------------------

    def _accept_job(self, message: dict, outbox: asyncio.Queue) -> None:
        job_id = str(message.get("job_id", f"job-{self._counters['jobs_submitted']}"))
        if self._stop.is_set():
            # Draining: in-flight work finishes, new work is refused.
            outbox.put_nowait({
                "type": "error", "job_id": job_id,
                "message": "server is draining; not accepting new jobs",
            })
            return
        cells = message.get("cells")
        if not isinstance(cells, list) or not cells:
            outbox.put_nowait({
                "type": "error", "job_id": job_id,
                "message": "submit needs a non-empty 'cells' list",
            })
            return
        self._counters["jobs_submitted"] += 1
        self._counters["cells_submitted"] += len(cells)

        # Canonicalize and key every cell; invalid cells error out
        # individually without sinking the rest of the job.
        by_key: dict[str, tuple[dict, list[int]]] = {}
        bad: list[tuple[int, str]] = []
        for index, payload in enumerate(cells):
            try:
                cell = SweepCell.from_payload(payload)
                key = cell.key()
            except (EDNError, KeyError, TypeError, ValueError) as exc:
                bad.append((index, str(exc)))
                continue
            canonical = cell.payload()
            if key in by_key:
                # Intra-job dedupe: the duplicate index shares the first
                # occurrence's computation (and its result event).
                by_key[key][1].append(index)
                self._counters["cells_deduped_in_job"] += 1
            else:
                by_key[key] = (canonical, [index])

        job = _Job(
            job_id=job_id, outbox=outbox,
            remaining=len(by_key) + len(bad), cells=len(cells),
        )
        self._post(job, {
            "type": "accepted", "job_id": job_id,
            "cells": len(cells), "unique": len(by_key),
        })
        for index, reason in bad:
            job.failed += 1
            self._counters["cells_failed"] += 1
            self._post(job, {
                "type": "error", "job_id": job_id, "indices": [index],
                "message": f"invalid cell: {reason}",
            })
            self._cell_answered(job)
        for key, (payload, indices) in by_key.items():
            self._schedule_cell(job, key, payload, indices)

    def _schedule_cell(
        self, job: _Job, key: str, payload: dict, indices: list[int]
    ) -> None:
        cached = self.cache.get(key)
        if cached is not None:
            job.cached += 1
            self._counters["cells_cached"] += 1
            self._emit_result(job, key, indices, cached, cached_hit=True, worker=None)
            self._cell_answered(job)
            return
        reason = self._quarantined.get(key)
        if reason is not None:
            # Poisoned key: answer instantly with the structured error it
            # earned instead of burning another round of workers.
            job.failed += 1
            self._counters["cells_failed"] += 1
            self._post(job, {
                "type": "error", "job_id": job.job_id, "key": key,
                "indices": indices, "quarantined": True,
                "message": f"cell quarantined: {reason}",
            })
            self._cell_answered(job)
            return
        flight = self._inflight.get(key)
        if flight is not None:
            # Identical cell already computing for someone else: subscribe.
            job.coalesced += 1
            self._counters["cells_coalesced"] += 1
            flight.subscribers.append((job, indices))
            return
        flight = _InFlight(key=key, payload=payload)
        flight.subscribers.append((job, indices))
        self._inflight[key] = flight
        asyncio.create_task(self._compute_cell(flight))

    async def _compute_cell(self, flight: _InFlight) -> None:
        """Run one cell on the pool, surviving worker death and stalls."""
        self._waiting += 1
        async with _acquire(self._slots):
            self._waiting -= 1
            while True:
                pool = self._pool
                if pool is None:  # server shutting down
                    self._finish_error(flight, "server shutting down")
                    return
                try:
                    future = pool.submit(_run_cell, (flight.key, flight.payload))
                except BrokenProcessPool:
                    await self._rebuild_pool(pool)
                    if self._charge(flight.key):
                        continue
                    if await self._probe_and_deliver(flight):
                        return
                    self._quarantine(flight, "worker pool kept losing the cell")
                    return
                self._busy += 1
                try:
                    result = await asyncio.wait_for(
                        asyncio.wrap_future(future), timeout=self.shard_timeout
                    )
                except (BrokenProcessPool, asyncio.CancelledError) as exc:
                    # The pool died under the cell (a sibling's worker can
                    # break the whole executor, cancelling queued futures).
                    if isinstance(exc, asyncio.CancelledError) and not future.cancelled():
                        raise  # genuine task cancellation, not pool death
                    await self._rebuild_pool(pool)
                    if self._charge(flight.key):
                        continue
                    if await self._probe_and_deliver(flight):
                        return
                    self._quarantine(
                        flight, "worker process kept dying running this cell"
                    )
                    return
                except asyncio.TimeoutError:
                    # The worker is presumed stuck mid-cell; it cannot be
                    # reclaimed individually, so the pool is rebuilt and
                    # the stalled worker abandoned.
                    await self._rebuild_pool(pool)
                    if self._charge(flight.key):
                        continue
                    if await self._probe_and_deliver(flight):
                        return
                    self._quarantine(
                        flight,
                        f"cell kept exceeding shard_timeout={self.shard_timeout}s",
                    )
                    return
                except EDNError as exc:
                    self._finish_error(flight, f"cell failed: {exc}")
                    return
                finally:
                    self._busy -= 1
                key, payload, pid, plan_info = result
                self._plan_info_by_pid[pid] = plan_info
                self._ledger.forgive(key)
                self._rebuild_streak = 0  # healthy again: backoff resets
                encoded = encode_message(payload)
                self.cache.put(key, encoded)
                self._finish_result(flight, encoded, worker=pid)
                return

    def _charge(self, key: str) -> bool:
        may_retry = self._ledger.charge(key)
        if may_retry:
            self._counters["cells_resubmitted"] += 1
        return may_retry

    async def _probe_and_deliver(self, flight: _InFlight) -> bool:
        """Last chance before quarantine: run the suspect alone.

        Pool-level deaths cannot be attributed — a poison sibling's
        SIGKILL breaks every in-flight future, so an innocent cell can
        exhaust its retry budget as collateral.  Before quarantining, the
        cell gets one attempt on a dedicated single-worker pool where
        blame is unambiguous: success proves innocence (the result is
        delivered and cached as usual, returns True); death or stall on
        the probe convicts (returns False and the caller quarantines).
        """
        probe = ProcessPoolExecutor(max_workers=1, mp_context=self._ctx)
        try:
            future = probe.submit(_run_cell, (flight.key, flight.payload))
            try:
                result = await asyncio.wait_for(
                    asyncio.wrap_future(future), timeout=self.shard_timeout
                )
            except (BrokenProcessPool, asyncio.TimeoutError):
                return False
            except asyncio.CancelledError:
                if not future.cancelled():
                    raise  # genuine task cancellation, not probe death
                return False
            except EDNError as exc:
                self._finish_error(flight, f"cell failed: {exc}")
                return True  # answered (as a plain error), not quarantined
        finally:
            probe.shutdown(wait=False, cancel_futures=True)
        key, payload, pid, plan_info = result
        self._plan_info_by_pid[pid] = plan_info
        self._ledger.forgive(key)
        self._rebuild_streak = 0
        encoded = encode_message(payload)
        self.cache.put(key, encoded)
        self._finish_result(flight, encoded, worker=pid)
        return True

    def _quarantine(self, flight: _InFlight, reason: str) -> None:
        """Stop resubmitting a poison cell: structured error now and forever."""
        message = (
            f"cell quarantined after {self.max_poison_attempts} attempts: {reason}"
        )
        self._quarantined[flight.key] = message
        self._counters["cells_quarantined"] += 1
        self._finish_error(flight, message, quarantined=True)

    async def _rebuild_pool(self, broken: ProcessPoolExecutor) -> None:
        """Replace the pool once, however many cells saw it break.

        Consecutive rebuilds without an intervening healthy cell back off
        exponentially (base :data:`REBUILD_BACKOFF`, cap
        :data:`REBUILD_BACKOFF_CAP`) with deterministic jitter, so a
        crash loop cannot fork-storm the host; one successful cell
        resets the streak.
        """
        async with self._rebuild_lock:
            if self._pool is not broken or self._pool is None:
                return
            broken.shutdown(wait=False, cancel_futures=True)
            self._rebuild_streak += 1
            delay = min(
                REBUILD_BACKOFF_CAP,
                REBUILD_BACKOFF * 2 ** (self._rebuild_streak - 1),
            )
            delay *= 0.5 + self._jitter.random()  # jitter in [0.5x, 1.5x)
            await asyncio.sleep(delay)
            if self._pool is not broken:
                return  # torn down (or replaced) while backing off
            if self._stop.is_set():
                # Shutting down mid-backoff: leave no pool rather than
                # fork a new one; retrying cells see "server shutting
                # down" at the top of their loop.
                self._pool = None
                return
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._ctx
            )
            self._counters["pool_rebuilds"] += 1

    # ------------------------------------------------------------------
    # Completion fan-out
    # ------------------------------------------------------------------

    def _finish_result(self, flight: _InFlight, encoded: bytes, worker) -> None:
        del self._inflight[flight.key]
        self._counters["cells_computed"] += 1
        for position, (job, indices) in enumerate(flight.subscribers):
            job.computed += 1
            self._emit_result(
                job, flight.key, indices, encoded,
                cached_hit=position > 0, worker=worker,
            )
            self._cell_answered(job)

    def _finish_error(
        self, flight: _InFlight, message: str, *, quarantined: bool = False
    ) -> None:
        del self._inflight[flight.key]
        self._counters["cells_failed"] += 1
        for job, indices in flight.subscribers:
            job.failed += 1
            event = {
                "type": "error", "job_id": job.job_id, "key": flight.key,
                "indices": indices, "message": message,
            }
            if quarantined:
                event["quarantined"] = True
            self._post(job, event)
            self._cell_answered(job)

    def _emit_result(
        self, job: _Job, key: str, indices: list[int], encoded: bytes,
        *, cached_hit: bool, worker,
    ) -> None:
        import json

        self._counters["cells_completed"] += len(indices)
        self._post(job, {
            "type": "result", "job_id": job.job_id, "key": key,
            "indices": indices, "cached": cached_hit, "worker": worker,
            "payload": json.loads(encoded),
        })

    def _cell_answered(self, job: _Job) -> None:
        job.remaining -= 1
        if job.remaining > 0:
            return
        self._counters["jobs_completed"] += 1
        self._post(job, {
            "type": "done", "job_id": job.job_id, "cells": job.cells,
            "computed": job.computed, "cached": job.cached,
            "coalesced": job.coalesced, "failed": job.failed,
            "elapsed_s": round(time.monotonic() - job.started, 6),
        })

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """The ``stats`` message: queue depth, utilization, dedupe, caches."""
        counters = dict(self._counters)
        submitted = counters["cells_submitted"]
        deduped = (
            counters["cells_cached"]
            + counters["cells_coalesced"]
            + counters["cells_deduped_in_job"]
        )
        busy = min(self._busy, self.workers)
        return {
            "type": "stats",
            "address": self.bound_address,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "workers": {
                "configured": self.workers,
                "busy": busy,
                "utilization": round(busy / self.workers, 4),
                "pids": sorted(self._plan_info_by_pid),
                "pool_rebuilds": counters["pool_rebuilds"],
            },
            "queue_depth": self._waiting + max(0, self._busy - self.workers),
            "cells": {
                name.removeprefix("cells_"): counters[name]
                for name in (
                    "cells_submitted", "cells_completed", "cells_computed",
                    "cells_cached", "cells_coalesced", "cells_deduped_in_job",
                    "cells_resubmitted", "cells_failed", "cells_quarantined",
                )
            },
            "quarantine": {
                "size": len(self._quarantined),
                "keys": sorted(self._quarantined),
                "max_poison_attempts": self.max_poison_attempts,
            },
            "jobs": {
                "submitted": counters["jobs_submitted"],
                "completed": counters["jobs_completed"],
            },
            "dedupe_rate": round(deduped / submitted, 4) if submitted else 0.0,
            "partials_streamed": counters["partials_streamed"],
            "result_cache": self.cache.info(),
            "plan_cache": {
                "per_worker": {
                    str(pid): info for pid, info in sorted(self._plan_info_by_pid.items())
                },
            },
        }


@contextlib.asynccontextmanager
async def _acquire(semaphore: asyncio.Semaphore):
    await semaphore.acquire()
    try:
        yield
    finally:
        semaphore.release()


async def serve_forever(
    address: str = DEFAULT_ADDRESS,
    *,
    workers: Optional[int] = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
    shard_timeout: Optional[float] = None,
    max_poison_attempts: Optional[int] = None,
    drain_timeout: float = 5.0,
    backoff_seed: int = 0,
    ready=None,
) -> None:
    """Run a :class:`SimulationServer` until stopped (the CLI entry point).

    ``ready``, when given, is called with the server once it is bound —
    how tests and the bench learn the ephemeral port.
    """
    server = SimulationServer(
        address, workers=workers, cache_size=cache_size,
        shard_timeout=shard_timeout, max_poison_attempts=max_poison_attempts,
        drain_timeout=drain_timeout, backoff_seed=backoff_seed,
    )
    await server.start()
    if ready is not None:
        ready(server)
    await server.serve_until_stopped()


@dataclass
class ServerHandle:
    """A server running on a background thread (tests, benches, notebooks)."""

    server: SimulationServer
    thread: threading.Thread
    loop: asyncio.AbstractEventLoop

    @property
    def address(self) -> str:
        return self.server.bound_address

    def stop(self, timeout: float = 10.0) -> None:
        if self.thread.is_alive():
            self.loop.call_soon_threadsafe(self.server._stop.set)
            self.thread.join(timeout=timeout)


def start_server_thread(
    address: str = "127.0.0.1:0",
    *,
    workers: Optional[int] = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
    shard_timeout: Optional[float] = None,
    max_poison_attempts: Optional[int] = None,
    drain_timeout: float = 5.0,
    backoff_seed: int = 0,
    start_timeout: float = 10.0,
) -> ServerHandle:
    """Start a server on a daemon thread and wait until it is bound.

    Port ``0`` (the default) binds an ephemeral port; the handle's
    ``address`` is the real one.  Call ``handle.stop()`` when done.
    """
    ready = threading.Event()
    box: dict = {}

    def _run():
        async def _main():
            server = SimulationServer(
                address, workers=workers, cache_size=cache_size,
                shard_timeout=shard_timeout,
                max_poison_attempts=max_poison_attempts,
                drain_timeout=drain_timeout, backoff_seed=backoff_seed,
            )
            await server.start()
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            ready.set()
            await server.serve_until_stopped()

        try:
            asyncio.run(_main())
        except BaseException as exc:  # surface startup failures to the caller
            box.setdefault("error", exc)
            ready.set()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout=start_timeout):
        raise RuntimeError("simulation server did not start in time")
    if "error" in box:
        raise RuntimeError(f"simulation server failed to start: {box['error']}")
    return ServerHandle(server=box["server"], thread=thread, loop=box["loop"])
