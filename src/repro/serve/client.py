"""Blocking client for the simulation service.

:class:`ServiceClient` speaks the JSON-lines protocol
(:mod:`repro.serve.protocol`) over one socket and exposes the service as
ordinary synchronous calls — the shape :meth:`ParallelSweep.map_cells`
and the CLI need.  One client owns one connection; connections are cheap,
so concurrent submitters simply open one client each (the server
multiplexes internally).

With ``max_reconnects > 0`` the client also *resumes*: if the connection
drops mid-job it reconnects and resubmits only the cells that have not
been answered yet (the server's content-keyed cache makes already-computed
resubmissions free), so a flaky link costs bounded resubmissions, never
lost or duplicated results.

>>> with ServiceClient("127.0.0.1:8753") as client:        # doctest: +SKIP
...     results = client.submit(cells)                     # doctest: +SKIP
...     measurements = [r.measurement for r in results]    # doctest: +SKIP
"""

from __future__ import annotations

import socket
from typing import Callable, Optional, Sequence

from repro.api.jobs import CellResult, SweepCell, measurement_from_payload
from repro.serve.protocol import (
    DEFAULT_ADDRESS,
    MAX_MESSAGE_BYTES,
    TcpAddress,
    UnixAddress,
    decode_message,
    encode_message,
    parse_address,
)

__all__ = ["ServiceClient", "ServiceError", "ConnectionLost"]


class ServiceError(RuntimeError):
    """The server reported a failure (malformed job, or a cell that
    exhausted its retry attempts)."""


class ConnectionLost(ServiceError):
    """The connection died mid-conversation (recoverable when the client
    was built with ``max_reconnects > 0``)."""


class ServiceClient:
    """A synchronous connection to a :class:`SimulationServer`.

    Parameters
    ----------
    address:
        ``HOST:PORT`` or ``unix:/PATH``; defaults to the server default.
    timeout:
        Socket timeout in seconds for connect and for each awaited
        message (``None`` = block forever).  Cells can legitimately take
        long; this guards against a dead server, not slow cells.
    max_reconnects:
        Times a dropped connection may be re-established *per submit*
        before :exc:`ConnectionLost` propagates (default ``0`` — any
        drop raises immediately).  Each reconnect resubmits only the
        cells still unanswered, so total resubmissions are bounded by
        ``max_reconnects * len(cells)`` and in practice far lower.
    """

    def __init__(
        self,
        address: str = DEFAULT_ADDRESS,
        *,
        timeout: Optional[float] = None,
        max_reconnects: int = 0,
    ):
        if max_reconnects < 0:
            raise ValueError(f"max_reconnects must be >= 0, got {max_reconnects}")
        self.address = parse_address(address)
        self.timeout = timeout
        self.max_reconnects = max_reconnects
        #: Cells resubmitted across reconnects (observability; chaos
        #: invariants assert it stays bounded).
        self.resubmissions = 0
        #: Reconnects performed across the client's lifetime.
        self.reconnects = 0
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._connect()
        self._jobs = 0

    def _connect(self) -> None:
        if isinstance(self.address, UnixAddress):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.address.path)
        else:
            sock = socket.create_connection(
                (self.address.host, self.address.port), timeout=self.timeout
            )
        self._sock = sock
        self._reader = sock.makefile("rb")

    # ------------------------------------------------------------------

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            if self._reader is not None:
                self._reader.close()
        finally:
            if self._sock is not None:
                self._sock.close()

    def _reconnect(self) -> None:
        self.close()
        self._connect()
        self.reconnects += 1

    # ------------------------------------------------------------------

    def _send(self, message: dict) -> None:
        try:
            self._sock.sendall(encode_message(message))
        except (BrokenPipeError, ConnectionError) as exc:
            raise ConnectionLost(f"connection lost while sending: {exc}") from exc

    def _recv(self) -> dict:
        try:
            line = self._reader.readline(MAX_MESSAGE_BYTES)
        except ConnectionError as exc:
            raise ConnectionLost(f"connection lost while receiving: {exc}") from exc
        if not line:
            raise ConnectionLost("server closed the connection")
        return decode_message(line)

    # ------------------------------------------------------------------

    def submit(
        self,
        cells: Sequence[SweepCell],
        *,
        on_partial: Optional[Callable[[dict], None]] = None,
        tolerate_failures: bool = False,
    ) -> list[CellResult]:
        """Submit ``cells`` and block until all are answered.

        Returns one :class:`CellResult` per submitted cell, in submission
        order (duplicate cells in the job share one computation but each
        gets its own result entry).  ``on_partial``, when given, is called
        with every streaming ``partial`` message for this job as it
        arrives: ``{"key", "indices", "cycles", "acceptance"}``.

        A cell the server could not complete (invalid payload, exhausted
        retries, quarantined as poison) raises :exc:`ServiceError` after
        the job drains, naming the failed indices — unless
        ``tolerate_failures`` is set, in which case those indices come
        back as :class:`CellResult` entries with ``measurement=None`` and
        the structured ``error``/``quarantined`` fields filled in.

        If the connection drops mid-job and the client allows reconnects,
        the remaining cells are resubmitted on a fresh connection; cells
        already answered are never resubmitted, and resubmitted cells that
        the server already computed replay byte-identically from its cache.
        """
        if not cells:
            return []
        results: dict[int, CellResult] = {}
        failed: dict[int, tuple[str, str, bool]] = {}  # index -> (key, msg, quarantined)
        pending = list(range(len(cells)))
        reconnects_left = self.max_reconnects
        first_round = True
        while pending:
            if not first_round:
                self.resubmissions += len(pending)
            first_round = False
            mapping = pending  # job-local index -> original index
            try:
                pending = self._run_job(cells, mapping, results, failed, on_partial)
            except ConnectionLost:
                if reconnects_left <= 0:
                    raise
                reconnects_left -= 1
                self._reconnect()
                pending = [
                    index for index in mapping
                    if index not in results and index not in failed
                ]
        if failed and not tolerate_failures:
            detail = "; ".join(
                f"cells [{index}]: {reason}"
                for index, (_, reason, _) in sorted(failed.items())
            )
            raise ServiceError(f"job had failed cells: {detail}")
        out = []
        for index in range(len(cells)):
            if index in results:
                out.append(results[index])
            else:
                key, reason, quarantined = failed[index]
                out.append(CellResult(
                    key=key, measurement=None,
                    error=reason, quarantined=quarantined,
                ))
        return out

    def _run_job(
        self,
        cells: Sequence[SweepCell],
        mapping: list[int],
        results: dict[int, CellResult],
        failed: dict[int, tuple[str, str, bool]],
        on_partial: Optional[Callable[[dict], None]],
    ) -> list[int]:
        """One submit/drain round over ``mapping``; returns still-pending."""
        self._jobs += 1
        job_id = f"client-{id(self):x}-{self._jobs}"
        self._send({
            "type": "submit",
            "job_id": job_id,
            "cells": [cells[index].payload() for index in mapping],
        })
        while True:
            message = self._recv()
            kind = message["type"]
            if message.get("job_id") != job_id:
                if kind == "error" and "job_id" not in message:
                    raise ServiceError(message.get("message", "protocol error"))
                continue  # stray message from another interleaved use
            if kind == "accepted":
                continue
            if kind == "partial":
                if on_partial is not None:
                    on_partial(message)
                continue
            if kind == "result":
                measurement = measurement_from_payload(message["payload"])
                for local in message["indices"]:
                    results[mapping[local]] = CellResult(
                        key=message["key"],
                        measurement=measurement,
                        cached=bool(message["cached"]),
                        worker=message["worker"],
                    )
                continue
            if kind == "error":
                record = (
                    message.get("key", ""),
                    message.get("message", "unknown"),
                    bool(message.get("quarantined", False)),
                )
                for local in message.get("indices", []):
                    failed[mapping[local]] = record
                continue
            if kind == "done":
                return [
                    index for index in mapping
                    if index not in results and index not in failed
                ]

    def run(self, cells: Sequence[SweepCell]) -> list:
        """:meth:`submit`, returning just the measurements in order."""
        return [result.measurement for result in self.submit(cells)]

    def status(self) -> dict:
        """The server's ``stats`` snapshot (see ``SimulationServer.stats``)."""
        self._send({"type": "status"})
        while True:
            message = self._recv()
            if message["type"] == "stats":
                return message

    def shutdown_server(self) -> None:
        """Ask the server to stop (it replies ``bye`` first)."""
        self._send({"type": "shutdown"})
        while True:
            try:
                message = self._recv()
            except (ServiceError, OSError):
                return  # connection torn down by the stopping server
            if message["type"] == "bye":
                return
