"""Blocking client for the simulation service.

:class:`ServiceClient` speaks the JSON-lines protocol
(:mod:`repro.serve.protocol`) over one socket and exposes the service as
ordinary synchronous calls — the shape :meth:`ParallelSweep.map_cells`
and the CLI need.  One client owns one connection; connections are cheap,
so concurrent submitters simply open one client each (the server
multiplexes internally).

>>> with ServiceClient("127.0.0.1:8753") as client:        # doctest: +SKIP
...     results = client.submit(cells)                     # doctest: +SKIP
...     measurements = [r.measurement for r in results]    # doctest: +SKIP
"""

from __future__ import annotations

import socket
from typing import Callable, Optional, Sequence

from repro.api.jobs import CellResult, SweepCell, measurement_from_payload
from repro.serve.protocol import (
    DEFAULT_ADDRESS,
    MAX_MESSAGE_BYTES,
    TcpAddress,
    UnixAddress,
    decode_message,
    encode_message,
    parse_address,
)

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The server reported a failure (malformed job, or a cell that
    exhausted its retry attempts)."""


class ServiceClient:
    """A synchronous connection to a :class:`SimulationServer`.

    Parameters
    ----------
    address:
        ``HOST:PORT`` or ``unix:/PATH``; defaults to the server default.
    timeout:
        Socket timeout in seconds for connect and for each awaited
        message (``None`` = block forever).  Cells can legitimately take
        long; this guards against a dead server, not slow cells.
    """

    def __init__(self, address: str = DEFAULT_ADDRESS, *, timeout: Optional[float] = None):
        self.address = parse_address(address)
        if isinstance(self.address, UnixAddress):
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(self.address.path)
        else:
            self._sock = socket.create_connection(
                (self.address.host, self.address.port), timeout=timeout
            )
        self._reader = self._sock.makefile("rb")
        self._jobs = 0

    # ------------------------------------------------------------------

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    # ------------------------------------------------------------------

    def _send(self, message: dict) -> None:
        self._sock.sendall(encode_message(message))

    def _recv(self) -> dict:
        line = self._reader.readline(MAX_MESSAGE_BYTES)
        if not line:
            raise ServiceError("server closed the connection")
        return decode_message(line)

    # ------------------------------------------------------------------

    def submit(
        self,
        cells: Sequence[SweepCell],
        *,
        on_partial: Optional[Callable[[dict], None]] = None,
    ) -> list[CellResult]:
        """Submit ``cells`` and block until all are answered.

        Returns one :class:`CellResult` per submitted cell, in submission
        order (duplicate cells in the job share one computation but each
        gets its own result entry).  ``on_partial``, when given, is called
        with every streaming ``partial`` message for this job as it
        arrives: ``{"key", "indices", "cycles", "acceptance"}``.

        A cell the server could not complete (invalid payload, or its
        workers died/stalled twice) raises :exc:`ServiceError` after the
        job drains, naming the failed indices.
        """
        if not cells:
            return []
        self._jobs += 1
        job_id = f"client-{id(self):x}-{self._jobs}"
        self._send({
            "type": "submit",
            "job_id": job_id,
            "cells": [cell.payload() for cell in cells],
        })
        results: dict[int, CellResult] = {}
        failures: list[tuple[list[int], str]] = []
        while True:
            message = self._recv()
            kind = message["type"]
            if message.get("job_id") != job_id:
                if kind == "error" and "job_id" not in message:
                    raise ServiceError(message.get("message", "protocol error"))
                continue  # stray message from another interleaved use
            if kind == "accepted":
                continue
            if kind == "partial":
                if on_partial is not None:
                    on_partial(message)
                continue
            if kind == "result":
                measurement = measurement_from_payload(message["payload"])
                for index in message["indices"]:
                    results[index] = CellResult(
                        key=message["key"],
                        measurement=measurement,
                        cached=bool(message["cached"]),
                        worker=message["worker"],
                    )
                continue
            if kind == "error":
                failures.append(
                    (message.get("indices", []), message.get("message", "unknown"))
                )
                continue
            if kind == "done":
                break
        if failures:
            detail = "; ".join(
                f"cells {indices}: {reason}" for indices, reason in failures
            )
            raise ServiceError(f"job {job_id} had failed cells: {detail}")
        return [results[index] for index in range(len(cells))]

    def run(self, cells: Sequence[SweepCell]) -> list:
        """:meth:`submit`, returning just the measurements in order."""
        return [result.measurement for result in self.submit(cells)]

    def status(self) -> dict:
        """The server's ``stats`` snapshot (see ``SimulationServer.stats``)."""
        self._send({"type": "status"})
        while True:
            message = self._recv()
            if message["type"] == "stats":
                return message

    def shutdown_server(self) -> None:
        """Ask the server to stop (it replies ``bye`` first)."""
        self._send({"type": "shutdown"})
        while True:
            try:
                message = self._recv()
            except (ServiceError, OSError):
                return  # connection torn down by the stopping server
            if message["type"] == "bye":
                return
