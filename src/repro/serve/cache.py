"""Content-keyed result cache: the service's dedupe memory.

The server keys every cell by :meth:`repro.api.jobs.SweepCell.key` — a
digest over exactly the inputs that determine the measurement — and
caches the cell's *canonically encoded* result payload.  Storing the
encoded JSON (not the object) makes the dedupe contract literal: every
hit returns byte-identical bytes to the first computation, no matter
which worker produced it or which client asks.

Mirrors the plan cache's shape (:mod:`repro.sim.plan`): bounded LRU,
thread-safe, ``info()`` counters — one design for both cache layers, per
the "many small caches composed behind one interface" sharding story.
A result payload is a few hundred bytes, so the default capacity holds
every cell of a large figure sweep comfortably.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

__all__ = ["ResultCache", "DEFAULT_CACHE_SIZE"]

#: Default bound on cached cell results.
DEFAULT_CACHE_SIZE = 65536


class ResultCache:
    """A bounded, thread-safe LRU of ``content key -> encoded payload``.

    >>> cache = ResultCache(maxsize=2)
    >>> cache.put("a", b'{"pa":1}')
    >>> cache.get("a")
    b'{"pa":1}'
    >>> cache.get("b") is None
    True
    >>> cache.info()["hits"], cache.info()["misses"]
    (1, 1)
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE):
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: str) -> Optional[bytes]:
        """The cached payload bytes, or ``None`` (counted as a miss)."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return payload

    def put(self, key: str, payload: bytes) -> None:
        """Store ``payload`` under ``key`` (idempotent: first write wins,
        so a racing duplicate compute can never change what hits return)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            self._entries[key] = payload
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def info(self) -> dict:
        """``{hits, misses, size, maxsize}`` — the plan-cache counter shape."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }
