"""Shared worker-pool supervision: deadline waits, loss detection, retry.

Two consumers shard work across a ``ProcessPoolExecutor`` and must survive
worker death and stalls: :class:`~repro.experiments.parallel.ParallelSweep`
(one-shot experiment grids) and the :mod:`repro.serve.server` cell pool
(long-running service).  This module is the supervision machinery both
lean on, generalized out of ``ParallelSweep``'s original retry loop:

* :func:`fork_context` — the preferred multiprocessing context (``fork``
  shares loaded numpy state and already-compiled routing plans with
  workers for free; platform default where fork is unavailable).
* :func:`run_shards` — one fan-out pass over a pool with *deadline-based*
  collection: every shard's timeout clock starts when the shard starts
  *running* (not when an earlier shard's result was collected), so one
  slow shard can no longer extend every later shard's effective deadline —
  total wall is bounded by the slowest healthy chain, not ``n x timeout``.
  Returns which shards were lost to worker death or deadline expiry;
  ordinary worker exceptions are bugs and propagate immediately.
* :class:`RetryLedger` — per-shard attempt bookkeeping with a shared
  attempt bound: ``charge`` a loss, learn whether the shard may run again.
* :func:`supervised_map` — the full policy: fan out, then retry lost
  shards exactly once on a fresh pool after a short backoff (a dead
  worker poisons its whole pool, and an abandoned stalled worker may
  never return, so the retry pool must be fresh).  Safe because shards
  are pure functions of their payload: a rerun reproduces the lost
  result bit for bit.

The asyncio server reuses :func:`fork_context`, :class:`RetryLedger`,
and the module's policy constants, applying the same
fresh-pool/resubmit/attempt-bound discipline cell by cell instead of
batch by batch.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional, Sequence

__all__ = [
    "RETRY_BACKOFF",
    "MAX_ATTEMPTS",
    "RetryLedger",
    "ShardRun",
    "fork_context",
    "run_shards",
    "supervised_map",
]

#: Seconds to wait before retrying lost shards on a fresh pool.
RETRY_BACKOFF = 0.25

#: Times one shard may run before it is declared failed (1 + one retry).
MAX_ATTEMPTS = 2

#: Deadline-poll granularity (seconds); also bounds how stale the
#: observed "shard started running" timestamps can be.
_TICK = 0.05


def fork_context():
    """The multiprocessing context supervised pools are built from.

    ``fork`` shares the loaded numpy/scipy state *and* every routing plan
    the parent has already compiled (each worker starts with a warm
    per-process plan cache — including any native-backend kernels riding
    the plans, so workers skip the JIT warm-up too; the C tier's on-disk
    build cache covers spawn-started workers as well); platforms without
    fork fall back to their default context (workers start cold and
    compile on first use).
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class RetryLedger:
    """Attempt bookkeeping for shards lost to worker death or deadlines.

    >>> ledger = RetryLedger(max_attempts=2)
    >>> ledger.charge("cell-a")   # first loss: may retry
    True
    >>> ledger.charge("cell-a")   # second loss: give up
    False
    >>> ledger.retried
    ('cell-a',)
    """

    def __init__(self, max_attempts: int = MAX_ATTEMPTS):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts
        self._losses: dict[Hashable, int] = {}

    def charge(self, key: Hashable) -> bool:
        """Record one loss of ``key``; True while another attempt remains."""
        self._losses[key] = self._losses.get(key, 0) + 1
        return self._losses[key] < self.max_attempts

    def forgive(self, key: Hashable) -> None:
        """Drop ``key``'s loss record (it completed on a later attempt)."""
        self._losses.pop(key, None)

    @property
    def retried(self) -> tuple:
        """Keys that have been charged at least once, in first-loss order."""
        return tuple(self._losses)


@dataclass
class ShardRun:
    """Outcome of one :func:`run_shards` pass."""

    #: shard index -> worker return value, for shards that completed.
    results: dict[int, object] = field(default_factory=dict)
    #: Shards lost to worker death or deadline expiry, ascending.
    lost: list[int] = field(default_factory=list)
    #: True when any loss was a deadline expiry — the stalled worker was
    #: abandoned mid-task, so the pool must not be waited on at shutdown.
    timed_out: bool = False


def run_shards(
    pool: ProcessPoolExecutor,
    target: Callable,
    payloads: Sequence,
    indices: Sequence[int],
    *,
    jobs: int,
    timeout: Optional[float] = None,
) -> ShardRun:
    """One supervised fan-out pass: submit ``indices``, collect with deadlines.

    Each shard's deadline is ``timeout`` seconds from the moment it is
    first observed *running* (observation granularity :data:`_TICK`), so
    queued shards waiting behind a busy-but-healthy pool are never
    penalized for queue time, and a stalled shard is charged only for its
    own stall.  A shard whose worker dies (``BrokenProcessPool``) or
    whose deadline expires lands in ``lost``; once every pool slot is
    pinned by an expired shard the remaining queue can never start and is
    declared lost wholesale.  Worker exceptions propagate.
    """
    run = ShardRun()
    futures = {}
    for index in indices:
        try:
            futures[index] = pool.submit(target, payloads[index])
        except BrokenProcessPool:
            break  # pool already poisoned: remaining shards are lost
    run.lost.extend(index for index in indices if index not in futures)

    deadlines: dict[int, float] = {}
    expired_running = 0  # each one pins a worker slot until pool teardown
    pending = dict(futures)
    while pending:
        wait(pending.values(), timeout=_TICK if timeout is not None else None,
             return_when=FIRST_COMPLETED)
        now = time.monotonic()
        for index, future in list(pending.items()):
            if future.done():
                del pending[index]
                deadlines.pop(index, None)
                try:
                    run.results[index] = future.result()
                except BrokenProcessPool:
                    run.lost.append(index)
                continue
            if timeout is None:
                continue
            if future.running() and index not in deadlines:
                deadlines[index] = now + timeout
            elif deadlines.get(index, float("inf")) <= now:
                # Expired mid-run: abandon the shard (its worker may never
                # return) but keep collecting the others.
                del pending[index]
                del deadlines[index]
                run.lost.append(index)
                run.timed_out = True
                expired_running += 1
        if expired_running >= jobs and pending:
            # Every worker slot is pinned by an abandoned shard: nothing
            # still queued can ever start on this pool.
            run.lost.extend(pending)
            pending.clear()
    run.lost.sort()
    return run


def supervised_map(
    target: Callable,
    payloads: Sequence,
    *,
    jobs: int,
    timeout: Optional[float] = None,
    max_attempts: int = MAX_ATTEMPTS,
    backoff: float = RETRY_BACKOFF,
) -> tuple[list, tuple[int, ...]]:
    """Map ``target`` over ``payloads`` across processes, surviving loss.

    Returns ``(results_in_payload_order, retried_shard_indices)``.
    Shards lost to worker death or deadline expiry are resubmitted on a
    fresh pool (up to ``max_attempts`` runs each, after ``backoff``
    seconds); shards that exhaust their attempts raise ``RuntimeError``.
    """
    ctx = fork_context()
    results: list = [None] * len(payloads)
    ledger = RetryLedger(max_attempts)
    outstanding = list(range(len(payloads)))
    attempt = 0
    while outstanding:
        if attempt > 0:
            time.sleep(backoff)
        pool = ProcessPoolExecutor(
            max_workers=min(jobs, len(outstanding)), mp_context=ctx
        )
        run = ShardRun()  # pre-bound so the finally sees it if run_shards raises
        try:
            run = run_shards(
                pool, target, payloads, outstanding,
                jobs=min(jobs, len(outstanding)), timeout=timeout,
            )
        finally:
            # An abandoned stalled worker may never return; do not wait on
            # it.  Cancelling is harmless: nothing we still care about is
            # queued (lost shards rerun on the next pool).
            pool.shutdown(wait=not run.timed_out, cancel_futures=True)
        for index, value in run.results.items():
            results[index] = value
        exhausted = [i for i in run.lost if not ledger.charge(i)]
        if exhausted:
            raise RuntimeError(
                f"sweep shards {sorted(exhausted)} failed twice "
                "(worker process died or shard timed out on both tries)"
            )
        outstanding = run.lost
        attempt += 1
    return results, ledger.retried
