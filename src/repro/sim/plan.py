"""Compiled routing plans, reusable chunk workspaces, and the plan cache.

Monte-Carlo throughput is bound by how fast a *chunk* of cycles moves
through the array engines, and profiling the pre-plan engines showed two
fixed costs repeated on every ``measure_acceptance`` call: every freshly
built engine recomputed the stage wiring tables (interstage gamma lookup
tables, per-wire switch bases, digit shift constants) and reallocated
every chunk-sized scratch array from a cold heap.  Sweeps rebuild routers
per grid cell, so that setup tax was paid thousands of times per figure.

This module compiles all of it **once per topology**:

* :class:`StagePlan` — everything about a
  :class:`~repro.sim.stagegraph.StageGraph` under a contention discipline
  that does not depend on the demand data: stage widths, link-permutation
  lookup tables, switch-base rows, cycle-row offsets, packed-lane
  feasibility, and the narrow dtypes the kernels may safely compute in
  (``int16`` wire labels when every stage width and the output space fit
  in 15 bits).  Plans are immutable after compilation and safely shared
  by any number of engines; every unidirectional multistage topology in
  the repository (EDN, delta, omega, dilated delta) compiles to one.
* :class:`RoutingPlan` — the ``EDN(a, b, c, l)`` specialization of
  :class:`StagePlan`, keeping the EDN-specific views (``params``, digit
  shifts, gamma tables by stage number) the dedicated EDN engines
  consume.
* :class:`ChunkWorkspace` — named scratch buffers grown monotonically and
  recycled across calls, so steady-state chunk routing performs no
  chunk-sized heap allocations.  Workspaces are mutable and therefore
  **per-thread**: :meth:`StagePlan.workspace` hands each thread its own.
* :func:`plan_for` / :func:`stage_plan_for` — the keyed LRU plan cache.
  Engines built from equal ``(params, priority, retirement order)`` keys
  (EDN) or equal ``(graph, priority, faults)`` keys (stage graphs) share
  one compiled plan, so repeated ``build_router``/``measure`` calls skip
  all topology setup.  :func:`plan_cache_info` / :func:`clear_plan_cache`
  expose the cache to tests and benchmarks.

Plan keys deliberately cover *exactly* the inputs that determine array-
engine routing.  Wire faults are one of those inputs: a
:class:`StagePlan` compiled with a non-empty fault set bakes per-stage
dead-wire masks into its tables — a liveness mask over each column's
virtual bucket-wire space (``fault_alive``) and a live-wire remap
composed into the link-permutation tables (``fault_link_table``) — and
the canonical fault tuple is folded into the cache key, so differing
fault sets can never alias to one plan.  Spec features the array engines
still do not implement (non-first-free wire policies) route through the
per-message reference backend, which never consults this cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.core.faults import FaultSet, WireFault
from repro.core.labels import ilog2
from repro.core.tags import RetirementOrder

if TYPE_CHECKING:  # repro.sim.stagegraph imports gamma_permutation lazily
    from repro.sim.stagegraph import StageGraph

__all__ = [
    "ChunkWorkspace",
    "StagePlan",
    "BufferedState",
    "RoutingPlan",
    "gamma_permutation",
    "plan_for",
    "compile_plan",
    "stage_plan_for",
    "compile_stage_plan",
    "clear_plan_cache",
    "plan_cache_info",
    "PLAN_CACHE_MAXSIZE",
]


def gamma_permutation(
    y: np.ndarray, n_bits: int, capacity_bits: int, fan_in_bits: int
) -> np.ndarray:
    """``gamma_{log2(c), log2(a/c)}`` applied to ``n_bits``-bit labels.

    The single closed form of the interstage wiring permutation, shared
    by the per-cycle engine (:meth:`VectorizedEDN._gamma_vec`) and the
    compiled lookup tables below, so the two can never drift apart.
    """
    j, k = capacity_bits, fan_in_bits
    upper_width = n_bits - j
    if upper_width == 0 or k % upper_width == 0:
        return y
    shift = k % upper_width
    low = y & ((1 << j) - 1)
    upper = y >> j
    mask = (1 << upper_width) - 1
    rotated = ((upper << shift) | (upper >> (upper_width - shift))) & mask
    return (rotated << j) | low

#: Compiled plans kept by the LRU cache (each may hold a few MB of tables
#: plus per-thread workspaces, so the cache is bounded).
PLAN_CACHE_MAXSIZE = 32

#: Bits per packed bucket counter (mirrors the batched engine's lanes).
_LANE_BITS = 8
_LANE_MASK = (1 << _LANE_BITS) - 1


class ChunkWorkspace:
    """Named scratch buffers, grown monotonically and reused across calls.

    ``array(name, size, dtype)`` returns an *uninitialized* length-``size``
    view of a buffer dedicated to ``(name, dtype)``; the backing buffer
    only ever grows, so a steady-state sequence of equally-shaped chunk
    routings allocates nothing.  Contents never survive between requests —
    callers must write before they read (all kernel consumers fill their
    buffers with ``out=`` ufuncs or explicit fills).

    A workspace is cheap to create and holds no topology state, but it is
    **not** safe to share across threads routing concurrently; use
    :meth:`RoutingPlan.workspace` for a per-thread instance.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[tuple[str, str], np.ndarray] = {}

    def array(self, name: str, size: int, dtype) -> np.ndarray:
        """An uninitialized ``size``-element view of the named buffer."""
        key = (name, np.dtype(dtype).char)
        buf = self._buffers.get(key)
        if buf is None or buf.size < size:
            buf = np.empty(size, dtype=dtype)
            self._buffers[key] = buf
        return buf[:size]

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the backing buffers."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        """Drop every backing buffer (they regrow on demand)."""
        self._buffers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChunkWorkspace({len(self._buffers)} buffers, {self.nbytes} bytes)"


class StagePlan:
    """Everything data-independent about routing one stage graph, compiled once.

    Instances are produced by :func:`stage_plan_for` (cached) or
    :func:`compile_stage_plan` (always fresh) and treated as immutable:
    the lazily-added dtype variants of the lookup tables are idempotent,
    so concurrent readers are safe.  Mutable scratch lives in per-thread
    :class:`ChunkWorkspace` instances obtained via :meth:`workspace`.

    :class:`RoutingPlan` specializes this class for the dedicated EDN
    engines; every other compiled topology (delta, omega, dilated delta)
    consumes a plain ``StagePlan`` through
    :class:`~repro.sim.batched.CompiledStageRouter`.
    """

    __slots__ = (
        "graph",
        "priority",
        "faults",
        "buffer_depth",
        "_fault_stages",
        "stage_widths",
        "wire_dtype",
        "all_packed",
        "_tables",
        "_local",
    )

    def __init__(
        self,
        graph: "StageGraph",
        priority: str = "label",
        faults: tuple[WireFault, ...] = (),
        buffer_depth: Optional[int] = None,
    ):
        if priority not in ("label", "random"):
            raise ConfigurationError(f"unknown priority discipline {priority!r}")
        self.graph = graph
        self.priority = priority
        #: canonical (sorted, deduplicated) dead-wire tuple baked into the
        #: plan's tables; part of the cache key, so fault sets never alias.
        self.faults = tuple(sorted(set(faults)))
        if self.faults:
            FaultSet(self.faults).validate_graph(graph)
        #: per-wire FIFO depth for the buffered back-pressure pass, or
        #: ``None`` for the classic unbuffered (drop-on-loss) discipline.
        #: Folded into the cache key only when set, so unbuffered plan
        #: keys are unchanged.
        if buffer_depth is not None:
            buffer_depth = int(buffer_depth)
            if buffer_depth < 1:
                raise ConfigurationError(
                    f"buffer depth must be >= 1, got {buffer_depth}"
                )
        self.buffer_depth = buffer_depth
        self._fault_stages = frozenset(fault.stage - 1 for fault in self.faults)
        #: wires entering each stage (index 0 = network inputs).
        self.stage_widths = graph.stage_widths
        # Narrowest dtype that can hold every within-cycle wire label,
        # bucket-wire label, and destination label at any stage (the
        # "narrow-dtype scratch layout" the specialized kernels compute in).
        final_space = graph.n_outputs << graph.out_shift
        peak = max(max(self.stage_widths), final_space, graph.n_outputs)
        if peak < 2**15:
            self.wire_dtype = np.dtype(np.int16)
        elif peak < 2**31:
            self.wire_dtype = np.dtype(np.int32)
        else:  # pragma: no cover - astronomical networks
            self.wire_dtype = np.dtype(np.int64)
        self.all_packed = all(
            self._packed_ok(stage.fan_in, stage.radix) for stage in graph.stages
        )
        self._tables: dict[tuple, np.ndarray] = {}
        self._local = threading.local()

    @staticmethod
    def _packed_ok(fan_in: int, radix: int) -> bool:
        """Whether one stage's rank can use packed 8-bit counter lanes."""
        return fan_in <= _LANE_MASK >> 1 and radix * _LANE_BITS <= 64

    # ------------------------------------------------------------------
    # Compiled index tables (immutable, shared across engines)
    # ------------------------------------------------------------------
    # Tables build lazily on first access and are cached forever on the
    # plan: a per-cycle engine that only needs the stage shifts never pays
    # for them, while batched engines compile each table exactly once per
    # cached plan.  Concurrent first accesses are a benign idempotent race
    # (both threads compute the same array; one dict write wins).

    def _perm(self, spec, dtype) -> np.ndarray:
        """The lookup table of one permutation spec, per requested dtype."""
        from repro.sim.stagegraph import materialize_permutation

        key = ("perm", spec, np.dtype(dtype).char)
        table = self._tables.get(key)
        if table is None:
            table = materialize_permutation(spec).astype(dtype)
            self._tables[key] = table
        return table

    def perm_table(self, stage_index: int, dtype) -> Optional[np.ndarray]:
        """Link-permutation table leaving stage ``stage_index`` (0-based).

        ``None`` means identity wiring (the final stage, and any interior
        boundary the topology wires straight through).  One gather through
        this table replaces the ~8 elementwise ops of the closed-form
        permutation per stage per chunk.
        """
        spec = self.graph.stages[stage_index].link_perm
        if spec is None:
            return None
        return self._perm(spec, dtype)

    def input_perm_table(self, dtype) -> Optional[np.ndarray]:
        """Source -> first-column-wire table, or ``None`` for identity."""
        spec = self.graph.input_perm
        if spec is None:
            return None
        return self._perm(spec, dtype)

    def stage_base(self, stage_index: int, dtype) -> np.ndarray:
        """Per-wire ``switch * radix * capacity - 1`` row for one stage.

        The ``- 1`` pre-folds the conversion of inclusive in-bucket ranks
        to 0-based bucket-wire offsets.
        """
        stage = self.graph.stages[stage_index]
        width = self.stage_widths[stage_index]
        key = ("stbase", stage.fan_in, stage.bucket_wires, width, np.dtype(dtype).char)
        row = self._tables.get(key)
        if row is None:
            switch = np.arange(width, dtype=dtype) >> ilog2(stage.fan_in)
            row = (switch << ilog2(stage.bucket_wires)) - 1
            self._tables[key] = row
        return row

    def row_offsets(self, batch: int, width_bits: int, dtype, bias: int = 0) -> np.ndarray:
        """``(batch, 1)`` column of per-cycle flat-frontier offsets.

        Adding this column to a ``(batch, width)`` matrix of within-cycle
        wire labels produces global scatter indices (``cycle * width +
        wire + bias``) in one broadcast pass; the counts kernel uses
        ``bias=1`` to reserve flat index 0 as its trash slot.
        """
        key = ("rows", batch, width_bits, bias, np.dtype(dtype).char)
        column = self._tables.get(key)
        if column is None:
            column = ((np.arange(batch, dtype=dtype) << width_bits) + bias)[:, None]
            self._tables[key] = column
        return column

    # ------------------------------------------------------------------
    # Fault lowering (dead-wire masks baked into the compiled plan)
    # ------------------------------------------------------------------
    # Contention already ranks each bucket's arrivals; with w dead wires
    # in a bucket the i-th ranked winner takes the i-th *live* wire and
    # ranks >= capacity - w are blocked — exactly the reference engines'
    # first-free-among-live grant.  Lowered, that is two tables per
    # faulted stage over the stage's virtual bucket-wire space
    # (switch * bucket_wires + digit * capacity + rank):
    #
    # * ``fault_alive``  — rank k survives iff its bucket has > k live
    #   wires (a boolean refinement of the kernels' ``accepted`` mask);
    # * ``fault_link_table`` — the stage's link permutation pre-composed
    #   with the live-wire remap (stable argsort of the dead mask per
    #   bucket), so surviving winners still route with a single gather.
    #
    # The final stage needs no remap: its output label is the virtual
    # wire >> out_shift, and the remap permutes within one capacity
    # block, which is exactly 2**out_shift wide.
    #
    # The buffered FIFO kernels use a third view, ``fault_dead_slots``:
    # they grant *physical* slots (a slot is available iff its downstream
    # queue has room), so the dead mask folds directly into the per-slot
    # availability instead of refining ranks.

    def _fault_build(
        self, stage_index: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        stage = self.graph.stages[stage_index]
        cap = stage.capacity
        space = self.stage_widths[stage_index] // stage.fan_in * stage.bucket_wires
        dead = np.zeros(space, dtype=bool)
        for fault in self.faults:
            if fault.stage == stage_index + 1:
                dead[fault.switch * stage.bucket_wires + fault.local_wire] = True
        buckets = dead.reshape(-1, cap)
        live_count = cap - buckets.sum(axis=1)
        alive = (np.arange(cap) < live_count[:, None]).reshape(-1)
        order = np.argsort(buckets, axis=1, kind="stable")
        base = np.arange(space // cap, dtype=np.int64)[:, None] * cap
        remap = (base + order).reshape(-1)
        return alive, remap, dead

    def _fault_tables(self, stage_index: int) -> tuple[np.ndarray, np.ndarray]:
        alive = self._tables.get(("falive", stage_index))
        remap = self._tables.get(("fremap", stage_index))
        if alive is None or remap is None:
            alive, remap, dead = self._fault_build(stage_index)
            self._tables[("falive", stage_index)] = alive
            self._tables[("fremap", stage_index)] = remap
            self._tables[("fdead", stage_index)] = dead
        return alive, remap

    def fault_alive(self, stage_index: int) -> Optional[np.ndarray]:
        """Liveness of each ``(bucket, rank)`` winner of one faulted stage.

        A boolean table over the stage's virtual bucket-wire space:
        ``alive[switch * bucket_wires + digit * capacity + k]`` is true
        iff the bucket has more than ``k`` live wires, i.e. the winner
        holding 0-based rank ``k`` is granted a wire.  ``None`` means the
        stage carries no faults (the kernels skip the refinement).
        """
        if stage_index not in self._fault_stages:
            return None
        return self._fault_tables(stage_index)[0]

    def fault_dead_slots(self, stage_index: int) -> Optional[np.ndarray]:
        """Dead physical slots of one stage, over virtual bucket-wire space.

        A boolean table indexed by physical slot
        ``switch * bucket_wires + digit * capacity + local`` — true where
        the slot's wire is dead.  This is the *physical* companion to the
        rank-space :meth:`fault_alive` mask: the buffered FIFO kernels
        grant physical slots directly (slot availability = has queue room
        ∧ not dead), so they consume this mask instead of the rank
        refinement.  ``None`` when the stage carries no faults.
        """
        if stage_index not in self._fault_stages:
            return None
        self._fault_tables(stage_index)
        return self._tables[("fdead", stage_index)]

    def fault_link_table(self, stage_index: int, dtype) -> Optional[np.ndarray]:
        """Link table of a faulted stage, pre-composed with the live remap.

        Replaces :meth:`perm_table` for faulted interior stages: indexing
        by a surviving winner's virtual wire yields the next-stage wire
        its *live* physical wire feeds.  ``None`` when the stage carries
        no faults.
        """
        if stage_index not in self._fault_stages:
            return None
        key = ("flink", stage_index, np.dtype(dtype).char)
        table = self._tables.get(key)
        if table is None:
            remap = self._fault_tables(stage_index)[1]
            spec = self.graph.stages[stage_index].link_perm
            if spec is None:
                table = remap.astype(dtype)
            else:
                table = self._perm(spec, dtype)[remap]
            self._tables[key] = table
        return table

    # ------------------------------------------------------------------
    # Derived execution parameters
    # ------------------------------------------------------------------

    def index_dtype(self, total: int) -> np.dtype:
        """Dtype for flat ``(batch * width)`` scatter/gather indices."""
        return np.dtype(np.int32) if total < 2**31 - 1 else np.dtype(np.int64)

    def preferred_batch(self) -> int:
        """Cycles per chunk keeping a stage's working set cache-resident.

        Matches the historical ``BatchedEDN.preferred_batch`` sizing —
        about ``2**17`` frontier entries per chunk, at least 16 cycles —
        so default-batch measurements reproduce the pre-plan chunking
        (and therefore its traffic streams) exactly.
        """
        return max(16, min(64, (1 << 17) // self.graph.n_inputs))

    def workspace(self) -> ChunkWorkspace:
        """This thread's scratch workspace for engines sharing the plan."""
        ws = getattr(self._local, "ws", None)
        if ws is None:
            ws = ChunkWorkspace()
            self._local.ws = ws
        return ws

    def buffered_state(self) -> "BufferedState":
        """A fresh mutable queue state for one buffered run of this plan."""
        if self.buffer_depth is None:
            raise ConfigurationError(
                "plan was compiled without a buffer depth; "
                "pass buffer_depth= to get a buffered plan"
            )
        return BufferedState(self)

    @property
    def key(self) -> tuple:
        """The cache key this plan is stored under."""
        if self.buffer_depth is not None:
            return (self.graph, self.priority, self.faults, self.buffer_depth)
        return (self.graph, self.priority, self.faults)

    def __repr__(self) -> str:
        faulted = f", faults={len(self.faults)}" if self.faults else ""
        buffered = (
            f", buffer_depth={self.buffer_depth}"
            if self.buffer_depth is not None
            else ""
        )
        return (
            f"StagePlan({self.graph.label}, priority={self.priority!r}, "
            f"wire_dtype={self.wire_dtype.name}, packed={self.all_packed}"
            f"{faulted}{buffered})"
        )


class BufferedState:
    """Mutable per-wire FIFO state for one buffered run of a :class:`StagePlan`.

    One queue per wire entering each stage (boundary ``i`` feeds stage
    ``i``; boundary 0 is the post-input-permutation entry column).  Each
    queue is a dense shift-register slice of three parallel arrays —
    destination labels, injection-cycle stamps, and an occupancy count —
    which is exactly the layout the vectorized back-pressure kernels
    want: head reads are column 0, pops are one slice copy, pushes index
    ``[wire, occupancy]``.  Unlike the immutable plan this state is
    per-run and single-threaded; :meth:`StagePlan.buffered_state` hands
    every run a fresh instance.
    """

    __slots__ = ("plan", "depth", "occupancy", "dests", "stamps")

    def __init__(self, plan: StagePlan) -> None:
        if plan.buffer_depth is None:
            raise ConfigurationError("plan has no buffer depth")
        self.plan = plan
        self.depth = plan.buffer_depth
        widths = plan.stage_widths
        self.occupancy = [np.zeros(w, dtype=np.int64) for w in widths]
        self.dests = [
            np.full((w, self.depth), -1, dtype=plan.wire_dtype) for w in widths
        ]
        self.stamps = [np.zeros((w, self.depth), dtype=np.int64) for w in widths]

    @property
    def num_queues(self) -> int:
        """Total FIFO queues across all stage boundaries."""
        return sum(occ.size for occ in self.occupancy)

    def total_occupancy(self) -> int:
        """Packets currently queued anywhere in the network."""
        return int(sum(int(occ.sum()) for occ in self.occupancy))


class RoutingPlan(StagePlan):
    """The ``EDN(a, b, c, l)`` specialization of :class:`StagePlan`.

    Compiles the EDN's stage graph (``l`` hyperbar columns + the crossbar
    column under a retirement order) and keeps the EDN-specific views the
    dedicated engines consume: ``params``, per-stage digit ``shifts``,
    and the historical ``gamma_table``/``switch_base`` accessors keyed
    the way :class:`~repro.sim.batched.BatchedEDN` requests them.  Cache
    keys remain ``(params, priority, retirement)``, so EDN plans and
    generic stage plans coexist in one LRU without aliasing.
    """

    __slots__ = ("params", "retirement", "stage_shifts")

    def __init__(
        self,
        params: EDNParams,
        priority: str = "label",
        retirement_order: Optional[RetirementOrder] = None,
    ):
        from repro.sim.stagegraph import edn_graph

        if retirement_order is None:
            retirement_order = RetirementOrder.canonical(params.l)
        elif retirement_order.l != params.l:
            raise ConfigurationError(
                f"retirement order covers {retirement_order.l} digits, "
                f"network has l={params.l}"
            )
        super().__init__(edn_graph(params, retirement_order), priority)
        self.params = params
        self.retirement = tuple(
            retirement_order.position_for_stage(i) for i in range(1, params.l + 1)
        )
        # Stage i consumes digit index retirement[i-1] (0 = most
        # significant), at bit offset c_bits + (l - 1 - index) * b_bits —
        # exactly the compiled graph's hyperbar-column shifts.
        self.stage_shifts = tuple(
            stage.shift for stage in self.graph.stages[: params.l]
        )

    def gamma_table(self, stage: int, dtype) -> np.ndarray:
        """Lookup table of the interstage gamma permutation after ``stage``.

        One gather through this table replaces the ~8 elementwise ops of
        the closed-form gamma per stage per chunk.  (Unlike
        :meth:`perm_table`, this accessor compiles a table for *any*
        hyperbar stage, including the identity boundary into the
        crossbars — the historical EDN-engine contract.)
        """
        p = self.params
        n_bits = ilog2(p.wires_after_stage(stage))
        return self._perm(("gamma", n_bits, p.capacity_bits, p.fan_in_bits), dtype)

    def switch_base(self, width: int, dtype) -> np.ndarray:
        """Per-wire ``switch * b * c - 1`` row for one hyperbar-stage width."""
        p = self.params
        key = ("swbase", width, np.dtype(dtype).char)
        row = self._tables.get(key)
        if row is None:
            switch = np.arange(width, dtype=dtype) >> ilog2(p.a)
            row = (switch << ilog2(p.b * p.c)) - 1
            self._tables[key] = row
        return row

    @property
    def key(self) -> tuple:
        """The cache key this plan is stored under."""
        return (self.params, self.priority, self.retirement)

    def __repr__(self) -> str:
        return (
            f"RoutingPlan({self.params}, priority={self.priority!r}, "
            f"wire_dtype={self.wire_dtype.name}, packed={self.all_packed})"
        )


# ----------------------------------------------------------------------
# The keyed LRU plan cache
# ----------------------------------------------------------------------

_cache: "OrderedDict[tuple, StagePlan]" = OrderedDict()
_cache_lock = threading.Lock()
_hits = 0
_misses = 0


def compile_plan(
    params: EDNParams,
    priority: str = "label",
    retirement_order: Optional[RetirementOrder] = None,
) -> RoutingPlan:
    """Compile a fresh plan, bypassing the cache (tests, benchmarks)."""
    return RoutingPlan(params, priority, retirement_order)


def compile_stage_plan(
    graph: "StageGraph",
    priority: str = "label",
    faults: tuple[WireFault, ...] = (),
    buffer_depth: Optional[int] = None,
) -> StagePlan:
    """Compile a fresh stage plan, bypassing the cache (tests, benchmarks)."""
    return StagePlan(graph, priority, faults, buffer_depth)


def _cached(key: tuple, compile_fn) -> StagePlan:
    """Shared LRU lookup for EDN and stage-graph plan keys."""
    global _hits, _misses
    with _cache_lock:
        plan = _cache.get(key)
        if plan is not None:
            _cache.move_to_end(key)
            _hits += 1
            return plan
        _misses += 1
    # Compile outside the lock (compilation touches only local state);
    # a concurrent duplicate compile is wasted work, not a hazard.
    plan = compile_fn()
    with _cache_lock:
        existing = _cache.get(key)
        if existing is not None:
            return existing
        _cache[key] = plan
        while len(_cache) > PLAN_CACHE_MAXSIZE:
            _cache.popitem(last=False)
    return plan


def stage_plan_for(
    graph: "StageGraph",
    priority: str = "label",
    faults: tuple[WireFault, ...] = (),
    buffer_depth: Optional[int] = None,
) -> StagePlan:
    """The shared compiled plan for one stage graph, LRU-cached.

    Two routers whose ``(graph, priority, faults)`` agree get the *same*
    plan object; graphs hash over every semantic field (stages,
    permutations, output layout) and the fault tuple is canonicalized
    (sorted, deduplicated) before keying, so anything that changes
    routing semantics — including which wires are dead — changes the key
    and therefore misses.  A buffered plan (``buffer_depth`` set) folds
    the depth into its key, so buffered and unbuffered plans over the
    same graph coexist without aliasing.  Thread-safe; shares the cache
    (and :func:`plan_cache_info` counters) with the EDN :func:`plan_for`.
    """
    canonical = tuple(sorted(set(faults)))
    if buffer_depth is not None:
        key = (graph, priority, canonical, int(buffer_depth))
    else:
        key = (graph, priority, canonical)
    return _cached(
        key,
        lambda: StagePlan(graph, priority, canonical, buffer_depth),
    )


def plan_for(
    params: EDNParams,
    priority: str = "label",
    retirement_order: Optional[RetirementOrder] = None,
) -> RoutingPlan:
    """The shared compiled plan for one routing key, LRU-cached.

    Two engines whose ``(params, priority, retirement order)`` agree get
    the *same* plan object; anything that changes routing semantics
    changes the key and therefore misses.  Thread-safe.
    """
    order = (
        RetirementOrder.canonical(params.l)
        if retirement_order is None
        else retirement_order
    )
    key = (
        params,
        priority,
        tuple(order.position_for_stage(i) for i in range(1, params.l + 1)),
    )
    return _cached(key, lambda: RoutingPlan(params, priority, order))


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the hit/miss counters."""
    global _hits, _misses
    with _cache_lock:
        _cache.clear()
        _hits = 0
        _misses = 0


def plan_cache_info() -> dict:
    """Cache observability: ``{hits, misses, size, maxsize}``."""
    with _cache_lock:
        return {
            "hits": _hits,
            "misses": _misses,
            "size": len(_cache),
            "maxsize": PLAN_CACHE_MAXSIZE,
        }
