"""Buffered packet-switched measurement on the compiled stage-graph core.

The paper's circuit-switched model discards blocked requests each cycle;
buffered multistage networks instead hold packets in per-wire FIFOs under
back-pressure, trading loss for queueing delay.  This module is the
measurement driver for that discipline on *any*
:class:`~repro.sim.stagegraph.StageGraph` — EDN, delta, omega, dilated —
through the full core stack: workload-registry traffic, the plan-cached
compiled kernels (:class:`~repro.sim.batched.CompiledStageRouter` with a
``buffer_depth``), and streaming latency histograms
(:class:`~repro.sim.stats.LatencyStats`).

Measured quantities per run:

* **throughput** — delivered packets per output terminal per measured
  cycle, the packet-switched counterpart of the paper's ``PA``;
* **latency** — cycles from injection to delivery, as an exact
  integer-bin histogram (mean, p50/p95/p99, delta-method CI);
* **occupancy** — mean buffered packets per FIFO, sampled at each cycle
  end, which ties the other two together through Little's law
  (``mean total occupancy ~= delivery rate x mean latency`` in steady
  state — pinned by ``tests/sim/test_latency_stats.py``).

The per-packet :class:`~repro.sim.stagegraph.BufferedStageReference`
serves as the independent cross-check engine (``engine="reference"``),
bit-identical per cycle to the compiled path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.sim.stats import LatencyStats

__all__ = ["BufferedMeasurement", "measure_buffered"]


@dataclass
class BufferedMeasurement:
    """Steady-state measurements of one buffered packet-switched run."""

    graph_label: str
    traffic: str
    depth: int
    priority: str
    cycles: int
    warmup: int
    seed: Optional[int]
    offered: int
    injected: int
    delivered: int
    throughput: float          # delivered per output per measured cycle
    latency: LatencyStats      # injection -> delivery, measured deliveries
    mean_occupancy: float      # buffered packets per FIFO (cycle-end samples)
    total_occupancy: float     # buffered packets network-wide (cycle-end mean)
    num_queues: int
    in_flight: int             # packets still queued when measurement ended
    n_inputs: int
    n_outputs: int
    faults: tuple = ()         # canonical dead-wire tuple the run routed under
    dropped: int = 0           # packets lost to wire failures (apply_faults)

    @property
    def mean_latency(self) -> float:
        return self.latency.mean

    @property
    def injection_rate(self) -> float:
        """Accepted injections per input per measured cycle."""
        return self.injected / (self.cycles * self.n_inputs)

    @property
    def delivery_rate(self) -> float:
        """Delivered packets per measured cycle (network-wide)."""
        return self.delivered / self.cycles


def measure_buffered(
    graph,
    *,
    traffic="uniform",
    depth: int = 2,
    priority: str = "label",
    cycles: int = 400,
    warmup: int = 100,
    seed: Optional[int] = 0,
    engine: str = "compiled",
    faults=(),
    latency_bound: int = LatencyStats.DEFAULT_BOUND,
) -> BufferedMeasurement:
    """Run ``warmup + cycles`` buffered cycles; measure the last ``cycles``.

    ``traffic`` is any workload-registry spec (string, ``WorkloadSpec``,
    or built :class:`~repro.workloads.models.TrafficGenerator`); demands
    refused by a full entry FIFO are dropped, not retried, so the
    *accepted* injection rate saturates below the offered rate once the
    network backs up.  ``engine`` selects the compiled kernels
    (``"compiled"``) or the per-packet reference interpreter
    (``"reference"``) — identical results, wildly different speed.
    ``faults`` routes the whole run under a static dead-wire set (both
    engines honor it bit-identically); the returned measurement then
    conserves ``injected == delivered + in_flight + dropped``.
    """
    from repro.sim.batched import CompiledStageRouter
    from repro.sim.rng import make_rng
    from repro.sim.stagegraph import BufferedStageReference
    from repro.workloads.registry import make_traffic

    if cycles < 1:
        raise ConfigurationError("need at least one measured cycle")
    if warmup < 0:
        raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
    if engine not in ("compiled", "reference"):
        raise ConfigurationError(f"unknown buffered engine {engine!r}")

    faults = tuple(sorted(set(faults)))
    gen = make_traffic(traffic, graph.n_inputs, graph.n_outputs)
    if engine == "compiled":
        router = CompiledStageRouter(
            graph, priority=priority, buffer_depth=depth, faults=faults
        )
        router.reset_buffers()
        num_queues = router._buffers.num_queues
    else:
        router = BufferedStageReference(
            graph, depth=depth, priority=priority, faults=faults
        )
        num_queues = sum(graph.stage_widths)
    rng = make_rng(seed)

    offered = injected = delivered = 0
    occupancy_total = 0.0
    latency = LatencyStats(bound=latency_bound)
    for cycle in range(warmup + cycles):
        dests = gen.generate(rng)
        outcome = router.step(dests, rng)
        if cycle >= warmup:
            offered += outcome.offered
            injected += outcome.injected
            delivered += outcome.delivered
            latency.record(outcome.latencies)
            occupancy_total += router.total_occupancy()

    return BufferedMeasurement(
        graph_label=graph.label,
        traffic=gen.describe(),
        depth=int(depth),
        priority=priority,
        cycles=cycles,
        warmup=warmup,
        seed=seed,
        offered=offered,
        injected=injected,
        delivered=delivered,
        throughput=delivered / (cycles * graph.n_outputs),
        latency=latency,
        mean_occupancy=occupancy_total / cycles / num_queues,
        total_occupancy=occupancy_total / cycles,
        num_queues=num_queues,
        in_flight=router.total_occupancy(),
        n_inputs=graph.n_inputs,
        n_outputs=graph.n_outputs,
        faults=faults,
        dropped=int(router.dropped_packets),
    )
