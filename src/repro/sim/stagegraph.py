"""Topology-agnostic stage graphs: one representation for every
unidirectional multistage network in the repository.

The paper's central comparison pits the EDN against the conventional
delta/omega family and its dilated variants, yet historically only the
EDN enjoyed the compiled-plan batched kernels — every baseline routed
through per-cycle Python loops.  The unifying observation (Patel's, and
the NYU-Ultracomputer survey's) is that all of these fabrics are
instances of one scheme: *columns of identical switches, each resolving
(switch, digit) contention with some bucket capacity, joined by fixed
link permutations*.  This module captures exactly that scheme:

* :class:`GraphStage` — one switch column: ``fan_in`` wires per switch,
  ``radix`` output buckets selected by a destination digit at bit offset
  ``shift``, ``capacity`` wires per bucket (the dilation/expansion
  width), and the link permutation applied to the column's bucket-wire
  labels on the way to the next column.
* :class:`StageGraph` — a full network: input terminals, an optional
  input permutation (the omega shuffle), the stage tuple, and the
  output-lane layout (``out_shift``: a surviving final bucket-wire ``y``
  delivers to output terminal ``y >> out_shift``, so a ``d``-wide output
  bundle is ``out_shift = log2(d)``).
* builders — :func:`edn_graph`, :func:`delta_graph`, :func:`omega_graph`,
  :func:`dilated_graph` — the four paper topology families as data.
* :class:`StageGraphReference` — a deliberately simple per-cycle,
  sort-based interpreter of any graph.  It shares no kernel machinery
  with the compiled engines, so it serves as the independent cross-check
  path (the ``vectorized`` backend wraps it behind the generic batch
  loop).

Everything here is *descriptive*: permutations are hashable specs (see
:func:`materialize_permutation`), so a :class:`StageGraph` can key the
plan cache; the compiled tables live on
:class:`~repro.sim.plan.StagePlan`, and the batched kernels that consume
them live in :mod:`repro.sim.batched`
(:class:`~repro.sim.batched.CompiledStageRouter`).

Graphs for the built-in families
--------------------------------

========  ===========================  =========================  =========
family    stages                       link permutation           out_shift
========  ===========================  =========================  =========
EDN       ``l`` x ``H(a -> b x c)``    gamma (low ``log2 c``      0
          then one ``c x c``           bits fixed, upper bits
          crossbar column              rotated)
delta     the ``c = 1`` EDN            gamma with no fixed bits   0
omega     the ``(2, 2, 1, log2 N)``    delta gamma, plus the      0
          delta behind a perfect       perfect-shuffle *input*
          input shuffle                permutation
dilated   ``l`` x ``H(a -> b x d)``    the base delta's gamma     log2(d)
          (deeper stages fan in        lifted over the ``d``
          ``a*d``)                     lane bits
========  ===========================  =========================  =========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import EDNParams
from repro.core.exceptions import ConfigurationError
from repro.core.labels import ilog2, is_power_of_two
from repro.core.tags import RetirementOrder

__all__ = [
    "GraphStage",
    "StageGraph",
    "PermSpec",
    "materialize_permutation",
    "edn_graph",
    "delta_graph",
    "omega_graph",
    "dilated_graph",
    "StageGraphReference",
    "BufferedCycleOutcome",
    "BufferedStageReference",
]

IDLE = -1

#: A hashable description of a fixed wire permutation:
#:
#: * ``("gamma", n_bits, low_bits, rotate_bits)`` — keep the low
#:   ``low_bits`` of an ``n_bits``-bit label, rotate the upper field left
#:   by ``rotate_bits`` (mod its width).  ``low_bits = 0`` is the plain
#:   delta interstage wiring; ``low_bits = log2(c)`` the EDN gamma;
#:   ``low_bits = log2(d)`` the bundle-lifted wiring of a dilated delta.
#: * ``("rotl", n_bits, k)`` — rotate the whole label left by ``k`` (the
#:   perfect shuffle is ``k = 1``).
PermSpec = tuple


def materialize_permutation(spec: PermSpec) -> np.ndarray:
    """The ``int64`` lookup table of a permutation spec (label -> label)."""
    kind = spec[0]
    if kind == "gamma":
        from repro.sim.plan import gamma_permutation

        _, n_bits, low_bits, rotate_bits = spec
        labels = np.arange(1 << n_bits, dtype=np.int64)
        return gamma_permutation(labels, n_bits, low_bits, rotate_bits)
    if kind == "rotl":
        _, n_bits, k = spec
        k %= n_bits
        labels = np.arange(1 << n_bits, dtype=np.int64)
        if k == 0:
            return labels
        return ((labels << k) | (labels >> (n_bits - k))) & ((1 << n_bits) - 1)
    raise ConfigurationError(f"unknown permutation spec {spec!r}")


@dataclass(frozen=True)
class GraphStage:
    """One switch column of a :class:`StageGraph`.

    Attributes
    ----------
    fan_in:
        Wires entering each switch of the column (a power of two).
    radix:
        Output buckets per switch; a live request selects bucket
        ``(dest >> shift) & (radix - 1)``.  ``radix = 1`` means the
        column performs no routing (pure concentration).
    capacity:
        Wires per bucket granted per cycle — the expansion (EDN ``c``) or
        dilation (``d``) width.  The first ``capacity`` requests of a
        bucket, in priority order, win.
    shift:
        Bit offset of this column's destination digit.
    link_perm:
        Permutation spec applied to the column's bucket-wire labels on
        the way to the next column (``None`` = identity, and always
        ``None`` on the final column).
    """

    fan_in: int
    radix: int
    capacity: int
    shift: int
    link_perm: Optional[PermSpec] = None

    def __post_init__(self) -> None:
        for name, value in (
            ("fan_in", self.fan_in),
            ("radix", self.radix),
            ("capacity", self.capacity),
        ):
            if not is_power_of_two(value):
                raise ConfigurationError(
                    f"stage {name}={value} must be a positive power of two"
                )
        if self.shift < 0:
            raise ConfigurationError(f"stage digit shift must be >= 0, got {self.shift}")

    @property
    def digit_bits(self) -> int:
        return ilog2(self.radix)

    @property
    def bucket_wires(self) -> int:
        """Bucket-wire labels per switch: ``radix * capacity``."""
        return self.radix * self.capacity


@dataclass(frozen=True)
class StageGraph:
    """A complete unidirectional multistage network, as data.

    ``label`` is the canonical topology name (``"delta:4096,4"``), used
    in reprs and cache diagnostics; equality/hashing covers every
    semantic field, so equal graphs share one compiled
    :class:`~repro.sim.plan.StagePlan` through the plan cache.

    >>> g = delta_graph(4, 4, 3)
    >>> (g.n_inputs, g.n_outputs, len(g.stages))
    (64, 64, 4)
    >>> omega_graph(64).input_perm
    ('rotl', 6, 1)
    >>> dilated_graph(4, 4, 3, d=2).out_shift
    1
    """

    label: str
    n_inputs: int
    n_outputs: int
    stages: tuple[GraphStage, ...]
    input_perm: Optional[PermSpec] = None
    out_shift: int = 0

    def __post_init__(self) -> None:
        if not self.stages:
            raise ConfigurationError("a stage graph needs at least one stage")
        if not is_power_of_two(self.n_inputs) or not is_power_of_two(self.n_outputs):
            raise ConfigurationError(
                "stage-graph terminal counts must be powers of two, got "
                f"{self.n_inputs} -> {self.n_outputs}"
            )
        widths = self.stage_widths
        for i, stage in enumerate(self.stages):
            if widths[i] % stage.fan_in:
                raise ConfigurationError(
                    f"stage {i + 1} fan_in {stage.fan_in} does not divide "
                    f"its {widths[i]} input wires"
                )
            if stage.link_perm is not None:
                bucket_space = widths[i] // stage.fan_in * stage.bucket_wires
                if stage.link_perm[1] != ilog2(bucket_space):
                    raise ConfigurationError(
                        f"stage {i + 1} link permutation covers "
                        f"{1 << stage.link_perm[1]} labels, bucket space is "
                        f"{bucket_space}"
                    )
        if self.stages[-1].link_perm is not None:
            raise ConfigurationError("the final stage has no outgoing links to permute")
        last = self.stages[-1]
        final_space = widths[-1] // last.fan_in * last.bucket_wires
        if final_space != self.n_outputs << self.out_shift:
            raise ConfigurationError(
                f"final bucket space {final_space} does not cover "
                f"{self.n_outputs} outputs of {1 << self.out_shift} lanes"
            )
        if self.input_perm is not None and self.input_perm[1] != ilog2(self.n_inputs):
            raise ConfigurationError(
                f"input permutation covers {1 << self.input_perm[1]} labels, "
                f"network has {self.n_inputs} inputs"
            )

    @property
    def stage_widths(self) -> tuple[int, ...]:
        """Wires *entering* each stage (``stage_widths[0]`` = the inputs)."""
        widths = [self.n_inputs]
        for stage in self.stages[:-1]:
            widths.append(widths[-1] // stage.fan_in * stage.bucket_wires)
        return tuple(widths)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def __str__(self) -> str:
        return self.label


# ----------------------------------------------------------------------
# Builders: the paper's topology families as stage graphs
# ----------------------------------------------------------------------


def edn_graph(
    params: EDNParams, retirement_order: Optional[RetirementOrder] = None
) -> StageGraph:
    """The ``EDN(a, b, c, l)``: ``l`` hyperbar columns plus the crossbar column.

    Stage ``i`` retires digit ``retirement_order.position_for_stage(i)``;
    interstage boundaries carry the paper's gamma permutation (low
    ``log2 c`` bits fixed); the last hyperbar column feeds the crossbars
    directly (identity links) and the crossbar column resolves the final
    ``log2 c`` destination bits one winner per output terminal.
    """
    if retirement_order is None:
        retirement_order = RetirementOrder.canonical(params.l)
    elif retirement_order.l != params.l:
        raise ConfigurationError(
            f"retirement order covers {retirement_order.l} digits, "
            f"network has l={params.l}"
        )
    stages = []
    for i in range(1, params.l + 1):
        position = retirement_order.position_for_stage(i)
        shift = params.capacity_bits + (params.l - 1 - position) * params.digit_bits
        link = None
        if i < params.l:
            link = (
                "gamma",
                ilog2(params.wires_after_stage(i)),
                params.capacity_bits,
                params.fan_in_bits,
            )
        stages.append(
            GraphStage(params.a, params.b, params.c, shift, link_perm=link)
        )
    # The crossbar column: c wires per switch, one winner per output.
    stages.append(GraphStage(params.c, params.c, 1, 0))
    return StageGraph(
        label=f"edn:{params.a},{params.b},{params.c},{params.l}",
        n_inputs=params.num_inputs,
        n_outputs=params.num_outputs,
        stages=tuple(stages),
    )


def delta_graph(a: int, b: int, l: int) -> StageGraph:
    """Patel's ``a^l x b^l`` delta network — the ``c = 1`` EDN graph.

    Identical stage-for-stage to ``edn_graph(EDNParams(a, b, 1, l))``
    (including the degenerate 1x1 crossbar column, which never blocks),
    so compiled routing is bit-identical to the legacy
    ``VectorizedEDN``-backed :class:`~repro.baselines.delta.DeltaNetwork`.
    """
    graph = edn_graph(EDNParams(a, b, 1, l))
    return StageGraph(
        label=f"delta:{a},{b},{l}",
        n_inputs=graph.n_inputs,
        n_outputs=graph.n_outputs,
        stages=graph.stages,
    )


def omega_graph(n: int) -> StageGraph:
    """Lawrie's ``N x N`` omega network: perfect input shuffle + 2x2 columns.

    The shuffle *before* the first column is the structural difference
    from the delta construction; it relabels which source owns a path but
    never changes connectivity (paper, Corollary 1).
    """
    if not is_power_of_two(n) or n < 2:
        raise ConfigurationError(f"omega size must be a power of two >= 2, got {n}")
    stages = ilog2(n)
    graph = edn_graph(EDNParams(2, 2, 1, stages))
    return StageGraph(
        label=f"omega:{n}",
        n_inputs=n,
        n_outputs=n,
        stages=graph.stages,
        input_perm=("rotl", stages, 1),
    )


def dilated_graph(a: int, b: int, l: int, d: int) -> StageGraph:
    """A ``d``-dilated ``a^l x b^l`` delta (paper references [28, 29]).

    Every link of the base delta becomes ``d`` parallel wires: the first
    column is ``H(a -> b x d)``, deeper columns ``H(a*d -> b x d)``, and
    the interstage wiring is the base delta's permutation lifted over the
    ``log2 d`` lane bits (bundle ``y`` of the base network maps lane-wise
    to bundle ``gamma(y)``).  Each output terminal is a ``d``-wide port:
    every request surviving the last column is delivered
    (``out_shift = log2 d``), the conventional dilated-network
    delivery assumption the analytic model also makes.
    """
    for name, value in (("a", a), ("b", b), ("d", d)):
        if not is_power_of_two(value):
            raise ConfigurationError(
                f"dilated-delta parameter {name}={value} must be a power of two"
            )
    if l < 1:
        raise ConfigurationError(f"need at least one stage, got l={l}")
    if b < 2:
        raise ConfigurationError("dilated deltas need at least b=2 output buckets")
    lane_bits = ilog2(d)
    digit_bits = ilog2(b)
    stages = []
    width = a**l
    for i in range(1, l + 1):
        fan_in = a if i == 1 else a * d
        shift = (l - i) * digit_bits
        width = width // fan_in * b * d
        link = None
        if i < l:
            link = ("gamma", ilog2(width), lane_bits, ilog2(a))
        stages.append(GraphStage(fan_in, b, d, shift, link_perm=link))
    return StageGraph(
        label=f"dilated:{a},{b},{l},{d}",
        n_inputs=a**l,
        n_outputs=b**l,
        stages=tuple(stages),
        out_shift=lane_bits,
    )


# ----------------------------------------------------------------------
# The per-cycle reference interpreter (the cross-check path)
# ----------------------------------------------------------------------


class StageGraphReference:
    """Sort-based per-cycle interpreter of any :class:`StageGraph`.

    Implements exactly the contention semantics of the compiled kernels —
    label priority ranks contenders by wire label, random priority by a
    per-cycle random sub-key, winners take bucket wires first-free — with
    none of their machinery: one stable lexsort per column, materialized
    permutation tables, plain index arrays.  The ``vectorized`` backend
    wraps this class behind the generic batch loop, making it the
    reference path every compiled baseline is cross-checked against.

    ``faults`` (a tuple of :class:`~repro.core.faults.WireFault`) masks
    dead bucket wires: the rank-``k`` winner of a bucket is granted the
    bucket's ``k``-th *live* wire, or blocked at that column when fewer
    than ``k + 1`` wires survive — the same first-free-among-live grant
    :class:`~repro.core.faults.FaultyEDNetwork` implements, built here
    with plain per-bucket live lists so the compiled fault lowering has
    an independent cross-check on every family.
    """

    def __init__(
        self, graph: StageGraph, *, priority: str = "label", faults=()
    ):
        if priority not in ("label", "random"):
            raise ConfigurationError(f"unknown priority discipline {priority!r}")
        self.graph = graph
        self.priority = priority
        self._widths = graph.stage_widths
        self._input_perm = (
            materialize_permutation(graph.input_perm)
            if graph.input_perm is not None
            else None
        )
        self._links = [
            materialize_permutation(stage.link_perm)
            if stage.link_perm is not None
            else None
            for stage in graph.stages
        ]
        self.faults = tuple(sorted(set(faults)))
        self._fault_alive: dict[int, np.ndarray] = {}
        self._fault_remap: dict[int, np.ndarray] = {}
        if self.faults:
            from repro.core.faults import FaultSet

            FaultSet(self.faults).validate_graph(graph)
            dead_by_stage: dict[int, set[int]] = {}
            for fault in self.faults:
                stage = graph.stages[fault.stage - 1]
                wire = fault.switch * stage.bucket_wires + fault.local_wire
                dead_by_stage.setdefault(fault.stage - 1, set()).add(wire)
            for i, dead in dead_by_stage.items():
                stage = graph.stages[i]
                cap = stage.capacity
                space = self._widths[i] // stage.fan_in * stage.bucket_wires
                alive = np.zeros(space, dtype=bool)
                remap = np.arange(space, dtype=np.int64)
                for bucket in range(space // cap):
                    base = bucket * cap
                    live = [base + k for k in range(cap) if base + k not in dead]
                    for slot, wire in enumerate(live):
                        alive[base + slot] = True
                        remap[base + slot] = wire
                self._fault_alive[i] = alive
                self._fault_remap[i] = remap

    @property
    def n_inputs(self) -> int:
        return self.graph.n_inputs

    @property
    def n_outputs(self) -> int:
        return self.graph.n_outputs

    def route(self, dests: np.ndarray, rng: Optional[np.random.Generator] = None):
        """Route one cycle; result matches the vectorized-EDN contract."""
        from repro.core.exceptions import LabelError
        from repro.sim.vectorized import VectorCycleResult

        g = self.graph
        dests = np.asarray(dests, dtype=np.int64)
        if dests.shape != (g.n_inputs,):
            raise LabelError(
                f"expected demand vector of shape ({g.n_inputs},), got {dests.shape}"
            )
        live0 = dests != IDLE
        if live0.any():
            lo, hi = int(dests[live0].min()), int(dests[live0].max())
            if lo < 0 or hi >= g.n_outputs:
                raise LabelError("demand vector contains out-of-range destinations")
        if self.priority == "random" and rng is None:
            raise ConfigurationError(
                "random priority requires an explicit numpy Generator"
            )

        # The input permutation relabels sources onto first-column wires;
        # routing runs in wire space and outcomes are gathered back.
        if self._input_perm is not None:
            inner = np.full(g.n_inputs, IDLE, dtype=np.int64)
            inner[self._input_perm] = dests
        else:
            inner = dests
        live = inner != IDLE

        output = np.full(g.n_inputs, IDLE, dtype=np.int64)
        blocked = np.full(g.n_inputs, IDLE, dtype=np.int64)
        blocked[live] = 0  # provisional: delivered unless marked

        sources = np.flatnonzero(live)
        wires = sources.copy()
        last = g.num_stages - 1
        for i, stage in enumerate(g.stages):
            if wires.size == 0:
                break
            switch = wires >> ilog2(stage.fan_in)
            digit = (inner[sources] >> stage.shift) & (stage.radix - 1)
            key = switch * stage.radix + digit
            accept, rank = _resolve_grouped(key, wires, stage.capacity, self.priority, rng)
            blocked[sources[~accept]] = i + 1
            sources = sources[accept]
            y = (
                switch[accept] * stage.bucket_wires
                + digit[accept] * stage.capacity
                + rank
            )
            alive = self._fault_alive.get(i)
            if alive is not None:
                ok = alive[y]
                blocked[sources[~ok]] = i + 1
                sources = sources[ok]
                y = self._fault_remap[i][y[ok]]
            if i == last:
                output[sources] = y >> g.out_shift
                break
            wires = self._links[i][y] if self._links[i] is not None else y

        if self._input_perm is not None:
            output = output[self._input_perm]
            blocked = blocked[self._input_perm]
        return VectorCycleResult(output=output, blocked_stage=blocked)

    def __repr__(self) -> str:
        faulted = f", faults={len(self.faults)}" if self.faults else ""
        return (
            f"StageGraphReference({self.graph.label}, "
            f"priority={self.priority!r}{faulted})"
        )


@dataclass(frozen=True)
class BufferedCycleOutcome:
    """Deliveries and injection accounting of one buffered cycle.

    ``outputs``/``latencies`` are parallel arrays, one entry per packet
    delivered this cycle, canonically sorted by ``(output, latency)`` so
    two semantically equivalent engines produce bit-identical arrays.
    Latency is delivery cycle minus injection cycle: a packet that
    crosses an ``S``-stage network without ever queueing takes exactly
    ``S`` cycles (one stage traversal per cycle).
    """

    outputs: np.ndarray
    latencies: np.ndarray
    offered: int
    injected: int

    @property
    def delivered(self) -> int:
        return int(self.outputs.size)

    @property
    def refused(self) -> int:
        """Offered packets turned away by a full entry queue."""
        return self.offered - self.injected


class BufferedStageReference:
    """Per-packet buffered interpreter of any :class:`StageGraph`.

    The independent cross-check path for the compiled buffered kernels
    (:class:`~repro.sim.batched.CompiledStageRouter` with a
    ``buffer_depth``), mirroring what :class:`StageGraphReference` is to
    the unbuffered kernels: plain Python list queues and per-switch
    loops, sharing none of the plan/array machinery.

    Semantics (one :meth:`step` = one network cycle):

    * Every wire entering a stage carries a ``depth``-deep FIFO; heads
      contend for their ``(switch, digit)`` bucket under the usual
      priority discipline.
    * Stages are serviced **output side first** (last column down to the
      first): a bucket's rank-``r`` contender advances iff the bucket
      still has at least ``r`` next-queue slots with room *after* the
      downstream column was serviced, and it takes the ``r``-th roomy
      slot in slot order.  Losers simply stay queued — back-pressure,
      not loss.
    * The final column always has room (delivery is unconditional);
      each delivery records ``cycle - injection_cycle`` as its latency.
    * After servicing, each offered packet enters its source's entry
      queue if there is room, else it is refused (counted, not queued).

    Random priority draws one ``rng.permutation`` per stage with live
    contenders, over contender wires in ascending wire order — the exact
    draw protocol of the compiled engine, so per-cycle outcomes can be
    compared bit for bit under both disciplines.

    Wire faults (``faults=`` or a mid-run :meth:`apply_faults`) remove
    slots from the grant: a dead wire never has room, dead final-column
    wires never deliver, and packets stranded in a dead wire's
    downstream FIFO are dropped and counted in :attr:`dropped_packets`.
    """

    def __init__(
        self,
        graph: StageGraph,
        *,
        depth: int = 1,
        priority: str = "label",
        faults=(),
    ):
        if priority not in ("label", "random"):
            raise ConfigurationError(f"unknown priority discipline {priority!r}")
        depth = int(depth)
        if depth < 1:
            raise ConfigurationError(f"buffer depth must be >= 1, got {depth}")
        self.graph = graph
        self.depth = depth
        self.priority = priority
        self._widths = graph.stage_widths
        self._input_perm = (
            [int(v) for v in materialize_permutation(graph.input_perm)]
            if graph.input_perm is not None
            else None
        )
        self._links = [
            [int(v) for v in materialize_permutation(stage.link_perm)]
            if stage.link_perm is not None
            else None
            for stage in graph.stages
        ]
        #: queues[i][wire] = FIFO of (dest, injection_cycle), head first.
        self.queues: list[list[list]] = [
            [[] for _ in range(w)] for w in self._widths
        ]
        self.cycle = 0
        self.faults: tuple = ()
        #: per-stage set of dead physical slots (switch * bucket_wires +
        #: local), matching the plan's ``fault_dead_slots`` view.
        self._dead: list[set] = [set() for _ in graph.stages]
        self.dropped_packets = 0
        if faults:
            self.apply_faults(faults)

    def apply_faults(self, faults=()) -> int:
        """Swap the network onto a new fault set mid-run, dropping strandees.

        The per-packet mirror of
        :meth:`repro.sim.batched.CompiledStageRouter.apply_faults`: dead
        wires stop granting, and any packets already queued in an
        interior dead wire's downstream FIFO are dropped and counted
        into :attr:`dropped_packets`.  Returns the number dropped by
        this call.
        """
        from repro.core.faults import FaultSet

        canonical = tuple(sorted(set(faults)))
        if canonical:
            FaultSet(canonical).validate_graph(self.graph)
        self.faults = canonical
        dead: list[set] = [set() for _ in self.graph.stages]
        for fault in canonical:
            stage = self.graph.stages[fault.stage - 1]
            dead[fault.stage - 1].add(
                fault.switch * stage.bucket_wires + fault.local_wire
            )
        self._dead = dead
        dropped = 0
        last = self.graph.num_stages - 1
        for i, slots in enumerate(dead[:last]):
            link = self._links[i]
            for slot in slots:
                queue = self.queues[i + 1][link[slot] if link is not None else slot]
                dropped += len(queue)
                queue.clear()
        self.dropped_packets += dropped
        return dropped

    @property
    def n_inputs(self) -> int:
        return self.graph.n_inputs

    @property
    def n_outputs(self) -> int:
        return self.graph.n_outputs

    def total_occupancy(self) -> int:
        """Packets currently queued anywhere in the network."""
        return sum(len(q) for column in self.queues for q in column)

    def step(
        self, dests: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> BufferedCycleOutcome:
        """Advance the network one cycle under demand vector ``dests``."""
        from repro.core.exceptions import LabelError

        g = self.graph
        dests = np.asarray(dests, dtype=np.int64)
        if dests.shape != (g.n_inputs,):
            raise LabelError(
                f"expected demand vector of shape ({g.n_inputs},), got {dests.shape}"
            )
        live0 = dests != IDLE
        if live0.any():
            lo, hi = int(dests[live0].min()), int(dests[live0].max())
            if lo < 0 or hi >= g.n_outputs:
                raise LabelError("demand vector contains out-of-range destinations")
        if self.priority == "random" and rng is None:
            raise ConfigurationError(
                "random priority requires an explicit numpy Generator"
            )

        t = self.cycle
        delivered_out: list[int] = []
        delivered_lat: list[int] = []
        last = g.num_stages - 1
        for i in range(last, -1, -1):
            stage = g.stages[i]
            column = self.queues[i]
            contenders = [w for w in range(len(column)) if column[w]]
            if not contenders:
                continue
            if self.priority == "random":
                sub = rng.permutation(len(contenders))
            else:
                sub = range(len(contenders))
            fan_bits = ilog2(stage.fan_in)
            cap = stage.capacity
            entries = []
            for j, w in enumerate(contenders):
                dest = column[w][0][0]
                switch = w >> fan_bits
                digit = (dest >> stage.shift) & (stage.radix - 1)
                entries.append((switch * stage.radix + digit, int(sub[j]), w))
            entries.sort()
            link = self._links[i]
            next_column = self.queues[i + 1] if i < last else None
            idx = 0
            while idx < len(entries):
                bucket = entries[idx][0]
                group = []
                while idx < len(entries) and entries[idx][0] == bucket:
                    group.append(entries[idx][2])
                    idx += 1
                base = bucket * cap  # == switch * bucket_wires + digit * cap
                dead = self._dead[i]
                if i == last:
                    roomy = [k for k in range(cap) if base + k not in dead]
                else:
                    roomy = [
                        k
                        for k in range(cap)
                        if base + k not in dead
                        and len(
                            next_column[
                                link[base + k] if link is not None else base + k
                            ]
                        )
                        < self.depth
                    ]
                for r, w in enumerate(group):
                    if r >= len(roomy):
                        break  # remaining contenders of the bucket stay queued
                    y = base + roomy[r]
                    dest, stamp = column[w].pop(0)
                    if i == last:
                        delivered_out.append(y >> g.out_shift)
                        delivered_lat.append(t - stamp)
                    else:
                        nw = link[y] if link is not None else y
                        next_column[nw].append((dest, stamp))

        offered = injected = 0
        entry = self.queues[0]
        for s in range(g.n_inputs):
            dest = int(dests[s])
            if dest == IDLE:
                continue
            offered += 1
            w = self._input_perm[s] if self._input_perm is not None else s
            if len(entry[w]) < self.depth:
                entry[w].append((dest, t))
                injected += 1
        self.cycle = t + 1

        outputs = np.asarray(delivered_out, dtype=np.int64)
        latencies = np.asarray(delivered_lat, dtype=np.int64)
        order = np.lexsort((latencies, outputs))
        return BufferedCycleOutcome(
            outputs=outputs[order],
            latencies=latencies[order],
            offered=offered,
            injected=injected,
        )

    def __repr__(self) -> str:
        return (
            f"BufferedStageReference({self.graph.label}, depth={self.depth}, "
            f"priority={self.priority!r})"
        )


def _resolve_grouped(
    key: np.ndarray,
    wires: np.ndarray,
    capacity: int,
    priority: str,
    rng: Optional[np.random.Generator],
) -> tuple[np.ndarray, np.ndarray]:
    """Group by ``key``, grant the first ``capacity`` per group.

    Label priority breaks ties by wire label (the paper's switch-local
    input-line priority); random priority by a fresh random sub-key drawn
    in frontier order — both exactly as
    :meth:`repro.sim.vectorized.VectorizedEDN._resolve` resolves them, so
    per-cycle equivalence tests can compare engines bit for bit.
    """
    n = key.size
    if n == 0:
        return np.zeros(0, dtype=bool), np.zeros(0, dtype=np.int64)
    if priority == "label":
        order = np.lexsort((wires, key))
    else:
        order = np.lexsort((rng.permutation(n), key))
    sorted_key = key[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_key[1:], sorted_key[:-1], out=new_group[1:])
    group_ids = np.cumsum(new_group) - 1
    group_starts = np.flatnonzero(new_group)
    rank_sorted = np.arange(n) - group_starts[group_ids]
    accept_sorted = rank_sorted < capacity

    accept_mask = np.zeros(n, dtype=bool)
    accept_mask[order[accept_sorted]] = True
    rank_by_pos = np.empty(n, dtype=np.int64)
    rank_by_pos[order] = rank_sorted
    return accept_mask, rank_by_pos[accept_mask]
