"""Batched (multi-cycle) EDN routing engine.

:class:`~repro.sim.vectorized.VectorizedEDN` removes the per-*wire* Python
loop; this module removes the per-*cycle* one.  A Monte-Carlo estimate
needs thousands of independent routed cycles, and driving ``route`` from a
Python loop leaves interpreter overhead, numpy dispatch, and many small
sorts — not array math — dominating wall-clock time.  :class:`BatchedEDN`
routes a whole ``(batch, N)`` demand matrix in one pass of array
operations per stage.

Two resolution strategies implement identical semantics:

* **label priority** (the paper's default) is resolved *densely and
  sort-free*: the frontier is kept as per-wire arrays of shape
  ``(batch, wires)``, and the rank of each request within its
  ``(cycle, switch, bucket)`` contention group — which under label
  priority is just the count of lower-labelled same-bucket requests on the
  same switch — falls out of a cumulative sum of bucket one-hots along the
  switch axis.  All arrays use narrow dtypes (``int32`` frontier, ``int8``
  counters), so a whole chunk of cycles costs a few streaming passes.
* **random priority** folds the batch (cycle) index into the contention
  sort key with per-batch offsets, so the single-cycle engine's
  grouped-rank trick works unchanged across cycles in one big ``argsort``.

Semantics are *bit-identical* to :class:`VectorizedEDN` per message: for
every cycle ``i`` of the batch, ``route_batch(dests)[i]`` equals
``VectorizedEDN.route(dests[i])`` under label priority, and under random
priority too when each cycle is given its own generator (pass a sequence
of per-cycle generators; the engine then draws each cycle's tie-break keys
from its own stream exactly as the single-cycle engine would).  The
cross-engine equivalence test pins this on randomized batches.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.exceptions import ConfigurationError, LabelError
from repro.core.labels import ilog2
from repro.sim.vectorized import IDLE, VectorCycleResult, VectorizedEDN

__all__ = [
    "BatchedEDN",
    "CompiledStageRouter",
    "BatchCycleResult",
    "BatchAcceptanceCounts",
    "validate_demand_matrix",
]

#: Random-priority streams: one generator for the whole batch, or one per cycle.
BatchRng = Union[np.random.Generator, Sequence[np.random.Generator], None]


def _check_demand_shape(dests: np.ndarray, n_inputs: int) -> np.ndarray:
    """Coerce to contiguous int64 and check dtype + ``(batch, n_inputs)`` shape.

    Dtype and shape are rejected *here*, before any routing starts, so a
    malformed matrix fails with one clear message instead of a numpy cast
    error (or a silent float truncation) deep inside a stage loop.
    """
    arr = np.asanyarray(dests)
    if arr.dtype.kind not in "iu":
        raise LabelError(
            "demand matrix must have an integer dtype (output labels, with "
            f"-1 marking idle inputs); got dtype {arr.dtype}"
        )
    if arr.ndim != 2 or arr.shape[1] != n_inputs:
        raise LabelError(
            f"expected demand matrix of shape (batch, {n_inputs}), "
            f"got {arr.shape}"
        )
    return np.ascontiguousarray(arr, dtype=np.int64)


def _check_destination_bounds(flat: np.ndarray, n_outputs: int) -> None:
    """Reject destinations outside ``[0, n_outputs)`` (``-1`` = idle).

    Idle entries are exactly ``IDLE``, so two full-array reductions cover
    the live-entry bounds check without materializing a compressed copy.
    """
    if flat.size:
        lo, hi = int(flat.min()), int(flat.max())
        if lo < IDLE or hi >= n_outputs:
            raise LabelError("demand matrix contains out-of-range destinations")


def validate_demand_matrix(
    dests: np.ndarray, n_inputs: int, n_outputs: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate a ``(batch, n_inputs)`` demand matrix for batched routing.

    Shared by every batched router (:class:`BatchedEDN` and the batched
    crossbar baseline) so the accepted input contract cannot drift between
    engines.  Returns ``(dests, flat, live0)``: the matrix as contiguous
    ``int64``, its flat view, and the flat liveness mask.
    """
    dests = _check_demand_shape(dests, n_inputs)
    flat = dests.reshape(-1)
    _check_destination_bounds(flat, n_outputs)
    live0 = flat != IDLE
    return dests, flat, live0


@dataclass
class BatchCycleResult:
    """Per-input outcome arrays for a batch of independent cycles.

    ``output[i, s]`` is the output terminal reached by source ``s`` in
    cycle ``i`` (``-1`` if idle/blocked); ``blocked_stage[i, s]`` is ``0``
    for delivered messages, the 1-indexed blocking stage otherwise, and
    ``-1`` for idle inputs — exactly the per-cycle convention of
    :class:`~repro.sim.vectorized.VectorCycleResult`, stacked.
    """

    output: np.ndarray
    blocked_stage: np.ndarray

    @property
    def num_cycles(self) -> int:
        return self.blocked_stage.shape[0]

    @property
    def offered_per_cycle(self) -> np.ndarray:
        """Requests offered in each cycle (``int64[batch]``)."""
        return (self.blocked_stage != IDLE).sum(axis=1)

    @property
    def delivered_per_cycle(self) -> np.ndarray:
        """Requests delivered in each cycle (``int64[batch]``)."""
        return (self.blocked_stage == 0).sum(axis=1)

    @property
    def num_offered(self) -> int:
        return int((self.blocked_stage != IDLE).sum())

    @property
    def num_delivered(self) -> int:
        return int((self.blocked_stage == 0).sum())

    @property
    def acceptance_ratio(self) -> float:
        offered = self.num_offered
        return 1.0 if offered == 0 else self.num_delivered / offered

    def blocked_stage_histogram(self) -> dict[int, int]:
        """Stage index -> number of requests discarded there, over all cycles."""
        # Stage values are small non-negative ints (after shifting the -1
        # idle marker), so a bincount beats np.unique's sort handily.
        counts = np.bincount((self.blocked_stage + 1).reshape(-1))
        return {
            stage: int(count)
            for stage, count in enumerate(counts[2:], start=1)
            if count
        }

    def cycle(self, i: int) -> VectorCycleResult:
        """The ``i``-th cycle's outcome as a single-cycle result."""
        return VectorCycleResult(
            output=self.output[i], blocked_stage=self.blocked_stage[i]
        )


@dataclass
class BatchAcceptanceCounts:
    """Acceptance counters for a batch of cycles, without per-message detail.

    Produced by :meth:`BatchedEDN.route_batch_counts` — everything the
    Monte-Carlo acceptance harness consumes, at a fraction of the cost of
    materializing per-message outcome arrays.
    """

    offered_per_cycle: np.ndarray
    delivered_per_cycle: np.ndarray
    blocked_by_stage: dict[int, int]


class _DenseRankKernels:
    """Shared contention-resolution kernels of the batched array engines.

    Everything here is topology-agnostic: dense packed-lane in-bucket
    ranking (label priority), the one-hot fallback for unpackable switch
    shapes, the batch-folded grouped sort (random priority), and the
    per-call scratch-buffer provider.  :class:`BatchedEDN` and
    :class:`CompiledStageRouter` both mix these in, so the EDN engine and
    every compiled baseline resolve contention through literally the same
    code.

    Consumers must provide a ``self._scratch`` dict (the per-instance
    scratch fallback when no plan workspace is in play).
    """

    #: Bits per packed bucket counter; holds counts up to a = 64 wires.
    _LANE_BITS = 8
    _LANE_MASK = (1 << _LANE_BITS) - 1

    def _scratch_array(self, name: str, size: int, dtype, ws=None) -> np.ndarray:
        """A reusable uninitialized work buffer, keyed by role, size, dtype.

        Chunked Monte-Carlo runs call the dense kernels thousands of times
        with identical shapes; recycling the stage buffers (instead of
        allocating ~10 arrays per stage) removes most allocator traffic
        from the hot loop.  ``ws`` (a plan-provided
        :class:`~repro.sim.plan.ChunkWorkspace`) carries the buffers
        across engine instances; without one they are cached per instance
        (the seed behavior).  Contents are never assumed to survive
        between stages.
        """
        if ws is not None:
            return ws.array(name, size, dtype)
        key = (name, size, np.dtype(dtype).char)
        arr = self._scratch.get(key)
        if arr is None:
            arr = np.empty(size, dtype=dtype)
            self._scratch[key] = arr
        return arr

    def _dense_rank(
        self,
        dest: np.ndarray,
        live: np.ndarray,
        fan_in: int,
        digit_bits: int,
        shift: int,
        capacity: int,
        ws=None,
        rank_dtype=None,
    ) -> tuple[np.ndarray, np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
        """Dense in-bucket ranking for one stage (the sort-free core).

        ``dest`` holds the flat per-wire frontier of one stage (``fan_in``
        wires per switch, ``-1`` marking dead wires, ``live`` its
        precomputed liveness); each live wire requests bucket ``(dest >>
        shift) & (2**digit_bits - 1)`` of its switch, and the first
        ``capacity`` requests per bucket in wire-label order win.
        ``digit_bits == 0`` degenerates to a single bucket per switch.

        All buckets of a switch are counted at once: each wire contributes
        ``1`` to an 8-bit lane selected by its bucket digit inside one
        packed integer, an inclusive prefix sum along the switch's
        ``fan_in`` wires accumulates every bucket's running occupancy
        simultaneously, and shifting the wire's own lane back out yields
        its 1-based rank — no sorting, no ``radix``-times-wider one-hot
        tensor.  (Switch shapes that cannot pack — ``radix * 8`` bits
        beyond an ``int64``, or ``fan_in`` overflowing a lane — take the
        one-hot fallback.)

        Returns ``(rank_incl, accepted, lane_shift, digit)``: dense
        1-based in-bucket ranks (junk at dead wires), the dense acceptance
        mask, and the digit information — ``lane_shift`` (``digit * 8``)
        on the packed path, an explicit ``digit`` array on the fallback
        path (the other is ``None``).  All returned arrays alias scratch
        buffers: consume them before the next ``_dense_rank`` call.
        """
        radix = 1 << digit_bits
        size = dest.size
        lane_width = radix * self._LANE_BITS
        # The top lane's running count must stay clear of the sign bit.
        packable = fan_in <= self._LANE_MASK >> 1
        if packable and lane_width <= 64:
            # Fused digit-times-8 extraction: ((dest >> shift) & m) << 3
            # == (dest >> (shift - 3)) & (m << 3), one temp fewer.
            mask3 = (radix - 1) << 3
            lane_shift = self._scratch_array("lane_shift", size, dest.dtype, ws)
            if shift >= 3:
                np.right_shift(dest, shift - 3, out=lane_shift)
            else:
                np.left_shift(dest, 3 - shift, out=lane_shift)
            np.bitwise_and(lane_shift, mask3, out=lane_shift)
            lane_dtype = np.int32 if lane_width <= 32 else np.int64
            lanes = self._scratch_array("lanes", size, lane_dtype, ws)
            # dtype= pins the ufunc loop itself to the lane width — with
            # out= alone the shift would run in the promoted input dtype
            # (int32) and overflow for high lanes.
            np.left_shift(live, lane_shift, out=lanes, dtype=lane_dtype, casting="unsafe")
            # Column-at-a-time prefix sum: one fully vectorized strided add
            # per wire position beats np.cumsum's per-switch inner loops.
            view = lanes.reshape(-1, fan_in)
            for j in range(1, fan_in):
                view[:, j] += view[:, j - 1]
            if rank_dtype is not None and rank_dtype != lane_dtype:
                # Unshift straight into the caller's narrow dtype so the
                # downstream bucket-wire arithmetic runs pure-dtype SIMD
                # loops (mixed-dtype ufuncs cost ~5x per pass).
                rank_incl = self._scratch_array("rank", size, rank_dtype, ws)
                np.right_shift(lanes, lane_shift, out=rank_incl, casting="unsafe")
                np.bitwise_and(rank_incl, self._LANE_MASK, out=rank_incl)
            else:
                np.right_shift(lanes, lane_shift, out=lanes)
                np.bitwise_and(lanes, self._LANE_MASK, out=lanes)
                rank_incl = lanes
            digit = None
        else:
            digit = self._scratch_array("digit", size, dest.dtype, ws)
            if radix > 1:
                np.right_shift(dest, shift, out=digit)
                np.bitwise_and(digit, radix - 1, out=digit)
            else:
                digit.fill(0)
            rank_incl = self._onehot_rank(digit, live, fan_in, radix, ws)
            lane_shift = None
        accepted = self._scratch_array("accepted", size, bool, ws)
        np.less_equal(rank_incl, capacity, out=accepted, casting="unsafe")
        np.logical_and(accepted, live, out=accepted)
        return rank_incl, accepted, lane_shift, digit

    def _onehot_rank(
        self,
        digit: np.ndarray,
        live: np.ndarray,
        fan_in: int,
        radix: int,
        ws=None,
    ) -> np.ndarray:
        """Inclusive in-bucket rank via an explicit one-hot tensor.

        Fallback for switch shapes too wide for packed lanes: one boolean
        channel per bucket, cumulated along the switch axis.  Idle wires
        are aimed at channel ``radix``, which no real request occupies.
        Runs entirely in scratch buffers — wide-radix graphs stay on the
        zero-allocation chunk path just like the packed-lane shapes.
        """
        size = digit.size
        channels = self._scratch_array("oh_channels", size, digit.dtype, ws)
        dead = self._scratch_array("oh_dead", size, bool, ws)
        np.copyto(channels, digit)
        np.logical_not(live, out=dead)
        np.copyto(channels, radix, where=dead, casting="unsafe")
        ch2 = channels.reshape(-1, fan_in)
        count_dtype = np.int16 if fan_in > 127 else np.int8
        onehot = self._scratch_array("oh_onehot", size * radix, bool, ws)
        onehot3 = onehot.reshape(-1, fan_in, radix)
        np.equal(ch2[..., None], np.arange(radix, dtype=digit.dtype), out=onehot3)
        cum = self._scratch_array("oh_cum", size * radix, count_dtype, ws)
        cum3 = cum.reshape(-1, fan_in, radix)
        np.cumsum(onehot3, axis=1, dtype=count_dtype, out=cum3)
        # Gather each wire's own channel out of the cumulated tensor one
        # channel at a time: radix masked copies instead of the fancy
        # gather ``take_along_axis`` would allocate for.
        rank = self._scratch_array("oh_rank", size, count_dtype, ws)
        sel = self._scratch_array("oh_sel", size, bool, ws)
        rank2 = rank.reshape(-1, fan_in)
        sel2 = sel.reshape(-1, fan_in)
        for r in range(radix):
            np.equal(ch2, r, out=sel2)
            np.copyto(rank2, cum3[:, :, r], where=sel2)
        return rank

    def _resolve_sparse(
        self,
        cyc: np.ndarray,
        local_key: np.ndarray,
        span: int,
        cycle_rngs: Optional[Sequence[np.random.Generator]],
        rng: BatchRng,
        capacity: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch-wide grouped resolution under random priority.

        ``local_key`` identifies the ``(switch, bucket)`` group *within* a
        cycle (values in ``[0, span)``); folding in ``cyc`` makes groups
        globally distinct.  Returns ``(accept_mask, winner_ranks)`` with
        the same conventions as the single-cycle resolver
        (:meth:`repro.sim.vectorized.VectorizedEDN._resolve`).
        """
        count = local_key.size
        if count == 0:
            return np.zeros(0, dtype=bool), np.zeros(0, dtype=np.int64)
        key = cyc * span + local_key
        tie = self._random_tiebreak(cyc, count, rng, cycle_rngs)
        max_combined = (int(cyc[-1]) + 1) * span * count
        if max_combined < (1 << 62):
            # (key, tie) pairs are unique, so an unstable argsort of the
            # combined integer realizes the grouped priority order.
            order = np.argsort(key * count + tie)
        else:
            order = np.lexsort((tie, key))  # overflow fallback: astronomical sizes
        sorted_key = key[order]
        new_group = np.empty(count, dtype=bool)
        new_group[0] = True
        np.not_equal(sorted_key[1:], sorted_key[:-1], out=new_group[1:])
        group_ids = np.cumsum(new_group) - 1
        group_starts = np.flatnonzero(new_group)
        rank_sorted = np.arange(count) - group_starts[group_ids]
        accept_sorted = rank_sorted < capacity

        accept_mask = np.zeros(count, dtype=bool)
        accept_mask[order[accept_sorted]] = True
        rank_by_pos = np.empty(count, dtype=np.int64)
        rank_by_pos[order] = rank_sorted
        return accept_mask, rank_by_pos[accept_mask]

    @staticmethod
    def _random_tiebreak(
        cyc: np.ndarray,
        count: int,
        rng: BatchRng,
        cycle_rngs: Optional[Sequence[np.random.Generator]],
    ) -> np.ndarray:
        """Random-priority sub-keys, batch-wide or per-cycle.

        With per-cycle generators each cycle's contiguous slice of the
        frontier receives ``rngs[i].permutation(slice_len)`` — the exact
        draw (size, order, and position) the single-cycle engine makes, so
        tie-break decisions match it bit for bit.
        """
        if cycle_rngs is None:
            return rng.permutation(count)
        tie = np.empty(count, dtype=np.int64)
        boundaries = np.flatnonzero(np.diff(cyc)) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [count]))
        for start, stop in zip(starts, stops):
            tie[start:stop] = cycle_rngs[cyc[start]].permutation(stop - start)
        return tie

    @staticmethod
    def _cycle_rngs(rng: BatchRng, batch: int) -> Optional[list]:
        """Normalize ``rng``: ``None`` for a single generator, else a list."""
        if rng is None:
            raise ConfigurationError(
                "random priority requires a numpy Generator (or one per cycle)"
            )
        if isinstance(rng, np.random.Generator):
            return None
        cycle_rngs = list(rng)
        if len(cycle_rngs) != batch:
            raise ConfigurationError(
                f"need one generator per cycle: got {len(cycle_rngs)} "
                f"for batch {batch}"
            )
        return cycle_rngs


class BatchedEDN(VectorizedEDN, _DenseRankKernels):
    """Array-based ``EDN(a, b, c, l)`` router over batches of cycles.

    Construction mirrors :class:`~repro.sim.vectorized.VectorizedEDN`
    (whose single-cycle ``route`` it inherits); :meth:`route_batch` routes
    many independent cycles at once.

    >>> import numpy as np
    >>> from repro.core.config import EDNParams
    >>> net = BatchedEDN(EDNParams(16, 4, 4, 2))
    >>> res = net.route_batch(np.tile(np.arange(64), (3, 1)))
    >>> res.output.shape
    (3, 64)
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._gamma_tables: dict = {}
        self._swbase: dict = {}
        self._scratch: dict = {}

    def _gamma_table(self, stage: int, dtype) -> np.ndarray:
        """Lookup table of the interstage gamma after ``stage``.

        The gamma is a fixed permutation of the stage's wire labels;
        gathering through a precomputed table replaces the ~8 elementwise
        ops of :meth:`VectorizedEDN._gamma_vec` per batch with one.  With
        a compiled plan the table is shared by every engine on the plan;
        without one it is cached per instance (the seed behavior).
        """
        if self._plan is not None:
            return self._plan.gamma_table(stage, dtype)
        n_bits = ilog2(self.params.wires_after_stage(stage))
        key = (n_bits, np.dtype(dtype).str)
        table = self._gamma_tables.get(key)
        if table is None:
            table = self._gamma_vec(
                np.arange(1 << n_bits, dtype=dtype), n_bits
            ).astype(dtype)
            self._gamma_tables[key] = table
        return table

    def preferred_batch(self) -> int:
        """Cycles per chunk that keep a stage's working set cache-resident.

        The dense kernels stream ~10 arrays of ``batch * wires`` entries
        per stage; beyond the L2 cache the scatters dominate, so large
        networks want *smaller* chunks.  Measured sweet spot: about
        ``2**17`` frontier entries per chunk, at least 16 cycles.  The
        formula lives on the plan (one copy); plan-less engines restate
        it.
        """
        if self._plan is not None:
            return self._plan.preferred_batch()
        return max(16, min(64, (1 << 17) // self.params.num_inputs))

    def _workspace(self, override):
        """The scratch provider for one call: explicit > plan-thread-local."""
        if override is not None:
            return override
        if self._plan is not None:
            return self._plan.workspace()
        return None

    def route_batch(
        self, dests: np.ndarray, rng: BatchRng = None, *, workspace=None
    ) -> BatchCycleResult:
        """Route ``batch`` independent cycles (``dests[i, s]`` = output or ``-1``).

        ``rng`` is only consumed under ``random`` priority.  A single
        generator draws the tie-break keys for the whole batch (the fast
        path); a sequence of ``batch`` generators draws each cycle's keys
        from its own stream, reproducing ``VectorizedEDN.route(dests[i],
        rng_i)`` bit for bit (used by equivalence tests and the
        chunk-size-invariant Monte-Carlo harness).  ``workspace``
        optionally overrides the scratch buffers (default: the compiled
        plan's per-thread :class:`~repro.sim.plan.ChunkWorkspace`).
        """
        p = self.params
        dests, flat, live0 = validate_demand_matrix(
            dests, p.num_inputs, p.num_outputs
        )
        batch, n = dests.shape
        ws = self._workspace(workspace)

        if self.priority == "label":
            output, blocked_stage = self._route_batch_dense(flat, live0, batch, ws)
        else:
            output, blocked_stage = self._route_batch_sparse(flat, live0, batch, rng)
        return BatchCycleResult(
            output=output.reshape(batch, n),
            blocked_stage=blocked_stage.reshape(batch, n),
        )

    # ------------------------------------------------------------------
    # Dense, sort-free path (label priority)
    # ------------------------------------------------------------------

    def _switch_base(self, width: int, dtype) -> np.ndarray:
        """Per-wire ``switch * b * c - 1`` row for one stage width (cached).

        The ``- 1`` pre-folds the conversion of inclusive ranks to 0-based
        bucket wire offsets, so the bucket-wire computation in the counts
        kernel is two adds.
        """
        if self._plan is not None:
            return self._plan.switch_base(width, dtype)
        p = self.params
        key = (width, np.dtype(dtype).char)
        row = self._swbase.get(key)
        if row is None:
            switch = np.arange(width, dtype=dtype) >> ilog2(p.a)
            row = (switch << ilog2(p.b * p.c)) - 1
            self._swbase[key] = row
        return row

    def _route_batch_dense(
        self, flat: np.ndarray, live0: np.ndarray, batch: int, ws=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-message batch routing with dense per-wire frontier arrays.

        The frontier after each stage is represented by two
        ``(batch * wires,)`` arrays — destination and source id (``-1``
        marking dead wires) — indexed by ``cycle * wires + wire_label``.
        Winners take bucket wire ``rank`` (the first-free policy) and
        scatter through the interstage gamma into the next stage's dense
        arrays; losers record their blocking stage against their source.
        """
        p = self.params
        n = p.num_inputs
        total = batch * n
        # Narrow dtypes keep the streaming passes cheap; fall back to
        # int64 only at sizes where 32-bit ids could overflow.
        idx_dtype = np.int32 if total < 2**31 and p.num_outputs < 2**31 else np.int64

        output = np.full(total, IDLE, dtype=np.int64)
        blocked_stage = np.full(total, IDLE, dtype=np.int64)
        blocked_stage[live0] = 0  # provisional: delivered unless marked

        dest = flat.astype(idx_dtype)
        src = np.arange(total, dtype=idx_dtype)
        src[~live0] = -1

        for stage in range(1, p.l + 1):
            width = p.wires_after_stage(stage - 1)
            live = self._scratch_array("live", dest.size, bool, ws)
            np.greater_equal(dest, 0, out=live)
            rank_incl, accepted, lane_shift, digit = self._dense_rank(
                dest, live, p.a, p.digit_bits, self._stage_shifts[stage - 1], p.c, ws
            )
            np.logical_xor(live, accepted, out=live)  # live becomes the loser mask
            blocked_stage[src[np.flatnonzero(live)]] = stage
            accept_idx = np.flatnonzero(accepted)
            if accept_idx.size == 0:
                src = np.zeros(0, dtype=idx_dtype)
                break
            accept_idx = accept_idx.astype(idx_dtype)
            rank = rank_incl[accept_idx].astype(idx_dtype) - 1
            if digit is None:
                digit_w = lane_shift[accept_idx] >> 3
            else:
                digit_w = digit[accept_idx]
            switch = (accept_idx & (width - 1)) >> ilog2(p.a)
            y = (switch << ilog2(p.b * p.c)) + (digit_w << ilog2(p.c)) + rank
            next_width = p.wires_after_stage(stage)
            if stage < p.l:
                y = self._gamma_table(stage, idx_dtype)[y]
            next_idx = ((accept_idx >> ilog2(width)) << ilog2(next_width)) + y
            next_dest = np.full(batch * next_width, IDLE, dtype=idx_dtype)
            next_src = np.full(batch * next_width, -1, dtype=idx_dtype)
            next_dest[next_idx] = dest[accept_idx]
            next_src[next_idx] = src[accept_idx]
            dest, src = next_dest, next_src

        if src.size:
            width = p.wires_after_stage(p.l)
            live = self._scratch_array("live", dest.size, bool, ws)
            np.greater_equal(dest, 0, out=live)
            _rank, accepted, lane_shift, digit = self._dense_rank(
                dest, live, p.c, p.capacity_bits, 0, 1, ws
            )
            np.logical_xor(live, accepted, out=live)
            blocked_stage[src[np.flatnonzero(live)]] = p.l + 1
            accept_idx = np.flatnonzero(accepted)
            if accept_idx.size:
                if digit is None:
                    x = lane_shift[accept_idx] >> 3
                else:
                    x = digit[accept_idx]
                switch = (accept_idx & (width - 1)) >> ilog2(p.c)
                output[src[accept_idx]] = (switch << ilog2(p.c)) + x
        return output, blocked_stage

    def route_batch_counts(
        self, dests: np.ndarray, rng: BatchRng = None, *, workspace=None
    ) -> "BatchAcceptanceCounts":
        """Route a batch but return only acceptance *counts*, maximally fast.

        Monte-Carlo acceptance measurement needs per-cycle offered and
        delivered counts plus a blocked-stage histogram — not per-message
        outcomes.  Dropping source attribution lets the whole stage
        transform stay dense: no winner extraction, no index lists, one
        scatter per stage (losers and dead wires are parked on a trash
        slot).  Routing decisions are identical to :meth:`route_batch`,
        message for message; only the bookkeeping differs.

        With a compiled plan (the default) and packed-lane-capable switch
        shapes, the plan-specialized kernel runs instead: same routing
        decisions and counts, but computing in the plan's narrow wire
        dtype with precompiled tables and zero chunk-sized allocations.

        Falls back to :meth:`route_batch` under ``random`` priority, where
        contention is resolved by sort anyway.
        """
        if self.priority != "label":
            result = self.route_batch(dests, rng, workspace=workspace)
            return BatchAcceptanceCounts(
                offered_per_cycle=result.offered_per_cycle,
                delivered_per_cycle=result.delivered_per_cycle,
                blocked_by_stage=result.blocked_stage_histogram(),
            )
        ws = self._workspace(workspace)
        if self._plan is not None and self._plan.all_packed:
            return self._route_counts_planned(dests, ws)
        return self._route_counts_generic(dests, ws)

    def _route_counts_generic(self, dests: np.ndarray, ws=None) -> "BatchAcceptanceCounts":
        """The dtype-generic counts kernel (any switch shape, any size)."""
        p = self.params
        dests, flat, live0 = validate_demand_matrix(
            dests, p.num_inputs, p.num_outputs
        )
        batch, n = dests.shape
        offered = live0.reshape(batch, n).sum(axis=1)
        total = batch * n
        idx_dtype = np.int32 if total < 2**31 and p.num_outputs < 2**31 else np.int64

        dest = flat.astype(idx_dtype)
        blocked: dict[int, int] = {}
        alive = int(offered.sum())
        delivered = np.zeros(batch, dtype=np.int64)

        for stage in range(1, p.l + 1):
            if alive == 0:
                break
            width = p.wires_after_stage(stage - 1)
            size = batch * width
            live = self._scratch_array("live", size, bool, ws)
            np.greater_equal(dest, 0, out=live)
            rank_incl, accepted, lane_shift, digit = self._dense_rank(
                dest, live, p.a, p.digit_bits, self._stage_shifts[stage - 1], p.c, ws
            )
            surviving = int(accepted.sum())
            if surviving != alive:
                blocked[stage] = alive - surviving
            alive = surviving
            if alive == 0:
                break
            # Bucket wire for everyone (junk at dead/blocked wires):
            # y = (switch * b * c - 1) + digit * c + rank_incl.
            y = self._scratch_array("y", size, idx_dtype, ws)
            cshift = 3 - ilog2(p.c)
            if digit is None:
                if cshift >= 0:
                    np.right_shift(lane_shift, cshift, out=y, casting="unsafe")
                else:
                    np.left_shift(lane_shift, -cshift, out=y, casting="unsafe")
            else:
                np.left_shift(digit, ilog2(p.c), out=y, casting="unsafe")
            np.add(y, rank_incl, out=y, casting="unsafe")
            y2 = y.reshape(batch, width)
            np.add(y2, self._switch_base(width, idx_dtype), out=y2)
            next_width = p.wires_after_stage(stage)
            if stage < p.l:
                # Junk entries may index anywhere in [-1, width + 255]:
                # clip-mode gathering keeps them harmless until trashed.
                target = self._scratch_array("target", size, idx_dtype, ws)
                np.take(self._gamma_table(stage, idx_dtype), y, out=target, mode="clip")
            else:
                target = y
            trash = batch * next_width
            t2 = target.reshape(batch, width)
            np.add(
                t2,
                np.arange(batch, dtype=idx_dtype)[:, None] << ilog2(next_width),
                out=t2,
            )
            np.logical_not(accepted, out=live)  # live becomes the reject mask
            target[live] = trash
            name = "dest_even" if stage % 2 == 0 else "dest_odd"
            next_dest = self._scratch_array(name, trash + 1, idx_dtype, ws)
            next_dest.fill(IDLE)
            next_dest[target] = dest
            dest = next_dest[:trash]

        if alive:
            width = p.wires_after_stage(p.l)
            live = self._scratch_array("live", dest.size, bool, ws)
            np.greater_equal(dest, 0, out=live)
            _rank, accepted, _ls, _digit = self._dense_rank(
                dest, live, p.c, p.capacity_bits, 0, 1, ws
            )
            delivered = accepted.reshape(batch, width).sum(axis=1)
            final = int(delivered.sum())
            if final != alive:
                blocked[p.l + 1] = alive - final
        return BatchAcceptanceCounts(
            offered_per_cycle=offered,
            delivered_per_cycle=delivered,
            blocked_by_stage=dict(sorted(blocked.items())),
        )

    def _route_counts_planned(
        self, dests: np.ndarray, ws
    ) -> "BatchAcceptanceCounts":
        """Plan-specialized counts kernel: narrow dtypes, zero allocations.

        Routing decisions are identical to :meth:`_route_counts_generic`
        (pinned by the plan-equivalence tests); the wins are mechanical:

        * all frontier/wire arithmetic runs in the plan's compiled
          ``wire_dtype`` (``int16`` whenever every stage width and the
          output space fit 15 bits), halving memory traffic;
        * gamma tables, switch bases, and per-cycle row offsets come
          precompiled from the plan — no per-call ``arange``/table builds;
        * losers are parked on the trash slot with a masked ``copyto``
          instead of boolean fancy indexing (no index-list materialization);
        * every chunk-sized buffer comes from the reusable workspace, so
          the steady state allocates only O(batch) counter arrays.
        """
        plan, p = self._plan, self.params
        n = p.num_inputs
        dests = _check_demand_shape(dests, n)
        batch = dests.shape[0]
        total = batch * n
        flat = dests.reshape(-1)
        _check_destination_bounds(flat, p.num_outputs)
        # The liveness mask lives in the workspace (the shared validator
        # would allocate a fresh one per chunk).
        live0 = ws.array("live0", total, bool)
        np.not_equal(flat, IDLE, out=live0)
        offered = np.count_nonzero(live0.reshape(batch, n), axis=1)

        wire = plan.wire_dtype
        dest = ws.array("dest0", total, wire)
        np.copyto(dest, flat, casting="unsafe")
        blocked: dict[int, int] = {}
        alive = int(offered.sum())
        delivered = np.zeros(batch, dtype=np.int64)
        cshift = 3 - ilog2(p.c)

        for stage in range(1, p.l + 1):
            if alive == 0:
                break
            width = plan.stage_widths[stage - 1]
            size = batch * width
            live = ws.array("live", size, bool)
            np.greater_equal(dest, 0, out=live)
            rank_incl, accepted, lane_shift, _digit = self._dense_rank(
                dest,
                live,
                p.a,
                p.digit_bits,
                plan.stage_shifts[stage - 1],
                p.c,
                ws,
                rank_dtype=wire,
            )
            surviving = int(np.count_nonzero(accepted))
            if surviving != alive:
                blocked[stage] = alive - surviving
            alive = surviving
            if alive == 0:
                break
            # Bucket wire for everyone (junk at dead/blocked wires):
            # y = (switch * b * c - 1) + digit * c + rank_incl.
            y = ws.array("y", size, wire)
            if cshift >= 0:
                np.right_shift(lane_shift, cshift, out=y, casting="unsafe")
            else:
                np.left_shift(lane_shift, -cshift, out=y, casting="unsafe")
            np.add(y, rank_incl, out=y, casting="unsafe")
            y2 = y.reshape(batch, width)
            np.add(y2, plan.switch_base(width, wire), out=y2)
            next_width = plan.stage_widths[stage]
            trash = batch * next_width
            index = plan.index_dtype(trash + 1)
            if stage < p.l:
                # Junk entries may index anywhere in [-1, width + 255]:
                # clip-mode gathering keeps them harmless until trashed.
                src_w = ws.array("target_w", size, wire)
                np.take(plan.gamma_table(stage, wire), y, out=src_w, mode="clip")
            else:
                src_w = y  # buckets feed the crossbars directly
            # Widen to global scatter indices (1 + cycle * width + wire) in
            # the same pass that applies the per-cycle row offsets.  The
            # +1 bias reserves flat index 0 as the trash slot, so parking
            # losers and dead wires is a single streaming multiply by the
            # acceptance mask — several-fold cheaper than a masked write,
            # whose random-bit mask defeats dense write-combining.
            target = ws.array("target", size, index)
            np.add(
                src_w.reshape(batch, width),
                plan.row_offsets(batch, ilog2(next_width), index, bias=1),
                out=target.reshape(batch, width),
                casting="unsafe",
            )
            np.multiply(target, accepted, out=target, casting="unsafe")
            name = "dest_even" if stage % 2 == 0 else "dest_odd"
            next_dest = ws.array(name, trash + 1, wire)
            next_dest.fill(IDLE)
            next_dest[target] = dest
            dest = next_dest[1 : trash + 1]

        if alive:
            width = plan.stage_widths[p.l]
            live = ws.array("live", dest.size, bool)
            np.greater_equal(dest, 0, out=live)
            _rank, accepted, _ls, _digit = self._dense_rank(
                dest, live, p.c, p.capacity_bits, 0, 1, ws
            )
            delivered = np.count_nonzero(accepted.reshape(batch, width), axis=1)
            final = int(delivered.sum())
            if final != alive:
                blocked[p.l + 1] = alive - final
        return BatchAcceptanceCounts(
            offered_per_cycle=offered,
            delivered_per_cycle=delivered,
            blocked_by_stage=dict(sorted(blocked.items())),
        )

    # ------------------------------------------------------------------
    # Sparse, sort-based path (random priority)
    # ------------------------------------------------------------------

    def _route_batch_sparse(
        self, flat: np.ndarray, live0: np.ndarray, batch: int, rng: BatchRng
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve a whole batch by folding the cycle index into the sort key.

        Random priority needs a random *order* within every contention
        group, which is inherently a sort; the composite key
        ``cycle * span + switch * b + digit`` keeps groups from different
        cycles distinct, so one batch-wide argsort replaces ``batch``
        per-cycle lexsorts.
        """
        p = self.params
        n = p.num_inputs
        cycle_rngs = self._cycle_rngs(rng, batch)

        output = np.full(batch * n, IDLE, dtype=np.int64)
        blocked_stage = np.full(batch * n, IDLE, dtype=np.int64)
        blocked_stage[live0] = 0

        # Live frontier: flat source ids (cycle * n + source), per-cycle wire
        # labels, and the owning cycle of each request.  Boolean filtering
        # preserves cycle-major order, so each cycle's sub-sequence always
        # matches the single-cycle engine's frontier order.
        sources = np.flatnonzero(live0)
        cyc = sources // n
        wires = sources - cyc * n

        for stage in range(1, p.l + 1):
            if sources.size == 0:
                break
            width = p.wires_after_stage(stage - 1)
            switch = wires // p.a
            digit = (flat[sources] >> self._stage_shifts[stage - 1]) & (p.b - 1)
            local_key = switch * p.b + digit
            span = (width // p.a) * p.b
            accept_mask, rank = self._resolve_sparse(
                cyc, local_key, span, cycle_rngs, rng, capacity=p.c
            )
            blocked_stage[sources[~accept_mask]] = stage
            sources = sources[accept_mask]
            cyc = cyc[accept_mask]
            y = switch[accept_mask] * (p.b * p.c) + digit[accept_mask] * p.c + rank
            if stage < p.l:
                wires = self._gamma_vec(y, ilog2(p.wires_after_stage(stage)))
            else:
                wires = y  # buckets feed the crossbars directly

        if sources.size:
            switch = wires // p.c
            x = flat[sources] & (p.c - 1)
            local_key = switch * p.c + x
            accept_mask, _rank = self._resolve_sparse(
                cyc, local_key, p.num_outputs, cycle_rngs, rng, capacity=1
            )
            blocked_stage[sources[~accept_mask]] = p.l + 1
            output[sources[accept_mask]] = local_key[accept_mask]
        return output, blocked_stage


class CompiledStageRouter(_DenseRankKernels):
    """Any :class:`~repro.sim.stagegraph.StageGraph` on the batched kernels.

    The unified fast path of the delta-family baselines: a topology is
    handed over as *data* (a stage graph), compiled once into a cached
    :class:`~repro.sim.plan.StagePlan` (link-permutation tables,
    switch-base rows, narrow dtypes, per-thread workspaces), and routed
    by the same dense packed-lane / batch-folded-sort kernels the EDN
    engine uses.  ``delta``, ``omega``, and ``dilated`` specs all resolve
    here under ``backend="auto"``; the per-cycle
    :class:`~repro.sim.stagegraph.StageGraphReference` interpreter behind
    the generic batch loop remains as the independent cross-check path.

    Graphs with an input permutation (omega) are routed in wire space:
    the demand matrix is permuted column-wise, routed, and the outcome
    arrays gathered back — identical to composing the permutation by
    hand, and bit-identical per message to the per-cycle interpreter.

    >>> import numpy as np
    >>> from repro.sim.stagegraph import delta_graph
    >>> net = CompiledStageRouter(delta_graph(4, 4, 3))
    >>> res = net.route_batch(np.tile(np.arange(64), (3, 1)))
    >>> res.output.shape
    (3, 64)
    """

    def __init__(
        self,
        graph,
        *,
        priority: str = "label",
        plan="auto",
        faults=(),
        buffer_depth: Optional[int] = None,
    ):
        from repro.sim.plan import compile_stage_plan, stage_plan_for

        if priority not in ("label", "random"):
            raise ConfigurationError(f"unknown priority discipline {priority!r}")
        self.graph = graph
        self.priority = priority
        self.faults = tuple(sorted(set(faults)))
        if plan == "auto":
            plan = stage_plan_for(graph, priority, self.faults, buffer_depth)
        elif plan is None:
            plan = compile_stage_plan(graph, priority, self.faults, buffer_depth)
        else:
            if tuple(plan.faults) != self.faults:
                raise ConfigurationError(
                    f"explicit plan carries faults {plan.faults}, router was "
                    f"given {self.faults}"
                )
            if buffer_depth is not None and plan.buffer_depth != int(buffer_depth):
                raise ConfigurationError(
                    f"explicit plan carries buffer depth {plan.buffer_depth}, "
                    f"router was given {buffer_depth}"
                )
        self._plan = plan
        self._scratch: dict = {}
        self._buffers = (
            plan.buffered_state() if plan.buffer_depth is not None else None
        )
        self._cycle = 0
        self._dropped = 0

    @property
    def n_inputs(self) -> int:
        return self.graph.n_inputs

    @property
    def n_outputs(self) -> int:
        return self.graph.n_outputs

    @property
    def buffer_depth(self) -> Optional[int]:
        """Per-wire FIFO depth, or ``None`` for the unbuffered discipline."""
        return self._plan.buffer_depth

    def preferred_batch(self) -> int:
        """Cycles per chunk keeping a stage's working set cache-resident."""
        return self._plan.preferred_batch()

    # ------------------------------------------------------------------
    # Routing entry points
    # ------------------------------------------------------------------

    def route(self, dests: np.ndarray, rng: BatchRng = None):
        """Route one cycle (``dests[s]`` = output terminal or ``-1``).

        Semantics equal ``route_batch(dests[None])[0]`` by construction,
        so the per-cycle and batched views of a compiled topology can
        never drift apart; under random priority ``rng`` draws exactly
        the per-cycle stream the reference interpreter would.
        """
        g = self.graph
        dests = np.asarray(dests)
        if dests.shape != (g.n_inputs,):
            raise LabelError(
                f"expected demand vector of shape ({g.n_inputs},), got {dests.shape}"
            )
        result = self.route_batch(
            np.ascontiguousarray(dests, dtype=np.int64)[None, :], rng
        )
        return VectorCycleResult(
            output=result.output[0], blocked_stage=result.blocked_stage[0]
        )

    def _shuffled(self, dests: np.ndarray) -> tuple[np.ndarray, Optional[np.ndarray]]:
        """Apply the graph's input permutation to a validated demand matrix."""
        perm = self._plan.input_perm_table(np.int64)
        if perm is None:
            return dests, None
        shuffled = np.full_like(dests, IDLE)
        shuffled[:, perm] = dests
        return shuffled, perm

    def route_batch(
        self, dests: np.ndarray, rng: BatchRng = None, *, workspace=None
    ) -> BatchCycleResult:
        """Route ``batch`` independent cycles (``dests[i, s]`` = output or ``-1``).

        ``rng`` is only consumed under ``random`` priority; as with
        :class:`BatchedEDN`, a sequence of per-cycle generators reproduces
        the per-cycle engine's draws bit for bit regardless of chunking.
        """
        g = self.graph
        dests, flat, live0 = validate_demand_matrix(dests, g.n_inputs, g.n_outputs)
        batch, n = dests.shape
        inner, perm = self._shuffled(dests)
        if perm is not None:
            flat = inner.reshape(-1)
            live0 = flat != IDLE
        if self.priority == "label":
            ws = workspace if workspace is not None else self._plan.workspace()
            output, blocked = self._route_batch_dense(flat, live0, batch, ws)
        else:
            output, blocked = self._route_batch_sparse(flat, live0, batch, rng)
        output = output.reshape(batch, n)
        blocked = blocked.reshape(batch, n)
        if perm is not None:
            output = output[:, perm]
            blocked = blocked[:, perm]
        return BatchCycleResult(output=output, blocked_stage=blocked)

    def route_batch_counts(
        self, dests: np.ndarray, rng: BatchRng = None, *, workspace=None
    ) -> BatchAcceptanceCounts:
        """Route a batch but return only acceptance *counts*, maximally fast.

        Routing decisions are identical to :meth:`route_batch`, message
        for message; dropping source attribution keeps every stage dense
        (one scatter per stage, losers parked on a trash slot, all
        arithmetic in the plan's narrow wire dtype, zero chunk-sized
        allocations).  The input permutation relabels sources but moves
        no message between cycles or stages, so counts need no gather
        back.  Falls back to :meth:`route_batch` under ``random``
        priority, where contention is resolved by sort anyway.
        """
        if self.priority != "label":
            result = self.route_batch(dests, rng, workspace=workspace)
            return BatchAcceptanceCounts(
                offered_per_cycle=result.offered_per_cycle,
                delivered_per_cycle=result.delivered_per_cycle,
                blocked_by_stage=result.blocked_stage_histogram(),
            )
        g = self.graph
        dests = _check_demand_shape(dests, g.n_inputs)
        flat = dests.reshape(-1)
        _check_destination_bounds(flat, g.n_outputs)
        inner, _perm = self._shuffled(dests)
        ws = workspace if workspace is not None else self._plan.workspace()
        return self._route_counts(inner, ws)

    # ------------------------------------------------------------------
    # Buffered stepping (per-wire FIFOs + back-pressure)
    # ------------------------------------------------------------------
    # One step() = one cycle of buffered packet switching on the compiled
    # plan's tables: stages are serviced output side first, a bucket's
    # rank-r contender advances iff r next-queue slots still have room
    # (taking the r-th roomy slot in slot order), losers stay queued, and
    # offered packets enter their source's entry FIFO if it has room.
    # The per-packet cross-check path is
    # :class:`repro.sim.stagegraph.BufferedStageReference`; the two are
    # bit-identical per cycle (see tests/sim/test_buffered_core.py).

    def reset_buffers(self) -> None:
        """Drop all queued packets and restart the cycle counter."""
        self._require_buffered()
        self._buffers = self._plan.buffered_state()
        self._cycle = 0
        self._dropped = 0

    def total_occupancy(self) -> int:
        """Packets currently queued anywhere in the network."""
        self._require_buffered()
        return self._buffers.total_occupancy()

    @property
    def dropped_packets(self) -> int:
        """Packets dropped by wire failures so far (see :meth:`apply_faults`)."""
        return self._dropped

    def apply_faults(self, faults=()) -> int:
        """Swap the live buffered network onto a new fault set mid-run.

        Models links dying (or healing) under a running network: the
        router re-keys onto the plan compiled for ``faults`` (a cache hit
        after the first window of a fault process) while the per-wire
        FIFO state — queued packets, stamps, the cycle clock — carries
        over untouched.  Packets already queued on a wire that just died
        are *dropped with accounting*: each interior dead wire's
        downstream FIFO is emptied, the loss added to
        :attr:`dropped_packets`, and the number dropped by this call
        returned.  Dead wires never grant afterwards, so the drop is
        idempotent; conservation becomes
        ``injected == delivered + in_flight + dropped``.
        """
        from repro.sim.plan import stage_plan_for

        self._require_buffered()
        canonical = tuple(sorted(set(faults)))
        state = self._buffers
        if canonical != self._plan.faults:
            plan = stage_plan_for(
                self.graph, self.priority, canonical, self._plan.buffer_depth
            )
            # Same graph + depth means identically shaped queue arrays,
            # so the state simply re-binds to the sibling plan.
            self._plan = plan
            self.faults = canonical
            state.plan = plan
        plan = self._plan
        dropped = 0
        # Final-stage wires feed output terminals directly — no
        # downstream queue exists, so nothing can be stranded there.
        for i in range(self.graph.num_stages - 1):
            dead = plan.fault_dead_slots(i)
            if dead is None:
                continue
            slots = np.flatnonzero(dead)
            link = plan.perm_table(i, np.int64)
            wires = link[slots] if link is not None else slots
            occ = state.occupancy[i + 1]
            dropped += int(occ[wires].sum())
            occ[wires] = 0
        self._dropped += dropped
        return dropped

    def _require_buffered(self) -> None:
        if self._buffers is None:
            raise ConfigurationError(
                "router was compiled without buffer_depth; "
                "buffered stepping is unavailable"
            )

    def step(self, dests: np.ndarray, rng: BatchRng = None):
        """Advance the buffered network one cycle under demand ``dests``.

        Returns a :class:`~repro.sim.stagegraph.BufferedCycleOutcome`
        whose delivery arrays are canonically sorted, so a compiled run
        and a :class:`~repro.sim.stagegraph.BufferedStageReference` run
        under the same seed compare bit for bit.  Random priority draws
        one ``rng.permutation`` per stage with live contenders, stages
        serviced last column first — the reference draw protocol.
        """
        from repro.sim.stagegraph import BufferedCycleOutcome

        self._require_buffered()
        plan, g = self._plan, self.graph
        state = self._buffers
        depth = state.depth
        dests = np.asarray(dests, dtype=np.int64)
        if dests.shape != (g.n_inputs,):
            raise LabelError(
                f"expected demand vector of shape ({g.n_inputs},), got {dests.shape}"
            )
        live0 = dests != IDLE
        if live0.any():
            lo, hi = int(dests[live0].min()), int(dests[live0].max())
            if lo < 0 or hi >= g.n_outputs:
                raise LabelError("demand vector contains out-of-range destinations")
        if self.priority == "random" and rng is None:
            raise ConfigurationError(
                "random priority requires an explicit numpy Generator"
            )

        t = self._cycle
        out_arr = lat_arr = None
        last = g.num_stages - 1
        for i in range(last, -1, -1):
            stage = g.stages[i]
            occ = state.occupancy[i]
            contenders = np.flatnonzero(occ > 0)
            ncon = contenders.size
            if ncon == 0:
                continue
            heads = state.dests[i][contenders, 0].astype(np.int64)
            switch = contenders >> ilog2(stage.fan_in)
            digit = (heads >> stage.shift) & (stage.radix - 1)
            bucket = switch * stage.radix + digit
            if self.priority == "random":
                order = np.lexsort((rng.permutation(ncon), bucket))
            else:
                order = np.argsort(bucket, kind="stable")
            bucket_s = bucket[order]
            wires_s = contenders[order]
            new_group = np.empty(ncon, dtype=bool)
            new_group[0] = True
            np.not_equal(bucket_s[1:], bucket_s[:-1], out=new_group[1:])
            group_ids = np.cumsum(new_group) - 1
            group_starts = np.flatnonzero(new_group)
            rank = np.arange(ncon) - group_starts[group_ids]
            cap = stage.capacity
            dead = plan.fault_dead_slots(i)
            if i == last:
                if dead is None:
                    accept = rank < cap
                    winners = wires_s[accept]
                    y = bucket_s[accept] * cap + rank[accept]
                else:
                    # Only live output wires deliver: the rank-r winner
                    # takes the bucket's r-th live slot in slot order.
                    live2 = (~dead).reshape(-1, cap)
                    live_count = live2.sum(axis=1)
                    order_slots = np.argsort(dead.reshape(-1, cap), axis=1,
                                             kind="stable")
                    accept = rank < live_count[bucket_s]
                    b_acc = bucket_s[accept]
                    y = b_acc * cap + order_slots[b_acc, rank[accept]]
                    winners = wires_s[accept]
                out_arr = y >> g.out_shift
                lat_arr = t - state.stamps[i][winners, 0]
                self._buffered_pop(i, winners)
            else:
                occ_next = state.occupancy[i + 1]
                link = plan.perm_table(i, np.int64)
                # Room per virtual slot (bucket * capacity + k): whether
                # the next-boundary queue that slot feeds still has room.
                if link is None:
                    roomy = occ_next < depth
                else:
                    roomy = occ_next[link] < depth
                if dead is not None:
                    # A dead wire never grants: available = roomy ∧ live.
                    roomy &= ~dead
                room2 = roomy.reshape(-1, cap)
                room_count = room2.sum(axis=1)
                # Roomy slots first, in slot order (stable argsort of the
                # negated mask): the rank-r winner takes the r-th one.
                order_slots = np.argsort(~room2, axis=1, kind="stable")
                accept = rank < room_count[bucket_s]
                b_acc = bucket_s[accept]
                y = b_acc * cap + order_slots[b_acc, rank[accept]]
                winners = wires_s[accept]
                if winners.size == 0:
                    continue
                next_wires = link[y] if link is not None else y
                moved_dest = state.dests[i][winners, 0].copy()
                moved_stamp = state.stamps[i][winners, 0].copy()
                self._buffered_pop(i, winners)
                pos = occ_next[next_wires]
                state.dests[i + 1][next_wires, pos] = moved_dest
                state.stamps[i + 1][next_wires, pos] = moved_stamp
                occ_next[next_wires] += 1

        sources = np.flatnonzero(live0)
        offered = int(sources.size)
        perm = plan.input_perm_table(np.int64)
        wires = perm[sources] if perm is not None else sources
        occ0 = state.occupancy[0]
        has_room = occ0[wires] < depth
        w_ok = wires[has_room]
        pos = occ0[w_ok]
        state.dests[0][w_ok, pos] = dests[sources[has_room]]
        state.stamps[0][w_ok, pos] = t
        occ0[w_ok] += 1
        injected = int(w_ok.size)
        self._cycle = t + 1

        if out_arr is None:
            out_arr = np.zeros(0, dtype=np.int64)
            lat_arr = np.zeros(0, dtype=np.int64)
        out_arr = np.asarray(out_arr, dtype=np.int64)
        lat_arr = np.asarray(lat_arr, dtype=np.int64)
        sort = np.lexsort((lat_arr, out_arr))
        return BufferedCycleOutcome(
            outputs=out_arr[sort],
            latencies=lat_arr[sort],
            offered=offered,
            injected=injected,
        )

    def _buffered_pop(self, i: int, winners: np.ndarray) -> None:
        """Shift the winning wires' FIFOs left by one (head removal)."""
        state = self._buffers
        dq, st = state.dests[i], state.stamps[i]
        dq[winners, :-1] = dq[winners, 1:]
        st[winners, :-1] = st[winners, 1:]
        state.occupancy[i][winners] -= 1

    # ------------------------------------------------------------------
    # Dense per-message kernel (label priority)
    # ------------------------------------------------------------------

    def _route_batch_dense(
        self, flat: np.ndarray, live0: np.ndarray, batch: int, ws
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-message batch routing with dense per-wire frontier arrays.

        The graph-driven generalization of the EDN dense kernel: the
        frontier after each stage is two ``(batch * width,)`` arrays —
        destination and source id (``-1`` marking dead wires) — indexed
        by ``cycle * width + wire``.  Winners take bucket wire ``rank``
        (first-free), pass through the stage's compiled link-permutation
        table, and scatter into the next column's arrays; survivors of
        the final column deliver to ``bucket_wire >> out_shift``.
        """
        plan, g = self._plan, self.graph
        n = g.n_inputs
        total = batch * n
        peak = batch * max(plan.stage_widths)
        idx_dtype = np.int32 if peak < 2**31 and g.n_outputs < 2**31 else np.int64

        output = np.full(total, IDLE, dtype=np.int64)
        blocked_stage = np.full(total, IDLE, dtype=np.int64)
        blocked_stage[live0] = 0  # provisional: delivered unless marked

        dest = flat.astype(idx_dtype)
        src = np.arange(total, dtype=idx_dtype)
        src[~live0] = -1
        last = g.num_stages - 1

        for i, stage in enumerate(g.stages):
            width = plan.stage_widths[i]
            live = self._scratch_array("live", dest.size, bool, ws)
            np.greater_equal(dest, 0, out=live)
            rank_incl, accepted, lane_shift, digit = self._dense_rank(
                dest, live, stage.fan_in, stage.digit_bits, stage.shift,
                stage.capacity, ws,
            )
            np.logical_xor(live, accepted, out=live)  # live becomes the loser mask
            blocked_stage[src[np.flatnonzero(live)]] = i + 1
            accept_idx = np.flatnonzero(accepted)
            if accept_idx.size == 0:
                break
            accept_idx = accept_idx.astype(idx_dtype)
            rank = rank_incl[accept_idx].astype(idx_dtype) - 1
            if digit is None:
                digit_w = lane_shift[accept_idx] >> 3
            else:
                digit_w = digit[accept_idx]
            switch = (accept_idx & (width - 1)) >> ilog2(stage.fan_in)
            y = (
                (switch << ilog2(stage.bucket_wires))
                + (digit_w << ilog2(stage.capacity))
                + rank
            )
            falive = plan.fault_alive(i)
            if falive is not None:
                # Rank-k winners of buckets with <= k live wires are
                # blocked here; survivors continue on their live wire.
                ok = falive[y]
                dead_idx = accept_idx[~ok]
                if dead_idx.size:
                    blocked_stage[src[dead_idx]] = i + 1
                    accept_idx = accept_idx[ok]
                    y = y[ok]
                    if accept_idx.size == 0:
                        break
            if i == last:
                output[src[accept_idx]] = y >> g.out_shift
                break
            table = plan.fault_link_table(i, idx_dtype)
            if table is None:
                table = plan.perm_table(i, idx_dtype)
            if table is not None:
                y = table[y]
            next_width = plan.stage_widths[i + 1]
            next_idx = ((accept_idx >> ilog2(width)) << ilog2(next_width)) + y
            next_dest = np.full(batch * next_width, IDLE, dtype=idx_dtype)
            next_src = np.full(batch * next_width, -1, dtype=idx_dtype)
            next_dest[next_idx] = dest[accept_idx]
            next_src[next_idx] = src[accept_idx]
            dest, src = next_dest, next_src
        return output, blocked_stage

    # ------------------------------------------------------------------
    # Dense counts-only kernel (label priority)
    # ------------------------------------------------------------------

    def _counts_bucket_wire(
        self, i, stage, batch, width, rank_incl, lane_shift, digit, ws
    ):
        """Virtual bucket wire per frontier slot (junk at dead/blocked wires):
        ``y = (switch * radix * capacity - 1) + digit * capacity + rank_incl``.
        """
        plan = self._plan
        wire = plan.wire_dtype
        y = ws.array("y", batch * width, wire)
        cshift = 3 - ilog2(stage.capacity)
        if digit is None:
            if cshift >= 0:
                np.right_shift(lane_shift, cshift, out=y, casting="unsafe")
            else:
                np.left_shift(lane_shift, -cshift, out=y, casting="unsafe")
        else:
            np.left_shift(digit, ilog2(stage.capacity), out=y, casting="unsafe")
        np.add(y, rank_incl, out=y, casting="unsafe")
        y2 = y.reshape(batch, width)
        np.add(y2, plan.stage_base(i, wire), out=y2)
        return y

    def _route_counts(self, dests: np.ndarray, ws) -> BatchAcceptanceCounts:
        """Counts kernel over the compiled stage list: narrow dtypes, no allocs.

        The graph-driven generalization of the plan-specialized EDN
        counts kernel, with the generic kernel's one-hot fallback for
        stages whose switch shapes cannot pack.
        """
        plan, g = self._plan, self.graph
        n = g.n_inputs
        batch = dests.shape[0]
        total = batch * n
        flat = dests.reshape(-1)
        live0 = ws.array("live0", total, bool)
        np.not_equal(flat, IDLE, out=live0)
        offered = np.count_nonzero(live0.reshape(batch, n), axis=1)

        wire = plan.wire_dtype
        dest = ws.array("dest0", total, wire)
        np.copyto(dest, flat, casting="unsafe")
        blocked: dict[int, int] = {}
        alive = int(offered.sum())
        delivered = np.zeros(batch, dtype=np.int64)
        last = g.num_stages - 1

        for i, stage in enumerate(g.stages):
            if alive == 0:
                break
            width = plan.stage_widths[i]
            size = batch * width
            live = ws.array("live", size, bool)
            np.greater_equal(dest, 0, out=live)
            rank_incl, accepted, lane_shift, digit = self._dense_rank(
                dest, live, stage.fan_in, stage.digit_bits, stage.shift,
                stage.capacity, ws, rank_dtype=wire,
            )
            y = None
            falive = plan.fault_alive(i)
            if falive is not None:
                # Fault refinement: a provisional rank-k winner survives
                # only if its bucket still has > k live wires.  Junk
                # entries (already rejected) gather harmlessly in clip
                # mode and stay rejected under the logical-and.
                y = self._counts_bucket_wire(
                    i, stage, batch, width, rank_incl, lane_shift, digit, ws
                )
                ok = ws.array("fok", size, bool)
                np.take(falive, y, out=ok, mode="clip")
                np.logical_and(accepted, ok, out=accepted)
            surviving = int(np.count_nonzero(accepted))
            if surviving != alive:
                blocked[i + 1] = alive - surviving
            alive = surviving
            if i == last:
                delivered = np.count_nonzero(
                    accepted.reshape(batch, width), axis=1
                )
                break
            if alive == 0:
                break
            if y is None:
                y = self._counts_bucket_wire(
                    i, stage, batch, width, rank_incl, lane_shift, digit, ws
                )
            next_width = plan.stage_widths[i + 1]
            trash = batch * next_width
            index = plan.index_dtype(trash + 1)
            table = plan.fault_link_table(i, wire)
            if table is None:
                table = plan.perm_table(i, wire)
            if table is not None:
                # Junk entries may index anywhere in [-1, width + 255]:
                # clip-mode gathering keeps them harmless until trashed.
                src_w = ws.array("target_w", size, wire)
                np.take(table, y, out=src_w, mode="clip")
            else:
                src_w = y
            # Widen to global scatter indices (1 + cycle * width + wire) in
            # the same pass that applies the per-cycle row offsets.  The
            # +1 bias reserves flat index 0 as the trash slot, so parking
            # losers and dead wires is a single streaming multiply by the
            # acceptance mask.
            target = ws.array("target", size, index)
            np.add(
                src_w.reshape(batch, width),
                plan.row_offsets(batch, ilog2(next_width), index, bias=1),
                out=target.reshape(batch, width),
                casting="unsafe",
            )
            np.multiply(target, accepted, out=target, casting="unsafe")
            name = "dest_even" if i % 2 else "dest_odd"
            next_dest = ws.array(name, trash + 1, wire)
            next_dest.fill(IDLE)
            next_dest[target] = dest
            dest = next_dest[1 : trash + 1]
        return BatchAcceptanceCounts(
            offered_per_cycle=offered,
            delivered_per_cycle=delivered,
            blocked_by_stage=dict(sorted(blocked.items())),
        )

    # ------------------------------------------------------------------
    # Sparse, sort-based path (random priority)
    # ------------------------------------------------------------------

    def _route_batch_sparse(
        self, flat: np.ndarray, live0: np.ndarray, batch: int, rng: BatchRng
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve a whole batch by folding the cycle index into the sort key."""
        plan, g = self._plan, self.graph
        n = g.n_inputs
        cycle_rngs = self._cycle_rngs(rng, batch)

        output = np.full(batch * n, IDLE, dtype=np.int64)
        blocked_stage = np.full(batch * n, IDLE, dtype=np.int64)
        blocked_stage[live0] = 0

        sources = np.flatnonzero(live0)
        cyc = sources // n
        wires = sources - cyc * n
        last = g.num_stages - 1

        for i, stage in enumerate(g.stages):
            if sources.size == 0:
                break
            width = plan.stage_widths[i]
            switch = wires >> ilog2(stage.fan_in)
            digit = (flat[sources] >> stage.shift) & (stage.radix - 1)
            local_key = switch * stage.radix + digit
            span = (width // stage.fan_in) * stage.radix
            accept_mask, rank = self._resolve_sparse(
                cyc, local_key, span, cycle_rngs, rng, capacity=stage.capacity
            )
            blocked_stage[sources[~accept_mask]] = i + 1
            sources = sources[accept_mask]
            cyc = cyc[accept_mask]
            y = (
                switch[accept_mask] * stage.bucket_wires
                + digit[accept_mask] * stage.capacity
                + rank
            )
            falive = plan.fault_alive(i)
            if falive is not None:
                ok = falive[y]
                if not ok.all():
                    blocked_stage[sources[~ok]] = i + 1
                    sources = sources[ok]
                    cyc = cyc[ok]
                    y = y[ok]
            if i == last:
                output[sources] = y >> g.out_shift
                break
            table = plan.fault_link_table(i, np.int64)
            if table is None:
                table = plan.perm_table(i, np.int64)
            wires = table[y] if table is not None else y
        return output, blocked_stage

    def __repr__(self) -> str:
        faulted = f", faults={len(self.faults)}" if self.faults else ""
        return (
            f"CompiledStageRouter({self.graph.label}, "
            f"priority={self.priority!r}{faulted})"
        )
