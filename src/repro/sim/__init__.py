"""Simulation substrate: kernel, RNG streams, statistics, traffic, Monte-Carlo.

This package supplies the *machinery*; for constructing and driving
networks, prefer the :mod:`repro.api` facade — ``NetworkSpec`` names any
topology in the repo, ``build_router`` selects an engine through the
backend registry (the batched engines below under ``backend="auto"``),
and ``RunConfig`` threads cycles/seed/jobs/batch through
:func:`~repro.sim.montecarlo.measure_acceptance` and the experiment
runners.

* :mod:`repro.sim.engine` — discrete-event kernel and cycle driver;
* :mod:`repro.sim.rng` — reproducible independent random streams;
* :mod:`repro.sim.stats` — online statistics and confidence intervals
  (streaming ratio-of-sums estimator with a delta-method interval);
* :mod:`repro.sim.stagegraph` — the topology-agnostic stage-graph core:
  every unidirectional multistage network (EDN, delta, omega, dilated
  delta) as a :class:`StageGraph` descriptor, plus the per-cycle
  reference interpreter used as the cross-check path;
* :mod:`repro.sim.plan` — compiled :class:`StagePlan`/:class:`RoutingPlan`
  tables behind a keyed LRU cache plus reusable :class:`ChunkWorkspace`
  scratch, so repeated engine construction and chunk routing skip all
  topology setup and steady-state allocation (see ``docs/PERFORMANCE.md``);
* :mod:`repro.sim.traffic` — compatibility alias of the traffic models,
  which live in the :mod:`repro.workloads` subsystem (registry-backed
  ``name[:args]`` specs: uniform, permutation, hot-spot/NUTS, bursty,
  mixture, trace replay, structured patterns), single-cycle or batched;
* :mod:`repro.sim.vectorized` — numpy EDN router, one cycle per call;
* :mod:`repro.sim.batched` — numpy routers over ``(batch, N)`` demand
  matrices (:class:`BatchedEDN` and the graph-driven
  :class:`CompiledStageRouter` the delta-family baselines compile to):
  many independent cycles per call, bit-identical per message to the
  single-cycle engines;
* :mod:`repro.sim.native` — the JIT kernel backend: every
  :class:`StagePlan` lowered to fused per-stage loops compiled with
  numba or as plan-specialized C (``backend="native"``; counts-only
  Monte-Carlo, bit-identical to the batched kernels), plus the
  Array-API counts path behind ``backend="native:gpu"``;
* :mod:`repro.sim.montecarlo` — acceptance-probability measurement,
  routed in batched chunks wherever the router supports it, with
  optional adaptive early stopping (``rel_err=``: the cycle budget
  becomes a ceiling and each run stops once its confidence interval is
  tight enough);
* :mod:`repro.sim.buffered` — buffered packet switching on the compiled
  core: per-wire FIFO state with back-pressure on any stage graph
  (:class:`CompiledStageRouter` with a ``buffer_depth``, cross-checked
  by :class:`BufferedStageReference`), measured by
  :func:`measure_buffered` with streaming :class:`LatencyStats`
  histograms (mean/p50/p95/p99 + delta-method CI).

Batched-engine semantics
------------------------
``BatchedEDN.route_batch`` treats each row of a ``(batch, N)`` demand
matrix as one independent network cycle (the paper's assumption 3: blocked
requests do not couple cycles), so a Monte-Carlo estimate over ``k``
cycles is one or a few engine calls instead of ``k``.  Under the default
label priority contention is resolved sort-free from packed per-bucket
occupancy counters; under random priority the cycle index is folded into
the contention sort key so one batch-wide argsort resolves every cycle.
Per-message outcomes equal ``VectorizedEDN.route`` row for row.

Measured wall-clock per Monte-Carlo point (uniform traffic at full load,
200 cycles, ``EDN(16,4,4,l)``, recorded by ``benchmarks/perf_smoke.py``
into ``BENCH_batched_routing.json``):

===========  ==============  ============  ========
``N``        per-cycle path  batched path  speedup
===========  ==============  ============  ========
1,024        0.122 s         0.014 s       8.8x
4,096        0.409 s         0.063 s       6.5x
16,384       1.730 s         0.332 s       5.2x
===========  ==============  ============  ========
"""

from repro.sim.batched import (
    BatchAcceptanceCounts,
    BatchCycleResult,
    BatchedEDN,
    CompiledStageRouter,
)
from repro.sim.buffered import BufferedMeasurement, measure_buffered
from repro.sim.engine import CycleDriver, EventHandle, Simulator
from repro.sim.plan import (
    BufferedState,
    ChunkWorkspace,
    RoutingPlan,
    StagePlan,
    clear_plan_cache,
    compile_plan,
    compile_stage_plan,
    plan_cache_info,
    plan_for,
    stage_plan_for,
)
from repro.sim.stagegraph import (
    BufferedCycleOutcome,
    BufferedStageReference,
    GraphStage,
    StageGraph,
    StageGraphReference,
    delta_graph,
    dilated_graph,
    edn_graph,
    omega_graph,
)
from repro.sim.native import NativeStageRouter, available_tiers
from repro.sim.montecarlo import (
    AcceptanceMeasurement,
    ReferenceRouterAdapter,
    measure_acceptance,
)
from repro.sim.rng import make_rng, spawn, spawn_keys, stream_for
from repro.sim.stats import (
    Interval,
    LatencyStats,
    RatioStats,
    RetryStats,
    RunningStats,
    batch_means,
    proportion_ci,
)
from repro.workloads.models import (
    STRUCTURED_PATTERNS,
    BurstyTraffic,
    FixedPattern,
    HotspotTraffic,
    MixtureTraffic,
    PermutationTraffic,
    TraceTraffic,
    TrafficGenerator,
    UniformTraffic,
    structured_permutation,
)
from repro.sim.vectorized import VectorCycleResult, VectorizedEDN

__all__ = [
    "Simulator",
    "EventHandle",
    "CycleDriver",
    "make_rng",
    "spawn",
    "spawn_keys",
    "stream_for",
    "BatchedEDN",
    "CompiledStageRouter",
    "NativeStageRouter",
    "available_tiers",
    "BatchCycleResult",
    "BatchAcceptanceCounts",
    "RoutingPlan",
    "StagePlan",
    "GraphStage",
    "StageGraph",
    "StageGraphReference",
    "BufferedState",
    "BufferedCycleOutcome",
    "BufferedStageReference",
    "BufferedMeasurement",
    "measure_buffered",
    "edn_graph",
    "delta_graph",
    "omega_graph",
    "dilated_graph",
    "ChunkWorkspace",
    "plan_for",
    "compile_plan",
    "stage_plan_for",
    "compile_stage_plan",
    "clear_plan_cache",
    "plan_cache_info",
    "RunningStats",
    "RatioStats",
    "LatencyStats",
    "RetryStats",
    "Interval",
    "batch_means",
    "proportion_ci",
    "TrafficGenerator",
    "UniformTraffic",
    "PermutationTraffic",
    "FixedPattern",
    "HotspotTraffic",
    "BurstyTraffic",
    "MixtureTraffic",
    "TraceTraffic",
    "structured_permutation",
    "STRUCTURED_PATTERNS",
    "VectorizedEDN",
    "VectorCycleResult",
    "measure_acceptance",
    "AcceptanceMeasurement",
    "ReferenceRouterAdapter",
]
