"""Simulation substrate: kernel, RNG streams, statistics, traffic, Monte-Carlo.

* :mod:`repro.sim.engine` — discrete-event kernel and cycle driver;
* :mod:`repro.sim.rng` — reproducible independent random streams;
* :mod:`repro.sim.stats` — online statistics and confidence intervals;
* :mod:`repro.sim.traffic` — workload generators (uniform, permutation,
  hot-spot/NUTS, structured patterns);
* :mod:`repro.sim.vectorized` — numpy EDN router for large networks;
* :mod:`repro.sim.montecarlo` — acceptance-probability measurement.
"""

from repro.sim.engine import CycleDriver, EventHandle, Simulator
from repro.sim.montecarlo import (
    AcceptanceMeasurement,
    ReferenceRouterAdapter,
    measure_acceptance,
)
from repro.sim.rng import make_rng, spawn, stream_for
from repro.sim.stats import (
    Interval,
    RatioStats,
    RunningStats,
    batch_means,
    proportion_ci,
)
from repro.sim.traffic import (
    STRUCTURED_PATTERNS,
    FixedPattern,
    HotspotTraffic,
    PermutationTraffic,
    TrafficGenerator,
    UniformTraffic,
    structured_permutation,
)
from repro.sim.vectorized import VectorCycleResult, VectorizedEDN

__all__ = [
    "Simulator",
    "EventHandle",
    "CycleDriver",
    "make_rng",
    "spawn",
    "stream_for",
    "RunningStats",
    "RatioStats",
    "Interval",
    "batch_means",
    "proportion_ci",
    "TrafficGenerator",
    "UniformTraffic",
    "PermutationTraffic",
    "FixedPattern",
    "HotspotTraffic",
    "structured_permutation",
    "STRUCTURED_PATTERNS",
    "VectorizedEDN",
    "VectorCycleResult",
    "measure_acceptance",
    "AcceptanceMeasurement",
    "ReferenceRouterAdapter",
]
