"""A small discrete-event simulation kernel.

The paper's network model is cycle-synchronous, but the surrounding
*systems* are not: Section 4's processors interleave think time with memory
waits, and extensions (memory service latency, per-cluster queueing) need a
real event calendar.  This kernel provides exactly that: a time-ordered
event heap with deterministic FIFO tie-breaking, periodic processes, and a
cycle-driver convenience built on top.

Design notes
------------
* Events at equal timestamps fire in scheduling order (a monotonically
  increasing sequence number breaks ties), which keeps simulations
  reproducible run to run.
* Callbacks receive the :class:`Simulator`, so they can schedule follow-up
  events; there is no coroutine magic — explicit is better than implicit.
* Cancellation is supported by handle; cancelled events stay in the heap
  but are skipped on pop (standard lazy deletion).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Simulator", "EventHandle", "CycleDriver"]


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callable = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: _Entry, sim: "Simulator"):
        self._entry = entry
        self._sim = sim

    def cancel(self) -> None:
        entry = self._entry
        if not entry.cancelled:
            entry.cancelled = True
            if not entry.fired:
                self._sim._live -= 1

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def time(self) -> float:
        return self._entry.time


class Simulator:
    """A minimal event-calendar simulator.

    >>> sim = Simulator()
    >>> log = []
    >>> _ = sim.schedule(2.0, lambda s: log.append(("b", s.now)))
    >>> _ = sim.schedule(1.0, lambda s: log.append(("a", s.now)))
    >>> sim.run()
    >>> log
    [('a', 1.0), ('b', 2.0)]
    """

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._live = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Live (scheduled, not cancelled, not yet fired) event count.

        Maintained incrementally on schedule/cancel/fire — O(1), where a
        heap scan would make busy simulations quadratic in event count.
        """
        return self._live

    def schedule(self, delay: float, callback: Callable[["Simulator"], None]) -> EventHandle:
        """Schedule ``callback(sim)`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        entry = _Entry(time=self._now + delay, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, entry)
        self._live += 1
        return EventHandle(entry, self)

    def schedule_at(self, time: float, callback: Callable[["Simulator"], None]) -> EventHandle:
        """Schedule ``callback(sim)`` at absolute time ``time`` (>= now)."""
        return self.schedule(time - self._now, callback)

    def every(
        self,
        period: float,
        callback: Callable[["Simulator"], None],
        *,
        start: Optional[float] = None,
    ) -> EventHandle:
        """Schedule a periodic process; cancelling the handle stops future firings.

        The returned handle tracks the *next* occurrence, so ``cancel()``
        always suppresses the upcoming and all later firings.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        first = self._now + period if start is None else start
        entry = _Entry(time=first, seq=next(self._seq), callback=None)  # placeholder
        handle = EventHandle(entry, self)

        def fire(sim: "Simulator") -> None:
            if handle._entry.cancelled:
                return
            callback(sim)
            nxt = _Entry(time=sim.now + period, seq=next(sim._seq), callback=fire)
            nxt.cancelled = handle._entry.cancelled
            handle._entry = nxt
            heapq.heappush(sim._heap, nxt)
            if not nxt.cancelled:
                sim._live += 1

        entry.callback = fire
        heapq.heappush(self._heap, entry)
        self._live += 1
        return handle

    def step(self) -> bool:
        """Process the next pending event; return False when the calendar is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                # Lazily deleted: its cancellation already decremented _live.
                continue
            entry.fired = True
            self._live -= 1
            self._now = entry.time
            self._events_processed += 1
            entry.callback(self)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the calendar drains, ``until`` is reached, or ``max_events`` fire."""
        fired = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                self._now = until
                return
            if max_events is not None and fired >= max_events:
                return
            self.step()
            fired += 1
        if until is not None:
            self._now = max(self._now, until)


class CycleDriver:
    """Run a synchronous per-cycle function on top of :class:`Simulator`.

    Many of the paper's models advance in unit network cycles; this wrapper
    schedules ``body(cycle_index)`` at integer times and stops either after
    ``max_cycles`` or when ``body`` returns ``False``.

    >>> driver = CycleDriver()
    >>> counts = []
    >>> driver.run(lambda i: counts.append(i) or i < 2, max_cycles=10)
    3
    >>> counts
    [0, 1, 2]
    """

    def __init__(self, period: float = 1.0):
        self.simulator = Simulator()
        self.period = period

    def run(self, body: Callable[[int], bool], *, max_cycles: int) -> int:
        """Execute up to ``max_cycles`` cycles; returns cycles actually executed.

        ``body`` returning a falsy value stops the loop after that cycle.
        """
        state = {"cycle": 0, "stop": False}

        def tick(sim: Simulator) -> None:
            if state["stop"] or state["cycle"] >= max_cycles:
                return
            keep_going = body(state["cycle"])
            state["cycle"] += 1
            if not keep_going:
                state["stop"] = True
                return
            if state["cycle"] < max_cycles:
                sim.schedule(self.period, tick)

        self.simulator.schedule(0.0, tick)
        self.simulator.run()
        return state["cycle"]

    @property
    def now(self) -> float:
        return self.simulator.now
