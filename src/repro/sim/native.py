"""Native kernel backend: :class:`~repro.sim.plan.StagePlan` lowered to
JIT-compiled per-stage loops.

The batched NumPy kernels stream ~10 chunk-sized array passes per stage;
at Monte-Carlo scale that is memory traffic, not arithmetic.  A compiled
loop fuses dense rank + acceptance + fault refinement + link permutation
into **one pass over the frontier per stage**, keeps each cycle's frontier
L1/L2-resident, and parallelizes over the batch axis — each cycle is an
independent routing problem, so the parallel loop is deterministic by
construction.  Routing decisions are bit-identical to
:meth:`~repro.sim.batched.CompiledStageRouter.route_batch_counts`
(pinned by the cross-backend equivalence suite).

The same loop body exists in three execution **tiers**, best available
first:

* ``numba`` — :func:`_counts_loop` compiled by ``numba.njit(parallel=True,
  cache=True)`` (``prange`` over cycles).  Preferred when numba is
  importable; ``pip install repro[native]`` pulls it in.
* ``cc`` — a C translation of the identical loop, *specialized to the
  plan's stage shapes* (constants baked in, stages unrolled, branchless
  per-wire path), compiled at first use with the host toolchain
  (``cc``/``gcc``/``clang``), cached on disk by generated-source hash,
  and called through :mod:`ctypes` (the GIL is released for the duration
  of the call; ``-fopenmp`` parallelizes over cycles when the toolchain
  supports it).  This keeps the native backend fast on numba-free hosts
  that have a compiler.
* ``python`` — the very same :func:`_counts_loop`, interpreted.  Never
  selected automatically (it is slow); tests use it to pin the loop
  *logic* against the NumPy kernels on any host.

Importing this module never hard-fails: with no accelerated tier the
router degrades to the inherited NumPy kernels (the pure-NumPy shim), and
the backend registry reports the backend unavailable with an error naming
the ``[native]`` extra.

The kernel consumes the existing plan data — per-stage shapes, link
permutation tables (pre-composed with the fault remap for faulted
stages), rank-space fault liveness, and the input permutation — packed
once per plan into flat arrays (:func:`_lower`) and cached on the plan
itself, so the warm path allocates nothing chunk-sized and forked sweep
workers inherit both the lowered tables and the on-disk JIT caches.

The GPU story is sketched (not yet tuned) by :func:`device_counts`: the
same counts-only routing written against the NumPy/CuPy shared array API
(`xp`), selected by ``backend="native:gpu"`` — CuPy when importable,
NumPy otherwise, so the path is always testable.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.sim.batched import (
    BatchAcceptanceCounts,
    CompiledStageRouter,
    _check_demand_shape,
    _check_destination_bounds,
)

__all__ = [
    "NativeStageRouter",
    "NativeKernel",
    "kernel_for",
    "numba_available",
    "cc_available",
    "available_tiers",
    "default_tier",
    "unavailable_reason",
    "device_counts",
    "gpu_namespace",
]

try:  # numba.prange degrades to range when interpreted, so one loop body
    from numba import prange  # serves both the JIT and the python tier
except ImportError:  # pragma: no cover - exercised on numba-free hosts
    prange = range


# ----------------------------------------------------------------------
# The loop body (python + numba tiers)
# ----------------------------------------------------------------------
# One function, two executions: interpreted as-is (the ``python`` tier)
# or compiled by numba (the ``numba`` tier).  The C translation below
# mirrors it statement for statement; all three must stay in lockstep —
# the bit-identity tests compare every tier against the NumPy kernels.
#
# Layout (built by :func:`_lower`):
#   meta[i]  = [width, fan_in_bits, shift, radix-1, capacity,
#               bucket_wires, link_offset, falive_offset]
#   links    = concatenated per-stage link tables (offset -1 = identity:
#              the winner's bucket wire *is* the next-stage wire)
#   falive   = concatenated rank-space liveness masks of faulted stages
#   input_perm = source -> entry-wire table (size 0 = identity)


def _counts_loop(
    dests, meta, links, falive, input_perm, frontier, counts,
    offered, delivered, blocked,
):
    batch, n = dests.shape
    nstages = meta.shape[0]
    has_perm = input_perm.shape[0] != 0
    for c in prange(batch):
        cur = frontier[c, 0]
        nxt = frontier[c, 1]
        cnt = counts[c]
        w0 = meta[0, 0]
        for k in range(w0):
            cur[k] = -1
        off = 0
        if has_perm:
            for s in range(n):
                d = dests[c, s]
                if d >= 0:
                    cur[input_perm[s]] = d
                    off += 1
        else:
            for s in range(n):
                d = dests[c, s]
                if d >= 0:
                    cur[s] = d
                    off += 1
        offered[c] = off
        deliv = 0
        for i in range(nstages):
            width = meta[i, 0]
            fib = meta[i, 1]
            shift = meta[i, 2]
            rmask = meta[i, 3]
            cap = meta[i, 4]
            bw = meta[i, 5]
            loff = meta[i, 6]
            foff = meta[i, 7]
            last = i == nstages - 1
            if not last:
                nw = meta[i + 1, 0]
                for k in range(nw):
                    nxt[k] = -1
            nswitch = width >> fib
            fan_in = 1 << fib
            blocked_here = 0
            for sw in range(nswitch):
                for r in range(rmask + 1):
                    cnt[r] = 0
                base = sw << fib
                swbase = sw * bw
                for k in range(fan_in):
                    d = cur[base + k]
                    if d < 0:
                        continue
                    digit = (d >> shift) & rmask
                    r = cnt[digit]
                    cnt[digit] = r + 1
                    if r >= cap:
                        blocked_here += 1
                        continue
                    y = swbase + digit * cap + r
                    if foff >= 0 and falive[foff + y] == 0:
                        blocked_here += 1
                        continue
                    if last:
                        deliv += 1
                    elif loff >= 0:
                        nxt[links[loff + y]] = d
                    else:
                        nxt[y] = d
            blocked[c, i] = blocked_here
            if not last:
                cur, nxt = nxt, cur
        delivered[c] = deliv


_numba_fn = None


def _numba_loop():
    """The numba-compiled loop (compiled once per process, disk-cached)."""
    global _numba_fn
    if _numba_fn is None:
        import numba

        _numba_fn = numba.njit(parallel=True, cache=True)(_counts_loop)
    return _numba_fn


# ----------------------------------------------------------------------
# The C tier (plan-specialized, runtime-compiled, ctypes-loaded)
# ----------------------------------------------------------------------
# The same loop, but *specialized to the plan*: every per-stage scalar
# (width, fan-in, digit shift, radix mask, capacity, table offsets) is a
# compile-time constant, the stage loop is fully unrolled into one block
# per stage, and each block picks the cheapest rank engine its shape
# allows.  Only the table *data* stays runtime — two plans with the same
# stage shapes share one shared object (the cache key is the generated
# source), while their link tables and fault masks ride in as pointers.
#
# Why specialize?  The hot path is ~10 instructions per wire; a generic
# loop spends a comparable budget re-loading stage metadata, testing
# loop-invariant flags, and doing variable shifts/multiplies.  Baked
# constants let the compiler unroll the fan-in loop, strength-reduce the
# bucket math, and drop every dead feature test.
#
# The loop body is branchless in the per-wire path: on a loaded network a
# quarter of the requests lose their bucket, so data-dependent branches
# mispredict constantly.  Losers (and dead wires) are steered to a trash
# slot with mask arithmetic -- ``-ok`` is 0 or all-ones -- spelled as
# AND/ADD rather than ternaries (gcc lowers the equivalent ternaries back
# into branches).  In-bucket occupancy uses, per stage shape:
#
# * a claim *bitmask* when ``capacity == 1`` (one bit per bucket),
# * packed 8-bit lanes of one register when ``radix <= 8`` (the scalar
#   twin of the NumPy engines' packed-lane rank),
# * an indexed counter array otherwise.
#
# Exit columns that are pure delivery (fan-in 1, radix 1, no faults)
# collapse to a vectorizable liveness popcount.


def _spec_stage_block(
    i, row, nstages, widths, trash, ctype
) -> str:
    """One fully-unrolled stage of the specialized kernel."""
    width, fib, shift, rmask, cap, bw, loff, foff = (int(v) for v in row)
    fan_in = 1 << fib
    nswitch = width >> fib
    last = i == nstages - 1
    faulted = foff >= 0
    if last and fan_in == 1 and rmask == 0 and not faulted:
        return f"""
        /* stage {i}: pure exit column -- every live wire delivers */
        for (int64_t s = 0; s < {width}; s++) deliv += (cur[s] >= 0);
        blocked[c * {nstages} + {i}] = 0;"""
    if cap == 1 and rmask <= 63:
        counter_init = "uint64_t taken = 0;"
        rank_ok = (
            "int64_t ok = live & (int64_t)(~(taken >> digit) & 1u);\n"
            "                    taken |= (uint64_t)live << digit;\n"
            "                    int64_t y = swbase + digit;"
        )
    elif rmask <= 7 and fan_in <= 127:
        counter_init = "uint64_t pack = 0;"
        rank_ok = (
            "int64_t lane = digit << 3;\n"
            "                    int64_t r = (int64_t)((pack >> lane) & 0xff);\n"
            "                    pack += ((uint64_t)live << lane);\n"
            f"                    int64_t ok = live & (int64_t)(r < {cap});\n"
            f"                    int64_t y = swbase + digit * {cap} + (r & -ok);"
        )
    else:
        counter_init = f"for (int64_t r0 = 0; r0 <= {rmask}; r0++) cnt[r0] = 0;"
        rank_ok = (
            "int64_t r = (int64_t)cnt[digit];\n"
            "                    cnt[digit] = (int32_t)(r + live);\n"
            f"                    int64_t ok = live & (int64_t)(r < {cap});\n"
            f"                    int64_t y = swbase + digit * {cap} + (r & -ok);"
        )
    if faulted:
        fault = (
            "ok &= (int64_t)fal[y];\n"
            "                    int64_t msk = -ok;"
        )
    else:
        fault = "int64_t msk = -ok;"
    if last:
        consume = "deliv += ok;"
    else:
        consume = (
            "int64_t nw_ = (int64_t)ltab[y];\n"
            f"                    nxt[{trash} + ((nw_ - {trash}) & msk)] = d;"
        )
    decls = []
    if not last:
        decls.append(
            f"memset(nxt, 0xff, {widths[i + 1]} * sizeof({ctype}));"
        )
        decls.append(f"const {ctype} *ltab = links + {loff};")
    if faulted:
        decls.append(f"const uint8_t *fal = falive + {foff};")
    decl_text = "\n            ".join(decls)
    swap = "" if last else f"{ctype} *tmp_ = cur; cur = nxt; nxt = tmp_;"
    return f"""
        /* stage {i}: {nswitch} x {fan_in}-wide switches, radix {rmask + 1}, capacity {cap} */
        {{
            {decl_text}
            int64_t blocked_here = 0;
            for (int64_t sw = 0; sw < {nswitch}; sw++) {{
                {counter_init}
                const {ctype} *in = cur + (sw << {fib});
                int64_t swbase = sw * {bw};
                for (int k = 0; k < {fan_in}; k++) {{
                    {ctype} d = in[k];
                    int64_t live = (d >= 0);
                    int64_t digit = ((int64_t)d >> {shift}) & {rmask};
                    {rank_ok}
                    {fault}
                    blocked_here += live ^ ok;
                    {consume}
                }}
            }}
            blocked[c * {nstages} + {i}] = blocked_here;
            {swap}
        }}"""


def _stage_uses_cnt(row) -> bool:
    rmask, cap = int(row[3]), int(row[4])
    fan_in = 1 << int(row[1])
    return not (cap == 1 and rmask <= 63) and not (rmask <= 7 and fan_in <= 127)


def _spec_source(tables, ctype) -> str:
    """The specialized C source for one plan shape x wire dtype."""
    meta = tables.meta
    nstages = meta.shape[0]
    widths = [int(meta[i, 0]) for i in range(nstages)]
    stride = tables.maxw + 1
    trash = tables.maxw
    has_perm = tables.input_perm.size != 0
    uses_cnt = any(_stage_uses_cnt(meta[i]) for i in range(nstages))
    stages = "\n".join(
        _spec_stage_block(i, meta[i], nstages, widths, trash, ctype)
        for i in range(nstages)
    )
    if has_perm:
        fill = f"""memset(cur, 0xff, {widths[0]} * sizeof({ctype}));
        int64_t off = 0;
        for (int64_t s = 0; s < n; s++) {{
            int64_t d = drow[s];
            int64_t idx = d >= 0 ? input_perm[s] : {trash};
            cur[idx] = ({ctype})d;
            off += d >= 0;
        }}"""
    else:
        fill = f"""memset(cur, 0xff, {widths[0]} * sizeof({ctype}));
        int64_t off = 0;
        for (int64_t s = 0; s < n; s++) {{
            int64_t d = drow[s];
            cur[s] = ({ctype})d;
            off += d >= 0;
        }}"""
    cnt_decl = (
        f"int32_t *cnt = counts + c * {tables.radix_max};"
        if uses_cnt
        else "(void)counts;"
    )
    return f"""#include <stdint.h>
#include <string.h>

/* Plan-specialized counts kernel: {nstages} stages, wire type {ctype}.
 * Generated by repro.sim.native; the argument list matches the generic
 * kernel ABI so the caller is shape-agnostic. */
void repro_counts_spec(
    const int64_t *restrict dests, int64_t batch, int64_t n,
    const int64_t *restrict meta, int64_t nstages,
    const {ctype} *restrict links, const uint8_t *restrict falive,
    const int64_t *restrict input_perm, int64_t has_perm,
    {ctype} *restrict frontier, int64_t maxw,
    int32_t *restrict counts, int64_t radix_max,
    int64_t *restrict offered, int64_t *restrict delivered,
    int64_t *restrict blocked)
{{
    (void)meta; (void)nstages; (void)has_perm; (void)maxw; (void)radix_max;
    (void)input_perm; (void)links; (void)falive;
#pragma omp parallel for schedule(static)
    for (int64_t c = 0; c < batch; c++) {{
        {ctype} *cur = frontier + c * 2 * {stride};
        {ctype} *nxt = cur + {stride};
        (void)nxt;
        {cnt_decl}
        const int64_t *drow = dests + c * n;
        {fill}
        offered[c] = off;
        int64_t deliv = 0;
{stages}
        delivered[c] = deliv;
    }}
}}
"""


_ARGTYPES = [
    ctypes.c_void_p, ctypes.c_longlong, ctypes.c_longlong,   # dests, batch, n
    ctypes.c_void_p, ctypes.c_longlong,                      # meta, nstages
    ctypes.c_void_p, ctypes.c_void_p,                        # links, falive
    ctypes.c_void_p, ctypes.c_longlong,                      # input_perm, has_perm
    ctypes.c_void_p, ctypes.c_longlong,                      # frontier, maxw
    ctypes.c_void_p, ctypes.c_longlong,                      # counts, radix_max
    ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,       # offered, delivered, blocked
]

_CTYPE = {np.dtype(np.int16).char: "int16_t",
          np.dtype(np.int32).char: "int32_t",
          np.dtype(np.int64).char: "int64_t"}


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    home = Path.home()
    if os.access(home, os.W_OK):
        return home / ".cache" / "repro-native"
    return Path(tempfile.gettempdir()) / f"repro-native-{os.getuid()}"


def _compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found:
            return found
    return None


def _build_shared_object(source: str, stem: str) -> Path:
    """Compile ``source`` (or find it cached on disk); raises on failure.

    The cache is keyed by source hash, so forked sweep workers and later
    processes load the same build instead of recompiling.
    """
    compiler = _compiler()
    if compiler is None:
        raise ConfigurationError("no C compiler (cc/gcc/clang) on PATH")
    digest = hashlib.sha256(source.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"{stem}_{digest}.so"
    if so_path.exists():
        return so_path
    cache.mkdir(parents=True, exist_ok=True)
    c_path = cache / f"{stem}_{digest}.c"
    c_path.write_text(source)
    tmp = cache / f".{so_path.name}.{os.getpid()}.tmp"
    errors = []
    # Prefer OpenMP + host tuning; degrade flag by flag so any working
    # toolchain produces a (possibly serial) kernel.
    for extra in (["-march=native", "-fopenmp"], ["-fopenmp"], []):
        cmd = [compiler, "-O3", "-fPIC", "-shared", *extra,
               str(c_path), "-o", str(tmp)]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode == 0:
            os.replace(tmp, so_path)
            return so_path
        errors.append(proc.stderr.strip())
    raise ConfigurationError(
        f"C kernel compilation failed with {compiler}: {errors[-1]!r}"
    )


_spec_fns: dict = {}


def _spec_kernel(tables, wire_dtype):
    """The plan-specialized compiled kernel entry point (ctypes function)."""
    source = _spec_source(tables, _CTYPE[np.dtype(wire_dtype).char])
    digest = hashlib.sha256(source.encode()).hexdigest()[:16]
    fn = _spec_fns.get(digest)
    if fn is None:
        lib = ctypes.CDLL(str(_build_shared_object(source, "repro_spec")))
        fn = lib.repro_counts_spec
        fn.restype = None
        fn.argtypes = _ARGTYPES
        _spec_fns[digest] = fn
    return fn


_C_PROBE = "long repro_probe(void) { return 42; }\n"

_cc_error: Optional[str] = None
_cc_probed = False


def _probe_cc() -> Optional[str]:
    """Compile-and-call a trivial kernel once; ``None`` = toolchain works."""
    global _cc_error, _cc_probed
    if not _cc_probed:
        _cc_probed = True
        try:
            lib = ctypes.CDLL(str(_build_shared_object(_C_PROBE, "repro_probe")))
            if int(lib.repro_probe()) != 42:
                raise ConfigurationError("probe kernel returned garbage")
            _cc_error = None
        except Exception as exc:  # noqa: BLE001 - any failure = tier unavailable
            _cc_error = f"native cc tier unavailable: {exc}"
    return _cc_error


# ----------------------------------------------------------------------
# Tier discovery
# ----------------------------------------------------------------------

_numba_ok: Optional[bool] = None


def numba_available() -> bool:
    """Whether the numba JIT tier can be used (numba importable)."""
    global _numba_ok
    if _numba_ok is None:
        try:
            import numba  # noqa: F401

            _numba_ok = True
        except ImportError:
            _numba_ok = False
    return _numba_ok


def cc_available() -> bool:
    """Whether the compiled-C tier is usable (probe-compiles on first call)."""
    return _probe_cc() is None


def available_tiers() -> tuple[str, ...]:
    """Accelerated tiers usable on this host, best first."""
    tiers = []
    if numba_available():
        tiers.append("numba")
    if cc_available():
        tiers.append("cc")
    return tuple(tiers)


def default_tier() -> Optional[str]:
    """The tier the native backend runs on here, or ``None`` (NumPy shim).

    ``REPRO_NATIVE_TIER`` overrides the choice (``numba``, ``cc``,
    ``python``, or ``numpy`` to force the shim); an unavailable forced
    tier falls through to automatic selection.
    """
    forced = os.environ.get("REPRO_NATIVE_TIER", "").strip().lower()
    if forced == "numpy":
        return None
    if forced == "python":
        return "python"
    if forced == "numba" and numba_available():
        return "numba"
    if forced == "cc" and cc_available():
        return "cc"
    for tier in available_tiers():
        return tier
    return None


def unavailable_reason() -> Optional[str]:
    """Why ``backend="native"`` cannot run here, or ``None`` if it can."""
    if available_tiers():
        return None
    return (
        "the native backend needs numba (pip install 'repro[native]') or a "
        "C compiler (cc/gcc/clang) on PATH; neither is available"
    )


# ----------------------------------------------------------------------
# Plan lowering
# ----------------------------------------------------------------------

_META_WIDTH = 8


class _PlanTables:
    """The flat-array view of one plan the fused loops consume."""

    __slots__ = ("meta", "links", "falive", "input_perm", "maxw", "radix_max")

    def __init__(self, meta, links, falive, input_perm, maxw, radix_max):
        self.meta = meta
        self.links = links
        self.falive = falive
        self.input_perm = input_perm
        self.maxw = maxw
        self.radix_max = radix_max


def _lower(plan) -> _PlanTables:
    """Pack a plan's tables into the loop layout (meta/links/falive)."""
    g = plan.graph
    nstages = g.num_stages
    wire = plan.wire_dtype
    meta = np.zeros((nstages, _META_WIDTH), dtype=np.int64)
    link_parts, fal_parts = [], []
    link_off = fal_off = 0
    for i, stage in enumerate(g.stages):
        meta[i, 0] = plan.stage_widths[i]
        meta[i, 1] = int(np.log2(stage.fan_in))
        meta[i, 2] = stage.shift
        meta[i, 3] = stage.radix - 1
        meta[i, 4] = stage.capacity
        meta[i, 5] = stage.bucket_wires
        table = None
        if i < nstages - 1:
            table = plan.fault_link_table(i, wire)
            if table is None:
                table = plan.perm_table(i, wire)
            if table is None:
                # Identity boundary: materialize it so the C loop's link
                # gather is unconditional (bucket-wire space == the next
                # column's wire space).
                table = np.arange(plan.stage_widths[i + 1], dtype=wire)
        if table is not None:
            meta[i, 6] = link_off
            link_parts.append(np.ascontiguousarray(table, dtype=wire))
            link_off += table.size
        else:
            meta[i, 6] = -1
        fal = plan.fault_alive(i)
        if fal is not None:
            meta[i, 7] = fal_off
            fal_parts.append(np.ascontiguousarray(fal, dtype=np.uint8))
            fal_off += fal.size
        else:
            meta[i, 7] = -1
    links = (
        np.concatenate(link_parts)
        if link_parts
        else np.zeros(1, dtype=wire)
    )
    falive = (
        np.concatenate(fal_parts)
        if fal_parts
        else np.zeros(1, dtype=np.uint8)
    )
    perm = plan.input_perm_table(np.int64)
    input_perm = (
        np.ascontiguousarray(perm, dtype=np.int64)
        if perm is not None
        else np.zeros(0, dtype=np.int64)
    )
    return _PlanTables(
        meta=meta,
        links=links,
        falive=falive,
        input_perm=input_perm,
        maxw=int(max(plan.stage_widths)),
        radix_max=int(max(stage.radix for stage in g.stages)),
    )


class NativeKernel:
    """One plan's fused counts kernel on one execution tier."""

    __slots__ = ("tables", "tier", "wire", "_fn")

    def __init__(self, plan, tier: str):
        if tier not in ("numba", "cc", "python"):
            raise ConfigurationError(f"unknown native tier {tier!r}")
        self.tables = _lower(plan)
        self.tier = tier
        self.wire = plan.wire_dtype
        if tier == "cc":
            self._fn = _spec_kernel(self.tables, self.wire)
        elif tier == "numba":
            self._fn = _numba_loop()
        else:
            self._fn = _counts_loop

    def counts(self, dests: np.ndarray, ws) -> BatchAcceptanceCounts:
        """Route a validated ``(batch, n)`` demand matrix; counts only.

        ``dests`` must be contiguous ``int64`` (the routers validate).
        The input permutation is applied inside the loop, so callers pass
        the raw matrix.  Frontier and counter scratch comes from ``ws``;
        only the O(batch) result arrays are allocated per call.
        """
        t = self.tables
        batch, _n = dests.shape
        nstages = t.meta.shape[0]
        # One extra slot per frontier half: index ``maxw`` is the trash
        # slot the branchless C loop parks losers on (the python/numba
        # loop never touches it).
        frontier = ws.array(
            "native_frontier", batch * 2 * (t.maxw + 1), self.wire
        ).reshape(batch, 2, t.maxw + 1)
        cnt = ws.array(
            "native_counts", batch * t.radix_max, np.int32
        ).reshape(batch, t.radix_max)
        offered = np.empty(batch, dtype=np.int64)
        delivered = np.empty(batch, dtype=np.int64)
        blocked = np.empty((batch, nstages), dtype=np.int64)
        if self.tier == "cc":
            self._fn(
                dests.ctypes.data, batch, dests.shape[1],
                t.meta.ctypes.data, nstages,
                t.links.ctypes.data, t.falive.ctypes.data,
                t.input_perm.ctypes.data, t.input_perm.size,
                frontier.ctypes.data, t.maxw,
                cnt.ctypes.data, t.radix_max,
                offered.ctypes.data, delivered.ctypes.data,
                blocked.ctypes.data,
            )
        else:
            self._fn(
                dests, t.meta, t.links, t.falive, t.input_perm,
                frontier, cnt, offered, delivered, blocked,
            )
        per_stage = blocked.sum(axis=0)
        blocked_by_stage = {
            i + 1: int(v) for i, v in enumerate(per_stage.tolist()) if v
        }
        return BatchAcceptanceCounts(
            offered_per_cycle=offered,
            delivered_per_cycle=delivered,
            blocked_by_stage=blocked_by_stage,
        )


def kernel_for(plan, tier: str) -> NativeKernel:
    """The plan's native kernel on ``tier``, lowered once and cached.

    The kernel rides the plan's lazily-built table dict, so it shares the
    plan's LRU lifetime: a warm plan-cache hit also hits the lowered
    kernel (warm == cold bit-identity holds trivially), and forked
    workers inherit it.  Concurrent first builds are a benign idempotent
    race, exactly like the plan's other lazy tables.
    """
    key = ("native_kernel", tier)
    kernel = plan._tables.get(key)
    if kernel is None:
        kernel = NativeKernel(plan, tier)
        plan._tables[key] = kernel
    return kernel


# ----------------------------------------------------------------------
# The router
# ----------------------------------------------------------------------


class NativeStageRouter(CompiledStageRouter):
    """:class:`CompiledStageRouter` with the counts hot path JIT-compiled.

    Only the label-priority counts-only kernel — the Monte-Carlo hot
    path — is lowered; everything else (per-message outcomes, random
    priority's sort-based resolution, buffered stepping, fault
    hot-swapping) is inherited unchanged, so the native backend has the
    full capability surface of ``batched`` with identical semantics.

    ``tier="auto"`` (default) picks the best accelerated tier and
    degrades to the inherited NumPy kernels when none is available (the
    import-safe shim).  ``device="gpu"`` routes counts through the
    Array-API path (:func:`device_counts`) instead — CuPy when
    importable, NumPy otherwise.
    """

    def __init__(
        self,
        graph,
        *,
        priority: str = "label",
        plan="auto",
        faults=(),
        buffer_depth: Optional[int] = None,
        tier: str = "auto",
        device: str = "cpu",
    ):
        super().__init__(
            graph,
            priority=priority,
            plan=plan,
            faults=faults,
            buffer_depth=buffer_depth,
        )
        if device not in ("cpu", "gpu"):
            raise ConfigurationError(f"unknown native device {device!r}")
        if device == "gpu" and self.faults:
            raise ConfigurationError(
                "the native:gpu counts path does not lower fault masks yet; "
                "use the cpu native backend for faulted runs"
            )
        self.device = device
        self.tier = default_tier() if tier == "auto" else tier

    def route_batch_counts(
        self, dests: np.ndarray, rng=None, *, workspace=None
    ) -> BatchAcceptanceCounts:
        if self.priority != "label":
            # Random priority is resolved by sort either way; the
            # inherited path is already the right engine for it.
            return super().route_batch_counts(dests, rng, workspace=workspace)
        g = self.graph
        if self.device == "gpu":
            dests = _check_demand_shape(dests, g.n_inputs)
            _check_destination_bounds(dests.reshape(-1), g.n_outputs)
            return device_counts(self._plan, dests, gpu_namespace())
        if self.tier is None:  # the pure-NumPy shim
            return super().route_batch_counts(dests, rng, workspace=workspace)
        dests = _check_demand_shape(dests, g.n_inputs)
        _check_destination_bounds(dests.reshape(-1), g.n_outputs)
        ws = workspace if workspace is not None else self._plan.workspace()
        return kernel_for(self._plan, self.tier).counts(dests, ws)

    def __repr__(self) -> str:
        faulted = f", faults={len(self.faults)}" if self.faults else ""
        where = self.device if self.device != "cpu" else (self.tier or "numpy")
        return (
            f"NativeStageRouter({self.graph.label}, "
            f"priority={self.priority!r}, tier={where!r}{faulted})"
        )


# ----------------------------------------------------------------------
# Array-API (GPU) counts path
# ----------------------------------------------------------------------


def gpu_namespace():
    """The array namespace for ``native:gpu``: CuPy if importable, else NumPy."""
    try:
        import cupy

        return cupy
    except ImportError:
        return np


def device_counts(plan, dests: np.ndarray, xp) -> BatchAcceptanceCounts:
    """Counts-only routing written against the NumPy/CuPy array API.

    The device formulation of the batched counts kernel: per stage a
    one-hot cumulative sum ranks every request within its ``(switch,
    bucket)`` group, winners scatter through the link table with losers
    parked on a trash slot.  Decisions are identical to the CPU kernels
    (pinned with ``xp = numpy``); on CuPy the only nondeterminism is
    which loser's value lands in the never-read trash slot.  Fault masks
    are not lowered here yet (the registry keeps faulted specs off this
    path).
    """
    g = plan.graph
    batch, n = dests.shape
    dev = xp.asarray(dests)
    perm = plan.input_perm_table(np.int64)
    if perm is not None:
        shuffled = xp.full((batch, n), -1, dtype=xp.int64)
        shuffled[:, xp.asarray(perm)] = dev
        dest = shuffled
    else:
        dest = xp.array(dev)  # copy: the frontier is overwritten per stage
    offered = (dest >= 0).sum(axis=1)
    delivered = xp.zeros(batch, dtype=xp.int64)
    blocked: dict[int, int] = {}
    alive = int(offered.sum())
    last = g.num_stages - 1

    for i, stage in enumerate(g.stages):
        if alive == 0:
            break
        width = plan.stage_widths[i]
        nswitch = width // stage.fan_in
        live = dest >= 0
        digit = (dest >> stage.shift) & (stage.radix - 1)
        channel = xp.where(live, digit, stage.radix)
        ch3 = channel.reshape(batch, nswitch, stage.fan_in)
        onehot = ch3[..., None] == xp.arange(stage.radix, dtype=xp.int64)
        cum = xp.cumsum(onehot, axis=2)
        lookup = xp.minimum(ch3, stage.radix - 1)[..., None]
        rank_incl = xp.take_along_axis(cum, lookup, axis=3)[..., 0]
        rank_incl = rank_incl.reshape(batch, width)
        accepted = live & (rank_incl <= stage.capacity)
        surviving = int(accepted.sum())
        if surviving != alive:
            blocked[i + 1] = alive - surviving
        alive = surviving
        if i == last:
            delivered = accepted.sum(axis=1)
            break
        if alive == 0:
            break
        swbase = xp.asarray(plan.stage_base(i, np.int64))
        y = swbase[None, :] + digit * stage.capacity + rank_incl
        table = plan.perm_table(i, np.int64)
        if table is not None:
            next_w = xp.take(
                xp.asarray(table), xp.clip(y, 0, table.size - 1)
            )
        else:
            next_w = y
        next_width = plan.stage_widths[i + 1]
        rows = (xp.arange(batch, dtype=xp.int64) * next_width + 1)[:, None]
        target = xp.where(accepted, next_w + rows, 0)
        next_dest = xp.full(batch * next_width + 1, -1, dtype=xp.int64)
        next_dest[target.reshape(-1)] = dest.reshape(-1)
        dest = next_dest[1:].reshape(batch, next_width)

    to_host = getattr(xp, "asnumpy", np.asarray)
    return BatchAcceptanceCounts(
        offered_per_cycle=to_host(offered).astype(np.int64),
        delivered_per_cycle=to_host(delivered).astype(np.int64),
        blocked_by_stage=dict(sorted(blocked.items())),
    )
