"""Closed-loop sources: retry-until-delivered with bounded backoff.

The open-loop Monte-Carlo harness follows the paper's assumption 3 —
blocked requests are simply ignored and every cycle draws fresh traffic.
Real processors do not shrug: they hold the request and resubmit.  This
module implements that feedback loop as a *source discipline* layered
over any per-cycle router:

* :class:`RetryPolicy` — bounded attempts with optional exponential
  backoff, parseable from the CLI's ``ATTEMPTS[:BACKOFF[:FACTOR]]``
  grammar.
* :func:`drive_closed_loop` — the sequential cycle driver.  Each source
  holds at most one in-flight message; a blocked message is resubmitted
  (after its backoff delay) until delivered or its attempt bound is
  exhausted, and only *free* sources adopt fresh demands from the
  traffic model.  State couples consecutive cycles, so the driver is
  inherently per-cycle — there is no batched variant — and its per-cycle
  acceptance series is autocorrelated (see :func:`repro.sim.stats.batch_means`
  for why that matters when intervals are read strictly).
* :class:`ClosedLoopMeasurement` — the acceptance measurement extended
  with per-message attempt/latency intervals (via
  :class:`~repro.sim.stats.RetryStats`) and the abandoned-message count.

Wired through ``RunConfig.retry`` and
:func:`repro.sim.montecarlo.measure_acceptance`; the
``experiments/degradation`` sweep crosses retry policies with wire
failure rates on the capacity ladder.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.sim.montecarlo import AcceptanceMeasurement
from repro.sim.stats import Interval, LatencyStats, RatioStats, RetryStats

if TYPE_CHECKING:
    from repro.sim.montecarlo import CycleRouter
    from repro.workloads.models import TrafficGenerator

__all__ = ["RetryPolicy", "ClosedLoopMeasurement", "drive_closed_loop"]

_IDLE = -1


@dataclass(frozen=True)
class RetryPolicy:
    """Retry-until-delivered with bounded attempts and exponential backoff.

    A blocked message is resubmitted until delivered, up to
    ``max_attempts`` total tries; after its ``k``-th failure it waits
    ``ceil(backoff * factor ** (k - 1))`` idle cycles before becoming
    eligible again (``backoff = 0`` retries on the very next cycle).

    >>> RetryPolicy.parse("8:1:2").delay_after(3)
    4
    >>> RetryPolicy.parse("4").label
    '4'
    """

    max_attempts: int = 8
    backoff: float = 0.0
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"retry needs at least one attempt, got {self.max_attempts}"
            )
        if self.backoff < 0:
            raise ConfigurationError(f"backoff must be >= 0, got {self.backoff}")
        if self.factor < 1:
            raise ConfigurationError(f"backoff factor must be >= 1, got {self.factor}")

    def delay_after(self, failures: int) -> int:
        """Idle cycles after the ``failures``-th consecutive failure."""
        if self.backoff == 0:
            return 0
        return ceil(self.backoff * self.factor ** (failures - 1))

    @classmethod
    def parse(cls, text: str) -> "RetryPolicy":
        """Parse the CLI grammar ``ATTEMPTS[:BACKOFF[:FACTOR]]``.

        >>> RetryPolicy.parse("8:0.5")
        RetryPolicy(max_attempts=8, backoff=0.5, factor=2.0)
        """
        parts = text.split(":")
        if not 1 <= len(parts) <= 3:
            raise ConfigurationError(
                f"cannot parse retry policy {text!r}: "
                f"expected ATTEMPTS[:BACKOFF[:FACTOR]]"
            )
        try:
            max_attempts = int(parts[0])
            backoff = float(parts[1]) if len(parts) > 1 else 0.0
            factor = float(parts[2]) if len(parts) > 2 else 2.0
        except ValueError:
            raise ConfigurationError(
                f"cannot parse retry policy {text!r}: "
                f"expected ATTEMPTS[:BACKOFF[:FACTOR]]"
            ) from None
        return cls(max_attempts, backoff, factor)

    @property
    def label(self) -> str:
        """Round-trips through :meth:`parse` (modulo float formatting)."""
        if self.backoff == 0:
            return f"{self.max_attempts}"
        return f"{self.max_attempts}:{self.backoff:g}:{self.factor:g}"


@dataclass
class ClosedLoopMeasurement(AcceptanceMeasurement):
    """An acceptance measurement with closed-loop per-message statistics.

    ``acceptance`` keeps its open-loop meaning — delivered over offered,
    per routed cycle — but under retry the offered stream itself now
    depends on past blocking.  The closed-loop view adds *per-message*
    outcomes: ``attempts`` and ``latency`` are delta-method intervals
    over delivered messages, ``delivered_messages`` counts them (each
    message counts once however many tries it took), and ``abandoned``
    counts messages dropped at the attempt bound.  ``latency_histogram``
    is the full :class:`~repro.sim.stats.LatencyStats` behind the
    ``latency`` interval — exact integer bins, so p50/p95/p99 tails and
    shard merging come for free.
    """

    attempts: Interval = None  # type: ignore[assignment]
    latency: Interval = None  # type: ignore[assignment]
    delivered_messages: int = 0
    abandoned: int = 0
    policy: Optional[RetryPolicy] = None
    latency_histogram: Optional[LatencyStats] = None


def drive_closed_loop(
    router: "CycleRouter",
    traffic: "TrafficGenerator",
    policy: RetryPolicy,
    *,
    cycles: int,
    rng: np.random.Generator,
    confidence: float = 0.95,
    rel_err: Optional[float] = None,
    min_cycles: int = 32,
) -> ClosedLoopMeasurement:
    """Route ``cycles`` with retrying sources; report per-message statistics.

    Each source holds at most one in-flight message.  Per cycle, free
    sources adopt fresh demands from ``traffic`` (busy sources discard
    their draw, keeping the traffic stream's consumption uniform), every
    eligible holder offers its destination, and outcomes update the
    per-source state: delivered frees the source and records its attempt
    count and latency (``1`` = first-try delivery); blocked either
    abandons at the attempt bound or schedules the next try after the
    policy's backoff delay.

    ``rel_err`` enables the same adaptive stopping rule as the open-loop
    harness, checked on the per-cycle acceptance ratio at cycle
    boundaries after ``min_cycles``.
    """
    n = router.n_inputs
    pending = np.full(n, _IDLE, dtype=np.int64)
    attempts = np.zeros(n, dtype=np.int64)
    first_cycle = np.zeros(n, dtype=np.int64)
    next_eligible = np.zeros(n, dtype=np.int64)

    ratio = RatioStats()
    retry_stats = RetryStats()
    blocked_hist: dict[int, int] = {}
    offered_total = 0
    delivered_total = 0
    floor = max(2, min(min_cycles, cycles))
    stopped = False

    for t in range(cycles):
        free = pending == _IDLE
        if free.any():
            fresh = np.asarray(traffic.generate(rng))
            adopt = free & (fresh != _IDLE)
            if adopt.any():
                pending[adopt] = fresh[adopt]
                attempts[adopt] = 0
                first_cycle[adopt] = t
                next_eligible[adopt] = t
        eligible = (pending != _IDLE) & (next_eligible <= t)
        dests = np.where(eligible, pending, _IDLE)
        result = router.route(dests, rng)
        delivered_mask = eligible & _delivered_sources(result, n)
        blocked_mask = eligible & ~delivered_mask
        attempts[eligible] += 1

        num_offered = int(eligible.sum())
        num_delivered = int(delivered_mask.sum())
        ratio.push(num_delivered, num_offered)
        offered_total += num_offered
        delivered_total += num_delivered
        histogram = getattr(result, "blocked_stage_histogram", None)
        if histogram is not None:
            for stage, count in histogram().items():
                blocked_hist[stage] = blocked_hist.get(stage, 0) + count

        if num_delivered:
            retry_stats.record_deliveries(
                attempts[delivered_mask], t - first_cycle[delivered_mask] + 1
            )
            pending[delivered_mask] = _IDLE
        if blocked_mask.any():
            exhausted = blocked_mask & (attempts >= policy.max_attempts)
            dropped = int(exhausted.sum())
            if dropped:
                retry_stats.record_abandoned(dropped)
                pending[exhausted] = _IDLE
            waiting = np.flatnonzero(blocked_mask & ~exhausted)
            if waiting.size:
                if policy.backoff == 0:
                    next_eligible[waiting] = t + 1
                else:
                    delays = np.ceil(
                        policy.backoff * policy.factor ** (attempts[waiting] - 1.0)
                    ).astype(np.int64)
                    next_eligible[waiting] = t + 1 + delays

        if rel_err is not None and ratio.n >= floor:
            interval = ratio.confidence_interval(confidence)
            point = abs(interval.point)
            if interval.halfwidth <= rel_err * (point if point > 0 else 1.0):
                stopped = True
                break

    return ClosedLoopMeasurement(
        cycles=ratio.n,
        offered=offered_total,
        delivered=delivered_total,
        acceptance=ratio.confidence_interval(confidence),
        blocked_by_stage=dict(sorted(blocked_hist.items())),
        budget=cycles if rel_err is not None else None,
        target_rel_err=rel_err,
        converged=stopped if rel_err is not None else None,
        attempts=retry_stats.confidence_interval(confidence),
        latency=retry_stats.latency.confidence_interval(confidence),
        delivered_messages=retry_stats.delivered,
        abandoned=retry_stats.abandoned,
        policy=policy,
        latency_histogram=retry_stats.latency,
    )


def _delivered_sources(result: object, n: int) -> np.ndarray:
    """Per-source delivery mask from either router-result contract."""
    output = getattr(result, "output", None)
    if output is not None:
        return np.asarray(output) != _IDLE
    mask = np.zeros(n, dtype=bool)  # reference engines: outcome records
    for outcome in result.outcomes:
        if outcome.delivered:
            mask[outcome.message.source] = True
    return mask
