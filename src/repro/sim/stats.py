"""Statistics collection for simulation output analysis.

Small, dependency-light estimators used by the Monte-Carlo harnesses:

* :class:`RunningStats` — Welford's online mean/variance with Student-t
  confidence intervals;
* :class:`RatioStats` — ratio-of-sums estimator (e.g. accepted/offered
  across cycles, which is *not* the mean of per-cycle ratios);
* :func:`batch_means` — batch-means variance reduction for autocorrelated
  cycle series (the MIMD resubmission simulator produces such series:
  a blocked processor's state couples consecutive cycles);
* :func:`proportion_ci` — Wilson score interval for raw proportions.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from collections.abc import Sequence

from scipy import stats as _scipy_stats

__all__ = ["RunningStats", "RatioStats", "batch_means", "proportion_ci", "Interval"]


@dataclass(frozen=True)
class Interval:
    """A symmetric or asymmetric confidence interval ``[low, high]`` around ``point``."""

    point: float
    low: float
    high: float

    @property
    def halfwidth(self) -> float:
        return max(self.point - self.low, self.high - self.point)

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.point:.6g} [{self.low:.6g}, {self.high:.6g}]"


class RunningStats:
    """Welford online accumulator: numerically stable mean and variance.

    >>> acc = RunningStats()
    >>> for v in (1.0, 2.0, 3.0): acc.push(v)
    >>> acc.mean, acc.variance
    (2.0, 1.0)
    """

    __slots__ = ("_n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def push(self, value: float) -> None:
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.push(value)

    @property
    def n(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (``n - 1`` denominator)."""
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        return sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._min

    @property
    def maximum(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._max

    def confidence_interval(self, confidence: float = 0.95) -> Interval:
        """Student-t interval for the mean."""
        if self._n < 2:
            return Interval(self.mean, float("-inf"), float("inf"))
        t = _scipy_stats.t.ppf(0.5 + confidence / 2.0, df=self._n - 1)
        half = t * self.std / sqrt(self._n)
        return Interval(self._mean, self._mean - half, self._mean + half)


class RunningStatsError(ValueError):
    """Raised on queries against an empty accumulator."""


class RatioStats:
    """Ratio-of-sums estimator with a jackknife-free normal approximation.

    Accumulates (numerator, denominator) pairs per cycle — e.g. (accepted,
    offered) — and estimates ``sum(num) / sum(den)`` with a delta-method
    standard error.  This matches the paper's definition of ``PA`` as "the
    ratio of the expected number of requests satisfied per cycle to the
    expected number of requests generated per cycle".
    """

    __slots__ = ("_pairs",)

    def __init__(self) -> None:
        self._pairs: list[tuple[float, float]] = []

    def push(self, numerator: float, denominator: float) -> None:
        self._pairs.append((float(numerator), float(denominator)))

    @property
    def n(self) -> int:
        return len(self._pairs)

    @property
    def ratio(self) -> float:
        total_num = sum(num for num, _ in self._pairs)
        total_den = sum(den for _, den in self._pairs)
        if total_den == 0:
            return 1.0
        return total_num / total_den

    def confidence_interval(self, confidence: float = 0.95) -> Interval:
        """Delta-method interval on the ratio of means."""
        n = len(self._pairs)
        point = self.ratio
        if n < 2:
            return Interval(point, float("-inf"), float("inf"))
        mean_den = sum(den for _, den in self._pairs) / n
        if mean_den == 0:
            return Interval(point, point, point)
        # Variance of the per-cycle residuals num_i - ratio * den_i.
        residuals = [num - point * den for num, den in self._pairs]
        mean_res = sum(residuals) / n
        var_res = sum((res - mean_res) ** 2 for res in residuals) / (n - 1)
        se = sqrt(var_res / n) / mean_den
        t = _scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1)
        return Interval(point, point - t * se, point + t * se)


def batch_means(series: Sequence[float], n_batches: int = 20) -> RunningStats:
    """Collapse an autocorrelated series into ``n_batches`` batch means.

    Standard output-analysis technique: consecutive cycles of a stateful
    simulation are correlated, so per-cycle t-intervals are too narrow;
    means over long batches are approximately independent.  Leftover
    observations (when the length is not divisible) are dropped from the
    final partial batch.
    """
    if n_batches < 2:
        raise ValueError(f"need at least 2 batches, got {n_batches}")
    batch_size = len(series) // n_batches
    if batch_size < 1:
        raise ValueError(
            f"series of length {len(series)} too short for {n_batches} batches"
        )
    acc = RunningStats()
    for k in range(n_batches):
        chunk = series[k * batch_size : (k + 1) * batch_size]
        acc.push(sum(chunk) / len(chunk))
    return acc


def proportion_ci(successes: int, trials: int, confidence: float = 0.95) -> Interval:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    z = _scipy_stats.norm.ppf(0.5 + confidence / 2.0)
    phat = successes / trials
    denom = 1.0 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    half = (z / denom) * sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
    return Interval(phat, max(0.0, center - half), min(1.0, center + half))
