"""Statistics collection for simulation output analysis.

Small, dependency-light estimators used by the Monte-Carlo harnesses:

* :class:`RunningStats` — Welford's online mean/variance with Student-t
  confidence intervals;
* :class:`RatioStats` — ratio-of-sums estimator (e.g. accepted/offered
  across cycles, which is *not* the mean of per-cycle ratios);
* :func:`batch_means` — batch-means variance reduction for autocorrelated
  cycle series (the MIMD resubmission simulator produces such series:
  a blocked processor's state couples consecutive cycles);
* :func:`proportion_ci` — Wilson score interval for raw proportions.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from collections.abc import Sequence

from scipy import stats as _scipy_stats

__all__ = [
    "RunningStats",
    "RatioStats",
    "RetryStats",
    "batch_means",
    "proportion_ci",
    "Interval",
]


@dataclass(frozen=True)
class Interval:
    """A symmetric or asymmetric confidence interval ``[low, high]`` around ``point``."""

    point: float
    low: float
    high: float

    @property
    def halfwidth(self) -> float:
        return max(self.point - self.low, self.high - self.point)

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.point:.6g} [{self.low:.6g}, {self.high:.6g}]"


class RunningStats:
    """Welford online accumulator: numerically stable mean and variance.

    >>> acc = RunningStats()
    >>> for v in (1.0, 2.0, 3.0): acc.push(v)
    >>> acc.mean, acc.variance
    (2.0, 1.0)
    """

    __slots__ = ("_n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def push(self, value: float) -> None:
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.push(value)

    @property
    def n(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (``n - 1`` denominator)."""
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        return sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._min

    @property
    def maximum(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._max

    def confidence_interval(self, confidence: float = 0.95) -> Interval:
        """Student-t interval for the mean."""
        if self._n < 2:
            return Interval(self.mean, float("-inf"), float("inf"))
        t = _scipy_stats.t.ppf(0.5 + confidence / 2.0, df=self._n - 1)
        half = t * self.std / sqrt(self._n)
        return Interval(self._mean, self._mean - half, self._mean + half)


class RunningStatsError(ValueError):
    """Raised on queries against an empty accumulator."""


class RatioStats:
    """Streaming ratio-of-sums estimator with a delta-method interval.

    Accumulates (numerator, denominator) pairs per cycle — e.g. (accepted,
    offered) — and estimates ``sum(num) / sum(den)`` with a delta-method
    standard error.  This matches the paper's definition of ``PA`` as "the
    ratio of the expected number of requests satisfied per cycle to the
    expected number of requests generated per cycle".

    The accumulator is *streaming*: bivariate Welford co-moments (means,
    second moments, and the numerator/denominator co-moment) replace the
    stored pair list, so memory is O(1) and the confidence interval is
    O(1) to evaluate at any point of the stream — which is what lets the
    adaptive Monte-Carlo harness check its stopping rule every chunk
    without quadratic rescans.  The interval is algebraically identical to
    the historical pair-list implementation: the variance of the residuals
    ``num_i - ratio * den_i`` (whose mean is exactly zero at the ratio of
    sums) expands to ``Var(num) - 2 ratio Cov(num, den) + ratio^2
    Var(den)``.

    >>> acc = RatioStats()
    >>> acc.push(1, 2); acc.push(9, 10)
    >>> round(acc.ratio, 6)
    0.833333
    """

    __slots__ = (
        "_n",
        "_sum_num",
        "_sum_den",
        "_mean_num",
        "_mean_den",
        "_m2_num",
        "_m2_den",
        "_c_nd",
    )

    def __init__(self) -> None:
        self._n = 0
        # Plain sums carry the point estimate: for integer counts they are
        # exact, so the ratio is bit-identical however the stream was
        # chunked.  The Welford moments carry only the interval.
        self._sum_num = 0.0
        self._sum_den = 0.0
        self._mean_num = 0.0
        self._mean_den = 0.0
        self._m2_num = 0.0
        self._m2_den = 0.0
        self._c_nd = 0.0

    def push(self, numerator: float, denominator: float) -> None:
        num, den = float(numerator), float(denominator)
        self._n += 1
        self._sum_num += num
        self._sum_den += den
        d_num = num - self._mean_num
        d_den = den - self._mean_den
        self._mean_num += d_num / self._n
        self._mean_den += d_den / self._n
        self._m2_num += d_num * (num - self._mean_num)
        self._m2_den += d_den * (den - self._mean_den)
        self._c_nd += d_num * (den - self._mean_den)

    def push_many(self, numerators, denominators) -> None:
        """Absorb whole per-cycle count arrays (one chunk) at once.

        Equivalent to pushing pair by pair; implemented as a Chan-style
        parallel merge of the chunk's moments so a chunk costs a few
        vectorized reductions instead of a Python loop.
        """
        import numpy as np

        nums = np.asarray(numerators, dtype=np.float64)
        dens = np.asarray(denominators, dtype=np.float64)
        if nums.shape != dens.shape or nums.ndim != 1:
            raise ValueError("push_many needs two equal-length 1-D arrays")
        m = nums.size
        if m == 0:
            return
        self._sum_num += float(nums.sum())
        self._sum_den += float(dens.sum())
        mean_num = float(nums.mean())
        mean_den = float(dens.mean())
        d_nums = nums - mean_num
        d_dens = dens - mean_den
        m2_num = float(d_nums @ d_nums)
        m2_den = float(d_dens @ d_dens)
        c_nd = float(d_nums @ d_dens)
        if self._n == 0:
            self._n = m
            self._mean_num, self._mean_den = mean_num, mean_den
            self._m2_num, self._m2_den, self._c_nd = m2_num, m2_den, c_nd
            return
        n = self._n
        total = n + m
        delta_num = mean_num - self._mean_num
        delta_den = mean_den - self._mean_den
        scale = n * m / total
        self._m2_num += m2_num + delta_num * delta_num * scale
        self._m2_den += m2_den + delta_den * delta_den * scale
        self._c_nd += c_nd + delta_num * delta_den * scale
        self._mean_num += delta_num * m / total
        self._mean_den += delta_den * m / total
        self._n = total

    @property
    def n(self) -> int:
        return self._n

    @property
    def ratio(self) -> float:
        if self._n == 0 or self._sum_den == 0:
            return 1.0
        return self._sum_num / self._sum_den

    def standard_error(self) -> float:
        """Delta-method standard error of the ratio (0.0 when undefined)."""
        n, point = self._n, self.ratio
        if n < 2 or self._mean_den == 0:
            return 0.0
        var_res = (
            self._m2_num - 2.0 * point * self._c_nd + point * point * self._m2_den
        ) / (n - 1)
        # Co-moment cancellation can leave a tiny negative residue.
        var_res = max(var_res, 0.0)
        return sqrt(var_res / n) / self._mean_den

    def confidence_interval(self, confidence: float = 0.95) -> Interval:
        """Delta-method interval on the ratio of means."""
        n = self._n
        point = self.ratio
        if n < 2:
            return Interval(point, float("-inf"), float("inf"))
        if self._mean_den == 0:
            return Interval(point, point, point)
        se = self.standard_error()
        t = _scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1)
        return Interval(point, point - t * se, point + t * se)


class RetryStats(RatioStats):
    """Per-message closed-loop statistics: attempts and latency per delivery.

    Extends :class:`RatioStats` for the retry-until-delivered sources:
    the inherited ratio machinery estimates *attempts per delivered
    message* (each delivery pushes its attempt count against a unit
    denominator, so ``ratio`` is total attempts / deliveries with the
    delta-method interval), and a nested :class:`RatioStats` does the
    same for delivery latency in cycles (1 = delivered on the first
    try).  ``abandoned`` counts messages that exhausted their attempt
    bound and were dropped.

    >>> acc = RetryStats()
    >>> acc.record_delivery(attempts=3, latency=5)
    >>> acc.record_delivery(attempts=1, latency=1)
    >>> (acc.ratio, acc.latency.ratio, acc.delivered)
    (2.0, 3.0, 2)
    """

    __slots__ = ("latency", "_abandoned")

    def __init__(self) -> None:
        super().__init__()
        self.latency = RatioStats()
        self._abandoned = 0

    def record_delivery(self, attempts: int, latency: int) -> None:
        self.push(attempts, 1)
        self.latency.push(latency, 1)

    def record_deliveries(self, attempts, latencies) -> None:
        """Absorb whole delivered-message arrays (one cycle) at once."""
        import numpy as np

        attempts = np.asarray(attempts, dtype=np.float64)
        latencies = np.asarray(latencies, dtype=np.float64)
        ones = np.ones_like(attempts)
        self.push_many(attempts, ones)
        self.latency.push_many(latencies, ones)

    def record_abandoned(self, count: int = 1) -> None:
        self._abandoned += count

    @property
    def delivered(self) -> int:
        """Messages delivered (observations behind both ratios)."""
        return self.n

    @property
    def abandoned(self) -> int:
        """Messages dropped after exhausting their attempt bound."""
        return self._abandoned


def batch_means(series: Sequence[float], n_batches: int = 20) -> RunningStats:
    """Collapse an autocorrelated series into ``n_batches`` batch means.

    Standard output-analysis technique: consecutive cycles of a stateful
    simulation are correlated, so per-cycle t-intervals are too narrow;
    means over long batches are approximately independent.  Leftover
    observations (when the length is not divisible) are dropped from the
    final partial batch.
    """
    if n_batches < 2:
        raise ValueError(f"need at least 2 batches, got {n_batches}")
    batch_size = len(series) // n_batches
    if batch_size < 1:
        raise ValueError(
            f"series of length {len(series)} too short for {n_batches} batches"
        )
    acc = RunningStats()
    for k in range(n_batches):
        chunk = series[k * batch_size : (k + 1) * batch_size]
        acc.push(sum(chunk) / len(chunk))
    return acc


def proportion_ci(successes: int, trials: int, confidence: float = 0.95) -> Interval:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    z = _scipy_stats.norm.ppf(0.5 + confidence / 2.0)
    phat = successes / trials
    denom = 1.0 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    half = (z / denom) * sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
    return Interval(phat, max(0.0, center - half), min(1.0, center + half))
