"""Statistics collection for simulation output analysis.

Small, dependency-light estimators used by the Monte-Carlo harnesses:

* :class:`RunningStats` — Welford's online mean/variance with Student-t
  confidence intervals;
* :class:`RatioStats` — ratio-of-sums estimator (e.g. accepted/offered
  across cycles, which is *not* the mean of per-cycle ratios);
* :class:`LatencyStats` — a fixed-bin streaming latency histogram on top
  of :class:`RatioStats`: exact mean via the ratio sums, p50/p95/p99 from
  integer-cycle bins, and an exact order-independent :meth:`~LatencyStats.merge`
  for combining :class:`~repro.experiments.parallel.ParallelSweep` /
  ``repro.serve`` shards;
* :func:`batch_means` — batch-means variance reduction for autocorrelated
  cycle series (the MIMD resubmission simulator produces such series:
  a blocked processor's state couples consecutive cycles);
* :func:`proportion_ci` — Wilson score interval for raw proportions.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, sqrt
from collections.abc import Sequence

from scipy import stats as _scipy_stats

__all__ = [
    "RunningStats",
    "RatioStats",
    "RetryStats",
    "LatencyStats",
    "batch_means",
    "proportion_ci",
    "Interval",
]


@dataclass(frozen=True)
class Interval:
    """A symmetric or asymmetric confidence interval ``[low, high]`` around ``point``."""

    point: float
    low: float
    high: float

    @property
    def halfwidth(self) -> float:
        return max(self.point - self.low, self.high - self.point)

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.point:.6g} [{self.low:.6g}, {self.high:.6g}]"


class RunningStats:
    """Welford online accumulator: numerically stable mean and variance.

    >>> acc = RunningStats()
    >>> for v in (1.0, 2.0, 3.0): acc.push(v)
    >>> acc.mean, acc.variance
    (2.0, 1.0)
    """

    __slots__ = ("_n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def push(self, value: float) -> None:
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.push(value)

    @property
    def n(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (``n - 1`` denominator)."""
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        return sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._min

    @property
    def maximum(self) -> float:
        if self._n == 0:
            raise ValueError("no observations")
        return self._max

    def confidence_interval(self, confidence: float = 0.95) -> Interval:
        """Student-t interval for the mean."""
        if self._n < 2:
            return Interval(self.mean, float("-inf"), float("inf"))
        t = _scipy_stats.t.ppf(0.5 + confidence / 2.0, df=self._n - 1)
        half = t * self.std / sqrt(self._n)
        return Interval(self._mean, self._mean - half, self._mean + half)


class RunningStatsError(ValueError):
    """Raised on queries against an empty accumulator."""


class RatioStats:
    """Streaming ratio-of-sums estimator with a delta-method interval.

    Accumulates (numerator, denominator) pairs per cycle — e.g. (accepted,
    offered) — and estimates ``sum(num) / sum(den)`` with a delta-method
    standard error.  This matches the paper's definition of ``PA`` as "the
    ratio of the expected number of requests satisfied per cycle to the
    expected number of requests generated per cycle".

    The accumulator is *streaming*: bivariate Welford co-moments (means,
    second moments, and the numerator/denominator co-moment) replace the
    stored pair list, so memory is O(1) and the confidence interval is
    O(1) to evaluate at any point of the stream — which is what lets the
    adaptive Monte-Carlo harness check its stopping rule every chunk
    without quadratic rescans.  The interval is algebraically identical to
    the historical pair-list implementation: the variance of the residuals
    ``num_i - ratio * den_i`` (whose mean is exactly zero at the ratio of
    sums) expands to ``Var(num) - 2 ratio Cov(num, den) + ratio^2
    Var(den)``.

    >>> acc = RatioStats()
    >>> acc.push(1, 2); acc.push(9, 10)
    >>> round(acc.ratio, 6)
    0.833333
    """

    __slots__ = (
        "_n",
        "_sum_num",
        "_sum_den",
        "_mean_num",
        "_mean_den",
        "_m2_num",
        "_m2_den",
        "_c_nd",
    )

    def __init__(self) -> None:
        self._n = 0
        # Plain sums carry the point estimate: for integer counts they are
        # exact, so the ratio is bit-identical however the stream was
        # chunked.  The Welford moments carry only the interval.
        self._sum_num = 0.0
        self._sum_den = 0.0
        self._mean_num = 0.0
        self._mean_den = 0.0
        self._m2_num = 0.0
        self._m2_den = 0.0
        self._c_nd = 0.0

    def push(self, numerator: float, denominator: float) -> None:
        num, den = float(numerator), float(denominator)
        self._n += 1
        self._sum_num += num
        self._sum_den += den
        d_num = num - self._mean_num
        d_den = den - self._mean_den
        self._mean_num += d_num / self._n
        self._mean_den += d_den / self._n
        self._m2_num += d_num * (num - self._mean_num)
        self._m2_den += d_den * (den - self._mean_den)
        self._c_nd += d_num * (den - self._mean_den)

    def push_many(self, numerators, denominators) -> None:
        """Absorb whole per-cycle count arrays (one chunk) at once.

        Equivalent to pushing pair by pair; implemented as a Chan-style
        parallel merge of the chunk's moments so a chunk costs a few
        vectorized reductions instead of a Python loop.
        """
        import numpy as np

        nums = np.asarray(numerators, dtype=np.float64)
        dens = np.asarray(denominators, dtype=np.float64)
        if nums.shape != dens.shape or nums.ndim != 1:
            raise ValueError("push_many needs two equal-length 1-D arrays")
        m = nums.size
        if m == 0:
            return
        self._sum_num += float(nums.sum())
        self._sum_den += float(dens.sum())
        mean_num = float(nums.mean())
        mean_den = float(dens.mean())
        d_nums = nums - mean_num
        d_dens = dens - mean_den
        m2_num = float(d_nums @ d_nums)
        m2_den = float(d_dens @ d_dens)
        c_nd = float(d_nums @ d_dens)
        if self._n == 0:
            self._n = m
            self._mean_num, self._mean_den = mean_num, mean_den
            self._m2_num, self._m2_den, self._c_nd = m2_num, m2_den, c_nd
            return
        n = self._n
        total = n + m
        delta_num = mean_num - self._mean_num
        delta_den = mean_den - self._mean_den
        scale = n * m / total
        self._m2_num += m2_num + delta_num * delta_num * scale
        self._m2_den += m2_den + delta_den * delta_den * scale
        self._c_nd += c_nd + delta_num * delta_den * scale
        self._mean_num += delta_num * m / total
        self._mean_den += delta_den * m / total
        self._n = total

    def merge(self, other: "RatioStats") -> None:
        """Absorb another accumulator's stream into this one.

        Chan-style parallel combination of the Welford co-moments, the
        same algebra :meth:`push_many` uses for a chunk — so merging two
        shard accumulators is equivalent (up to float rounding of the
        interval moments; the point estimate's plain sums are exact) to
        having pushed both streams into one accumulator.  This is the
        primitive ``ParallelSweep`` and ``repro.serve`` shards use to
        combine per-shard latency statistics.
        """
        if other._n == 0:
            return
        self._sum_num += other._sum_num
        self._sum_den += other._sum_den
        if self._n == 0:
            self._n = other._n
            self._mean_num, self._mean_den = other._mean_num, other._mean_den
            self._m2_num, self._m2_den = other._m2_num, other._m2_den
            self._c_nd = other._c_nd
            return
        n, m = self._n, other._n
        total = n + m
        delta_num = other._mean_num - self._mean_num
        delta_den = other._mean_den - self._mean_den
        scale = n * m / total
        self._m2_num += other._m2_num + delta_num * delta_num * scale
        self._m2_den += other._m2_den + delta_den * delta_den * scale
        self._c_nd += other._c_nd + delta_num * delta_den * scale
        self._mean_num += delta_num * m / total
        self._mean_den += delta_den * m / total
        self._n = total

    @property
    def n(self) -> int:
        return self._n

    @property
    def ratio(self) -> float:
        if self._n == 0 or self._sum_den == 0:
            return 1.0
        return self._sum_num / self._sum_den

    def standard_error(self) -> float:
        """Delta-method standard error of the ratio (0.0 when undefined)."""
        n, point = self._n, self.ratio
        if n < 2 or self._mean_den == 0:
            return 0.0
        var_res = (
            self._m2_num - 2.0 * point * self._c_nd + point * point * self._m2_den
        ) / (n - 1)
        # Co-moment cancellation can leave a tiny negative residue.
        var_res = max(var_res, 0.0)
        return sqrt(var_res / n) / self._mean_den

    def confidence_interval(self, confidence: float = 0.95) -> Interval:
        """Delta-method interval on the ratio of means."""
        n = self._n
        point = self.ratio
        if n < 2:
            return Interval(point, float("-inf"), float("inf"))
        if self._mean_den == 0:
            return Interval(point, point, point)
        se = self.standard_error()
        t = _scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1)
        return Interval(point, point - t * se, point + t * se)


class LatencyStats(RatioStats):
    """Streaming fixed-bin latency histogram with exact mean and percentiles.

    Latencies are integer cycle counts, so a fixed array of unit-width
    bins ``[0, bound]`` is an *exact* histogram, not an approximation:
    bin ``v`` counts messages delivered in exactly ``v`` cycles, and the
    final bin absorbs the (rare, saturated-run) overflow tail, so every
    percentile at or past the overflow mass is reported as ``bound`` —
    a conservative floor, never an overstatement.

    The inherited :class:`RatioStats` machinery (each latency pushed
    against a unit denominator) supplies the exact mean — integer sums
    stay exact in float64 far beyond any feasible run length — plus the
    delta-method confidence interval.  :meth:`merge` adds histograms and
    combines moments, making shard aggregation order-independent: counts
    and therefore percentiles are exactly identical to single-stream
    accumulation, and the mean is exact because the point estimate rides
    on plain sums.

    >>> acc = LatencyStats()
    >>> acc.record([3, 5, 5, 9])
    >>> (acc.count, acc.mean, acc.p50, acc.p95)
    (4, 5.5, 5, 9)
    """

    __slots__ = ("bound", "_counts")

    #: Default histogram bound: latencies above this land in the overflow bin.
    DEFAULT_BOUND = 1 << 14

    def __init__(self, bound: int = DEFAULT_BOUND) -> None:
        super().__init__()
        if bound < 1:
            raise ValueError(f"histogram bound must be >= 1, got {bound}")
        self.bound = int(bound)
        self._counts = None  # lazily allocated int64[bound + 1]

    def _ensure_counts(self):
        if self._counts is None:
            import numpy as np

            self._counts = np.zeros(self.bound + 1, dtype=np.int64)
        return self._counts

    def record(self, latencies) -> None:
        """Absorb an array of integer delivery latencies (cycles)."""
        import numpy as np

        lat = np.asarray(latencies)
        if lat.size == 0:
            return
        if lat.ndim != 1:
            raise ValueError("record needs a 1-D latency array")
        clipped = np.minimum(lat.astype(np.int64, copy=False), self.bound)
        if clipped.min() < 0:
            raise ValueError("latencies must be non-negative")
        counts = self._ensure_counts()
        counts += np.bincount(clipped, minlength=self.bound + 1)
        self.push_many(lat.astype(np.float64, copy=False), np.ones(lat.size))

    def record_one(self, latency: int) -> None:
        lat = int(latency)
        if lat < 0:
            raise ValueError("latencies must be non-negative")
        self._ensure_counts()[min(lat, self.bound)] += 1
        self.push(lat, 1)

    @property
    def count(self) -> int:
        """Number of recorded latencies."""
        return self._n

    @property
    def mean(self) -> float:
        """Exact mean latency (0.0 when empty)."""
        if self._n == 0:
            return 0.0
        return self._sum_num / self._n

    def percentile(self, q: float) -> int:
        """Smallest latency ``v`` with at least ``ceil(q * count)`` mass at or below it."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must lie in (0, 1], got {q}")
        if self._n == 0:
            return 0
        import numpy as np

        cum = np.cumsum(self._counts)
        target = ceil(q * self._n)
        return int(np.searchsorted(cum, target))

    @property
    def p50(self) -> int:
        return self.percentile(0.50)

    @property
    def p95(self) -> int:
        return self.percentile(0.95)

    @property
    def p99(self) -> int:
        return self.percentile(0.99)

    def merge(self, other: "LatencyStats") -> None:
        """Add another histogram's counts and combine the moment stream."""
        if not isinstance(other, LatencyStats):
            raise TypeError("can only merge another LatencyStats")
        if other.bound != self.bound:
            raise ValueError(
                f"histogram bounds differ: {self.bound} vs {other.bound}"
            )
        if other._counts is not None:
            self._ensure_counts()
            self._counts += other._counts
        super().merge(other)

    def __eq__(self, other) -> bool:
        """Value equality: same bound, same bins, same moment stream.

        Lets dataclasses carrying a histogram field (e.g.
        ``ClosedLoopMeasurement``) keep their generated ``==``, so
        payload round-trips stay bit-checkable.
        """
        if not isinstance(other, LatencyStats):
            return NotImplemented
        import numpy as np

        a = self._counts if self._counts is not None else ()
        b = other._counts if other._counts is not None else ()
        return (
            self.bound == other.bound
            and self._n == other._n
            and bool(np.array_equal(a, b) or (np.sum(a) == 0 and np.sum(b) == 0))
            and self.to_payload()["moments"] == other.to_payload()["moments"]
        )

    __hash__ = None  # mutable accumulator

    def to_payload(self) -> dict:
        """JSON-safe snapshot: sparse non-zero bins plus the raw moments."""
        bins = {}
        if self._counts is not None:
            import numpy as np

            nz = np.flatnonzero(self._counts)
            bins = {int(v): int(self._counts[v]) for v in nz}
        return {
            "bound": self.bound,
            "bins": bins,
            "moments": [
                self._n,
                self._sum_num,
                self._sum_den,
                self._mean_num,
                self._mean_den,
                self._m2_num,
                self._m2_den,
                self._c_nd,
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LatencyStats":
        acc = cls(bound=int(payload["bound"]))
        bins = payload.get("bins") or {}
        if bins:
            counts = acc._ensure_counts()
            for value, count in bins.items():
                counts[int(value)] += int(count)
        moments = payload["moments"]
        acc._n = int(moments[0])
        (
            acc._sum_num,
            acc._sum_den,
            acc._mean_num,
            acc._mean_den,
            acc._m2_num,
            acc._m2_den,
            acc._c_nd,
        ) = (float(v) for v in moments[1:])
        return acc


class RetryStats(RatioStats):
    """Per-message closed-loop statistics: attempts and latency per delivery.

    Extends :class:`RatioStats` for the retry-until-delivered sources:
    the inherited ratio machinery estimates *attempts per delivered
    message* (each delivery pushes its attempt count against a unit
    denominator, so ``ratio`` is total attempts / deliveries with the
    delta-method interval), and a nested :class:`LatencyStats` does the
    same for delivery latency in cycles (1 = delivered on the first
    try) while also binning each latency for p50/p95/p99 tail readout.
    ``abandoned`` counts messages that exhausted their attempt bound
    and were dropped.

    >>> acc = RetryStats()
    >>> acc.record_delivery(attempts=3, latency=5)
    >>> acc.record_delivery(attempts=1, latency=1)
    >>> (acc.ratio, acc.latency.ratio, acc.delivered)
    (2.0, 3.0, 2)
    """

    __slots__ = ("latency", "_abandoned")

    def __init__(self) -> None:
        super().__init__()
        self.latency = LatencyStats()
        self._abandoned = 0

    def record_delivery(self, attempts: int, latency: int) -> None:
        self.push(attempts, 1)
        self.latency.record_one(latency)

    def record_deliveries(self, attempts, latencies) -> None:
        """Absorb whole delivered-message arrays (one cycle) at once."""
        import numpy as np

        attempts = np.asarray(attempts, dtype=np.float64)
        ones = np.ones_like(attempts)
        self.push_many(attempts, ones)
        self.latency.record(np.asarray(latencies))

    def record_abandoned(self, count: int = 1) -> None:
        self._abandoned += count

    @property
    def delivered(self) -> int:
        """Messages delivered (observations behind both ratios)."""
        return self.n

    @property
    def abandoned(self) -> int:
        """Messages dropped after exhausting their attempt bound."""
        return self._abandoned


def batch_means(series: Sequence[float], n_batches: int = 20) -> RunningStats:
    """Collapse an autocorrelated series into ``n_batches`` batch means.

    Standard output-analysis technique: consecutive cycles of a stateful
    simulation are correlated, so per-cycle t-intervals are too narrow;
    means over long batches are approximately independent.  Leftover
    observations (when the length is not divisible) are dropped from the
    final partial batch.
    """
    if n_batches < 2:
        raise ValueError(f"need at least 2 batches, got {n_batches}")
    batch_size = len(series) // n_batches
    if batch_size < 1:
        raise ValueError(
            f"series of length {len(series)} too short for {n_batches} batches"
        )
    acc = RunningStats()
    for k in range(n_batches):
        chunk = series[k * batch_size : (k + 1) * batch_size]
        acc.push(sum(chunk) / len(chunk))
    return acc


def proportion_ci(successes: int, trials: int, confidence: float = 0.95) -> Interval:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    z = _scipy_stats.norm.ppf(0.5 + confidence / 2.0)
    phat = successes / trials
    denom = 1.0 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    half = (z / denom) * sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
    return Interval(phat, max(0.0, center - half), min(1.0, center + half))
