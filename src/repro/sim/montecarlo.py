"""Monte-Carlo measurement harnesses.

Estimates the paper's performance metrics by repeated cycle simulation and
reports them with confidence intervals, so tests and benchmarks can make
statistically honest comparisons against the analytic models (Eqs. 4-5).

The harness is router-agnostic: anything exposing ``n_inputs``,
``n_outputs`` and ``route(dests, rng) -> result`` with ``num_offered`` /
``num_delivered`` works, which lets the same code drive the vectorized EDN,
the reference EDN (via an adapter), and the baseline networks.  Routers
that additionally expose ``route_batch(dests, rng)`` (the
:class:`~repro.sim.batched.BatchedEDN` protocol) are driven in chunks of
many cycles per call, which removes the per-cycle Python overhead that
otherwise dominates at large ``N`` — see :mod:`repro.sim.batched` and the
measured speedups in ``BENCH_batched_routing.json``.

Reproducibility: a fixed ``(seed, batch)`` pair always reproduces a
measurement exactly.  The per-cycle (``batch=1``) and chunked paths draw
traffic in different stream orders, so their point estimates differ by
Monte-Carlo noise while sharing the same distribution.  Within the
chunked path (``batch >= 2``), routing randomness is drawn from
*positionally spawned per-cycle streams* (cycle ``i`` always gets child
``i`` of the master seed), so random-priority measurements are
bit-identical regardless of chunk size — ``batch=16`` and ``batch=64``
agree exactly — provided the traffic model draws a chunk in one vectorized
call per stream (all built-in single-draw models do at full rate).

Adaptive early stopping: pass ``rel_err`` (or set ``RunConfig.rel_err``)
to turn ``cycles`` into a *budget*.  The harness then accumulates
streaming Welford moments per chunk and stops at the first chunk boundary
(after ``min_cycles``) where the delta-method confidence interval's
half-width falls to ``rel_err * acceptance``, so sweeps spend cycles only
where the estimator is still noisy — see ``docs/PERFORMANCE.md`` for the
stopping-rule math and measured cycle savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Protocol

import numpy as np

from repro.core.config import EDNParams
from repro.core.network import EDNetwork
from repro.core.tags import RetirementOrder
from repro.sim.rng import SeedLike, make_rng
from repro.sim.stats import Interval, RatioStats
from repro.workloads.models import TrafficGenerator
from repro.workloads.registry import TrafficLike, make_traffic

if TYPE_CHECKING:  # avoid a runtime cycle: repro.api.measure imports this module
    from repro.api.spec import RunConfig

__all__ = [
    "CycleRouter",
    "BatchRouter",
    "AcceptanceMeasurement",
    "measure_acceptance",
    "ReferenceRouterAdapter",
    "DEFAULT_BATCH",
]

#: Default chunk size for routers that support batched routing.
DEFAULT_BATCH = 64

#: Cycles the adaptive stopping rule must observe before it may stop.
DEFAULT_MIN_CYCLES = 32

#: Distinguishes "argument not passed" from an explicit ``None`` seed.
_UNSET = object()


def _contention_priority(router: "CycleRouter") -> Optional[str]:
    """The router's contention discipline, peeking through adapters."""
    for obj in (
        router,
        getattr(router, "engine", None),
        getattr(router, "network", None),
        getattr(router, "_engine", None),
        getattr(router, "_omega", None),
    ):
        priority = getattr(obj, "priority", None)
        if isinstance(priority, str):
            return priority
    return None


def _spawn_source(seed: SeedLike, rng: np.random.Generator):
    """Where per-cycle routing streams are spawned from, positionally.

    Ints and ``None`` root a fresh ``SeedSequence``; a caller-provided
    ``SeedSequence`` or ``Generator`` is spawned from directly (successive
    ``spawn`` calls hand out successive children, so chunked spawning is
    identical to spawning everything up front).
    """
    if isinstance(seed, np.random.Generator):
        return rng
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


class CycleRouter(Protocol):
    """Protocol every measurable router satisfies."""

    @property
    def n_inputs(self) -> int: ...

    @property
    def n_outputs(self) -> int: ...

    def route(self, dests: np.ndarray, rng: Optional[np.random.Generator]) -> object: ...


class BatchRouter(CycleRouter, Protocol):
    """A router that can additionally route many independent cycles at once."""

    def route_batch(
        self, dests: np.ndarray, rng: Optional[np.random.Generator]
    ) -> object: ...


@dataclass
class AcceptanceMeasurement:
    """Result of a Monte-Carlo acceptance run.

    ``acceptance`` is the ratio-of-sums estimator of ``PA`` (matching the
    paper's expected-delivered / expected-generated definition) with a
    delta-method confidence interval; ``blocked_by_stage`` aggregates where
    requests died across all cycles.  ``cycles`` counts the cycles
    actually routed; under adaptive early stopping that may be less than
    ``budget``, and ``converged`` records whether the ``target_rel_err``
    stopping rule was met within the budget (``None`` for fixed-budget
    runs).
    """

    cycles: int
    offered: int
    delivered: int
    acceptance: Interval
    blocked_by_stage: dict[int, int] = field(default_factory=dict)
    budget: Optional[int] = None
    target_rel_err: Optional[float] = None
    converged: Optional[bool] = None

    @property
    def point(self) -> float:
        return self.acceptance.point


def measure_acceptance(
    router: CycleRouter,
    traffic: "TrafficLike | None" = None,
    *,
    cycles: int | None = None,
    seed: SeedLike = _UNSET,
    confidence: float | None = None,
    batch: int | None = None,
    rel_err: float | None = None,
    min_cycles: int | None = None,
    retry=None,
    config: "RunConfig | None" = None,
    progress=None,
) -> AcceptanceMeasurement:
    """Estimate the probability of acceptance of ``router`` under ``traffic``.

    Each cycle draws a fresh demand vector (the paper's assumption 3:
    blocked requests are ignored and do not affect later cycles) and routes
    it; acceptance is accumulated as a ratio of sums.

    ``traffic`` is anything :func:`repro.workloads.make_traffic` accepts:
    a built :class:`~repro.workloads.TrafficGenerator`, a workload spec
    string (``"hotspot:0.1"``, ``"bitrev"``, ...), or a parsed
    :class:`~repro.workloads.WorkloadSpec` — specs are sized to the router
    here.  When ``traffic`` is omitted, a set ``config.traffic`` fills it;
    failing that, full-rate uniform traffic (the paper's Section 3.2
    default) is used.

    Run parameters can come from a :class:`repro.api.RunConfig` (``config``)
    or from the individual keywords.  Precedence matches the experiment
    runners everywhere in the facade: *set* config fields win, keywords act
    as the defaults for unset fields, and anything still unset falls back
    to the historical defaults (100 cycles, seed 0, 95% confidence).

    ``batch`` controls how many cycles are generated and routed per call:
    ``None`` (the default) picks :data:`DEFAULT_BATCH` when the router
    exposes ``route_batch`` and falls back to cycle-at-a-time otherwise;
    pass an explicit chunk size to override.  Routers without
    ``route_batch`` still accept ``batch > 1`` — traffic is drawn in chunks
    (so two routers measured at the same ``(seed, batch)`` see identical
    demands) and routed cycle by cycle.

    Under ``random`` contention priority, the chunked path gives cycle
    ``i`` its own positionally spawned child stream of the master seed for
    tie-breaking (traffic keeps the master stream), so measurements are
    independent of chunk size and bit-identical across routers that make
    identical routing decisions.

    ``rel_err`` turns ``cycles`` into a budget: the run stops at the first
    chunk boundary — after ``min_cycles`` (default
    :data:`DEFAULT_MIN_CYCLES`) — where the interval half-width at
    ``confidence`` is at most ``rel_err`` times the acceptance estimate.

    ``progress`` is an optional callback invoked at every cycle/chunk
    boundary (the same boundaries the stopping rule checks) with
    ``(cycles_routed_so_far, current_acceptance_interval)`` — the hook
    the simulation service (:mod:`repro.serve`) streams partial results
    through.  It observes, never steers: measurements are bit-identical
    with or without it.  Ignored on the closed-loop path (whose driver
    owns its cycle loop).

    ``retry`` (a :class:`~repro.sim.closedloop.RetryPolicy` or its spec
    string, also settable via ``RunConfig.retry``) switches to
    *closed-loop* sources: blocked messages are held and resubmitted
    until delivered, abandoned, or out of budget, and the result is a
    :class:`~repro.sim.closedloop.ClosedLoopMeasurement` carrying
    per-message attempt/latency intervals.  The retry state couples
    consecutive cycles, so the closed-loop driver routes cycle by cycle
    (``batch`` is ignored).
    """
    if config is not None:
        cycles = config.cycles if config.cycles is not None else cycles
        confidence = config.confidence if config.confidence is not None else confidence
        batch = config.batch if config.batch is not None else batch
        rel_err = config.rel_err if config.rel_err is not None else rel_err
        retry = config.retry if config.retry is not None else retry
        if config.seed is not None:
            seed = config.seed
        if traffic is None:
            traffic = config.traffic
    cycles = 100 if cycles is None else cycles
    confidence = 0.95 if confidence is None else confidence
    if seed is _UNSET:
        seed = 0
    if traffic is None:
        traffic = "uniform"
    if not isinstance(traffic, TrafficGenerator):
        traffic = make_traffic(traffic, router.n_inputs, router.n_outputs)
    if traffic.n_inputs != router.n_inputs:
        raise ValueError(
            f"traffic generates {traffic.n_inputs} inputs, router has {router.n_inputs}"
        )
    if batch is None:
        if hasattr(router, "preferred_batch"):
            batch = router.preferred_batch()
        elif hasattr(router, "route_batch"):
            batch = DEFAULT_BATCH
        else:
            batch = 1
    if batch < 1:
        raise ValueError(f"batch size must be >= 1, got {batch}")
    if rel_err is not None and not 0 < rel_err < 1:
        raise ValueError(f"rel_err must lie in (0, 1), got {rel_err}")
    if retry is not None:
        from repro.sim.closedloop import RetryPolicy, drive_closed_loop

        if isinstance(retry, str):
            retry = RetryPolicy.parse(retry)
        return drive_closed_loop(
            router,
            traffic,
            retry,
            cycles=cycles,
            rng=make_rng(seed),
            confidence=confidence,
            rel_err=rel_err,
            min_cycles=DEFAULT_MIN_CYCLES if min_cycles is None else min_cycles,
        )
    adaptive = rel_err is not None
    floor = DEFAULT_MIN_CYCLES if min_cycles is None else min_cycles
    floor = max(2, min(floor, cycles))
    rng = make_rng(seed)
    ratio = RatioStats()
    offered_total = 0
    delivered_total = 0
    blocked: dict[int, int] = {}

    def _absorb_histogram(result: object) -> None:
        histogram = getattr(result, "blocked_stage_histogram", None)
        if histogram is not None:
            for stage, count in histogram().items():
                blocked[stage] = blocked.get(stage, 0) + count

    def _converged() -> bool:
        """The stopping rule, checked at cycle/chunk boundaries only."""
        if not adaptive or ratio.n < floor:
            return False
        interval = ratio.confidence_interval(confidence)
        point = abs(interval.point)
        return interval.halfwidth <= rel_err * (point if point > 0 else 1.0)

    def _report() -> None:
        if progress is not None:
            progress(ratio.n, ratio.confidence_interval(confidence))

    stopped = False
    if batch == 1:
        for _ in range(cycles):
            dests = traffic.generate(rng)
            result = router.route(dests, rng)
            ratio.push(result.num_delivered, result.num_offered)
            offered_total += result.num_offered
            delivered_total += result.num_delivered
            _absorb_histogram(result)
            _report()
            if _converged():
                stopped = True
                break
    else:
        counting = hasattr(router, "route_batch_counts")
        batched = hasattr(router, "route_batch")
        # Random contention draws per-cycle tie-break streams spawned
        # positionally from the master seed (chunk-size invariant); the
        # master stream stays dedicated to traffic.  Deterministic
        # disciplines never consume routing randomness, so the seed-path
        # streams are untouched.
        per_cycle_streams = _contention_priority(router) == "random"
        spawner = _spawn_source(seed, rng) if per_cycle_streams else None
        remaining = cycles
        while remaining > 0 and not stopped:
            chunk = min(batch, remaining)
            remaining -= chunk
            dests = traffic.generate_batch(rng, chunk)
            chunk_rng = (
                [make_rng(key) for key in spawner.spawn(chunk)]
                if per_cycle_streams
                else rng
            )
            if counting or batched:
                if counting:
                    # Counts-only kernel: identical routing decisions,
                    # no per-message outcome arrays to materialize.
                    result = router.route_batch_counts(dests, chunk_rng)
                    for stage, count in result.blocked_by_stage.items():
                        blocked[stage] = blocked.get(stage, 0) + count
                else:
                    result = router.route_batch(dests, chunk_rng)
                    _absorb_histogram(result)
                offered = result.offered_per_cycle
                delivered = result.delivered_per_cycle
                ratio.push_many(delivered, offered)
                offered_total += int(offered.sum())
                delivered_total += int(delivered.sum())
            else:
                for i in range(chunk):
                    cycle_rng = chunk_rng[i] if per_cycle_streams else rng
                    result = router.route(dests[i], cycle_rng)
                    ratio.push(result.num_delivered, result.num_offered)
                    offered_total += result.num_offered
                    delivered_total += result.num_delivered
                    _absorb_histogram(result)
            _report()
            if _converged():
                stopped = True

    return AcceptanceMeasurement(
        cycles=ratio.n,
        offered=offered_total,
        delivered=delivered_total,
        acceptance=ratio.confidence_interval(confidence),
        blocked_by_stage=dict(sorted(blocked.items())),
        budget=cycles if adaptive else None,
        target_rel_err=rel_err,
        converged=stopped if adaptive else None,
    )


class ReferenceRouterAdapter:
    """Expose :class:`~repro.core.network.EDNetwork` through the router protocol.

    Used by equivalence tests; for performance work prefer
    :class:`~repro.sim.batched.BatchedEDN` (or
    :class:`~repro.sim.vectorized.VectorizedEDN`) directly.
    """

    def __init__(self, network: EDNetwork):
        self.network = network

    @classmethod
    def build(
        cls,
        params: EDNParams,
        *,
        priority: str = "label",
        retirement_order: Optional[RetirementOrder] = None,
    ) -> "ReferenceRouterAdapter":
        return cls(
            EDNetwork(params, priority=priority, retirement_order=retirement_order)
        )

    @property
    def n_inputs(self) -> int:
        return self.network.params.num_inputs

    @property
    def n_outputs(self) -> int:
        return self.network.params.num_outputs

    def route(self, dests: np.ndarray, rng: Optional[np.random.Generator] = None):
        demands = {int(s): int(d) for s, d in enumerate(dests) if d >= 0}
        return self.network.route_destinations(demands, rng=rng)
