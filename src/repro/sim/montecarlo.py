"""Monte-Carlo measurement harnesses.

Estimates the paper's performance metrics by repeated cycle simulation and
reports them with confidence intervals, so tests and benchmarks can make
statistically honest comparisons against the analytic models (Eqs. 4-5).

The harness is router-agnostic: anything exposing ``n_inputs``,
``n_outputs`` and ``route(dests, rng) -> result`` with ``num_offered`` /
``num_delivered`` works, which lets the same code drive the vectorized EDN,
the reference EDN (via an adapter), and the baseline networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

import numpy as np

from repro.core.config import EDNParams
from repro.core.network import EDNetwork
from repro.core.tags import RetirementOrder
from repro.sim.rng import make_rng
from repro.sim.stats import Interval, RatioStats
from repro.sim.traffic import TrafficGenerator

__all__ = [
    "CycleRouter",
    "AcceptanceMeasurement",
    "measure_acceptance",
    "ReferenceRouterAdapter",
]


class CycleRouter(Protocol):
    """Protocol every measurable router satisfies."""

    @property
    def n_inputs(self) -> int: ...

    @property
    def n_outputs(self) -> int: ...

    def route(self, dests: np.ndarray, rng: Optional[np.random.Generator]) -> object: ...


@dataclass
class AcceptanceMeasurement:
    """Result of a Monte-Carlo acceptance run.

    ``acceptance`` is the ratio-of-sums estimator of ``PA`` (matching the
    paper's expected-delivered / expected-generated definition) with a
    delta-method confidence interval; ``blocked_by_stage`` aggregates where
    requests died across all cycles.
    """

    cycles: int
    offered: int
    delivered: int
    acceptance: Interval
    blocked_by_stage: dict[int, int] = field(default_factory=dict)

    @property
    def point(self) -> float:
        return self.acceptance.point


def measure_acceptance(
    router: CycleRouter,
    traffic: TrafficGenerator,
    *,
    cycles: int = 100,
    seed: int | None = 0,
    confidence: float = 0.95,
) -> AcceptanceMeasurement:
    """Estimate the probability of acceptance of ``router`` under ``traffic``.

    Each cycle draws a fresh demand vector (the paper's assumption 3:
    blocked requests are ignored and do not affect later cycles) and routes
    it; acceptance is accumulated as a ratio of sums.
    """
    if traffic.n_inputs != router.n_inputs:
        raise ValueError(
            f"traffic generates {traffic.n_inputs} inputs, router has {router.n_inputs}"
        )
    rng = make_rng(seed)
    ratio = RatioStats()
    offered_total = 0
    delivered_total = 0
    blocked: dict[int, int] = {}
    for _ in range(cycles):
        dests = traffic.generate(rng)
        result = router.route(dests, rng)
        ratio.push(result.num_delivered, result.num_offered)
        offered_total += result.num_offered
        delivered_total += result.num_delivered
        histogram = getattr(result, "blocked_stage_histogram", None)
        if histogram is not None:
            for stage, count in histogram().items():
                blocked[stage] = blocked.get(stage, 0) + count
    return AcceptanceMeasurement(
        cycles=cycles,
        offered=offered_total,
        delivered=delivered_total,
        acceptance=ratio.confidence_interval(confidence),
        blocked_by_stage=dict(sorted(blocked.items())),
    )


class ReferenceRouterAdapter:
    """Expose :class:`~repro.core.network.EDNetwork` through the router protocol.

    Used by equivalence tests; for performance work prefer
    :class:`~repro.sim.vectorized.VectorizedEDN` directly.
    """

    def __init__(self, network: EDNetwork):
        self.network = network

    @classmethod
    def build(
        cls,
        params: EDNParams,
        *,
        priority: str = "label",
        retirement_order: Optional[RetirementOrder] = None,
    ) -> "ReferenceRouterAdapter":
        return cls(
            EDNetwork(params, priority=priority, retirement_order=retirement_order)
        )

    @property
    def n_inputs(self) -> int:
        return self.network.params.num_inputs

    @property
    def n_outputs(self) -> int:
        return self.network.params.num_outputs

    def route(self, dests: np.ndarray, rng: Optional[np.random.Generator] = None):
        demands = {int(s): int(d) for s, d in enumerate(dests) if d >= 0}
        return self.network.route_destinations(demands, rng=rng)
