"""Backwards-compatible alias of :mod:`repro.workloads.models`.

The traffic models grew into the pluggable :mod:`repro.workloads`
subsystem (registry, ``name[:args]`` spec parsing, CLI ``--traffic``);
this module remains so existing ``repro.sim.traffic`` imports keep
working.  New code should import from :mod:`repro.workloads`.
"""

from repro.workloads.models import (  # noqa: F401
    IDLE,
    STRUCTURED_PATTERNS,
    BurstyTraffic,
    FixedPattern,
    HotspotTraffic,
    MixtureTraffic,
    PermutationTraffic,
    TraceTraffic,
    TrafficGenerator,
    UniformTraffic,
    structured_permutation,
)

__all__ = [
    "TrafficGenerator",
    "UniformTraffic",
    "PermutationTraffic",
    "FixedPattern",
    "HotspotTraffic",
    "BurstyTraffic",
    "MixtureTraffic",
    "TraceTraffic",
    "structured_permutation",
    "STRUCTURED_PATTERNS",
]
