"""Backwards-compatible alias of :mod:`repro.workloads.models`.

.. deprecated::
    The traffic models grew into the pluggable :mod:`repro.workloads`
    subsystem (registry, ``name[:args]`` spec parsing, CLI ``--traffic``);
    this module remains so existing ``repro.sim.traffic`` imports keep
    working, but emits a :class:`DeprecationWarning` on import (once per
    process — Python caches the module).  Import from
    :mod:`repro.workloads` instead.
"""

import warnings

warnings.warn(
    "repro.sim.traffic is deprecated; import the traffic models from "
    "repro.workloads instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.workloads.models import (  # noqa: E402,F401
    IDLE,
    STRUCTURED_PATTERNS,
    BurstyTraffic,
    FixedPattern,
    HotspotTraffic,
    MixtureTraffic,
    PermutationTraffic,
    TraceTraffic,
    TrafficGenerator,
    UniformTraffic,
    structured_permutation,
)

__all__ = [
    "TrafficGenerator",
    "UniformTraffic",
    "PermutationTraffic",
    "FixedPattern",
    "HotspotTraffic",
    "BurstyTraffic",
    "MixtureTraffic",
    "TraceTraffic",
    "structured_permutation",
    "STRUCTURED_PATTERNS",
]
