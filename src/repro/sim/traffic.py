"""Workload generators for network simulation.

Each generator produces one cycle of destination demands as an integer numpy
array of length ``n_inputs`` where entry ``s`` is the requested output
terminal of source ``s`` or ``-1`` for an idle input.  The paper's two
analytic regimes are covered — uniform independent traffic (Section 3.2's
assumptions) and random permutations (Section 3.2.1 / Section 5) — plus the
hot-spot ("NUTS", Non-Uniform Traffic Spots, the paper's reference [13])
and structured-permutation workloads used by the ablation and multipath
benchmarks.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.labels import ilog2, is_power_of_two, reverse_bits

__all__ = [
    "TrafficGenerator",
    "UniformTraffic",
    "PermutationTraffic",
    "FixedPattern",
    "HotspotTraffic",
    "structured_permutation",
    "STRUCTURED_PATTERNS",
]

IDLE = -1


class TrafficGenerator:
    """Base class: a callable source of per-cycle destination vectors."""

    def __init__(self, n_inputs: int, n_outputs: int):
        if n_inputs < 1 or n_outputs < 1:
            raise ConfigurationError("traffic needs positive terminal counts")
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        """Return this cycle's demands (``int64[n_inputs]``, ``-1`` = idle)."""
        raise NotImplementedError

    def generate_batch(self, rng: np.random.Generator, batch: int) -> np.ndarray:
        """Return ``batch`` cycles of demands at once (``int64[batch, n_inputs]``).

        The base implementation stacks ``batch`` sequential :meth:`generate`
        calls, so any subclass batches correctly; the built-in generators
        override it with fully vectorized draws (which consume the stream in
        a different order than sequential calls — equally distributed, but a
        chunked measurement is only reproducible for a fixed chunk size).
        """
        if batch < 0:
            raise ConfigurationError(f"batch size must be non-negative, got {batch}")
        if batch == 0:
            return np.empty((0, self.n_inputs), dtype=np.int64)
        return np.stack([self.generate(rng) for _ in range(batch)])

    def _apply_rate(self, dests: np.ndarray, rate: float, rng: np.random.Generator) -> np.ndarray:
        """Idle each entry independently with probability ``1 - rate``.

        Works on a single cycle vector or a ``(batch, n_inputs)`` matrix.
        """
        if rate >= 1.0:
            return dests
        mask = rng.random(dests.shape) < rate
        return np.where(mask, dests, IDLE)


class UniformTraffic(TrafficGenerator):
    """Uniform independent destinations at request rate ``r`` (Section 3.2).

    Every input issues a request with probability ``r``, addressed to an
    output chosen uniformly and independently — exactly the assumptions
    under which Eq. 4 is derived.
    """

    def __init__(self, n_inputs: int, n_outputs: int, rate: float = 1.0):
        super().__init__(n_inputs, n_outputs)
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must lie in [0, 1], got {rate}")
        self.rate = rate

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        dests = rng.integers(0, self.n_outputs, size=self.n_inputs, dtype=np.int64)
        return self._apply_rate(dests, self.rate, rng)

    def generate_batch(self, rng: np.random.Generator, batch: int) -> np.ndarray:
        dests = rng.integers(
            0, self.n_outputs, size=(batch, self.n_inputs), dtype=np.int64
        )
        return self._apply_rate(dests, self.rate, rng)


class PermutationTraffic(TrafficGenerator):
    """A fresh uniform random (partial) permutation every cycle.

    Requires ``n_inputs <= n_outputs``; each input gets a distinct output.
    With ``rate < 1`` a random subset of inputs participates, which is the
    "partial permutation" regime of Eq. 5.
    """

    def __init__(self, n_inputs: int, n_outputs: int, rate: float = 1.0):
        super().__init__(n_inputs, n_outputs)
        if n_inputs > n_outputs:
            raise ConfigurationError(
                f"a permutation needs n_inputs <= n_outputs, got {n_inputs} > {n_outputs}"
            )
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must lie in [0, 1], got {rate}")
        self.rate = rate

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        dests = rng.permutation(self.n_outputs)[: self.n_inputs].astype(np.int64)
        return self._apply_rate(dests, self.rate, rng)

    def generate_batch(self, rng: np.random.Generator, batch: int) -> np.ndarray:
        outputs = np.broadcast_to(
            np.arange(self.n_outputs, dtype=np.int64), (batch, self.n_outputs)
        )
        dests = rng.permuted(outputs, axis=1)[:, : self.n_inputs]
        return self._apply_rate(np.ascontiguousarray(dests), self.rate, rng)


class FixedPattern(TrafficGenerator):
    """The same destination vector every cycle (e.g. the identity of Figure 5)."""

    def __init__(self, dests: np.ndarray | list[int], n_outputs: int):
        dests = np.asarray(dests, dtype=np.int64)
        super().__init__(len(dests), n_outputs)
        live = dests[dests != IDLE]
        if live.size and (live.min() < 0 or live.max() >= n_outputs):
            raise ConfigurationError("fixed pattern contains out-of-range destinations")
        self.dests = dests

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        return self.dests.copy()

    def generate_batch(self, rng: np.random.Generator, batch: int) -> np.ndarray:
        return np.tile(self.dests, (batch, 1))


class HotspotTraffic(TrafficGenerator):
    """Uniform traffic with a hot output: the classic NUTS stressor.

    With probability ``hot_fraction`` a request targets ``hot_output``;
    otherwise it is uniform over all outputs.  Multipath networks (``c > 1``)
    degrade far more gracefully here than single-path deltas, which is the
    paper's Section 1 motivation for EDNs; the ``nuts`` benchmark
    quantifies it.
    """

    def __init__(
        self,
        n_inputs: int,
        n_outputs: int,
        rate: float = 1.0,
        hot_fraction: float = 0.1,
        hot_output: int = 0,
    ):
        super().__init__(n_inputs, n_outputs)
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must lie in [0, 1], got {rate}")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ConfigurationError(f"hot_fraction must lie in [0, 1], got {hot_fraction}")
        if not 0 <= hot_output < n_outputs:
            raise ConfigurationError(f"hot_output {hot_output} out of range")
        self.rate = rate
        self.hot_fraction = hot_fraction
        self.hot_output = hot_output

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        dests = rng.integers(0, self.n_outputs, size=self.n_inputs, dtype=np.int64)
        hot = rng.random(self.n_inputs) < self.hot_fraction
        dests[hot] = self.hot_output
        return self._apply_rate(dests, self.rate, rng)

    def generate_batch(self, rng: np.random.Generator, batch: int) -> np.ndarray:
        dests = rng.integers(
            0, self.n_outputs, size=(batch, self.n_inputs), dtype=np.int64
        )
        hot = rng.random((batch, self.n_inputs)) < self.hot_fraction
        dests[hot] = self.hot_output
        return self._apply_rate(dests, self.rate, rng)


def _bit_reversal(n: int) -> np.ndarray:
    bits = ilog2(n)
    return np.array([reverse_bits(i, bits) for i in range(n)], dtype=np.int64)


def _perfect_shuffle(n: int) -> np.ndarray:
    bits = ilog2(n)
    mask = n - 1
    idx = np.arange(n)
    return (((idx << 1) | (idx >> (bits - 1))) & mask).astype(np.int64)


def _transpose(n: int) -> np.ndarray:
    """Matrix transpose on the sqrt(n) x sqrt(n) grid (swap label halves)."""
    bits = ilog2(n)
    if bits % 2:
        raise ConfigurationError(f"transpose needs an even number of label bits, n={n}")
    half = bits // 2
    low_mask = (1 << half) - 1
    idx = np.arange(n)
    return (((idx & low_mask) << half) | (idx >> half)).astype(np.int64)


def _butterfly(n: int) -> np.ndarray:
    """Swap the most and least significant label bits."""
    bits = ilog2(n)
    idx = np.arange(n)
    msb = (idx >> (bits - 1)) & 1
    lsb = idx & 1
    cleared = idx & ~((1 << (bits - 1)) | 1)
    return (cleared | (lsb << (bits - 1)) | msb).astype(np.int64)


STRUCTURED_PATTERNS: dict[str, Callable[[int], np.ndarray]] = {
    "identity": lambda n: np.arange(n, dtype=np.int64),
    "reversal": lambda n: np.arange(n - 1, -1, -1, dtype=np.int64),
    "bit_reversal": _bit_reversal,
    "shuffle": _perfect_shuffle,
    "transpose": _transpose,
    "butterfly": _butterfly,
}


def structured_permutation(name: str, n: int) -> FixedPattern:
    """A named structured permutation over ``n`` (a power of two) terminals.

    Available: ``identity``, ``reversal``, ``bit_reversal``, ``shuffle``,
    ``transpose`` (even label width only), ``butterfly``.  These are the
    standard adversarial patterns for banyan-class networks; the paper's
    Figure 5 discussion ("incapable of performing the identity permutation
    in one pass") is the ``identity`` entry.
    """
    if not is_power_of_two(n):
        raise ConfigurationError(f"structured permutations need power-of-two size, got {n}")
    try:
        builder = STRUCTURED_PATTERNS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown pattern {name!r}; available: {sorted(STRUCTURED_PATTERNS)}"
        ) from None
    return FixedPattern(builder(n), n)
