"""Seeded random-number streams for reproducible simulations.

Every stochastic component of the library (traffic generators, random
contention discipline, random schedules) takes an explicit
``numpy.random.Generator``.  This module centralizes their creation so that

* a single integer seed reproduces an entire experiment;
* independent subsystems (e.g. traffic vs. switch tie-breaking) get
  *statistically independent* streams via ``SeedSequence.spawn`` rather than
  sharing one generator, which keeps results stable when one consumer
  changes how much randomness it draws.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn", "stream_for"]


def make_rng(seed: int | np.random.SeedSequence | None = None) -> np.random.Generator:
    """A fresh PCG64 generator from ``seed`` (None = OS entropy)."""
    return np.random.default_rng(seed)


def spawn(seed: int | None, n: int) -> list[np.random.Generator]:
    """``n`` independent generators derived from one master seed."""
    children = np.random.SeedSequence(seed).spawn(n)
    return [np.random.default_rng(child) for child in children]


def stream_for(seed: int | None, *names: str) -> np.random.Generator:
    """A generator keyed by a hierarchical name, independent across names.

    ``stream_for(42, "mimd", "traffic")`` always returns the same stream,
    and it is independent of ``stream_for(42, "mimd", "switch")``.  Names
    are hashed into spawn keys, so adding a new named stream never perturbs
    existing ones.
    """
    entropy = [np.uint32(abs(hash(name)) & 0xFFFFFFFF) for name in names]
    root = np.random.SeedSequence(entropy=[seed if seed is not None else 0, *entropy])
    return np.random.default_rng(root)
