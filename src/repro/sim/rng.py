"""Seeded random-number streams for reproducible simulations.

Every stochastic component of the library (traffic generators, random
contention discipline, random schedules) takes an explicit
``numpy.random.Generator``.  This module centralizes their creation so that

* a single integer seed reproduces an entire experiment;
* independent subsystems (e.g. traffic vs. switch tie-breaking) get
  *statistically independent* streams via ``SeedSequence.spawn`` rather than
  sharing one generator, which keeps results stable when one consumer
  changes how much randomness it draws.

Seed-like values
----------------
Every entry point accepts a ``SeedLike`` — ``int`` (a reproducible master
seed), ``numpy.random.SeedSequence`` (an already-derived spawn point),
``numpy.random.Generator`` (adopted as-is, or spawned from), or ``None``
(fresh OS entropy).  The deterministic spawn scheme used throughout the
batch and sweep APIs is: child ``i`` of ``n`` is
``SeedSequence(seed).spawn(n)[i]`` — assigned by *position*, so results are
independent of worker scheduling, chunking, and job count.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["SeedLike", "as_generator", "make_rng", "spawn", "spawn_keys", "stream_for"]

#: Anything the library accepts as a reproducibility seed.
SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """A PCG64 generator from ``seed`` (None = OS entropy).

    An existing :class:`~numpy.random.Generator` is returned unchanged, so
    callers can thread one stream through layered APIs without re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def as_generator(rng: SeedLike) -> "np.random.Generator | None":
    """Normalize a seed-like *routing* argument; ``None`` passes through.

    Route methods historically took an optional ``numpy.random.Generator``
    whose absence means "no randomness needed" — so unlike :func:`make_rng`,
    ``None`` here stays ``None`` instead of becoming OS entropy.  Ints and
    ``SeedSequence`` values become deterministic fresh generators, letting
    callers write ``net.route(dests, rng=42)``.
    """
    if rng is None or isinstance(rng, np.random.Generator):
        return rng
    return make_rng(rng)


def spawn(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """``n`` independent generators derived from one master seed.

    Children are assigned by position (see the module docstring), so the
    ``i``-th stream is identical no matter how many siblings are consumed
    or in which order.
    """
    return [make_rng(key) for key in spawn_keys(seed, n)]


def spawn_keys(seed: SeedLike, n: int) -> list:
    """``n`` independent, *picklable* child seeds from one master seed.

    For ``int``/``SeedSequence``/``None`` seeds the children are
    ``SeedSequence`` objects; for a ``Generator`` they are spawned child
    generators (both pickle cleanly, so either can cross a process
    boundary to a :class:`~repro.experiments.parallel.ParallelSweep`
    worker).  Feed each child to :func:`make_rng`.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} children")
    if isinstance(seed, np.random.Generator):
        return list(seed.spawn(n))
    if isinstance(seed, np.random.SeedSequence):
        return list(seed.spawn(n))
    return list(np.random.SeedSequence(seed).spawn(n))


def stream_for(seed: int | None, *names: str) -> np.random.Generator:
    """A generator keyed by a hierarchical name, independent across names.

    ``stream_for(42, "mimd", "traffic")`` always returns the same stream,
    and it is independent of ``stream_for(42, "mimd", "switch")``.  Names
    are hashed into spawn keys, so adding a new named stream never perturbs
    existing ones.
    """
    entropy = [np.uint32(abs(hash(name)) & 0xFFFFFFFF) for name in names]
    root = np.random.SeedSequence(entropy=[seed if seed is not None else 0, *entropy])
    return np.random.default_rng(root)
